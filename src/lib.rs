//! # pta — context-sensitive interprocedural points-to analysis for C
//!
//! A complete, from-scratch reproduction of Emami, Ghiya & Hendren,
//! *"Context-Sensitive Interprocedural Points-to Analysis in the
//! Presence of Function Pointers"* (PLDI 1994), as a Rust workspace:
//!
//! | Crate | Contents |
//! |---|---|
//! | [`cfront`] | C lexer, parser, type checker |
//! | [`simple`] | The SIMPLE IR and the simplifier |
//! | [`core`] | The points-to analysis, invocation graphs, map/unmap, function pointers, baselines, statistics |
//! | [`apps`] | Alias pairs, pointer replacement, read/write sets, call graphs |
//! | [`lint`] | Client diagnostics built on the points-to facts (`pta lint`) |
//! | [`benchsuite`] | The 17-program suite + `livc`, and Tables 2–6 reproduction |
//!
//! ## Quick start
//!
//! ```
//! use pta::prelude::*;
//!
//! let result = pta::analyze_c(
//!     "int x;
//!      void set(int **p, int *v) { *p = v; }
//!      int main(void) { int *q; set(&q, &x); return *q; }",
//! )?;
//! assert_eq!(result.exit_targets_of("main", "q"), vec![("x".to_string(), Def::D)]);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```
//!
//! See `examples/` for runnable demonstrations and `EXPERIMENTS.md` for
//! the reproduced evaluation.

pub use pta_apps as apps;
pub use pta_benchsuite as benchsuite;
pub use pta_cfront as cfront;
pub use pta_core as core;
pub use pta_lint as lint;
pub use pta_simple as simple;

pub use pta_core::{
    analyze, analyze_with, run_source, run_source_with, AnalysisConfig, AnalysisError,
    AnalysisResult, Def, Pta, PtaError,
};

/// Compiles and analyses one C translation unit (alias of
/// [`pta_core::run_source`]).
///
/// # Errors
///
/// Returns a [`PtaError`] for front-end or analysis failures.
pub fn analyze_c(source: &str) -> Result<Pta, PtaError> {
    pta_core::run_source(source)
}

/// Commonly used items.
pub mod prelude {
    pub use pta_apps::{alias_pairs_at, call_graph, replaceable_refs, stmt_rw_sets};
    pub use pta_core::{
        analyze, run_source, AnalysisConfig, AnalysisResult, Def, PtSet, Pta, PtaError,
    };
    pub use pta_simple::{compile, IrProgram};
}
