//! The unmap process (§4.1): translates the callee's output points-to
//! set back into the caller's name space at the call site.
//!
//! Symbolic names are replaced by the invisible variables they
//! represent (per the map information); globals translate to
//! themselves; relationships involving the callee's own variables are
//! dropped (their storage is dead after the return). Mapped caller
//! locations with a unique, non-summary name are *strongly* replaced by
//! the callee's facts; summaries and multi-representative invisibles
//! are updated weakly.

use crate::analysis::{Analyzer, EscapeEvent, EscapeVia};
use crate::dense::LocMap;
use crate::invocation_graph::MapInfo;
use crate::location::{LocBase, LocId};
use crate::points_to_set::{Def, PtSet};
use crate::trace::TraceEvent;
use pta_cfront::ast::FuncId;
use pta_simple::CallSiteId;

impl<'p> Analyzer<'p> {
    /// Translates `callee_out` back to the caller, starting from the
    /// caller's `input` at the call site.
    pub(crate) fn unmap_process(
        &mut self,
        cs: CallSiteId,
        callee: FuncId,
        input: &PtSet,
        callee_out: &PtSet,
        sym_reps: &MapInfo,
        mapped_sources: &[LocId],
    ) -> PtSet {
        let t0 = self.tracer.now();
        let mut out = input.clone();
        let rev = self.reverse_map(sym_reps);

        // Strong replacement for uniquely-named non-summary sources;
        // weak (demote) for the rest.
        for &l in mapped_sources {
            let unique = match rev.get(l) {
                Some(sym) => sym_reps.get(&sym).map_or(1, |r| r.len()) == 1,
                None => true, // visible location: named by itself
            };
            if unique && !self.locs.is_summary(l) {
                out.kill_from(l);
            } else {
                out.demote_from(l);
            }
        }

        for (s, t, d) in callee_out.iter() {
            let srcs = self.rtr(callee, s, sym_reps);
            if srcs.is_empty() {
                continue;
            }
            let tgts = self.rtr(callee, t, sym_reps);
            if tgts.is_empty() {
                if self.is_callee_local(callee, t) {
                    self.warn(format!(
                        "address of a local of `{}` escapes through its caller (dangling pointer dropped)",
                        self.ir.function(callee).name
                    ));
                    let local = self.locs.name(t).to_owned();
                    self.escape(EscapeEvent {
                        callee,
                        call_site: cs,
                        via: EscapeVia::Unmap,
                        local,
                        def: d,
                    });
                }
                continue;
            }
            let unique = srcs.len() == 1 && tgts.len() == 1;
            for &s2 in &srcs {
                for &t2 in &tgts {
                    let d2 = if d == Def::D && unique {
                        Def::D
                    } else {
                        Def::P
                    };
                    out.insert_weak(s2, t2, d2);
                }
            }
        }
        if let Some(t0) = t0 {
            let dur_us = t0.elapsed().as_micros() as u64;
            let callee_name = self.ir.function(callee).name.clone();
            let (callee_pairs, caller_pairs) = (callee_out.len(), out.len());
            self.tracer.emit(|| TraceEvent::Unmap {
                callee: callee_name,
                callee_pairs,
                caller_pairs,
                dur_us,
            });
        }
        out
    }

    /// Reverse-translates one callee location to caller locations.
    /// Returns an empty vector for locations scoped to the callee.
    pub(crate) fn rtr(&mut self, callee: FuncId, l: LocId, sym_reps: &MapInfo) -> Vec<LocId> {
        let d = self.locs.get(l).clone();
        match d.base {
            LocBase::Symbolic(f, _) if f == callee => {
                let Some(base) = self.locs.lookup(&d.base, &[]) else {
                    return Vec::new();
                };
                let Some(reps) = sym_reps.get(&base) else {
                    return Vec::new();
                };
                let mut out = Vec::new();
                for &rep in reps {
                    let mut cur = rep;
                    let mut ok = true;
                    for p in &d.projs {
                        match self.locs.project(cur, p.clone(), self.ir) {
                            Some(n) => cur = n,
                            None => {
                                ok = false;
                                break;
                            }
                        }
                    }
                    if ok && !out.contains(&cur) {
                        out.push(cur);
                    }
                }
                out
            }
            LocBase::Var(f, _) | LocBase::Ret(f) | LocBase::Symbolic(f, _) if f == callee => {
                Vec::new()
            }
            // Variables or symbols of some *other* function should never
            // appear in a callee's output; drop them defensively.
            LocBase::Var(..) | LocBase::Ret(_) | LocBase::Symbolic(..) => Vec::new(),
            _ => vec![l],
        }
    }

    pub(crate) fn is_callee_local(&self, callee: FuncId, l: LocId) -> bool {
        matches!(self.locs.get(l).base, LocBase::Var(f, _) if f == callee)
    }

    fn reverse_map(&self, sym_reps: &MapInfo) -> LocMap {
        let mut rev = LocMap::with_capacity(self.locs.len());
        for (sym, reps) in sym_reps {
            for &r in reps {
                rev.insert(r, *sym);
            }
        }
        rev
    }
}
