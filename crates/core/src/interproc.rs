//! Interprocedural strategy (§4, Figure 4) and function-pointer calls
//! (§5, Figure 5), plus the modelled-external call effects.
//!
//! The general idea (Figure 3): map the caller's points-to information
//! into the callee's name space, analyse the body (memoized on the
//! invocation-graph node), and unmap the output back to the call site.
//! Information induced by one call site is never returned to another.

use crate::analysis::{AnalysisError, Analyzer};
use crate::invocation_graph::{IgKind, IgNodeId};
use crate::points_to_set::{flow_subset, merge_flow, Def, Flow, PtSet};
use crate::trace::TraceEvent;
use pta_cfront::ast::FuncId;
use pta_cfront::builtins::{extern_effect, ExternEffect};
use pta_simple::{CallSiteId, CallTarget, Operand, VarRef};

impl<'p> Analyzer<'p> {
    /// Dispatches a call statement.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn process_call_stmt(
        &mut self,
        caller: FuncId,
        node: IgNodeId,
        cs: CallSiteId,
        target: &CallTarget,
        lhs: Option<&VarRef>,
        args: &[Operand],
        input: PtSet,
    ) -> Result<Flow, AnalysisError> {
        match target {
            CallTarget::Direct(callee) => {
                if self.ir.function(*callee).is_defined() {
                    self.call_defined(caller, node, cs, *callee, lhs, args, input)
                } else {
                    self.extern_call(caller, *callee, lhs, args, input)
                }
            }
            CallTarget::Indirect(fnptr) => {
                self.process_call_indirect(caller, node, cs, fnptr, lhs, args, input)
            }
        }
    }

    /// A call to a function defined in the program: map, analyse
    /// (memoized on the invocation-graph node), unmap, and bind the
    /// return value.
    #[allow(clippy::too_many_arguments)]
    fn call_defined(
        &mut self,
        caller: FuncId,
        node: IgNodeId,
        cs: CallSiteId,
        callee: FuncId,
        lhs: Option<&VarRef>,
        args: &[Operand],
        input: PtSet,
    ) -> Result<Flow, AnalysisError> {
        let ir = self.ir;
        let child = self
            .ig
            .ensure_child(ir, node, cs, callee, self.config.max_ig_nodes)
            .map_err(|o| o.into_error(ir, None))?;
        // A child discovered at an indirect call site needs its direct
        // call structure expanded so recursion is detected eagerly.
        if self.ig.node(child).kind == IgKind::Ordinary && self.ig.node(child).children.is_empty() {
            self.ig
                .expand_direct(ir, child, self.config.max_ig_nodes)
                .map_err(|o| o.into_error(ir, None))?;
        }
        let mapping = self.map_process(caller, node, callee, args, &input)?;
        self.ig.node_mut(child).map_info = mapping.sym_reps.clone();
        let out = self.analyze_node(child, mapping.callee_input.clone())?;
        match out {
            None => Ok(None), // ⊥: pending recursive input, or the callee never returns
            Some(callee_out) => {
                let mut caller_out = self.unmap_process(
                    cs,
                    callee,
                    &input,
                    &callee_out,
                    &mapping.sym_reps,
                    &mapping.mapped_sources,
                );
                if let Some(lhs) = lhs {
                    caller_out = self.bind_return(
                        caller,
                        cs,
                        callee,
                        lhs,
                        &callee_out,
                        &mapping.sym_reps,
                        caller_out,
                    );
                }
                Ok(Some(caller_out))
            }
        }
    }

    /// Figure 4: evaluates an invocation-graph node with a prepared
    /// input, with memoization, and the recursive/approximate
    /// fixed-point protocol.
    pub(crate) fn analyze_node(
        &mut self,
        node: IgNodeId,
        func_input: PtSet,
    ) -> Result<Flow, AnalysisError> {
        let ir = self.ir;
        if self.ig.node(node).kind == IgKind::Approximate {
            let rec = self
                .ig
                .node(node)
                .rec_edge
                .expect("approximate nodes have a partner");
            if let Some(si) = &self.ig.node(rec).stored_input {
                if func_input.subset_of(si) {
                    if self.tracer.enabled() {
                        let name = ir.function(self.ig.node(node).func).name.clone();
                        let (hash, pairs) = (func_input.fingerprint(), func_input.len());
                        self.tracer.emit(|| TraceEvent::MemoHit {
                            node: node.0,
                            func: name,
                            input_hash: hash,
                            input_pairs: pairs,
                        });
                    }
                    return Ok(self.ig.node(rec).stored_output.clone());
                }
            }
            if self.tracer.enabled() {
                let name = ir.function(self.ig.node(node).func).name.clone();
                let pairs = func_input.len();
                self.tracer.emit(|| TraceEvent::ApproxDefer {
                    node: node.0,
                    func: name,
                    input_pairs: pairs,
                });
            }
            self.ig.node_mut(rec).pending.push(func_input);
            return Ok(None); // ⊥
        }
        // Ordinary or Recursive node: memo check.
        {
            let n = self.ig.node(node);
            if n.memo_valid && n.stored_input.as_ref() == Some(&func_input) {
                if self.tracer.enabled() {
                    let name = ir.function(n.func).name.clone();
                    let (hash, pairs) = (func_input.fingerprint(), func_input.len());
                    self.tracer.emit(|| TraceEvent::MemoHit {
                        node: node.0,
                        func: name,
                        input_hash: hash,
                        input_pairs: pairs,
                    });
                }
                self.cap_note_hit(node);
                return Ok(self.ig.node(node).stored_output.clone());
            }
        }
        let func = self.ig.node(node).func;
        // Warm seeds (pta-store): a context pair from a previous run
        // whose subtree is unchanged serves the memo lookup without
        // re-analysing the body — graft the recorded subtree, replay
        // its captured side outputs, and return the memoized flow.
        if let Some(pair) = self.seeds.find(func, &func_input).cloned() {
            if self.tracer.enabled() {
                let name = ir.function(func).name.clone();
                let (hash, pairs) = (func_input.fingerprint(), func_input.len());
                self.tracer.emit(|| TraceEvent::MemoHit {
                    node: node.0,
                    func: name,
                    input_hash: hash,
                    input_pairs: pairs,
                });
            }
            let grafted = self
                .ig
                .graft(ir, node, &pair.fragment, self.config.max_ig_nodes)
                .map_err(|o| o.into_error(ir, None))?;
            if self.capture {
                // Keep interior grafted nodes attributable: a later
                // in-run hit on one must find its capture.
                for id in &grafted {
                    let n = self.ig.node(*id);
                    if n.kind == IgKind::Approximate || !n.memo_valid {
                        continue;
                    }
                    let Some(input) = n.stored_input.clone() else {
                        continue;
                    };
                    let nf = n.func;
                    if let Some(p) = self.seeds.find(nf, &input) {
                        let cap = p.capture.clone();
                        self.node_caps.insert(id.0, cap);
                    }
                }
                self.node_caps.insert(node.0, pair.capture.clone());
            }
            self.cap_replay(&pair.capture);
            self.seed_hits += 1;
            return Ok(pair.output);
        }
        if self.tracer.enabled() {
            let name = ir.function(func).name.clone();
            let kind = self.ig.node(node).kind.tag();
            let path = self.ig.path_to(ir, node);
            let (hash, pairs) = (func_input.fingerprint(), func_input.len());
            {
                let name = name.clone();
                self.tracer.emit(|| TraceEvent::MemoMiss {
                    node: node.0,
                    func: name,
                    input_hash: hash,
                    input_pairs: pairs,
                });
            }
            self.tracer.emit(|| TraceEvent::IgEnter {
                node: node.0,
                func: name,
                kind,
                path,
                input_pairs: pairs,
                input_hash: hash,
            });
        }
        let body = ir
            .function(func)
            .body
            .as_ref()
            .expect("node for a defined function");
        {
            let n = self.ig.node_mut(node);
            n.stored_input = Some(func_input.clone());
            n.stored_output = None;
            n.memo_valid = false;
            n.pending.clear();
        }
        self.cap_push();
        let mut rounds: u32 = 0;
        loop {
            // Fixed-point rounds can each be expensive; re-check the
            // deadline between them even if few statements ran.
            if let Err(e) = self.budget.check_deadline() {
                return Err(self.exhausted(e, node, None));
            }
            rounds += 1;
            let cur = self
                .ig
                .node(node)
                .stored_input
                .clone()
                .expect("input set above");
            let fo = self.process_stmt(func, node, body, Some(cur))?;
            let out = merge_flow(fo.normal, fo.ret);
            // Unresolved inputs from approximate descendants: generalize
            // the input and restart (Figure 4).
            let pending = std::mem::take(&mut self.ig.node_mut(node).pending);
            if !pending.is_empty() {
                let mut si = self.ig.node(node).stored_input.clone().expect("input set");
                for p in pending {
                    si = si.merge(&p);
                }
                let n = self.ig.node_mut(node);
                n.stored_input = Some(si);
                n.stored_output = None;
                continue;
            }
            if self.ig.node(node).kind != IgKind::Recursive {
                let n = self.ig.node_mut(node);
                n.stored_output = out.clone();
                n.memo_valid = true;
                self.cap_pop(node);
                self.emit_ig_exit(node, &out, rounds);
                return Ok(out);
            }
            // Recursive: generalize the output until stable.
            let stored = self.ig.node(node).stored_output.clone();
            if flow_subset(&out, &stored) {
                let n = self.ig.node_mut(node);
                n.stored_input = Some(func_input); // reset for memoization
                n.memo_valid = true;
                let out = n.stored_output.clone();
                self.cap_pop(node);
                self.emit_ig_exit(node, &out, rounds);
                return Ok(out);
            }
            self.ig.node_mut(node).stored_output = merge_flow(stored, out);
        }
    }

    fn emit_ig_exit(&mut self, node: IgNodeId, out: &Flow, rounds: u32) {
        if self.tracer.enabled() {
            let name = self.ir.function(self.ig.node(node).func).name.clone();
            let (bottom, out_pairs) = match out {
                None => (true, 0),
                Some(s) => (false, s.len()),
            };
            self.tracer.emit(|| TraceEvent::IgExit {
                node: node.0,
                func: name,
                bottom,
                out_pairs,
                rounds,
            });
        }
    }

    /// Binds the callee's return value to the call's destination,
    /// field-by-field for struct returns.
    #[allow(clippy::too_many_arguments)]
    fn bind_return(
        &mut self,
        caller: FuncId,
        cs: CallSiteId,
        callee: FuncId,
        lhs: &VarRef,
        callee_out: &PtSet,
        sym_reps: &crate::invocation_graph::MapInfo,
        mut caller_out: PtSet,
    ) -> PtSet {
        let ir = self.ir;
        if !self.is_pointer_assignment(caller, lhs)
            && !ir.function(callee).ret.carries_pointers(&ir.structs)
        {
            return caller_out;
        }
        let ret_loc = self.locs.ret(ir, callee);
        let mut leaves = self.ptr_leaves(ret_loc);
        if leaves.is_empty() {
            // Return type carries no pointers but the destination is a
            // pointer (cast abuse): clear the destination.
            leaves.clear();
            let l = {
                let mut env = self.renv(caller);
                env.l_locations(&caller_out, lhs)
            };
            return self.assign(caller_out, &l, &[]);
        }
        let base_depth = self.locs.get(ret_loc).projs.len();
        for leaf in leaves {
            let extra = self.locs.get(leaf).projs[base_depth..].to_vec();
            let mut lhs_leaf = lhs.clone();
            for p in &extra {
                let ip = match p {
                    crate::location::Proj::Field(f) => pta_simple::IrProj::Field(f.clone()),
                    crate::location::Proj::Head => {
                        pta_simple::IrProj::Index(pta_simple::IdxClass::Zero)
                    }
                    crate::location::Proj::Tail => {
                        pta_simple::IrProj::Index(pta_simple::IdxClass::Positive)
                    }
                };
                lhs_leaf = crate::intra::append_proj(lhs_leaf, ip);
            }
            let mut r: Vec<(crate::location::LocId, Def)> = Vec::new();
            let ret_targets: Vec<(crate::location::LocId, Def)> =
                callee_out.targets(leaf).collect();
            for (t, d) in ret_targets {
                let tr = self.rtr(callee, t, sym_reps);
                if tr.is_empty() && self.is_callee_local(callee, t) {
                    self.warn(format!(
                        "address of a local of `{}` escapes through its return value (dangling pointer dropped)",
                        self.ir.function(callee).name
                    ));
                    let local = self.locs.name(t).to_owned();
                    self.escape(crate::analysis::EscapeEvent {
                        callee,
                        call_site: cs,
                        via: crate::analysis::EscapeVia::Return,
                        local,
                        def: d,
                    });
                }
                let unique = tr.len() == 1;
                for t2 in tr {
                    let d2 = if d == Def::D && unique {
                        Def::D
                    } else {
                        Def::P
                    };
                    crate::intra::push_pair(&mut r, t2, d2);
                }
            }
            let l = {
                let mut env = self.renv(caller);
                env.l_locations(&caller_out, &lhs_leaf)
            };
            caller_out = self.assign(caller_out, &l, &r);
        }
        caller_out
    }

    /// Calls to modelled external functions (§"Externals" in DESIGN.md).
    fn extern_call(
        &mut self,
        caller: FuncId,
        callee: FuncId,
        lhs: Option<&VarRef>,
        args: &[Operand],
        input: PtSet,
    ) -> Result<Flow, AnalysisError> {
        let name = self.ir.function(callee).name.clone();
        let effect = match extern_effect(&name) {
            Some(e) => e,
            None => {
                if self.config.strict_externs {
                    return Err(AnalysisError::Unsupported(format!(
                        "call to unmodelled external function `{name}`"
                    )));
                }
                self.warn(format!(
                    "call to unmodelled external `{name}` treated as having no pointer effects"
                ));
                ExternEffect::None
            }
        };
        match effect {
            ExternEffect::NoReturn => Ok(None),
            ExternEffect::None | ExternEffect::Free => {
                Ok(Some(self.extern_bind(caller, lhs, None, input)))
            }
            ExternEffect::ReturnsHeap => {
                let heap = self.locs.heap();
                Ok(Some(self.extern_bind(
                    caller,
                    lhs,
                    Some(vec![(heap, Def::P)]),
                    input,
                )))
            }
            ExternEffect::ReturnsFirstArg => {
                let r = match args.first() {
                    Some(op) => {
                        let mut env = self.renv(caller);
                        env.operand_r_locations(&input, op)
                    }
                    None => Vec::new(),
                };
                Ok(Some(self.extern_bind(caller, lhs, Some(r), input)))
            }
        }
    }

    fn extern_bind(
        &mut self,
        caller: FuncId,
        lhs: Option<&VarRef>,
        r: Option<Vec<(crate::location::LocId, Def)>>,
        input: PtSet,
    ) -> PtSet {
        let Some(lhs) = lhs else { return input };
        if !self.is_pointer_assignment(caller, lhs) {
            return input;
        }
        let l = {
            let mut env = self.renv(caller);
            env.l_locations(&input, lhs)
        };
        let r = r.unwrap_or_default();
        self.assign(input, &l, &r)
    }

    /// Figure 5: a call through a function pointer. The invocable set is
    /// the current points-to set of the pointer; the invocation graph is
    /// extended accordingly; each invocable function is analysed with
    /// the pointer made to *definitely* point to it; the outputs merge.
    #[allow(clippy::too_many_arguments)]
    fn process_call_indirect(
        &mut self,
        caller: FuncId,
        node: IgNodeId,
        cs: CallSiteId,
        fnptr: &VarRef,
        lhs: Option<&VarRef>,
        args: &[Operand],
        input: PtSet,
    ) -> Result<Flow, AnalysisError> {
        let targets = {
            let mut env = self.renv(caller);
            env.r_locations(&input, fnptr)
        };
        let mut fns: Vec<FuncId> = Vec::new();
        for (t, _) in &targets {
            if let Some(f) = self.locs.as_function(*t) {
                if !fns.contains(&f) {
                    fns.push(f);
                }
            }
        }
        if fns.is_empty() {
            self.warn(format!(
                "indirect call in `{}` has no function targets on some path; treated as a no-op",
                self.ir.function(caller).name
            ));
            return Ok(Some(input));
        }
        let mut out: Flow = None;
        for f in fns {
            // Make the function pointer definitely point to `f` for this
            // branch of the call.
            let floc = self.locs.function(self.ir, f);
            let l = {
                let mut env = self.renv(caller);
                env.l_locations(&input, fnptr)
            };
            let input_f = self.assign(input.clone(), &l, &[(floc, Def::D)]);
            let o = if self.ir.function(f).is_defined() {
                self.call_defined(caller, node, cs, f, lhs, args, input_f)?
            } else {
                self.extern_call(caller, f, lhs, args, input_f)?
            };
            out = merge_flow(out, o);
        }
        Ok(out)
    }
}
