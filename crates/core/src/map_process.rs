//! The map process (§4.1 of the paper): prepares the callee's input
//! points-to set from the caller's state at the call site.
//!
//! - formal parameters inherit the points-to relationships of the
//!   corresponding actuals (field-by-field for struct parameters);
//! - global variables keep their relationships;
//! - locations indirectly accessible through formals/globals are mapped
//!   recursively through all pointer levels;
//! - caller locations invisible in the callee are renamed to *symbolic
//!   names* (`1_x`, `2_x`, …), at most one symbolic name per invisible
//!   variable, definite relationships mapped first; the association is
//!   recorded as per-context map information on the invocation-graph
//!   node.

use crate::analysis::{AnalysisError, Analyzer};
use crate::dense::{LocMap, LocSet};
use crate::invocation_graph::{IgNodeId, MapInfo};
use crate::location::{LocBase, LocId, Proj};
use crate::points_to_set::{Def, PtSet};
use crate::trace::TraceEvent;
use pta_cfront::ast::FuncId;
use pta_simple::Operand;
use std::collections::VecDeque;

/// The outcome of mapping a call.
#[derive(Debug, Clone)]
pub(crate) struct Mapping {
    /// The callee's input points-to set.
    pub callee_input: PtSet,
    /// Symbolic name (base location) → invisible caller locations it
    /// represents in this context.
    pub sym_reps: MapInfo,
    /// Every caller location whose relationships were conveyed into the
    /// callee (used by unmapping to decide strong vs weak updates).
    pub mapped_sources: Vec<LocId>,
}

impl<'p> Analyzer<'p> {
    /// Builds the callee input set, symbolic names, and map information
    /// for one call. `node` is the caller's invocation-graph node (trip
    /// context for the depth budget).
    ///
    /// # Errors
    ///
    /// [`AnalysisError::MapDepthBudget`] when the pointer-chain
    /// traversal exceeds `AnalysisConfig::max_map_depth`, and
    /// [`AnalysisError::Deadline`] when the wall clock runs out mid-map.
    pub(crate) fn map_process(
        &mut self,
        caller: FuncId,
        node: IgNodeId,
        callee: FuncId,
        args: &[Operand],
        input: &PtSet,
    ) -> Result<Mapping, AnalysisError> {
        let ir = self.ir;
        let t0 = self.tracer.now();
        let mut max_depth_seen: u32 = 0;
        let mut st = MapState {
            sym_reps: MapInfo::new(),
            tr: LocMap::with_capacity(self.locs.len()),
            raw: Vec::new(),
            visited: LocSet::new(),
            queue: VecDeque::new(),
        };

        // --- formal parameters inherit from actuals -------------------
        let n_params = ir.function(callee).n_params;
        let null = self.locs.null();
        for i in 0..n_params {
            let formal_root = self.locs.var(ir, callee, pta_simple::IrVarId(i as u32));
            let leaves = self.ptr_leaves(formal_root);
            let root_depth = self.locs.get(formal_root).projs.len();
            for leaf in leaves {
                let leaf_projs = self.locs.get(leaf).projs[root_depth..].to_vec();
                let targets: Vec<(LocId, Def)> = match args.get(i) {
                    Some(op) => {
                        let projected = project_operand(op, &leaf_projs);
                        match projected {
                            Some(op) => {
                                let mut env = self.renv(caller);
                                env.operand_r_locations(input, &op)
                            }
                            None => Vec::new(),
                        }
                    }
                    None => Vec::new(),
                };
                if targets.is_empty() {
                    st.raw.push((leaf, null, Def::D));
                    continue;
                }
                for (t, d) in definite_first(targets) {
                    let t2 = self.translate(callee, t, leaf, &mut st);
                    st.raw.push((leaf, t2, d));
                    self.enqueue_content(t, t2, 2, &mut st);
                }
            }
        }
        if args.len() > n_params && ir.function(callee).variadic {
            self.warn(format!(
                "extra variadic arguments to `{}` are not tracked",
                ir.function(callee).name
            ));
        }

        // --- globals keep their relationships -------------------------
        for gi in 0..ir.globals.len() {
            let g = self.locs.global(ir, pta_cfront::ast::GlobalId(gi as u32));
            for leaf in self.ptr_leaves(g) {
                st.queue.push_back((leaf, leaf, 1));
            }
        }
        // --- the heap is visible everywhere ---------------------------
        let heap = self.locs.heap();
        st.queue.push_back((heap, heap, 1));
        // (extension) allocation-site heap locations are visible too
        let sites: Vec<crate::location::LocId> = self
            .locs
            .ids()
            .filter(|l| matches!(self.locs.get(*l).base, LocBase::HeapSite(_)))
            .collect();
        for site in sites {
            st.queue.push_back((site, site, 1));
        }

        // --- propagate through all pointer levels ----------------------
        let max_depth = self.budget.max_map_depth();
        let mut pops: u32 = 0;
        while let Some((c_src, k_src, depth)) = st.queue.pop_front() {
            if depth > max_depth {
                return Err(AnalysisError::MapDepthBudget {
                    limit: max_depth,
                    at: self.map_trip(node, caller, callee),
                });
            }
            max_depth_seen = max_depth_seen.max(depth);
            pops += 1;
            if pops.is_multiple_of(256) {
                if let Err(e) = self.budget.check_deadline() {
                    return Err(self.exhausted(e, node, None));
                }
            }
            if !st.visited.insert(c_src) {
                continue;
            }
            let targets: Vec<(LocId, Def)> = input.targets(c_src).collect();
            for (t, d) in definite_first(targets) {
                let t2 = self.translate(callee, t, k_src, &mut st);
                st.raw.push((k_src, t2, d));
                self.enqueue_content(t, t2, depth + 1, &mut st);
            }
        }

        // --- assemble with definiteness rules --------------------------
        let mut callee_input = PtSet::new();
        self.null_init_function_vars(callee, &mut callee_input, false);
        for (s, t, d) in std::mem::take(&mut st.raw) {
            let d = if d == Def::D
                && self.rep_multiplicity(s, &st.sym_reps) <= 1
                && self.rep_multiplicity(t, &st.sym_reps) <= 1
            {
                Def::D
            } else {
                Def::P
            };
            callee_input.insert_weak(s, t, d);
        }
        let mapping = Mapping {
            callee_input,
            sym_reps: st.sym_reps,
            mapped_sources: st.visited.iter().collect(),
        };
        if let Some(t0) = t0 {
            let dur_us = t0.elapsed().as_micros() as u64;
            let caller_name = ir.function(caller).name.clone();
            let callee_name = ir.function(callee).name.clone();
            let invisibles = mapping.sym_reps.len();
            let callee_pairs = mapping.callee_input.len();
            self.tracer.emit(|| TraceEvent::Map {
                caller: caller_name,
                callee: callee_name,
                invisibles,
                max_chain_depth: max_depth_seen,
                callee_pairs,
                dur_us,
            });
        }
        Ok(mapping)
    }

    /// Trip context for a budget that ran out while mapping a call.
    fn map_trip(&self, node: IgNodeId, caller: FuncId, callee: FuncId) -> crate::budget::TripPoint {
        crate::budget::TripPoint {
            function: self.ir.function(caller).name.clone(),
            ig_path: format!(
                "{} > {}",
                self.ig.path_to(self.ir, node),
                self.ir.function(callee).name
            ),
            stmt: None,
        }
    }

    /// How many invisible variables the (symbolic) base of `l` stands
    /// for (1 for non-symbolic locations).
    pub(crate) fn rep_multiplicity(&self, l: LocId, sym_reps: &MapInfo) -> usize {
        let d = self.locs.get(l);
        match d.base {
            LocBase::Symbolic(..) => {
                let base = self
                    .locs
                    .lookup(&d.base, &[])
                    .expect("symbolic base location interned");
                sym_reps.get(&base).map_or(1, |v| v.len().max(1))
            }
            _ => 1,
        }
    }

    /// Translates one caller location into the callee's name space.
    /// Visible locations (globals, heap, null, string storage,
    /// functions) keep their identity; invisible ones get (or reuse) a
    /// symbolic name derived from the callee-side pointer that reached
    /// them (`via`).
    fn translate(&mut self, callee: FuncId, t: LocId, via: LocId, st: &mut MapState) -> LocId {
        if self.loc_visible(t) {
            return t;
        }
        if let Some(s) = st.tr.get(t) {
            return s;
        }
        // Longest mapped prefix: `x.f` translates through `x`'s symbol.
        let td = self.locs.get(t).clone();
        for k in (0..td.projs.len()).rev() {
            let Some(prefix) = self.locs.lookup(&td.base, &td.projs[..k]) else {
                continue;
            };
            if let Some(base_sym) = st.tr.get(prefix) {
                let mut cur = base_sym;
                for p in &td.projs[k..] {
                    match self.locs.project(cur, p.clone(), self.ir) {
                        Some(n) => cur = n,
                        None => break,
                    }
                }
                st.tr.insert(t, cur);
                return cur;
            }
        }
        // Fresh symbolic name seeded from `via`.
        let (depth, root) = self.sym_seed(via);
        if depth > self.config.max_sym_depth {
            // k-limit: deeper invisibles collapse into `via` itself,
            // which becomes a (weak) multi-representative symbol.
            let via_base = self.sym_base_of(via).unwrap_or(via);
            st.sym_reps.entry(via_base).or_default().push(t);
            st.tr.insert(t, via);
            return via;
        }
        let name = format!("{depth}_{root}");
        let ty = self.locs.ty(t).cloned();
        let sym = self.locs.symbolic(callee, &name, depth, ty);
        st.tr.insert(t, sym);
        let reps = st.sym_reps.entry(sym).or_default();
        if !reps.contains(&t) {
            reps.push(t);
        }
        sym
    }

    /// True if the location is nameable in every scope.
    pub(crate) fn loc_visible(&self, l: LocId) -> bool {
        matches!(
            self.locs.get(l).base,
            LocBase::Global(_)
                | LocBase::Heap
                | LocBase::HeapSite(_)
                | LocBase::Null
                | LocBase::StrLit
                | LocBase::Function(_)
        )
    }

    /// Depth and root for a symbolic name derived from pointer `via`.
    fn sym_seed(&self, via: LocId) -> (u32, String) {
        let d = self.locs.get(via);
        match d.base {
            LocBase::Symbolic(..) => {
                let sd = self
                    .locs
                    .symbolic_data(
                        self.locs
                            .lookup(&d.base, &[])
                            .expect("symbolic base interned"),
                    )
                    .expect("symbolic data");
                // `1_x` → root `x`; keep any projections of `via`.
                let root = sd.name.split_once('_').map(|(_, r)| r).unwrap_or(&sd.name);
                let suffix = d.name.strip_prefix(&sd.name).unwrap_or("");
                (sd.depth + 1, format!("{root}{suffix}"))
            }
            _ => (1, d.name.clone()),
        }
    }

    fn sym_base_of(&self, l: LocId) -> Option<LocId> {
        let d = self.locs.get(l);
        match d.base {
            LocBase::Symbolic(..) => self.locs.lookup(&d.base, &[]),
            _ => None,
        }
    }

    /// Schedules the pointer content of caller location `t` (itself a
    /// mapped target) for mapping: each pointer leaf inside `t` pairs
    /// with the corresponding leaf of its callee-side name. `depth` is
    /// the indirection level the leaf sits at (budgeted).
    fn enqueue_content(&mut self, t: LocId, t2: LocId, depth: u32, st: &mut MapState) {
        if st.visited.contains(t) {
            return;
        }
        let base_depth = self.locs.get(t).projs.len();
        for leaf in self.ptr_leaves(t) {
            let extra: Vec<Proj> = self.locs.get(leaf).projs[base_depth..].to_vec();
            let mut k_leaf = t2;
            let mut ok = true;
            for p in extra {
                match self.locs.project(k_leaf, p, self.ir) {
                    Some(n) => k_leaf = n,
                    None => {
                        ok = false;
                        break;
                    }
                }
            }
            if ok {
                st.queue.push_back((leaf, k_leaf, depth));
            }
        }
    }
}

struct MapState {
    sym_reps: MapInfo,
    /// Caller location → callee-side name (dense translation table).
    tr: LocMap,
    raw: Vec<(LocId, LocId, Def)>,
    visited: LocSet,
    /// `(caller loc, callee-side name, indirection depth)`.
    queue: VecDeque<(LocId, LocId, u32)>,
}

fn definite_first(mut v: Vec<(LocId, Def)>) -> Vec<(LocId, Def)> {
    v.sort_by_key(|(l, d)| (*d != Def::D, *l));
    v
}

fn project_operand(op: &Operand, projs: &[Proj]) -> Option<Operand> {
    use pta_simple::{IdxClass, IrProj};
    if projs.is_empty() {
        return Some(op.clone());
    }
    let Operand::Ref(r) = op else { return None };
    let mut r = r.clone();
    for p in projs {
        let ip = match p {
            Proj::Field(f) => IrProj::Field(f.clone()),
            Proj::Head => IrProj::Index(IdxClass::Zero),
            Proj::Tail => IrProj::Index(IdxClass::Positive),
        };
        r = crate::intra::append_proj(r, ip);
    }
    Some(Operand::Ref(r))
}
