//! Steensgaard-style flow-insensitive, unification-based points-to
//! analysis.
//!
//! Equality constraints over a union-find of storage classes: each class
//! has at most one pointee class, and assignments unify. Near-linear,
//! but much coarser than both Andersen and the paper's analysis —
//! field-insensitive (projections collapse to the root variable).

use crate::analysis::AnalysisError;
use crate::location::{LocId, LocationTable};
use pta_cfront::ast::FuncId;
use pta_cfront::builtins::{extern_effect, ExternEffect};
use pta_simple::{BasicStmt, CallTarget, IrProgram, Operand, VarBase, VarRef};
use std::collections::BTreeMap;

/// Result of the Steensgaard-style baseline.
#[derive(Debug)]
pub struct SteensgaardResult {
    /// Locations created (root variables only — field-insensitive).
    pub locs: LocationTable,
    uf: UnionFind,
    pts: BTreeMap<u32, u32>,
}

impl SteensgaardResult {
    /// All locations in the pointee class of `src` (its points-to set).
    pub fn targets(&self, src: LocId) -> Vec<LocId> {
        let c = self.uf.find_const(src.0);
        let Some(p) = self.pts.get(&c) else {
            return Vec::new();
        };
        let p = self.uf.find_const(*p);
        let mut out: Vec<LocId> = (0..self.uf.len() as u32)
            .filter(|i| self.uf.find_const(*i) == p)
            .map(LocId)
            .collect();
        out.retain(|l| !self.locs.is_null(*l));
        out
    }

    /// Target names of a location, sorted.
    pub fn target_names(&self, src: LocId) -> Vec<String> {
        let mut v: Vec<String> = self
            .targets(src)
            .into_iter()
            .map(|t| self.locs.name(t).to_owned())
            .collect();
        v.sort();
        v
    }

    /// Number of distinct storage classes.
    pub fn class_count(&self) -> usize {
        (0..self.uf.len() as u32)
            .filter(|i| self.uf.find_const(*i) == *i)
            .count()
    }
}

#[derive(Debug)]
struct UnionFind {
    parent: Vec<u32>,
}

impl UnionFind {
    fn new() -> Self {
        UnionFind { parent: Vec::new() }
    }

    fn len(&self) -> usize {
        self.parent.len()
    }

    fn ensure(&mut self, i: u32) {
        while self.parent.len() <= i as usize {
            self.parent.push(self.parent.len() as u32);
        }
    }

    fn find(&mut self, i: u32) -> u32 {
        self.ensure(i);
        let mut root = i;
        while self.parent[root as usize] != root {
            root = self.parent[root as usize];
        }
        let mut cur = i;
        while self.parent[cur as usize] != root {
            let next = self.parent[cur as usize];
            self.parent[cur as usize] = root;
            cur = next;
        }
        root
    }

    fn find_const(&self, i: u32) -> u32 {
        if i as usize >= self.parent.len() {
            return i;
        }
        let mut root = i;
        while self.parent[root as usize] != root {
            root = self.parent[root as usize];
        }
        root
    }

    fn union(&mut self, a: u32, b: u32) -> u32 {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra != rb {
            self.parent[rb as usize] = ra;
        }
        ra
    }
}

struct Engine<'p> {
    ir: &'p IrProgram,
    locs: LocationTable,
    uf: UnionFind,
    pts: BTreeMap<u32, u32>,
}

/// Runs the Steensgaard-style baseline.
///
/// # Errors
///
/// Currently infallible in practice; signature kept parallel to the
/// other engines.
pub fn steensgaard(ir: &IrProgram) -> Result<SteensgaardResult, AnalysisError> {
    steensgaard_budgeted(ir, None)
}

/// [`steensgaard`] with an optional wall-clock deadline, checked once
/// per function pass. The last rung of the degradation ladder still
/// must not hang.
///
/// # Errors
///
/// Returns [`AnalysisError::Deadline`] on expiry.
pub fn steensgaard_budgeted(
    ir: &IrProgram,
    deadline: Option<std::time::Duration>,
) -> Result<SteensgaardResult, AnalysisError> {
    let budget = crate::budget::Budget::new(u64::MAX, deadline, usize::MAX, u32::MAX);
    let expired = |f: FuncId| AnalysisError::Deadline {
        limit: deadline.unwrap_or_default(),
        at: crate::baseline::baseline_trip("steensgaard", ir, Some(f)),
    };
    let mut e = Engine {
        ir,
        locs: LocationTable::new(),
        uf: UnionFind::new(),
        pts: BTreeMap::new(),
    };
    e.locs.null();
    e.locs.heap();
    e.locs.strlit();
    for (fid, f) in ir.functions.iter().enumerate() {
        let func = FuncId(fid as u32);
        let Some(body) = &f.body else { continue };
        if budget.check_deadline().is_err() {
            return Err(expired(func));
        }
        body.for_each_basic(&mut |b, _| e.stmt(func, b));
    }
    // Resolve indirect calls against the (now complete) unification and
    // process them once more (one extra pass is enough in practice for
    // this baseline; exactness is not the goal).
    for (fid, f) in ir.functions.iter().enumerate() {
        let func = FuncId(fid as u32);
        let Some(body) = &f.body else { continue };
        if budget.check_deadline().is_err() {
            return Err(expired(func));
        }
        body.for_each_basic(&mut |b, _| {
            if let BasicStmt::Call {
                lhs,
                target: CallTarget::Indirect(r),
                args,
                ..
            } = b
            {
                let fp = e.base_loc(func, r);
                let targets: Vec<FuncId> = match fp {
                    Some(fp) => {
                        let res = SteensgaardResultView { e: &e };
                        res.targets(fp)
                            .into_iter()
                            .filter_map(|t| e.locs.as_function(t))
                            .collect()
                    }
                    None => Vec::new(),
                };
                for callee in targets {
                    e.call(func, callee, lhs.as_ref(), args);
                }
            }
        });
    }
    Ok(SteensgaardResult {
        locs: e.locs,
        uf: e.uf,
        pts: e.pts,
    })
}

struct SteensgaardResultView<'a, 'p> {
    e: &'a Engine<'p>,
}

impl SteensgaardResultView<'_, '_> {
    fn targets(&self, src: LocId) -> Vec<LocId> {
        let c = self.e.uf.find_const(src.0);
        let Some(p) = self.e.pts.get(&c) else {
            return Vec::new();
        };
        let p = self.e.uf.find_const(*p);
        (0..self.e.uf.len() as u32)
            .filter(|i| self.e.uf.find_const(*i) == p)
            .map(LocId)
            .collect()
    }
}

impl<'p> Engine<'p> {
    /// Field-insensitive: the root variable location of a path.
    fn base_loc(&mut self, func: FuncId, r: &VarRef) -> Option<LocId> {
        let path = match r {
            VarRef::Path(p) => p,
            VarRef::Deref { path, .. } => path,
        };
        Some(match path.base {
            VarBase::Global(g) => self.locs.global(self.ir, g),
            VarBase::Var(v) => self.locs.var(self.ir, func, v),
        })
    }

    fn deref_count(r: &VarRef) -> usize {
        match r {
            VarRef::Path(_) => 0,
            VarRef::Deref { .. } => 1,
        }
    }

    /// The pointee class of `c`, created on demand.
    fn pointee(&mut self, c: u32) -> u32 {
        let c = self.uf.find(c);
        if let Some(p) = self.pts.get(&c) {
            return self.uf.find(*p);
        }
        // Fresh bottom class: a synthetic location.
        let fresh = self.locs.symbolic(
            FuncId(u32::MAX),
            &format!("$steens{}", self.locs.len()),
            0,
            None,
        );
        self.uf.ensure(fresh.0);
        self.pts.insert(c, fresh.0);
        self.uf.find(fresh.0)
    }

    /// Unifies two classes and (recursively) their pointees.
    fn join(&mut self, a: u32, b: u32) {
        let (ra, rb) = (self.uf.find(a), self.uf.find(b));
        if ra == rb {
            return;
        }
        let pa = self.pts.get(&ra).copied();
        let pb = self.pts.get(&rb).copied();
        let r = self.uf.union(ra, rb);
        match (pa, pb) {
            (Some(x), Some(y)) => {
                self.pts.insert(r, x);
                self.join(x, y);
            }
            (Some(x), None) | (None, Some(x)) => {
                self.pts.insert(r, x);
            }
            (None, None) => {}
        }
    }

    /// Class of the *value* of a reference (applying its dereferences).
    fn value_class(&mut self, func: FuncId, r: &VarRef) -> Option<u32> {
        let base = self.base_loc(func, r)?;
        self.uf.ensure(base.0);
        let mut c = self.uf.find(base.0);
        for _ in 0..Self::deref_count(r) {
            c = self.pointee(c);
        }
        Some(self.pointee(c)) // value of a pointer = its pointee class
    }

    /// Class holding the operand's pointer value (pointee class).
    fn operand_class(&mut self, func: FuncId, op: &Operand) -> Option<u32> {
        match op {
            Operand::Ref(r) => self.value_class(func, r),
            Operand::AddrOf(r) => {
                let base = self.base_loc(func, r)?;
                self.uf.ensure(base.0);
                let mut c = self.uf.find(base.0);
                for _ in 0..Self::deref_count(r) {
                    c = self.pointee(c);
                }
                Some(c)
            }
            Operand::Func(f) => {
                let l = self.locs.function(self.ir, *f);
                self.uf.ensure(l.0);
                Some(self.uf.find(l.0))
            }
            Operand::Str(_) => {
                let l = self.locs.strlit();
                self.uf.ensure(l.0);
                Some(self.uf.find(l.0))
            }
            Operand::Const(_) => None,
        }
    }

    /// `lhs = <class>`: unify the lhs's pointee class with `rhs_class`.
    fn bind(&mut self, func: FuncId, lhs: &VarRef, rhs_class: u32) {
        let Some(base) = self.base_loc(func, lhs) else {
            return;
        };
        self.uf.ensure(base.0);
        let mut c = self.uf.find(base.0);
        for _ in 0..Self::deref_count(lhs) {
            c = self.pointee(c);
        }
        let p = self.pointee(c);
        self.join(p, rhs_class);
    }

    fn stmt(&mut self, func: FuncId, b: &BasicStmt) {
        match b {
            BasicStmt::Copy { lhs, rhs } => {
                if let Some(rc) = self.operand_class(func, rhs) {
                    self.bind(func, lhs, rc);
                }
            }
            BasicStmt::PtrArith { lhs, ptr, .. } => {
                if let Some(rc) = self.value_class(func, &ptr.clone()) {
                    self.bind(func, lhs, rc);
                }
            }
            BasicStmt::Alloc { lhs, .. } => {
                let heap = self.locs.heap();
                self.uf.ensure(heap.0);
                let hc = self.uf.find(heap.0);
                self.bind(func, lhs, hc);
            }
            BasicStmt::Call {
                lhs,
                target: CallTarget::Direct(callee),
                args,
                ..
            } => {
                self.call(func, *callee, lhs.as_ref(), args);
            }
            // Indirect calls are handled in the second pass.
            BasicStmt::Call { .. } => {}
            BasicStmt::Return(Some(v))
                if self
                    .ir
                    .function(func)
                    .ret
                    .carries_pointers(&self.ir.structs) =>
            {
                let ret = self.locs.ret(self.ir, func);
                self.uf.ensure(ret.0);
                if let Some(vc) = self.operand_class(func, v) {
                    let rp = {
                        let c = self.uf.find(ret.0);
                        self.pointee(c)
                    };
                    self.join(rp, vc);
                }
            }
            _ => {}
        }
    }

    fn call(&mut self, func: FuncId, callee: FuncId, lhs: Option<&VarRef>, args: &[Operand]) {
        if !self.ir.function(callee).is_defined() {
            if let Some(ExternEffect::ReturnsHeap) = extern_effect(&self.ir.function(callee).name) {
                if let Some(lhs) = lhs {
                    let heap = self.locs.heap();
                    self.uf.ensure(heap.0);
                    let hc = self.uf.find(heap.0);
                    self.bind(func, lhs, hc);
                }
            }
            return;
        }
        let n = self.ir.function(callee).n_params;
        for (i, arg) in args.iter().enumerate().take(n) {
            let formal = self
                .locs
                .var(self.ir, callee, pta_simple::IrVarId(i as u32));
            self.uf.ensure(formal.0);
            if let Some(ac) = self.operand_class(func, &arg.clone()) {
                let fc = self.uf.find(formal.0);
                let fp = self.pointee(fc);
                self.join(fp, ac);
            }
        }
        if let Some(lhs) = lhs {
            if self
                .ir
                .function(callee)
                .ret
                .carries_pointers(&self.ir.structs)
            {
                let ret = self.locs.ret(self.ir, callee);
                self.uf.ensure(ret.0);
                let rc = self.uf.find(ret.0);
                let rp = self.pointee(rc);
                self.bind(func, lhs, rp);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(src: &str) -> (IrProgram, SteensgaardResult) {
        let ir = pta_simple::compile(src).expect("compile ok");
        let r = steensgaard(&ir).expect("steensgaard ok");
        (ir, r)
    }

    fn targets(ir: &IrProgram, r: &SteensgaardResult, func: &str, var: &str) -> Vec<String> {
        let (fid, f) = ir.function_by_name(func).unwrap();
        let vi = f.vars.iter().position(|v| v.name == var);
        let src = match vi {
            Some(vi) => r.locs.lookup(
                &crate::location::LocBase::Var(fid, pta_simple::IrVarId(vi as u32)),
                &[],
            ),
            None => {
                let gi = ir.globals.iter().position(|g| g.name == var).unwrap();
                r.locs.lookup(
                    &crate::location::LocBase::Global(pta_cfront::ast::GlobalId(gi as u32)),
                    &[],
                )
            }
        };
        match src {
            Some(s) => {
                let mut names = r.target_names(s);
                names.retain(|n| !n.starts_with("$steens"));
                names
            }
            None => vec![],
        }
    }

    #[test]
    fn unification_merges_assigned_targets() {
        let (ir, r) = run("int x, y; int main(void){ int *p; p = &x; p = &y; return 0; }");
        // x and y end up in the same class → both are targets.
        let t = targets(&ir, &r, "main", "p");
        assert!(t.contains(&"x".to_string()), "got {t:?}");
        assert!(t.contains(&"y".to_string()), "got {t:?}");
    }

    #[test]
    fn unification_is_coarser_than_andersen() {
        // q = &x; p = q; p = &y — Steensgaard unifies pts(p) and pts(q),
        // so q also "points to" y; Andersen would keep q at {x}.
        let (ir, r) =
            run("int x, y; int main(void){ int *p; int *q; q = &x; p = q; p = &y; return 0; }");
        let tq = targets(&ir, &r, "main", "q");
        assert!(tq.contains(&"x".to_string()), "got {tq:?}");
        assert!(tq.contains(&"y".to_string()), "got {tq:?}");
    }

    #[test]
    fn interprocedural_unification() {
        let (ir, r) = run("int x;
             void set(int **p, int *v) { *p = v; }
             int main(void){ int *a; set(&a, &x); return 0; }");
        let ta = targets(&ir, &r, "main", "a");
        assert!(ta.contains(&"x".to_string()), "got {ta:?}");
    }

    #[test]
    fn class_count_is_finite_and_positive() {
        let (_, r) = run("int x; int main(void){ int *p; p = &x; return 0; }");
        assert!(r.class_count() > 0);
    }
}
