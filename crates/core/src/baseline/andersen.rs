//! Andersen-style flow-insensitive, inclusion-based points-to analysis.
//!
//! One global points-to set; every assignment only *generates* subset
//! constraints (no kills, everything possible); iterate to a fixed
//! point. Context- and flow-insensitive, field-sensitive through the
//! same location abstraction as the main analysis.

use crate::analysis::AnalysisError;
use crate::baseline::insensitive::ptr_leaves;
use crate::location::{LocId, LocationTable};
use crate::lvalue::RefEnv;
use crate::points_to_set::{Def, PtSet};
use pta_cfront::ast::FuncId;
use pta_cfront::builtins::{extern_effect, ExternEffect};
use pta_simple::{BasicStmt, CallTarget, IrProgram, Operand};

/// Result of the Andersen-style baseline.
#[derive(Debug)]
pub struct AndersenResult {
    /// Locations created.
    pub locs: LocationTable,
    /// The single, global points-to solution (all pairs possible).
    pub solution: PtSet,
    /// Fixed-point rounds over the whole program.
    pub rounds: usize,
}

impl AndersenResult {
    /// Target names of a location, NULL excluded, sorted.
    pub fn target_names(&self, src: LocId) -> Vec<String> {
        let mut v: Vec<String> = self
            .solution
            .targets(src)
            .filter(|(t, _)| !self.locs.is_null(*t))
            .map(|(t, _)| self.locs.name(t).to_owned())
            .collect();
        v.sort();
        v
    }
}

/// Runs the Andersen-style baseline.
///
/// # Errors
///
/// Returns [`AnalysisError::StepBudget`] if the fixed point does not
/// settle within a generous bound.
pub fn andersen(ir: &IrProgram) -> Result<AndersenResult, AnalysisError> {
    andersen_budgeted(ir, None)
}

/// [`andersen`] with an optional wall-clock deadline, checked once per
/// fixed-point round. Used by the degradation ladder so a fallback rung
/// cannot itself hang.
///
/// # Errors
///
/// As [`andersen`], plus [`AnalysisError::Deadline`] on expiry.
pub fn andersen_budgeted(
    ir: &IrProgram,
    deadline: Option<std::time::Duration>,
) -> Result<AndersenResult, AnalysisError> {
    let budget = crate::budget::Budget::new(u64::MAX, deadline, usize::MAX, u32::MAX);
    let mut locs = LocationTable::new();
    locs.null();
    locs.heap();
    locs.strlit();
    let mut solution = PtSet::new();
    let mut rounds = 0usize;
    loop {
        rounds += 1;
        if rounds > 10_000 {
            // Internal fixed-point guard, not a configured budget.
            return Err(AnalysisError::StepBudget {
                limit: 10_000,
                at: crate::baseline::baseline_trip("andersen", ir, None),
            });
        }
        if budget.check_deadline().is_err() {
            return Err(AnalysisError::Deadline {
                limit: deadline.unwrap_or_default(),
                at: crate::baseline::baseline_trip("andersen", ir, None),
            });
        }
        let before = solution.clone();
        for (fid, f) in ir.functions.iter().enumerate() {
            let func = FuncId(fid as u32);
            let Some(body) = &f.body else { continue };
            body.for_each_basic(&mut |b, _| {
                apply_stmt(ir, func, &mut locs, &mut solution, b);
            });
        }
        if solution == before {
            break;
        }
    }
    Ok(AndersenResult {
        locs,
        solution,
        rounds,
    })
}

fn apply_stmt(
    ir: &IrProgram,
    func: FuncId,
    locs: &mut LocationTable,
    sol: &mut PtSet,
    b: &BasicStmt,
) {
    match b {
        BasicStmt::Copy { lhs, rhs } => {
            let (l, r) = {
                let mut env = RefEnv { ir, func, locs };
                (env.l_locations(sol, lhs), env.operand_r_locations(sol, rhs))
            };
            gen_only(sol, &l, &r);
        }
        BasicStmt::PtrArith { lhs, ptr, shift } => {
            let (l, r) = {
                let mut env = RefEnv { ir, func, locs };
                let l = env.l_locations(sol, lhs);
                let base = env.r_locations(sol, ptr);
                let mut r = Vec::new();
                for (t, _) in base {
                    for (t2, _) in env.shift_loc(t, *shift) {
                        r.push((t2, Def::P));
                    }
                }
                (l, r)
            };
            gen_only(sol, &l, &r);
        }
        BasicStmt::Alloc { lhs, .. } => {
            let (l, heap) = {
                let mut env = RefEnv { ir, func, locs };
                (env.l_locations(sol, lhs), env.locs.heap())
            };
            gen_only(sol, &l, &[(heap, Def::P)]);
        }
        BasicStmt::Call {
            lhs, target, args, ..
        } => {
            let callees: Vec<FuncId> = match target {
                CallTarget::Direct(f) => vec![*f],
                CallTarget::Indirect(r) => {
                    let targets = {
                        let mut env = RefEnv { ir, func, locs };
                        env.r_locations(sol, r)
                    };
                    targets
                        .into_iter()
                        .filter_map(|(t, _)| locs.as_function(t))
                        .collect()
                }
            };
            for callee in callees {
                apply_call(ir, func, locs, sol, callee, lhs.as_ref(), args);
            }
        }
        BasicStmt::Return(Some(v)) if ir.function(func).ret.carries_pointers(&ir.structs) => {
            let ret = locs.ret(ir, func);
            let r = {
                let mut env = RefEnv { ir, func, locs };
                env.operand_r_locations(sol, v)
            };
            gen_only(sol, &[(ret, Def::P)], &r);
        }
        _ => {}
    }
}

fn apply_call(
    ir: &IrProgram,
    func: FuncId,
    locs: &mut LocationTable,
    sol: &mut PtSet,
    callee: FuncId,
    lhs: Option<&pta_simple::VarRef>,
    args: &[Operand],
) {
    if !ir.function(callee).is_defined() {
        let name = &ir.function(callee).name;
        match extern_effect(name) {
            Some(ExternEffect::ReturnsHeap) => {
                if let Some(lhs) = lhs {
                    let (l, heap) = {
                        let mut env = RefEnv { ir, func, locs };
                        (env.l_locations(sol, lhs), env.locs.heap())
                    };
                    gen_only(sol, &l, &[(heap, Def::P)]);
                }
            }
            Some(ExternEffect::ReturnsFirstArg) => {
                if let (Some(lhs), Some(arg0)) = (lhs, args.first()) {
                    let (l, r) = {
                        let mut env = RefEnv { ir, func, locs };
                        (
                            env.l_locations(sol, lhs),
                            env.operand_r_locations(sol, arg0),
                        )
                    };
                    gen_only(sol, &l, &r);
                }
            }
            _ => {}
        }
        return;
    }
    // Formal ⊇ actual.
    let n = ir.function(callee).n_params;
    for (i, arg) in args.iter().enumerate().take(n) {
        let formal = locs.var(ir, callee, pta_simple::IrVarId(i as u32));
        for leaf in ptr_leaves(locs, ir, formal) {
            let r = {
                let mut env = RefEnv { ir, func, locs };
                env.operand_r_locations(sol, arg)
            };
            gen_only(sol, &[(leaf, Def::P)], &r);
        }
    }
    // lhs ⊇ return slot.
    if let Some(lhs) = lhs {
        if ir.function(callee).ret.carries_pointers(&ir.structs) {
            let ret = locs.ret(ir, callee);
            let r: Vec<(LocId, Def)> = sol.targets(ret).map(|(t, _)| (t, Def::P)).collect();
            let l = {
                let mut env = RefEnv { ir, func, locs };
                env.l_locations(sol, lhs)
            };
            gen_only(sol, &l, &r);
        }
    }
}

fn gen_only(sol: &mut PtSet, l: &[(LocId, Def)], r: &[(LocId, Def)]) {
    for (p, _) in l {
        for (x, _) in r {
            sol.insert(*p, *x, Def::P);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(src: &str) -> (IrProgram, AndersenResult) {
        let ir = pta_simple::compile(src).expect("compile ok");
        let r = andersen(&ir).expect("andersen ok");
        (ir, r)
    }

    fn targets(ir: &IrProgram, r: &AndersenResult, func: &str, var: &str) -> Vec<String> {
        let (fid, f) = ir.function_by_name(func).unwrap();
        let vi = f.vars.iter().position(|v| v.name == var);
        let src = match vi {
            Some(vi) => r.locs.lookup(
                &crate::location::LocBase::Var(fid, pta_simple::IrVarId(vi as u32)),
                &[],
            ),
            None => {
                let gi = ir.globals.iter().position(|g| g.name == var).unwrap();
                r.locs.lookup(
                    &crate::location::LocBase::Global(pta_cfront::ast::GlobalId(gi as u32)),
                    &[],
                )
            }
        };
        match src {
            Some(s) => r.target_names(s),
            None => vec![],
        }
    }

    #[test]
    fn no_kills_accumulate_all_targets() {
        let (ir, r) = run("int x, y; int main(void){ int *p; p = &x; p = &y; return 0; }");
        assert_eq!(targets(&ir, &r, "main", "p"), vec!["x", "y"]);
    }

    #[test]
    fn flows_through_copies_and_derefs() {
        let (ir, r) = run("int x;
             int main(void){ int *p; int **pp; int *q; p = &x; pp = &p; q = *pp; return 0; }");
        assert_eq!(targets(&ir, &r, "main", "q"), vec!["x"]);
    }

    #[test]
    fn interprocedural_flow_insensitive() {
        let (ir, r) = run("int x, y;
             void set(int **p, int *v) { *p = v; }
             int main(void){ int *a; int *b; set(&a, &x); set(&b, &y); return 0; }");
        // Andersen pollutes across call sites.
        assert_eq!(targets(&ir, &r, "main", "a"), vec!["x", "y"]);
        assert_eq!(targets(&ir, &r, "main", "b"), vec!["x", "y"]);
    }

    #[test]
    fn function_pointers_resolved_iteratively() {
        let (ir, r) = run("int x; int *g;
             void s(void){ g = &x; }
             int main(void){ void (*fp)(void); fp = s; fp(); return 0; }");
        assert_eq!(targets(&ir, &r, "main", "g"), vec!["x"]);
    }
}
