//! Baseline analyses the paper compares against (explicitly in §5/§6,
//! and qualitatively in §7).
//!
//! - [`mod@insensitive`] — the same flow-sensitive intraprocedural rules,
//!   but **context-insensitive** interprocedurally: one merged input and
//!   one output summary per function. This is the ablation for the
//!   paper's central design decision (the invocation graph).
//! - [`mod@andersen`] — a flow-insensitive, inclusion-based analysis
//!   (subset constraints), the standard modern comparator.
//! - [`mod@steensgaard`] — a flow-insensitive, unification-based analysis
//!   (equality constraints), faster and coarser than Andersen.
//! - [`mod@callgraph`] — the naive function-pointer resolution strategies of
//!   §5 (*all functions* and *address-taken*) used by the `livc`
//!   invocation-graph case study.

pub mod andersen;
pub mod callgraph;
pub mod insensitive;
pub mod steensgaard;

pub use andersen::{andersen, andersen_budgeted, AndersenResult};
pub use callgraph::{address_taken_functions, build_ig_with_strategy, CallGraphStrategy};
pub use insensitive::{insensitive, insensitive_budgeted, InsensitiveResult};
pub use steensgaard::{steensgaard, steensgaard_budgeted, SteensgaardResult};

use crate::budget::TripPoint;
use pta_cfront::ast::FuncId;
use pta_simple::IrProgram;

/// Trip context for a budget that ran out inside a baseline analysis
/// (baselines have no invocation graph, so the "path" names the
/// baseline instead).
pub(crate) fn baseline_trip(which: &str, ir: &IrProgram, func: Option<FuncId>) -> TripPoint {
    TripPoint {
        function: func.map_or_else(|| String::from("?"), |f| ir.function(f).name.clone()),
        ig_path: format!("{which} baseline"),
        stmt: None,
    }
}
