//! Context-insensitive, flow-sensitive points-to analysis.
//!
//! Uses the same basic rules as the main analysis (Table 1 / Figure 1)
//! but summarizes each function once: its input is the merge of the
//! states at *all* its call sites, and every call site receives the same
//! output summary. No symbolic renaming is needed: all functions share
//! one location namespace, so caller locals are directly visible.
//!
//! This is the ablation baseline for the invocation-graph design; the
//! paper's Table 4 discussion (most relationships arise at procedure
//! boundaries) predicts a visible precision gap on indirect references.

use crate::analysis::AnalysisError;
use crate::baseline::baseline_trip;
use crate::location::{LocId, LocationTable};
use crate::lvalue::RefEnv;
use crate::points_to_set::{merge_flow, Def, Flow, PtSet};
use pta_cfront::ast::FuncId;
use pta_cfront::builtins::{extern_effect, ExternEffect};
use pta_simple::{BasicStmt, CallTarget, IrProgram, Operand, Stmt, StmtId, VarRef};
use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// Result of the context-insensitive analysis.
#[derive(Debug)]
pub struct InsensitiveResult {
    /// Locations created.
    pub locs: LocationTable,
    /// Merged points-to facts per program point.
    pub per_stmt: BTreeMap<StmtId, PtSet>,
    /// Final output summary per function.
    pub summaries: BTreeMap<FuncId, PtSet>,
    /// Number of function (re-)analyses until the fixed point.
    pub iterations: usize,
    /// The state at the end of `main`.
    pub exit_set: PtSet,
}

/// Runs the context-insensitive baseline.
///
/// # Errors
///
/// Returns [`AnalysisError::NoEntry`] when the program has no `main`.
pub fn insensitive(ir: &IrProgram) -> Result<InsensitiveResult, AnalysisError> {
    insensitive_budgeted(ir, None)
}

/// [`insensitive`] with an optional wall-clock deadline, checked once
/// per function (re-)analysis. Used by the degradation ladder so a
/// fallback rung cannot itself hang.
///
/// # Errors
///
/// As [`insensitive`], plus [`AnalysisError::Deadline`] on expiry.
pub fn insensitive_budgeted(
    ir: &IrProgram,
    deadline: Option<std::time::Duration>,
) -> Result<InsensitiveResult, AnalysisError> {
    let budget = crate::budget::Budget::new(u64::MAX, deadline, usize::MAX, u32::MAX);
    let entry = ir.entry.ok_or(AnalysisError::NoEntry)?;
    let mut e = Engine {
        ir,
        locs: LocationTable::new(),
        inputs: BTreeMap::new(),
        outputs: BTreeMap::new(),
        callers: BTreeMap::new(),
        per_stmt: BTreeMap::new(),
        iterations: 0,
    };
    e.locs.null();
    e.locs.heap();
    e.locs.strlit();

    let mut init = PtSet::new();
    let null = e.locs.null();
    for gi in 0..ir.globals.len() {
        let g = e.locs.global(ir, pta_cfront::ast::GlobalId(gi as u32));
        for leaf in ptr_leaves(&mut e.locs, ir, g) {
            init.insert(leaf, null, Def::D);
        }
    }
    e.null_locals(entry, &mut init, true);
    e.inputs.insert(entry, init);

    let mut work: VecDeque<FuncId> = VecDeque::new();
    work.push_back(entry);
    let mut guard = 0usize;
    while let Some(f) = work.pop_front() {
        guard += 1;
        if guard > 100_000 {
            // Internal fixed-point guard, not a configured budget.
            return Err(AnalysisError::StepBudget {
                limit: 100_000,
                at: baseline_trip("insensitive", ir, Some(f)),
            });
        }
        if budget.check_deadline().is_err() {
            return Err(AnalysisError::Deadline {
                limit: deadline.unwrap_or_default(),
                at: baseline_trip("insensitive", ir, Some(f)),
            });
        }
        e.iterations += 1;
        let input = e.inputs.get(&f).cloned().unwrap_or_default();
        let body = match ir.function(f).body.as_ref() {
            Some(b) => b,
            None => continue,
        };
        let mut touched: BTreeSet<FuncId> = BTreeSet::new();
        let out = e.stmt(f, body, Some(input), &mut touched)?;
        let summary = merge_flow(out.normal, out.ret).unwrap_or_default();
        let old = e.outputs.get(&f);
        let changed = old != Some(&summary);
        if changed {
            let merged = match old {
                Some(o) => o.merge(&summary),
                None => summary,
            };
            e.outputs.insert(f, merged);
            // Re-analyze callers: their call-site outputs changed.
            if let Some(cs) = e.callers.get(&f) {
                for c in cs.clone() {
                    if !work.contains(&c) {
                        work.push_back(c);
                    }
                }
            }
        }
        for g in touched {
            if !work.contains(&g) {
                work.push_back(g);
            }
        }
    }

    let exit_set = e.outputs.get(&entry).cloned().unwrap_or_default();
    Ok(InsensitiveResult {
        locs: e.locs,
        per_stmt: e.per_stmt,
        summaries: e.outputs,
        iterations: e.iterations,
        exit_set,
    })
}

struct Engine<'p> {
    ir: &'p IrProgram,
    locs: LocationTable,
    inputs: BTreeMap<FuncId, PtSet>,
    outputs: BTreeMap<FuncId, PtSet>,
    callers: BTreeMap<FuncId, BTreeSet<FuncId>>,
    per_stmt: BTreeMap<StmtId, PtSet>,
    iterations: usize,
}

#[derive(Default)]
struct Out {
    normal: Flow,
    brk: Flow,
    cont: Flow,
    ret: Flow,
}

impl<'p> Engine<'p> {
    fn env(&mut self, func: FuncId) -> RefEnv<'_> {
        RefEnv {
            ir: self.ir,
            func,
            locs: &mut self.locs,
        }
    }

    fn record(&mut self, id: StmtId, s: &PtSet) {
        match self.per_stmt.entry(id) {
            std::collections::btree_map::Entry::Vacant(e) => {
                e.insert(s.clone());
            }
            std::collections::btree_map::Entry::Occupied(mut e) => {
                let merged = e.get().merge(s);
                e.insert(merged);
            }
        }
    }

    fn null_locals(&mut self, func: FuncId, set: &mut PtSet, include_params: bool) {
        let ir = self.ir;
        let null = self.locs.null();
        let f = ir.function(func);
        for (i, v) in f.vars.iter().enumerate() {
            if !include_params && i < f.n_params {
                continue;
            }
            if !v.ty.carries_pointers(&ir.structs) {
                continue;
            }
            let root = self.locs.var(ir, func, pta_simple::IrVarId(i as u32));
            for leaf in ptr_leaves(&mut self.locs, ir, root) {
                set.insert(leaf, null, Def::D);
            }
        }
    }

    fn assign(&mut self, input: PtSet, l: &[(LocId, Def)], r: &[(LocId, Def)]) -> PtSet {
        let mut out = input;
        for (p, d) in l {
            match d {
                Def::D if !self.locs.is_summary(*p) => out.kill_from(*p),
                _ => out.demote_from(*p),
            }
        }
        for (p, d1) in l {
            let d1 = if self.locs.is_summary(*p) {
                Def::P
            } else {
                *d1
            };
            for (x, d2) in r {
                out.insert(*p, *x, d1.and(*d2));
            }
        }
        out
    }

    fn is_ptr_lhs(&self, func: FuncId, lhs: &VarRef) -> bool {
        // Coarse: resolve the static type through the IR (same logic as
        // the main analysis, simplified to "unknown = pointer").
        crate::baseline::insensitive::ref_is_pointerish(self.ir, func, lhs)
    }

    fn stmt(
        &mut self,
        func: FuncId,
        s: &Stmt,
        input: Flow,
        touched: &mut BTreeSet<FuncId>,
    ) -> Result<Out, AnalysisError> {
        let Some(input) = input else {
            return Ok(Out::default());
        };
        match s {
            Stmt::Basic(b, id) => self.basic(func, b, *id, input, touched),
            Stmt::Seq(v) => {
                let mut out = Out {
                    normal: Some(input),
                    ..Default::default()
                };
                for s in v {
                    let mut nxt = self.stmt(func, s, out.normal.take(), touched)?;
                    out.normal = nxt.normal.take();
                    out.brk = merge_flow(out.brk.take(), nxt.brk.take());
                    out.cont = merge_flow(out.cont.take(), nxt.cont.take());
                    out.ret = merge_flow(out.ret.take(), nxt.ret.take());
                }
                Ok(out)
            }
            Stmt::If {
                then_s, else_s, id, ..
            } => {
                self.record(*id, &input);
                let mut t = self.stmt(func, then_s, Some(input.clone()), touched)?;
                let mut e = match else_s {
                    Some(e) => self.stmt(func, e, Some(input), touched)?,
                    None => Out {
                        normal: Some(input),
                        ..Default::default()
                    },
                };
                Ok(Out {
                    normal: merge_flow(t.normal.take(), e.normal.take()),
                    brk: merge_flow(t.brk.take(), e.brk.take()),
                    cont: merge_flow(t.cont.take(), e.cont.take()),
                    ret: merge_flow(t.ret.take(), e.ret.take()),
                })
            }
            Stmt::While {
                pre_cond, body, id, ..
            } => {
                let mut inv = Some(input);
                let mut brk = None;
                let mut ret = None;
                loop {
                    let mut pre = self.stmt(func, pre_cond, inv.clone(), touched)?;
                    let test = pre.normal.take();
                    if let Some(t) = &test {
                        self.record(*id, t);
                    }
                    let mut b = self.stmt(func, body, test.clone(), touched)?;
                    let back = merge_flow(b.normal.take(), b.cont.take());
                    brk = merge_flow(brk, b.brk.take());
                    ret = merge_flow(ret, merge_flow(pre.ret.take(), b.ret.take()));
                    let ni = merge_flow(inv.clone(), back);
                    if ni == inv {
                        return Ok(Out {
                            normal: merge_flow(test, brk),
                            brk: None,
                            cont: None,
                            ret,
                        });
                    }
                    inv = ni;
                }
            }
            Stmt::DoWhile {
                body, pre_cond, id, ..
            } => {
                let mut inv = Some(input);
                let mut brk = None;
                let mut ret = None;
                loop {
                    let mut b = self.stmt(func, body, inv.clone(), touched)?;
                    let mut pre = self.stmt(
                        func,
                        pre_cond,
                        merge_flow(b.normal.take(), b.cont.take()),
                        touched,
                    )?;
                    let test = pre.normal.take();
                    if let Some(t) = &test {
                        self.record(*id, t);
                    }
                    brk = merge_flow(brk, b.brk.take());
                    ret = merge_flow(ret, merge_flow(b.ret.take(), pre.ret.take()));
                    let ni = merge_flow(inv.clone(), test.clone());
                    if ni == inv {
                        return Ok(Out {
                            normal: merge_flow(test, brk),
                            brk: None,
                            cont: None,
                            ret,
                        });
                    }
                    inv = ni;
                }
            }
            Stmt::For {
                init,
                pre_cond,
                step,
                body,
                id,
                ..
            } => {
                let mut i = self.stmt(func, init, Some(input), touched)?;
                let mut inv = i.normal.take();
                let mut brk = None;
                let mut ret = i.ret.take();
                loop {
                    let mut pre = self.stmt(func, pre_cond, inv.clone(), touched)?;
                    let test = pre.normal.take();
                    if let Some(t) = &test {
                        self.record(*id, t);
                    }
                    let mut b = self.stmt(func, body, test.clone(), touched)?;
                    let mut st = self.stmt(
                        func,
                        step,
                        merge_flow(b.normal.take(), b.cont.take()),
                        touched,
                    )?;
                    brk = merge_flow(brk, b.brk.take());
                    for r in [pre.ret.take(), b.ret.take(), st.ret.take()] {
                        ret = merge_flow(ret, r);
                    }
                    let ni = merge_flow(inv.clone(), st.normal.take());
                    if ni == inv {
                        return Ok(Out {
                            normal: merge_flow(test, brk),
                            brk: None,
                            cont: None,
                            ret,
                        });
                    }
                    inv = ni;
                }
            }
            Stmt::Switch {
                arms,
                has_default,
                id,
                ..
            } => {
                self.record(*id, &input);
                let mut exit = if *has_default {
                    None
                } else {
                    Some(input.clone())
                };
                let mut fall: Flow = None;
                let mut cont = None;
                let mut ret = None;
                for arm in arms {
                    let arm_in = merge_flow(Some(input.clone()), fall.take());
                    let mut o = self.stmt(func, &arm.body, arm_in, touched)?;
                    exit = merge_flow(exit, o.brk.take());
                    fall = o.normal.take();
                    cont = merge_flow(cont, o.cont.take());
                    ret = merge_flow(ret, o.ret.take());
                }
                exit = merge_flow(exit, fall);
                Ok(Out {
                    normal: exit,
                    brk: None,
                    cont,
                    ret,
                })
            }
            Stmt::Break(id) => {
                self.record(*id, &input);
                Ok(Out {
                    brk: Some(input),
                    ..Default::default()
                })
            }
            Stmt::Continue(id) => {
                self.record(*id, &input);
                Ok(Out {
                    cont: Some(input),
                    ..Default::default()
                })
            }
        }
    }

    fn basic(
        &mut self,
        func: FuncId,
        b: &BasicStmt,
        id: StmtId,
        input: PtSet,
        touched: &mut BTreeSet<FuncId>,
    ) -> Result<Out, AnalysisError> {
        self.record(id, &input);
        let normal = match b {
            BasicStmt::Copy { lhs, rhs } => {
                if self.is_ptr_lhs(func, lhs) {
                    let (l, r) = {
                        let mut env = self.env(func);
                        (
                            env.l_locations(&input, lhs),
                            env.operand_r_locations(&input, rhs),
                        )
                    };
                    Some(self.assign(input, &l, &r))
                } else {
                    Some(input)
                }
            }
            BasicStmt::Unary { .. } | BasicStmt::Binary { .. } => Some(input),
            BasicStmt::PtrArith { lhs, ptr, shift } => {
                let (l, r) = {
                    let mut env = self.env(func);
                    let l = env.l_locations(&input, lhs);
                    let base = env.r_locations(&input, ptr);
                    let mut r = Vec::new();
                    for (t, d) in base {
                        for (t2, ds) in env.shift_loc(t, *shift) {
                            crate::intra::push_pair(&mut r, t2, d.and(ds));
                        }
                    }
                    (l, r)
                };
                Some(self.assign(input, &l, &r))
            }
            BasicStmt::Alloc { lhs, .. } => {
                let (l, r) = {
                    let mut env = self.env(func);
                    let l = env.l_locations(&input, lhs);
                    let heap = env.locs.heap();
                    (l, vec![(heap, Def::P)])
                };
                Some(self.assign(input, &l, &r))
            }
            BasicStmt::Call {
                lhs, target, args, ..
            } => {
                return Ok(Out {
                    normal: self.call(func, target, lhs.as_ref(), args, input, touched)?,
                    ..Default::default()
                });
            }
            BasicStmt::Return(v) => {
                let mut out = input;
                if let Some(v) = v {
                    let carries = self
                        .ir
                        .function(func)
                        .ret
                        .carries_pointers(&self.ir.structs);
                    if carries {
                        let ret = self.locs.ret(self.ir, func);
                        let r = {
                            let mut env = self.env(func);
                            env.operand_r_locations(&out, v)
                        };
                        out = self.assign(out, &[(ret, Def::D)], &r);
                    }
                }
                return Ok(Out {
                    ret: Some(out),
                    ..Default::default()
                });
            }
        };
        Ok(Out {
            normal,
            ..Default::default()
        })
    }

    fn call(
        &mut self,
        func: FuncId,
        target: &CallTarget,
        lhs: Option<&VarRef>,
        args: &[Operand],
        input: PtSet,
        touched: &mut BTreeSet<FuncId>,
    ) -> Result<Flow, AnalysisError> {
        let callees: Vec<FuncId> = match target {
            CallTarget::Direct(f) => vec![*f],
            CallTarget::Indirect(r) => {
                let targets = {
                    let mut env = self.env(func);
                    env.r_locations(&input, r)
                };
                let mut fs = Vec::new();
                for (t, _) in targets {
                    if let Some(f) = self.locs.as_function(t) {
                        if !fs.contains(&f) {
                            fs.push(f);
                        }
                    }
                }
                fs
            }
        };
        if callees.is_empty() {
            return Ok(Some(input));
        }
        let mut out: Flow = None;
        for callee in callees {
            let o = if self.ir.function(callee).is_defined() {
                self.call_defined(func, callee, lhs, args, &input, touched)?
            } else {
                self.extern_call(func, callee, lhs, args, input.clone())?
            };
            out = merge_flow(out, o);
        }
        Ok(out)
    }

    fn call_defined(
        &mut self,
        func: FuncId,
        callee: FuncId,
        lhs: Option<&VarRef>,
        args: &[Operand],
        input: &PtSet,
        touched: &mut BTreeSet<FuncId>,
    ) -> Result<Flow, AnalysisError> {
        self.callers.entry(callee).or_default().insert(func);
        // Contribute to the callee's merged input: the caller state with
        // formals bound to the actuals' targets (shared namespace — no
        // renaming).
        let mut contrib = input.clone();
        let n = self.ir.function(callee).n_params;
        for i in 0..n {
            let formal = self
                .locs
                .var(self.ir, callee, pta_simple::IrVarId(i as u32));
            let leaves = ptr_leaves(&mut self.locs, self.ir, formal);
            for leaf in leaves {
                let r = match args.get(i) {
                    Some(op) => {
                        let mut env = self.env(func);
                        env.operand_r_locations(input, op)
                    }
                    None => Vec::new(),
                };
                // Weak bind: many call sites merge here anyway.
                contrib.demote_from(leaf);
                for (t, _) in r {
                    contrib.insert(leaf, t, Def::P);
                }
            }
        }
        self.null_locals(callee, &mut contrib, false);
        let entry = self.inputs.entry(callee).or_default();
        let merged = entry.merge(&contrib);
        if &merged != entry {
            *entry = merged;
            touched.insert(callee);
        }
        // A callee with no summary yet must be scheduled even when its
        // merged input did not change (e.g. it takes no pointers).
        if !self.outputs.contains_key(&callee) {
            touched.insert(callee);
        }
        // The call-site output is the callee's (current) summary.
        let Some(summary) = self.outputs.get(&callee).cloned() else {
            return Ok(None); // ⊥ until a summary exists
        };
        let mut out = input.merge(&summary);
        if let Some(lhs) = lhs {
            let ret = self.locs.ret(self.ir, callee);
            let r: Vec<(LocId, Def)> = summary.targets(ret).map(|(t, _)| (t, Def::P)).collect();
            let l = {
                let mut env = self.env(func);
                env.l_locations(&out, lhs)
            };
            out = self.assign(out, &l, &r);
        }
        Ok(Some(out))
    }

    fn extern_call(
        &mut self,
        func: FuncId,
        callee: FuncId,
        lhs: Option<&VarRef>,
        args: &[Operand],
        input: PtSet,
    ) -> Result<Flow, AnalysisError> {
        let name = self.ir.function(callee).name.clone();
        let effect = extern_effect(&name).unwrap_or(ExternEffect::None);
        let r = match effect {
            ExternEffect::NoReturn => return Ok(None),
            ExternEffect::ReturnsHeap => Some(vec![(self.locs.heap(), Def::P)]),
            ExternEffect::ReturnsFirstArg => Some(match args.first() {
                Some(op) => {
                    let mut env = self.env(func);
                    env.operand_r_locations(&input, op)
                }
                None => Vec::new(),
            }),
            _ => None,
        };
        match (lhs, r) {
            (Some(lhs), Some(r)) if self.is_ptr_lhs(func, lhs) => {
                let l = {
                    let mut env = self.env(func);
                    env.l_locations(&input, lhs)
                };
                Ok(Some(self.assign(input, &l, &r)))
            }
            _ => Ok(Some(input)),
        }
    }
}

/// Type-directed pointer-assignment check shared with the engines.
pub(crate) fn ref_is_pointerish(ir: &IrProgram, func: FuncId, lhs: &VarRef) -> bool {
    use pta_cfront::types::Type;
    use pta_simple::{IrProj, VarBase};
    let path_ty = |path: &pta_simple::VarPath| -> Option<Type> {
        let mut ty = match path.base {
            VarBase::Global(g) => ir.global(g).ty.clone(),
            VarBase::Var(v) => ir.function(func).var(v).ty.clone(),
        };
        for p in &path.projs {
            ty = match p {
                IrProj::Field(f) => match ty {
                    Type::Struct(sid) => ir.structs.def(sid).field(f)?.ty.clone(),
                    _ => return None,
                },
                IrProj::Index(_) => ty.elem()?.clone(),
            };
        }
        Some(ty)
    };
    let ty = match lhs {
        VarRef::Path(p) => path_ty(p),
        VarRef::Deref { path, after, .. } => {
            let pt = path_ty(path);
            match pt.map(|t| t.decay()) {
                Some(Type::Pointer(inner)) => {
                    let mut ty = *inner;
                    let mut ok = true;
                    for p in after {
                        ty = match p {
                            IrProj::Field(f) => match ty {
                                Type::Struct(sid) => match ir.structs.def(sid).field(f) {
                                    Some(fl) => fl.ty.clone(),
                                    None => {
                                        ok = false;
                                        break;
                                    }
                                },
                                _ => {
                                    ok = false;
                                    break;
                                }
                            },
                            IrProj::Index(_) => match ty.elem() {
                                Some(e) => e.clone(),
                                None => {
                                    ok = false;
                                    break;
                                }
                            },
                        };
                    }
                    if ok {
                        Some(ty)
                    } else {
                        None
                    }
                }
                _ => None,
            }
        }
    };
    match ty {
        Some(t) => matches!(t.decay(), pta_cfront::types::Type::Pointer(_)),
        None => true,
    }
}

/// Pointer-leaf enumeration shared with the engines (a free-function
/// variant of `Analyzer::ptr_leaves`).
pub(crate) fn ptr_leaves(locs: &mut LocationTable, ir: &IrProgram, loc: LocId) -> Vec<LocId> {
    use crate::location::Proj;
    use pta_cfront::types::Type;
    let mut out = Vec::new();
    let mut stack = vec![(loc, 0usize)];
    while let Some((l, depth)) = stack.pop() {
        if depth > 12 {
            continue;
        }
        let Some(ty) = locs.ty(l).cloned() else {
            if locs.is_heap(l) {
                out.push(l);
            }
            continue;
        };
        match ty {
            Type::Pointer(_) | Type::Func(_) => out.push(l),
            Type::Struct(sid) => {
                let fields = ir.structs.def(sid).fields.clone();
                for f in fields {
                    if !f.ty.carries_pointers(&ir.structs) {
                        continue;
                    }
                    if let Some(n) = locs.project(l, Proj::Field(f.name.clone()), ir) {
                        stack.push((n, depth + 1));
                    }
                }
            }
            Type::Array(elem, _) if elem.carries_pointers(&ir.structs) => {
                if let Some(h) = locs.project(l, Proj::Head, ir) {
                    stack.push((h, depth + 1));
                }
                if let Some(t) = locs.project(l, Proj::Tail, ir) {
                    stack.push((t, depth + 1));
                }
            }
            _ => {}
        }
    }
    out.sort_unstable();
    out.dedup();
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(src: &str) -> (IrProgram, InsensitiveResult) {
        let ir = pta_simple::compile(src).expect("compile ok");
        let r = insensitive(&ir).expect("analysis ok");
        (ir, r)
    }

    fn targets(ir: &IrProgram, r: &InsensitiveResult, func: &str, var: &str) -> Vec<String> {
        let (fid, f) = ir.function_by_name(func).unwrap();
        let set = r.summaries.get(&fid).cloned().unwrap_or_default();
        let vi = f.vars.iter().position(|v| v.name == var);
        let src = match vi {
            Some(vi) => r.locs.lookup(
                &crate::location::LocBase::Var(fid, pta_simple::IrVarId(vi as u32)),
                &[],
            ),
            None => {
                let gi = ir.globals.iter().position(|g| g.name == var).unwrap();
                r.locs.lookup(
                    &crate::location::LocBase::Global(pta_cfront::ast::GlobalId(gi as u32)),
                    &[],
                )
            }
        };
        let Some(src) = src else { return vec![] };
        let mut v: Vec<String> = set
            .targets(src)
            .filter(|(t, _)| !r.locs.is_null(*t))
            .map(|(t, _)| r.locs.name(t).to_owned())
            .collect();
        v.sort();
        v
    }

    #[test]
    fn intraprocedural_facts_match_main_analysis() {
        let (ir, r) = run("int x, y; int main(void){ int *p; p = &x; p = &y; return *p; }");
        assert_eq!(targets(&ir, &r, "main", "p"), vec!["y"]);
    }

    #[test]
    fn contexts_are_merged_imprecisely() {
        // The context-insensitivity ablation: both call sites pollute
        // each other.
        let (ir, r) = run("int x, y;
             void set(int **p, int *v) { *p = v; }
             int main(void){ int *a; int *b; set(&a, &x); set(&b, &y); return 0; }");
        let a = targets(&ir, &r, "main", "a");
        assert!(a.contains(&"x".to_string()), "got {a:?}");
        assert!(
            a.contains(&"y".to_string()),
            "a should be polluted, got {a:?}"
        );
    }

    #[test]
    fn converges_on_recursion() {
        let (ir, r) = run("int x;
             void f(int **pp, int n){ if (n) { *pp = &x; f(pp, n-1); } }
             int main(void){ int *p; f(&p, 3); return 0; }");
        let p = targets(&ir, &r, "main", "p");
        assert!(p.contains(&"x".to_string()), "got {p:?}");
    }

    #[test]
    fn handles_function_pointers() {
        let (ir, r) = run("int x; int *g;
             void s(void){ g = &x; }
             int main(void){ void (*fp)(void); fp = s; fp(); return 0; }");
        assert_eq!(targets(&ir, &r, "main", "g"), vec!["x"]);
    }
}
