//! Naive function-pointer resolution strategies (§5 of the paper).
//!
//! The paper's `livc` case study compares the invocation graph produced
//! by the points-to-driven resolution against two naive strategies:
//! bind every indirect call to *all* functions, or to every function
//! whose *address is taken*. Both blow up the graph (619 and 589 nodes
//! vs 203 for livc in the paper).

use crate::analysis::AnalysisError;
use crate::invocation_graph::{IgKind, InvocationGraph};
use pta_cfront::ast::FuncId;
use pta_simple::{BasicStmt, CallTarget, CondExpr, IrProgram, Operand, Stmt};

/// How to bind indirect call sites when building the invocation graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CallGraphStrategy {
    /// Every defined function is invocable from every indirect call.
    AllFunctions,
    /// Every defined function whose address is taken somewhere.
    AddressTaken,
}

/// All defined functions whose address is taken (used as an operand
/// anywhere, including hoisted global initializers).
pub fn address_taken_functions(ir: &IrProgram) -> Vec<FuncId> {
    let mut out: Vec<FuncId> = Vec::new();
    let visit_op = |op: &Operand, out: &mut Vec<FuncId>| {
        if let Operand::Func(f) = op {
            if ir.function(*f).is_defined() && !out.contains(f) {
                out.push(*f);
            }
        }
    };
    for f in &ir.functions {
        let Some(body) = &f.body else { continue };
        visit_stmt_operands(body, &mut |op| visit_op(op, &mut out));
    }
    out.sort_unstable();
    out
}

fn visit_stmt_operands(s: &Stmt, f: &mut impl FnMut(&Operand)) {
    fn on_basic(b: &BasicStmt, f: &mut impl FnMut(&Operand)) {
        match b {
            BasicStmt::Copy { rhs, .. } => f(rhs),
            BasicStmt::Unary { rhs, .. } => f(rhs),
            BasicStmt::Binary { a, b, .. } => {
                f(a);
                f(b);
            }
            BasicStmt::Alloc { size, .. } => f(size),
            BasicStmt::Call { args, .. } => {
                for a in args {
                    f(a);
                }
            }
            BasicStmt::Return(Some(v)) => f(v),
            _ => {}
        }
    }
    fn on_cond(c: &CondExpr, f: &mut impl FnMut(&Operand)) {
        for op in c.operands() {
            f(op);
        }
    }
    match s {
        Stmt::Basic(b, _) => on_basic(b, f),
        Stmt::Seq(v) => v.iter().for_each(|s| visit_stmt_operands(s, f)),
        Stmt::If {
            cond,
            then_s,
            else_s,
            ..
        } => {
            on_cond(cond, f);
            visit_stmt_operands(then_s, f);
            if let Some(e) = else_s {
                visit_stmt_operands(e, f);
            }
        }
        Stmt::While {
            pre_cond,
            cond,
            body,
            ..
        } => {
            visit_stmt_operands(pre_cond, f);
            on_cond(cond, f);
            visit_stmt_operands(body, f);
        }
        Stmt::DoWhile {
            body,
            pre_cond,
            cond,
            ..
        } => {
            visit_stmt_operands(body, f);
            visit_stmt_operands(pre_cond, f);
            on_cond(cond, f);
        }
        Stmt::For {
            init,
            pre_cond,
            cond,
            step,
            body,
            ..
        } => {
            visit_stmt_operands(init, f);
            visit_stmt_operands(pre_cond, f);
            on_cond(cond, f);
            visit_stmt_operands(step, f);
            visit_stmt_operands(body, f);
        }
        Stmt::Switch {
            scrutinee, arms, ..
        } => {
            f(scrutinee);
            for a in arms {
                visit_stmt_operands(&a.body, f);
            }
        }
        Stmt::Break(_) | Stmt::Continue(_) => {}
    }
}

/// Builds an invocation graph where indirect call sites are bound per
/// the given naive strategy (§5's comparison baselines).
///
/// # Errors
///
/// Returns [`AnalysisError::NoEntry`] for a `main`-less program and
/// [`AnalysisError::IgBudget`] when the graph exceeds `max_nodes`.
pub fn build_ig_with_strategy(
    ir: &IrProgram,
    strategy: CallGraphStrategy,
    max_nodes: usize,
) -> Result<InvocationGraph, AnalysisError> {
    let entry = ir.entry.ok_or(AnalysisError::NoEntry)?;
    let indirect_targets: Vec<FuncId> = match strategy {
        CallGraphStrategy::AllFunctions => ir.defined_functions().map(|(id, _)| id).collect(),
        CallGraphStrategy::AddressTaken => address_taken_functions(ir),
    };
    let overflow = |o: crate::invocation_graph::IgOverflow| o.into_error(ir, None);
    let mut g = InvocationGraph::build(ir, entry, max_nodes).map_err(overflow)?;
    // Expand indirect sites recursively until no node grows.
    let mut changed = true;
    while changed {
        changed = false;
        let node_count = g.len();
        for idx in 0..node_count {
            let id = crate::invocation_graph::IgNodeId(idx as u32);
            if g.node(id).kind == IgKind::Approximate {
                continue;
            }
            let func = g.node(id).func;
            let Some(body) = ir.function(func).body.as_ref() else {
                continue;
            };
            let mut indirect_sites = Vec::new();
            body.for_each_basic(&mut |b, _| {
                if let BasicStmt::Call {
                    target: CallTarget::Indirect(_),
                    call_site,
                    ..
                } = b
                {
                    indirect_sites.push(*call_site);
                }
            });
            for cs in indirect_sites {
                for &callee in &indirect_targets {
                    let before = g.len();
                    let child = g
                        .ensure_child(ir, id, cs, callee, max_nodes)
                        .map_err(overflow)?;
                    if g.len() != before {
                        changed = true;
                        if g.node(child).kind == IgKind::Ordinary {
                            g.expand_direct(ir, child, max_nodes).map_err(overflow)?;
                        }
                    }
                }
            }
        }
    }
    Ok(g)
}

#[cfg(test)]
mod tests {
    use super::*;

    const PROG: &str = "
        int a1(void){ return 1; }
        int a2(void){ return 2; }
        int unused(void){ return 3; }
        int c;
        int main(void){ int (*fp)(void); if (c) fp = a1; else fp = a2; return fp(); }";

    #[test]
    fn address_taken_finds_assigned_functions() {
        let ir = pta_simple::compile(PROG).unwrap();
        let at = address_taken_functions(&ir);
        let names: Vec<&str> = at.iter().map(|f| ir.function(*f).name.as_str()).collect();
        assert_eq!(names, vec!["a1", "a2"]);
    }

    #[test]
    fn all_functions_is_larger_than_address_taken() {
        let ir = pta_simple::compile(PROG).unwrap();
        let all = build_ig_with_strategy(&ir, CallGraphStrategy::AllFunctions, 10_000).unwrap();
        let at = build_ig_with_strategy(&ir, CallGraphStrategy::AddressTaken, 10_000).unwrap();
        // all: main + {a1,a2,unused,main-as-approx…}; address-taken: main + {a1,a2}.
        assert!(all.len() > at.len(), "all={} at={}", all.len(), at.len());
        assert_eq!(at.len(), 3);
    }

    #[test]
    fn all_functions_strategy_can_create_spurious_recursion() {
        let ir = pta_simple::compile(PROG).unwrap();
        let all = build_ig_with_strategy(&ir, CallGraphStrategy::AllFunctions, 10_000).unwrap();
        // main itself is a possible target under AllFunctions → a
        // spurious approximate node appears.
        assert!(all.stats().approximate >= 1);
    }
}
