//! # pta-core — context-sensitive interprocedural points-to analysis
//!
//! A from-scratch implementation of Emami, Ghiya & Hendren,
//! *"Context-Sensitive Interprocedural Points-to Analysis in the
//! Presence of Function Pointers"* (PLDI 1994):
//!
//! - the **points-to abstraction** over abstract stack locations, with
//!   both *definite* and *possible* relationships ([`points_to_set`]);
//! - the **Table 1** L-location/R-location rules and the **Figure 1**
//!   compositional statement rules ([`lvalue`], intra rules);
//! - the **invocation graph** with recursive/approximate node pairs
//!   ([`invocation_graph`]), memoization, and the **Figure 4**
//!   fixed-point protocol;
//! - the **map/unmap** processes with symbolic names for invisible
//!   variables and per-context map information;
//! - **function pointers** handled during the analysis itself
//!   (**Figure 5**), growing the invocation graph incrementally;
//! - baseline analyses for comparison ([`baseline`]) and the statistics
//!   behind Tables 2–6 of the paper ([`stats`]).
//!
//! The simplest entry point runs the entire pipeline from C source:
//!
//! ```
//! let pta = pta_core::run_source(
//!     "int x, y;
//!      void set(int **p, int *v) { *p = v; }
//!      int main(void) { int *q; set(&q, &x); return *q; }",
//! )?;
//! let targets = pta.exit_targets_of("main", "q");
//! assert_eq!(targets, vec![("x".to_string(), pta_core::Def::D)]);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub mod analysis;
pub mod baseline;
pub mod budget;
pub mod dataflow;
pub mod dense;
pub mod fingerprint;
pub mod invocation_graph;
pub mod location;
pub mod lvalue;
pub mod points_to_set;
pub mod query;
pub mod resilient;
pub mod shared;
pub mod stats;
pub mod trace;

mod interproc;
mod intra;
mod map_process;
mod unmap;

pub use analysis::{
    analyze, analyze_recorded, analyze_seeded, analyze_traced, analyze_with, AnalysisConfig,
    AnalysisError, AnalysisResult, Capture, EngineRun, EscapeEvent, EscapeVia, PruneStats,
    WarmPair, WarmSeeds, WarmStart,
};
pub use budget::{Budget, BudgetKind, TripPoint};
pub use dataflow::{
    solve, var_liveness, BitSet, CallEffects, Cfg, Direction, DomainLoc, FnFacts, InitFact,
    NodeKind, ProgramDataflow, Solution, SolveStats, Transfer, VarLivenessResult,
};
pub use fingerprint::SCHEMA_VERSION;
pub use invocation_graph::{
    FragmentNode, IgFragment, IgKind, IgNode, IgNodeId, IgStats, InvocationGraph, MapInfo,
};
pub use location::{LocBase, LocId, LocTable, LocationTable, Proj};
pub use points_to_set::{Def, Flow, PtSet};
pub use query::FactQuery;
pub use resilient::{analyze_resilient, analyze_resilient_traced, Fidelity, ResilientOutcome};
pub use shared::Shared;
pub use trace::{
    render_jsonl, ChromeTraceSink, EventSpec, FuncMetrics, JsonlSink, ServeEvent, TeeSink,
    TraceEvent, TraceMetrics, TraceSink, EVENT_SPECS, SERVE_EVENT_SPECS,
};

use pta_simple::{IrProgram, StmtId};
use std::error::Error;
use std::fmt;

/// Any error from the source-to-analysis pipeline.
#[derive(Debug)]
pub enum PtaError {
    /// Front-end (lex/parse/sema/lowering) failure.
    Frontend(pta_cfront::FrontendError),
    /// Analysis failure.
    Analysis(AnalysisError),
}

impl fmt::Display for PtaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PtaError::Frontend(e) => write!(f, "{e}"),
            PtaError::Analysis(e) => write!(f, "{e}"),
        }
    }
}

impl Error for PtaError {}

impl From<pta_cfront::FrontendError> for PtaError {
    fn from(e: pta_cfront::FrontendError) -> Self {
        PtaError::Frontend(e)
    }
}

impl From<AnalysisError> for PtaError {
    fn from(e: AnalysisError) -> Self {
        PtaError::Analysis(e)
    }
}

/// A program together with its points-to analysis results — the
/// high-level facade most clients (and the examples) use.
#[derive(Debug)]
pub struct Pta {
    /// The program in SIMPLE form.
    pub ir: IrProgram,
    /// The analysis results.
    pub result: AnalysisResult,
}

/// Compiles C source and runs the full context-sensitive analysis.
///
/// # Errors
///
/// Returns a [`PtaError`] for front-end or analysis failures.
pub fn run_source(source: &str) -> Result<Pta, PtaError> {
    run_source_with(source, AnalysisConfig::default())
}

/// [`run_source`] with an explicit configuration.
///
/// # Errors
///
/// Returns a [`PtaError`] for front-end or analysis failures.
pub fn run_source_with(source: &str, config: AnalysisConfig) -> Result<Pta, PtaError> {
    let ir = pta_simple::compile(source)?;
    let result = analyze_with(&ir, config)?;
    Ok(Pta { ir, result })
}

/// Runs the analysis over an already-lowered program.
///
/// # Errors
///
/// Returns a [`PtaError::Analysis`] on analysis failure.
pub fn run_ir(ir: IrProgram) -> Result<Pta, PtaError> {
    let result = analyze(&ir)?;
    Ok(Pta { ir, result })
}

/// What [`run_source_resilient`] returns: the analysed program, the
/// ladder rung that produced the result, and the rungs that failed
/// first (with the budget error that pushed past each one).
pub type ResilientRun = (Pta, Fidelity, Vec<(Fidelity, AnalysisError)>);

/// [`run_source_with`] through the degradation ladder: budget-exhausted
/// runs fall back to cheaper analyses (see [`analyze_resilient`]), so
/// the returned [`Pta`] carries a [`Fidelity`]-tagged result instead of
/// a budget error.
///
/// # Errors
///
/// Returns a [`PtaError`] for front-end failures, non-recoverable
/// analysis failures, or an exhausted ladder.
pub fn run_source_resilient(
    source: &str,
    config: AnalysisConfig,
) -> Result<ResilientRun, PtaError> {
    let ir = pta_simple::compile(source)?;
    let outcome = analyze_resilient(&ir, config)?;
    Ok((
        Pta {
            ir,
            result: outcome.result,
        },
        outcome.fidelity,
        outcome.degradations,
    ))
}

/// [`run_source_resilient`] with a [`TraceSink`] attached: the
/// context-sensitive rung emits structured trace events (see the
/// [`trace`] module and `docs/TRACING.md`), and each ladder transition
/// is reported as a `rung` event. Baseline rungs run uninstrumented.
///
/// # Errors
///
/// Returns a [`PtaError`] for front-end failures, non-recoverable
/// analysis failures, or an exhausted ladder.
pub fn run_source_traced(
    source: &str,
    config: AnalysisConfig,
    sink: &mut dyn TraceSink,
) -> Result<ResilientRun, PtaError> {
    let ir = pta_simple::compile(source)?;
    let outcome = analyze_resilient_traced(&ir, config, sink)?;
    Ok((
        Pta {
            ir,
            result: outcome.result,
        },
        outcome.fidelity,
        outcome.degradations,
    ))
}

impl Pta {
    /// The location id of a named location, scoped to `func` when it is
    /// function-local. Accepts projected names like `s.a`, `buf[0]`,
    /// `a[1..]`, the distinguished `heap`/`strlit`, and symbolic names
    /// like `1_x`.
    pub fn loc_of(&self, func: &str, var: &str) -> Option<LocId> {
        // Try a global root first.
        for (gi, g) in self.ir.globals.iter().enumerate() {
            if g.name == var {
                let base = LocBase::Global(pta_cfront::ast::GlobalId(gi as u32));
                return self.result.locs.lookup(&base, &[]);
            }
        }
        if let Some((fid, f)) = self.ir.function_by_name(func) {
            if let Some(vi) = f.vars.iter().position(|v| v.name == var) {
                let base = LocBase::Var(fid, pta_simple::IrVarId(vi as u32));
                if let Some(id) = self.result.locs.lookup(&base, &[]) {
                    return Some(id);
                }
            }
        }
        // Fall back to a name scan over the interned locations, scoped
        // to `func` where applicable.
        let fid = self.ir.function_by_name(func).map(|(id, _)| id);
        for id in self.result.locs.ids() {
            if self.result.locs.name(id) != var {
                continue;
            }
            let scoped_elsewhere = match self.result.locs.get(id).base {
                LocBase::Var(f, _) | LocBase::Symbolic(f, _) | LocBase::Ret(f) => Some(f) != fid,
                _ => false,
            };
            if !scoped_elsewhere {
                return Some(id);
            }
        }
        None
    }

    /// Target names (with definiteness) of `var` in `func` at the given
    /// program point, NULL excluded, sorted by name.
    pub fn targets_at(&self, stmt: StmtId, func: &str, var: &str) -> Vec<(String, Def)> {
        let Some(src) = self.loc_of(func, var) else {
            return Vec::new();
        };
        let set = self.result.at(stmt);
        self.named_targets(&set, src)
    }

    /// Target names of `var` in the exit set of `main`.
    pub fn exit_targets_of(&self, func: &str, var: &str) -> Vec<(String, Def)> {
        let Some(src) = self.loc_of(func, var) else {
            return Vec::new();
        };
        self.named_targets(&self.result.exit_set, src)
    }

    fn named_targets(&self, set: &PtSet, src: LocId) -> Vec<(String, Def)> {
        let mut v: Vec<(String, Def)> = set
            .targets(src)
            .filter(|(t, _)| !self.result.locs.is_null(*t))
            .map(|(t, d)| (self.result.locs.name(t).to_owned(), d))
            .collect();
        v.sort();
        v
    }

    /// Finds the program point of the `n`-th basic statement (0-based)
    /// of `func` whose printed form contains `pattern`.
    pub fn find_stmt(&self, func: &str, pattern: &str, n: usize) -> Option<StmtId> {
        let (_, f) = self.ir.function_by_name(func)?;
        let body = f.body.as_ref()?;
        let mut found = Vec::new();
        body.for_each_basic(&mut |b, id| {
            let txt = pta_simple::printer::print_function(&self.ir, f);
            let _ = (b, txt);
            found.push(id);
        });
        // Re-walk with rendered text per statement for matching.
        let mut hits = Vec::new();
        body.for_each_basic(&mut |b, id| {
            let s = render_basic(&self.ir, f, b);
            if s.contains(pattern) {
                hits.push(id);
            }
        });
        hits.get(n).copied()
    }

    /// The merged points-to pairs (names) at a program point, NULL
    /// excluded, sorted.
    pub fn pairs_at(&self, stmt: StmtId) -> Vec<(String, String, Def)> {
        let set = self.result.at(stmt);
        let mut v: Vec<(String, String, Def)> = set
            .iter()
            .filter(|(_, t, _)| !self.result.locs.is_null(*t))
            .map(|(s, t, d)| {
                (
                    self.result.locs.name(s).to_owned(),
                    self.result.locs.name(t).to_owned(),
                    d,
                )
            })
            .collect();
        v.sort();
        v
    }
}

fn render_basic(ir: &IrProgram, f: &pta_simple::IrFunction, b: &pta_simple::BasicStmt) -> String {
    // Reuse the printer by wrapping the statement in a tiny tree.
    let stmt = pta_simple::Stmt::Basic(b.clone(), StmtId(0));
    let tmp = pta_simple::IrFunction {
        name: f.name.clone(),
        ret: f.ret.clone(),
        n_params: f.n_params,
        vars: f.vars.clone(),
        body: Some(stmt),
        variadic: f.variadic,
        span: f.span,
    };
    pta_simple::printer::print_function(ir, &tmp)
}
