//! Structured tracing and self-profiling for the points-to engine.
//!
//! The analysis is a black box at runtime: budgets trip, the
//! degradation ladder fires, and the invocation graph explodes — with
//! no way to see *where* the time and nodes went. This module makes the
//! engine observable: the analyzer emits [`TraceEvent`]s at every
//! interesting point (invocation-graph enter/exit, memo hit/miss,
//! map/unmap, per-statement transfers, budget ticks, ladder rungs), and
//! pluggable [`TraceSink`]s consume them.
//!
//! Three sinks ship here:
//!
//! - [`TraceMetrics`] — an in-memory aggregator: per-function memo
//!   hit/miss counts, invocation-graph activity, map/unmap volumes,
//!   phase timings. Powers `report --profile` and the per-benchmark
//!   metrics in the CI `BENCH_*.json` artifact.
//! - [`JsonlSink`] — one JSON object per line (stable field order; see
//!   `docs/TRACING.md` for the schema).
//! - [`ChromeTraceSink`] — Chrome `trace_events` JSON that loads
//!   directly in `chrome://tracing` or <https://ui.perfetto.dev>.
//!
//! # Cost contract
//!
//! Tracing is strictly opt-in and *zero-cost when disabled*: the
//! analyzer holds an `Option`al sink reference, every trace point is
//! guarded by a [`Tracer::enabled`] test (one branch on a local
//! `Option`), and no event value, string, or timestamp is constructed
//! on the disabled path. Enabling tracing never changes analysis
//! results — only observes them (enforced by property tests in
//! `pta-prop`).
//!
//! All counter-valued fields are deterministic (same program + config →
//! same values, on any machine and for any `--jobs` count). Fields in
//! microseconds (`ts_us`, `dur_us`, `elapsed_us`) are wall-clock
//! measurements and vary run to run; sinks accept a *scrub* flag that
//! zeroes them for golden tests and byte-identical artifacts.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::time::Instant;

/// One structured event from the engine. Field meanings, units, and
/// stability notes are documented in `docs/TRACING.md`; the JSONL wire
/// names match the Rust field names.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceEvent {
    /// The context-sensitive analysis started on a program.
    AnalysisStart {
        /// Defined functions in the program.
        functions: usize,
        /// Total basic SIMPLE statements.
        stmts: usize,
    },
    /// The context-sensitive analysis completed successfully.
    AnalysisEnd {
        /// Basic statements processed (budget steps consumed).
        steps: u64,
        /// Final invocation-graph node count.
        ig_nodes: usize,
        /// Recursive nodes among them.
        recursive: usize,
        /// Approximate nodes among them.
        approximate: usize,
        /// Points-to pairs at the exit of `main`.
        exit_pairs: usize,
        /// Non-fatal diagnostics recorded.
        warnings: usize,
    },
    /// An invocation-graph node's body analysis began (Figure 4).
    IgEnter {
        /// Node id.
        node: u32,
        /// Function the node invokes.
        func: String,
        /// Node kind tag (`ordinary` | `recursive` | `approximate`).
        kind: &'static str,
        /// Invocation path from `main` (e.g. `main > f > g`).
        path: String,
        /// Cardinality of the input points-to set.
        input_pairs: usize,
        /// Content fingerprint of the input set (matches the hash in
        /// the paired memo events).
        input_hash: u64,
    },
    /// An invocation-graph node's body analysis finished.
    IgExit {
        /// Node id.
        node: u32,
        /// Function the node invokes.
        func: String,
        /// True when the node produced ⊥ (pending recursive input or a
        /// function that never returns); `out_pairs` is 0 then.
        bottom: bool,
        /// Cardinality of the output points-to set.
        out_pairs: usize,
        /// Fixed-point rounds run over the body (1 for non-recursive).
        rounds: u32,
    },
    /// The node's memoized summary answered a call (§4.3 reuse).
    MemoHit {
        /// Node id.
        node: u32,
        /// Function the node invokes.
        func: String,
        /// Fingerprint of the input set that matched.
        input_hash: u64,
        /// Cardinality of the input set.
        input_pairs: usize,
    },
    /// The memo could not answer; the body will be (re)analysed.
    MemoMiss {
        /// Node id.
        node: u32,
        /// Function the node invokes.
        func: String,
        /// Fingerprint of the unmatched input set.
        input_hash: u64,
        /// Cardinality of the input set.
        input_pairs: usize,
    },
    /// An approximate node deferred: its recursive partner's stored
    /// summary did not cover the input, so the input was queued as
    /// pending and ⊥ returned (Figure 4's fixed-point protocol).
    ApproxDefer {
        /// Node id (of the approximate node).
        node: u32,
        /// Function the node invokes.
        func: String,
        /// Cardinality of the deferred input set.
        input_pairs: usize,
    },
    /// The map process translated a caller's state into a callee
    /// (§4.1): invisible variables got symbolic names.
    Map {
        /// Calling function.
        caller: String,
        /// Called function.
        callee: String,
        /// Symbolic names created for invisible variables.
        invisibles: usize,
        /// Deepest pointer-chain level traversed.
        max_chain_depth: u32,
        /// Cardinality of the assembled callee input set.
        callee_pairs: usize,
        /// Wall-clock time spent mapping, in microseconds.
        dur_us: u64,
    },
    /// The unmap process translated a callee's output back (§4.1).
    Unmap {
        /// The returning function.
        callee: String,
        /// Cardinality of the callee's output set.
        callee_pairs: usize,
        /// Cardinality of the caller-side result set.
        caller_pairs: usize,
        /// Wall-clock time spent unmapping, in microseconds.
        dur_us: u64,
    },
    /// One basic statement's transfer function ran (includes nested
    /// call processing for call statements).
    Stmt {
        /// Statement id.
        stmt: u32,
        /// Enclosing function.
        func: String,
        /// Cardinality of the statement's input points-to set.
        pairs: usize,
        /// Wall-clock time of the transfer, in microseconds.
        dur_us: u64,
    },
    /// Budget consumption heartbeat (every [`crate::budget::DEADLINE_STRIDE`]
    /// processed statements).
    BudgetTick {
        /// Statements processed so far.
        steps: u64,
        /// Wall-clock time since the budget started, in microseconds.
        elapsed_us: u64,
    },
    /// A liveness mask was computed for a function (`prune_liveness`
    /// mode; emitted once per function, at first entry).
    Dataflow {
        /// The function.
        func: String,
        /// Prunable (never-address-taken pointer-carrying) variables.
        prunable: usize,
        /// CFG nodes the solver ran over.
        nodes: usize,
        /// Worklist visits spent.
        visits: usize,
        /// The solve converged within its visit budget (always true for
        /// emitted events — non-converged masks are discarded and the
        /// function is skipped).
        converged: bool,
    },
    /// The degradation ladder moved down a rung.
    Rung {
        /// The fidelity that failed.
        from: &'static str,
        /// The next fidelity attempted.
        to: &'static str,
        /// The budget error that pushed the ladder down.
        reason: String,
    },
}

/// Field lists for one event kind — the machine-readable half of the
/// schema in `docs/TRACING.md` (the `trace-check` bin validates streams
/// and docs against this table).
#[derive(Debug, Clone, Copy)]
pub struct EventSpec {
    /// The `"ev"` tag.
    pub kind: &'static str,
    /// The kind-specific field names, in wire order (every event also
    /// carries the common `ts_us` field).
    pub fields: &'static [&'static str],
}

/// Every event kind the engine can emit, with its fields. Adding a
/// variant to [`TraceEvent`] without extending this table (and
/// `docs/TRACING.md`) fails the schema tests.
pub const EVENT_SPECS: &[EventSpec] = &[
    EventSpec {
        kind: "analysis_start",
        fields: &["functions", "stmts"],
    },
    EventSpec {
        kind: "analysis_end",
        fields: &[
            "steps",
            "ig_nodes",
            "recursive",
            "approximate",
            "exit_pairs",
            "warnings",
        ],
    },
    EventSpec {
        kind: "ig_enter",
        fields: &["node", "func", "kind", "path", "input_pairs", "input_hash"],
    },
    EventSpec {
        kind: "ig_exit",
        fields: &["node", "func", "bottom", "out_pairs", "rounds"],
    },
    EventSpec {
        kind: "memo_hit",
        fields: &["node", "func", "input_hash", "input_pairs"],
    },
    EventSpec {
        kind: "memo_miss",
        fields: &["node", "func", "input_hash", "input_pairs"],
    },
    EventSpec {
        kind: "approx_defer",
        fields: &["node", "func", "input_pairs"],
    },
    EventSpec {
        kind: "map",
        fields: &[
            "caller",
            "callee",
            "invisibles",
            "max_chain_depth",
            "callee_pairs",
            "dur_us",
        ],
    },
    EventSpec {
        kind: "unmap",
        fields: &["callee", "callee_pairs", "caller_pairs", "dur_us"],
    },
    EventSpec {
        kind: "stmt",
        fields: &["stmt", "func", "pairs", "dur_us"],
    },
    EventSpec {
        kind: "budget_tick",
        fields: &["steps", "elapsed_us"],
    },
    EventSpec {
        kind: "dataflow",
        fields: &["func", "prunable", "nodes", "visits", "converged"],
    },
    EventSpec {
        kind: "rung",
        fields: &["from", "to", "reason"],
    },
];

impl TraceEvent {
    /// The stable kind tag (the JSONL `"ev"` value).
    pub fn kind(&self) -> &'static str {
        match self {
            TraceEvent::AnalysisStart { .. } => "analysis_start",
            TraceEvent::AnalysisEnd { .. } => "analysis_end",
            TraceEvent::IgEnter { .. } => "ig_enter",
            TraceEvent::IgExit { .. } => "ig_exit",
            TraceEvent::MemoHit { .. } => "memo_hit",
            TraceEvent::MemoMiss { .. } => "memo_miss",
            TraceEvent::ApproxDefer { .. } => "approx_defer",
            TraceEvent::Map { .. } => "map",
            TraceEvent::Unmap { .. } => "unmap",
            TraceEvent::Stmt { .. } => "stmt",
            TraceEvent::BudgetTick { .. } => "budget_tick",
            TraceEvent::Dataflow { .. } => "dataflow",
            TraceEvent::Rung { .. } => "rung",
        }
    }
}

/// Operational events of the *serving* layer — distinct from the
/// analysis [`TraceEvent`] stream. `pta serve` emits these on stderr as
/// single JSONL lines in the same `{"ev":…}` wire shape as the
/// per-query `serve-query` metrics records (no `ts_us`: serve events
/// are operational log lines, not a profiling stream). Typed here so
/// every emitter renders identical bytes and [`SERVE_EVENT_SPECS`]
/// stays the single source of truth for the schema in
/// `docs/TRACING.md` / `docs/SERVING.md`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServeEvent {
    /// A store-level fault degraded a tenant: the analysis fell back to
    /// a cold run, or the snapshot write-back failed. Answers stay
    /// correct (the degradation-ladder contract); only warm-start work
    /// is lost.
    Degraded {
        /// The tenant.
        program: String,
        /// Where in the pipeline the fault landed (`"load"` /
        /// `"save"`).
        stage: String,
        /// The underlying store error.
        reason: String,
    },
    /// A connection was shed at accept because the server is at
    /// `--max-conns`; the client got an in-band `overloaded` error.
    Overloaded {
        /// Connections currently being served.
        active: usize,
        /// The configured cap.
        max: usize,
    },
    /// `accept()` failed transiently (e.g. EMFILE); the loop retries
    /// after a capped exponential backoff instead of spinning or
    /// exiting.
    AcceptRetry {
        /// The accept error.
        error: String,
        /// How long the loop backs off before retrying.
        backoff_ms: u64,
    },
    /// A tenant was rebuilt and swapped after its files changed on
    /// disk.
    Reload {
        /// The tenant.
        program: String,
        /// `"warm start (…)"` / `"cold start (…)"`.
        mode: String,
    },
    /// A resident tenant was evicted (LRU).
    Evict {
        /// The tenant.
        program: String,
    },
    /// The server stopped accepting and is draining in-flight
    /// connections before exiting.
    Drain {
        /// Connections still in flight at drain start.
        conns: usize,
    },
}

/// Every serve-layer event kind with its fields, in wire order
/// (mirrors [`EVENT_SPECS`] for the analysis stream).
pub const SERVE_EVENT_SPECS: &[EventSpec] = &[
    EventSpec {
        kind: "serve-degraded",
        fields: &["program", "stage", "reason"],
    },
    EventSpec {
        kind: "serve-overloaded",
        fields: &["active", "max"],
    },
    EventSpec {
        kind: "serve-accept-retry",
        fields: &["error", "backoff_ms"],
    },
    EventSpec {
        kind: "serve-reload",
        fields: &["program", "mode"],
    },
    EventSpec {
        kind: "serve-evict",
        fields: &["program"],
    },
    EventSpec {
        kind: "serve-drain",
        fields: &["conns"],
    },
];

impl ServeEvent {
    /// The stable kind tag (the JSONL `"ev"` value).
    pub fn kind(&self) -> &'static str {
        match self {
            ServeEvent::Degraded { .. } => "serve-degraded",
            ServeEvent::Overloaded { .. } => "serve-overloaded",
            ServeEvent::AcceptRetry { .. } => "serve-accept-retry",
            ServeEvent::Reload { .. } => "serve-reload",
            ServeEvent::Evict { .. } => "serve-evict",
            ServeEvent::Drain { .. } => "serve-drain",
        }
    }

    /// Renders the single JSONL line (stable field order, matching
    /// [`SERVE_EVENT_SPECS`]).
    pub fn render(&self) -> String {
        match self {
            ServeEvent::Degraded {
                program,
                stage,
                reason,
            } => format!(
                "{{\"ev\":\"serve-degraded\",\"program\":\"{}\",\"stage\":\"{}\",\"reason\":\"{}\"}}",
                json_escape(program),
                json_escape(stage),
                json_escape(reason)
            ),
            ServeEvent::Overloaded { active, max } => format!(
                "{{\"ev\":\"serve-overloaded\",\"active\":{active},\"max\":{max}}}"
            ),
            ServeEvent::AcceptRetry { error, backoff_ms } => format!(
                "{{\"ev\":\"serve-accept-retry\",\"error\":\"{}\",\"backoff_ms\":{backoff_ms}}}",
                json_escape(error)
            ),
            ServeEvent::Reload { program, mode } => format!(
                "{{\"ev\":\"serve-reload\",\"program\":\"{}\",\"mode\":\"{}\"}}",
                json_escape(program),
                json_escape(mode)
            ),
            ServeEvent::Evict { program } => format!(
                "{{\"ev\":\"serve-evict\",\"program\":\"{}\"}}",
                json_escape(program)
            ),
            ServeEvent::Drain { conns } => {
                format!("{{\"ev\":\"serve-drain\",\"conns\":{conns}}}")
            }
        }
    }

    /// Emits the event where serve events go: one line on stderr.
    pub fn emit(&self) {
        eprintln!("{}", self.render());
    }
}

/// A consumer of trace events. `ts_us` is microseconds since tracing
/// started (the analysis entry point); events arrive in emission order
/// from a single thread.
pub trait TraceSink {
    /// Consumes one event.
    fn event(&mut self, ts_us: u64, ev: &TraceEvent);
}

/// Forwards every event to several sinks (e.g. JSONL + Chrome + metrics
/// in one run, as `pta trace` does).
#[derive(Default)]
pub struct TeeSink<'a> {
    sinks: Vec<&'a mut dyn TraceSink>,
}

impl<'a> TeeSink<'a> {
    /// An empty tee.
    pub fn new() -> Self {
        TeeSink { sinks: Vec::new() }
    }

    /// Adds a downstream sink.
    pub fn push(&mut self, sink: &'a mut dyn TraceSink) {
        self.sinks.push(sink);
    }
}

impl TraceSink for TeeSink<'_> {
    fn event(&mut self, ts_us: u64, ev: &TraceEvent) {
        for s in &mut self.sinks {
            s.event(ts_us, ev);
        }
    }
}

// ---------------------------------------------------------------------
// JSONL
// ---------------------------------------------------------------------

/// Renders one event as a single JSONL line (no trailing newline).
/// Field order is fixed: `ev`, `ts_us`, then the kind's fields in
/// [`EVENT_SPECS`] order. With `scrub` set, every timing field renders
/// as 0 so streams are byte-identical across runs.
pub fn render_jsonl(ts_us: u64, ev: &TraceEvent, scrub: bool) -> String {
    let t = |us: u64| if scrub { 0 } else { us };
    let mut s = format!("{{\"ev\":\"{}\",\"ts_us\":{}", ev.kind(), t(ts_us));
    match ev {
        TraceEvent::AnalysisStart { functions, stmts } => {
            let _ = write!(s, ",\"functions\":{functions},\"stmts\":{stmts}");
        }
        TraceEvent::AnalysisEnd {
            steps,
            ig_nodes,
            recursive,
            approximate,
            exit_pairs,
            warnings,
        } => {
            let _ = write!(
                s,
                ",\"steps\":{steps},\"ig_nodes\":{ig_nodes},\"recursive\":{recursive},\
                 \"approximate\":{approximate},\"exit_pairs\":{exit_pairs},\"warnings\":{warnings}"
            );
        }
        TraceEvent::IgEnter {
            node,
            func,
            kind,
            path,
            input_pairs,
            input_hash,
        } => {
            let _ = write!(
                s,
                ",\"node\":{node},\"func\":\"{}\",\"kind\":\"{kind}\",\"path\":\"{}\",\
                 \"input_pairs\":{input_pairs},\"input_hash\":\"{input_hash:016x}\"",
                json_escape(func),
                json_escape(path)
            );
        }
        TraceEvent::IgExit {
            node,
            func,
            bottom,
            out_pairs,
            rounds,
        } => {
            let _ = write!(
                s,
                ",\"node\":{node},\"func\":\"{}\",\"bottom\":{bottom},\
                 \"out_pairs\":{out_pairs},\"rounds\":{rounds}",
                json_escape(func)
            );
        }
        TraceEvent::MemoHit {
            node,
            func,
            input_hash,
            input_pairs,
        }
        | TraceEvent::MemoMiss {
            node,
            func,
            input_hash,
            input_pairs,
        } => {
            let _ = write!(
                s,
                ",\"node\":{node},\"func\":\"{}\",\"input_hash\":\"{input_hash:016x}\",\
                 \"input_pairs\":{input_pairs}",
                json_escape(func)
            );
        }
        TraceEvent::ApproxDefer {
            node,
            func,
            input_pairs,
        } => {
            let _ = write!(
                s,
                ",\"node\":{node},\"func\":\"{}\",\"input_pairs\":{input_pairs}",
                json_escape(func)
            );
        }
        TraceEvent::Map {
            caller,
            callee,
            invisibles,
            max_chain_depth,
            callee_pairs,
            dur_us,
        } => {
            let _ = write!(
                s,
                ",\"caller\":\"{}\",\"callee\":\"{}\",\"invisibles\":{invisibles},\
                 \"max_chain_depth\":{max_chain_depth},\"callee_pairs\":{callee_pairs},\
                 \"dur_us\":{}",
                json_escape(caller),
                json_escape(callee),
                t(*dur_us)
            );
        }
        TraceEvent::Unmap {
            callee,
            callee_pairs,
            caller_pairs,
            dur_us,
        } => {
            let _ = write!(
                s,
                ",\"callee\":\"{}\",\"callee_pairs\":{callee_pairs},\
                 \"caller_pairs\":{caller_pairs},\"dur_us\":{}",
                json_escape(callee),
                t(*dur_us)
            );
        }
        TraceEvent::Stmt {
            stmt,
            func,
            pairs,
            dur_us,
        } => {
            let _ = write!(
                s,
                ",\"stmt\":{stmt},\"func\":\"{}\",\"pairs\":{pairs},\"dur_us\":{}",
                json_escape(func),
                t(*dur_us)
            );
        }
        TraceEvent::BudgetTick { steps, elapsed_us } => {
            let _ = write!(s, ",\"steps\":{steps},\"elapsed_us\":{}", t(*elapsed_us));
        }
        TraceEvent::Dataflow {
            func,
            prunable,
            nodes,
            visits,
            converged,
        } => {
            let _ = write!(
                s,
                ",\"func\":\"{}\",\"prunable\":{prunable},\"nodes\":{nodes},\
                 \"visits\":{visits},\"converged\":{converged}",
                json_escape(func)
            );
        }
        TraceEvent::Rung { from, to, reason } => {
            let _ = write!(
                s,
                ",\"from\":\"{from}\",\"to\":\"{to}\",\"reason\":\"{}\"",
                json_escape(reason)
            );
        }
    }
    s.push('}');
    s
}

/// Collects events as JSON Lines (one object per line, stable field
/// order; schema in `docs/TRACING.md`).
#[derive(Debug, Default)]
pub struct JsonlSink {
    buf: String,
    scrub: bool,
}

impl JsonlSink {
    /// A sink with real timestamps.
    pub fn new() -> Self {
        JsonlSink::default()
    }

    /// A sink that zeroes every timing field (`ts_us`, `dur_us`,
    /// `elapsed_us`) so the stream is byte-identical across runs —
    /// used by the golden tests and determinism checks.
    pub fn scrubbed() -> Self {
        JsonlSink {
            buf: String::new(),
            scrub: true,
        }
    }

    /// The collected stream (newline-terminated lines).
    pub fn into_string(self) -> String {
        self.buf
    }

    /// Borrows the collected stream.
    pub fn as_str(&self) -> &str {
        &self.buf
    }
}

impl TraceSink for JsonlSink {
    fn event(&mut self, ts_us: u64, ev: &TraceEvent) {
        self.buf.push_str(&render_jsonl(ts_us, ev, self.scrub));
        self.buf.push('\n');
    }
}

// ---------------------------------------------------------------------
// Chrome trace_events
// ---------------------------------------------------------------------

/// Builds a Chrome `trace_events` document (the JSON object form,
/// `{"traceEvents":[...]}`), loadable in `chrome://tracing` and
/// Perfetto. Invocation-graph activity renders as nested duration
/// slices, statements and map/unmap as complete events, memo and ladder
/// activity as instants, and budget consumption as a counter track.
#[derive(Debug, Default)]
pub struct ChromeTraceSink {
    events: Vec<String>,
    scrub: bool,
}

impl ChromeTraceSink {
    /// A sink with real timestamps.
    pub fn new() -> Self {
        ChromeTraceSink::default()
    }

    /// A sink with all timestamps zeroed (degenerate but valid JSON —
    /// used only to test shape determinism).
    pub fn scrubbed() -> Self {
        ChromeTraceSink {
            events: Vec::new(),
            scrub: true,
        }
    }

    /// Finalizes the document.
    pub fn finish(self) -> String {
        let mut out = String::from("{\"traceEvents\":[\n");
        for (i, e) in self.events.iter().enumerate() {
            out.push_str(e);
            if i + 1 != self.events.len() {
                out.push(',');
            }
            out.push('\n');
        }
        out.push_str("],\"displayTimeUnit\":\"ms\"}\n");
        out
    }

    fn push(&mut self, ph: char, name: &str, ts: u64, dur: Option<u64>, args: &str) {
        let ts = if self.scrub { 0 } else { ts };
        let mut e = format!(
            "{{\"name\":\"{}\",\"ph\":\"{ph}\",\"ts\":{ts},\"pid\":1,\"tid\":1",
            json_escape(name)
        );
        if let Some(d) = dur {
            let d = if self.scrub { 0 } else { d };
            let _ = write!(e, ",\"dur\":{d}");
        }
        if ph == 'i' {
            e.push_str(",\"s\":\"t\"");
        }
        if !args.is_empty() {
            let _ = write!(e, ",\"args\":{{{args}}}");
        }
        e.push('}');
        self.events.push(e);
    }
}

impl TraceSink for ChromeTraceSink {
    fn event(&mut self, ts_us: u64, ev: &TraceEvent) {
        match ev {
            TraceEvent::AnalysisStart { functions, stmts } => self.push(
                'i',
                "analysis_start",
                ts_us,
                None,
                &format!("\"functions\":{functions},\"stmts\":{stmts}"),
            ),
            TraceEvent::AnalysisEnd {
                steps, ig_nodes, ..
            } => self.push(
                'i',
                "analysis_end",
                ts_us,
                None,
                &format!("\"steps\":{steps},\"ig_nodes\":{ig_nodes}"),
            ),
            TraceEvent::IgEnter {
                node,
                func,
                kind,
                path,
                input_pairs,
                ..
            } => self.push(
                'B',
                func,
                ts_us,
                None,
                &format!(
                    "\"node\":{node},\"kind\":\"{kind}\",\"path\":\"{}\",\"input_pairs\":{input_pairs}",
                    json_escape(path)
                ),
            ),
            TraceEvent::IgExit {
                func,
                out_pairs,
                rounds,
                ..
            } => self.push(
                'E',
                func,
                ts_us,
                None,
                &format!("\"out_pairs\":{out_pairs},\"rounds\":{rounds}"),
            ),
            TraceEvent::MemoHit { node, func, .. } => self.push(
                'i',
                &format!("memo_hit:{func}"),
                ts_us,
                None,
                &format!("\"node\":{node}"),
            ),
            TraceEvent::MemoMiss { node, func, .. } => self.push(
                'i',
                &format!("memo_miss:{func}"),
                ts_us,
                None,
                &format!("\"node\":{node}"),
            ),
            TraceEvent::ApproxDefer { node, func, .. } => self.push(
                'i',
                &format!("approx_defer:{func}"),
                ts_us,
                None,
                &format!("\"node\":{node}"),
            ),
            TraceEvent::Map {
                caller,
                callee,
                invisibles,
                dur_us,
                ..
            } => self.push(
                'X',
                &format!("map:{caller}>{callee}"),
                ts_us.saturating_sub(*dur_us),
                Some(*dur_us),
                &format!("\"invisibles\":{invisibles}"),
            ),
            TraceEvent::Unmap {
                callee,
                caller_pairs,
                dur_us,
                ..
            } => self.push(
                'X',
                &format!("unmap:{callee}"),
                ts_us.saturating_sub(*dur_us),
                Some(*dur_us),
                &format!("\"caller_pairs\":{caller_pairs}"),
            ),
            TraceEvent::Stmt {
                stmt,
                pairs,
                dur_us,
                ..
            } => self.push(
                'X',
                "stmt",
                ts_us.saturating_sub(*dur_us),
                Some(*dur_us),
                &format!("\"stmt\":{stmt},\"pairs\":{pairs}"),
            ),
            TraceEvent::BudgetTick { steps, .. } => {
                self.push('C', "steps", ts_us, None, &format!("\"steps\":{steps}"))
            }
            TraceEvent::Dataflow {
                func,
                prunable,
                visits,
                ..
            } => self.push(
                'i',
                &format!("dataflow:{func}"),
                ts_us,
                None,
                &format!("\"prunable\":{prunable},\"visits\":{visits}"),
            ),
            TraceEvent::Rung { from, to, reason } => self.push(
                'i',
                &format!("rung:{from}->{to}"),
                ts_us,
                None,
                &format!("\"reason\":\"{}\"", json_escape(reason)),
            ),
        }
    }
}

// ---------------------------------------------------------------------
// In-memory metrics aggregation
// ---------------------------------------------------------------------

/// Per-function slice of [`TraceMetrics`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FuncMetrics {
    /// Invocation-graph nodes entered for this function (body runs).
    pub enters: u64,
    /// Memoized answers served (ordinary + approximate reuse).
    pub memo_hits: u64,
    /// Memo misses (body had to be (re)analysed).
    pub memo_misses: u64,
    /// Approximate-node deferrals.
    pub approx_defers: u64,
    /// Fixed-point rounds summed over every body run.
    pub rounds: u64,
    /// Basic-statement transfers executed inside this function.
    pub stmts: u64,
    /// Wall-clock microseconds spent in those transfers
    /// (non-deterministic; excluded from deterministic output).
    pub stmt_us: u64,
    /// Map processes targeting this function as the callee.
    pub maps: u64,
    /// Symbolic (invisible-variable) names created mapping into it.
    pub invisibles: u64,
    /// Deepest map pointer chain observed mapping into it.
    pub max_chain_depth: u32,
}

impl FuncMetrics {
    /// Memo hit rate in percent (0 when the node was never consulted).
    pub fn hit_rate(&self) -> f64 {
        let total = self.memo_hits + self.memo_misses;
        if total == 0 {
            0.0
        } else {
            100.0 * self.memo_hits as f64 / total as f64
        }
    }
}

/// The in-memory aggregator sink: folds the event stream into
/// per-function and whole-run metrics. All fields except the `*_us`
/// timings are deterministic.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TraceMetrics {
    /// Total events observed.
    pub events: u64,
    /// Per-function metrics, keyed by function name (sorted).
    pub per_func: BTreeMap<String, FuncMetrics>,
    /// Whole-run memo hits.
    pub memo_hits: u64,
    /// Whole-run memo misses.
    pub memo_misses: u64,
    /// Map processes run.
    pub maps: u64,
    /// Unmap processes run.
    pub unmaps: u64,
    /// Symbolic names created across all maps.
    pub invisibles: u64,
    /// Deepest map pointer chain across all maps.
    pub max_chain_depth: u32,
    /// Basic-statement transfers executed.
    pub stmt_events: u64,
    /// Budget heartbeats observed.
    pub budget_ticks: u64,
    /// Functions a `prune_liveness` mask was built for.
    pub dataflow_funcs: u64,
    /// Liveness-solver visits summed over those masks.
    pub dataflow_visits: u64,
    /// Steps reported by `analysis_end` (0 until completion).
    pub steps: u64,
    /// Invocation-graph node count reported by `analysis_end`.
    pub ig_nodes: usize,
    /// Recursive nodes reported by `analysis_end`.
    pub ig_recursive: usize,
    /// Approximate nodes reported by `analysis_end`.
    pub ig_approximate: usize,
    /// Exit-set cardinality reported by `analysis_end`.
    pub exit_pairs: usize,
    /// Warnings reported by `analysis_end`.
    pub warnings: usize,
    /// True once `analysis_end` was seen (the context-sensitive engine
    /// completed; false when the run degraded or failed).
    pub completed: bool,
    /// Ladder transitions, in order: `(from, to, reason)`.
    pub rungs: Vec<(String, String, String)>,
    /// Total microseconds in statement transfers (non-deterministic).
    pub stmt_us: u64,
    /// Total microseconds in map processes (non-deterministic).
    pub map_us: u64,
    /// Total microseconds in unmap processes (non-deterministic).
    pub unmap_us: u64,
}

impl TraceMetrics {
    /// A fresh aggregator.
    pub fn new() -> Self {
        TraceMetrics::default()
    }

    /// Whole-run memo hit rate in percent.
    pub fn hit_rate(&self) -> f64 {
        let total = self.memo_hits + self.memo_misses;
        if total == 0 {
            0.0
        } else {
            100.0 * self.memo_hits as f64 / total as f64
        }
    }

    fn func(&mut self, name: &str) -> &mut FuncMetrics {
        if !self.per_func.contains_key(name) {
            self.per_func
                .insert(name.to_owned(), FuncMetrics::default());
        }
        self.per_func.get_mut(name).expect("inserted above")
    }

    /// Renders the deterministic counters as a JSON object (no
    /// surrounding whitespace; stable key order). Timing fields are
    /// deliberately excluded so the output is byte-identical across
    /// runs and `--jobs` values — this is what the BENCH artifact
    /// embeds.
    pub fn to_json(&self) -> String {
        let mut out = format!(
            "{{\"completed\":{},\"steps\":{},\"ig_nodes\":{},\"recursive\":{},\
             \"approximate\":{},\"exit_pairs\":{},\"warnings\":{},\"memo_hits\":{},\
             \"memo_misses\":{},\"maps\":{},\"unmaps\":{},\"invisibles\":{},\
             \"max_chain_depth\":{},\"stmt_events\":{},\"per_function\":[",
            self.completed,
            self.steps,
            self.ig_nodes,
            self.ig_recursive,
            self.ig_approximate,
            self.exit_pairs,
            self.warnings,
            self.memo_hits,
            self.memo_misses,
            self.maps,
            self.unmaps,
            self.invisibles,
            self.max_chain_depth,
            self.stmt_events,
        );
        for (i, (name, f)) in self.per_func.iter().enumerate() {
            let _ = write!(
                out,
                "{}{{\"func\":\"{}\",\"enters\":{},\"memo_hits\":{},\"memo_misses\":{},\
                 \"rounds\":{},\"stmts\":{},\"maps\":{},\"invisibles\":{}}}",
                if i == 0 { "" } else { "," },
                json_escape(name),
                f.enters,
                f.memo_hits,
                f.memo_misses,
                f.rounds,
                f.stmts,
                f.maps,
                f.invisibles,
            );
        }
        out.push_str("]}");
        out
    }

    /// Renders a human-readable profile (the `pta trace --metrics`
    /// output): whole-run counters, phase timings, and a per-function
    /// table sorted by name.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "steps {} | ig nodes {} (R {}, A {}) | memo {}/{} hits ({:.1}%) | maps {} | invisibles {} | max chain depth {}",
            self.steps,
            self.ig_nodes,
            self.ig_recursive,
            self.ig_approximate,
            self.memo_hits,
            self.memo_hits + self.memo_misses,
            self.hit_rate(),
            self.maps,
            self.invisibles,
            self.max_chain_depth,
        );
        let _ = writeln!(
            out,
            "phase time: stmts {:.3} ms | map {:.3} ms | unmap {:.3} ms",
            self.stmt_us as f64 / 1e3,
            self.map_us as f64 / 1e3,
            self.unmap_us as f64 / 1e3,
        );
        let _ = writeln!(
            out,
            "{:<16} {:>7} {:>9} {:>10} {:>6} {:>7} {:>8} {:>6} {:>6}",
            "function",
            "enters",
            "memo-hit",
            "memo-miss",
            "hit%",
            "rounds",
            "stmts",
            "maps",
            "invis"
        );
        for (name, f) in &self.per_func {
            let _ = writeln!(
                out,
                "{:<16} {:>7} {:>9} {:>10} {:>5.1}% {:>7} {:>8} {:>6} {:>6}",
                name,
                f.enters,
                f.memo_hits,
                f.memo_misses,
                f.hit_rate(),
                f.rounds,
                f.stmts,
                f.maps,
                f.invisibles,
            );
        }
        out
    }
}

impl TraceSink for TraceMetrics {
    fn event(&mut self, _ts_us: u64, ev: &TraceEvent) {
        self.events += 1;
        match ev {
            TraceEvent::AnalysisStart { .. } => {}
            TraceEvent::AnalysisEnd {
                steps,
                ig_nodes,
                recursive,
                approximate,
                exit_pairs,
                warnings,
            } => {
                self.steps = *steps;
                self.ig_nodes = *ig_nodes;
                self.ig_recursive = *recursive;
                self.ig_approximate = *approximate;
                self.exit_pairs = *exit_pairs;
                self.warnings = *warnings;
                self.completed = true;
            }
            TraceEvent::IgEnter { func, .. } => self.func(func).enters += 1,
            TraceEvent::IgExit { func, rounds, .. } => {
                self.func(func).rounds += u64::from(*rounds);
            }
            TraceEvent::MemoHit { func, .. } => {
                self.memo_hits += 1;
                self.func(func).memo_hits += 1;
            }
            TraceEvent::MemoMiss { func, .. } => {
                self.memo_misses += 1;
                self.func(func).memo_misses += 1;
            }
            TraceEvent::ApproxDefer { func, .. } => self.func(func).approx_defers += 1,
            TraceEvent::Map {
                callee,
                invisibles,
                max_chain_depth,
                dur_us,
                ..
            } => {
                self.maps += 1;
                self.invisibles += *invisibles as u64;
                self.max_chain_depth = self.max_chain_depth.max(*max_chain_depth);
                self.map_us += dur_us;
                let f = self.func(callee);
                f.maps += 1;
                f.invisibles += *invisibles as u64;
                f.max_chain_depth = f.max_chain_depth.max(*max_chain_depth);
            }
            TraceEvent::Unmap { dur_us, .. } => {
                self.unmaps += 1;
                self.unmap_us += dur_us;
            }
            TraceEvent::Stmt { func, dur_us, .. } => {
                self.stmt_events += 1;
                self.stmt_us += dur_us;
                let f = self.func(func);
                f.stmts += 1;
                f.stmt_us += dur_us;
            }
            TraceEvent::BudgetTick { .. } => self.budget_ticks += 1,
            TraceEvent::Dataflow { visits, .. } => {
                self.dataflow_funcs += 1;
                self.dataflow_visits += *visits as u64;
            }
            TraceEvent::Rung { from, to, reason } => {
                self.rungs
                    .push(((*from).to_owned(), (*to).to_owned(), reason.clone()));
            }
        }
    }
}

// ---------------------------------------------------------------------
// The engine-side handle
// ---------------------------------------------------------------------

/// The analyzer's tracing handle: an optional sink plus the trace
/// clock. Every trace point goes through [`Tracer::emit`], which builds
/// the event only when a sink is attached — the disabled path is a
/// single branch with no allocation, formatting, or clock read.
pub(crate) struct Tracer<'a> {
    sink: Option<&'a mut dyn TraceSink>,
    start: Instant,
}

impl<'a> Tracer<'a> {
    /// A tracer over an optional sink (starts the trace clock).
    pub(crate) fn new(sink: Option<&'a mut dyn TraceSink>) -> Self {
        Tracer {
            sink,
            start: Instant::now(),
        }
    }

    /// True when a sink is attached. Callers use this to gate the
    /// construction of expensive event inputs (paths, names, hashes).
    #[inline]
    pub(crate) fn enabled(&self) -> bool {
        self.sink.is_some()
    }

    /// Emits an event; the closure runs only when a sink is attached.
    #[inline]
    pub(crate) fn emit(&mut self, build: impl FnOnce() -> TraceEvent) {
        if let Some(sink) = self.sink.as_deref_mut() {
            let ts = self.start.elapsed().as_micros() as u64;
            sink.event(ts, &build());
        }
    }

    /// The current clock reading, only when tracing (for duration
    /// measurements around a phase).
    #[inline]
    pub(crate) fn now(&self) -> Option<Instant> {
        if self.enabled() {
            Some(Instant::now())
        } else {
            None
        }
    }
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_variant_has_a_spec_and_vice_versa() {
        let reps: Vec<TraceEvent> = vec![
            TraceEvent::AnalysisStart {
                functions: 1,
                stmts: 2,
            },
            TraceEvent::AnalysisEnd {
                steps: 1,
                ig_nodes: 2,
                recursive: 0,
                approximate: 0,
                exit_pairs: 3,
                warnings: 0,
            },
            TraceEvent::IgEnter {
                node: 0,
                func: "f".into(),
                kind: "ordinary",
                path: "main > f".into(),
                input_pairs: 1,
                input_hash: 7,
            },
            TraceEvent::IgExit {
                node: 0,
                func: "f".into(),
                bottom: false,
                out_pairs: 1,
                rounds: 1,
            },
            TraceEvent::MemoHit {
                node: 0,
                func: "f".into(),
                input_hash: 7,
                input_pairs: 1,
            },
            TraceEvent::MemoMiss {
                node: 0,
                func: "f".into(),
                input_hash: 7,
                input_pairs: 1,
            },
            TraceEvent::ApproxDefer {
                node: 0,
                func: "f".into(),
                input_pairs: 1,
            },
            TraceEvent::Map {
                caller: "main".into(),
                callee: "f".into(),
                invisibles: 1,
                max_chain_depth: 2,
                callee_pairs: 3,
                dur_us: 4,
            },
            TraceEvent::Unmap {
                callee: "f".into(),
                callee_pairs: 1,
                caller_pairs: 2,
                dur_us: 3,
            },
            TraceEvent::Stmt {
                stmt: 1,
                func: "f".into(),
                pairs: 2,
                dur_us: 3,
            },
            TraceEvent::BudgetTick {
                steps: 64,
                elapsed_us: 1,
            },
            TraceEvent::Dataflow {
                func: "f".into(),
                prunable: 2,
                nodes: 5,
                visits: 9,
                converged: true,
            },
            TraceEvent::Rung {
                from: "context-sensitive",
                to: "context-insensitive",
                reason: "over budget".into(),
            },
        ];
        assert_eq!(reps.len(), EVENT_SPECS.len());
        for ev in &reps {
            let spec = EVENT_SPECS
                .iter()
                .find(|s| s.kind == ev.kind())
                .unwrap_or_else(|| panic!("no spec for `{}`", ev.kind()));
            let line = render_jsonl(0, ev, false);
            for field in spec.fields {
                assert!(
                    line.contains(&format!("\"{field}\":")),
                    "`{}` line misses `{field}`: {line}",
                    ev.kind()
                );
            }
        }
    }

    #[test]
    fn serve_events_render_their_full_spec() {
        let reps = [
            ServeEvent::Degraded {
                program: "a".into(),
                stage: "save".into(),
                reason: "injected fault at point 2 (save.write)".into(),
            },
            ServeEvent::Overloaded { active: 4, max: 4 },
            ServeEvent::AcceptRetry {
                error: "Too many open files".into(),
                backoff_ms: 40,
            },
            ServeEvent::Reload {
                program: "a".into(),
                mode: "warm start (3 replayed pairs, 0 dirty functions)".into(),
            },
            ServeEvent::Evict {
                program: "a".into(),
            },
            ServeEvent::Drain { conns: 2 },
        ];
        assert_eq!(reps.len(), SERVE_EVENT_SPECS.len());
        for ev in &reps {
            let spec = SERVE_EVENT_SPECS
                .iter()
                .find(|s| s.kind == ev.kind())
                .unwrap_or_else(|| panic!("no spec for `{}`", ev.kind()));
            let line = ev.render();
            assert!(
                line.starts_with(&format!("{{\"ev\":\"{}\"", ev.kind())),
                "{line}"
            );
            for field in spec.fields {
                assert!(
                    line.contains(&format!("\"{field}\":")),
                    "`{}` line misses `{field}`: {line}",
                    ev.kind()
                );
            }
        }
        // The reload/evict lines are pinned byte-for-byte: scripts and
        // older logs grep for exactly this shape.
        assert_eq!(
            reps[4].render(),
            "{\"ev\":\"serve-evict\",\"program\":\"a\"}"
        );
    }

    #[test]
    fn scrubbed_lines_zero_every_timing() {
        let ev = TraceEvent::Stmt {
            stmt: 3,
            func: "main".into(),
            pairs: 5,
            dur_us: 999,
        };
        let line = render_jsonl(123_456, &ev, true);
        assert!(line.contains("\"ts_us\":0"), "{line}");
        assert!(line.contains("\"dur_us\":0"), "{line}");
        let raw = render_jsonl(123_456, &ev, false);
        assert!(raw.contains("\"ts_us\":123456"), "{raw}");
        assert!(raw.contains("\"dur_us\":999"), "{raw}");
    }

    #[test]
    fn metrics_aggregate_per_function() {
        let mut m = TraceMetrics::new();
        m.event(
            0,
            &TraceEvent::MemoMiss {
                node: 1,
                func: "f".into(),
                input_hash: 1,
                input_pairs: 2,
            },
        );
        m.event(
            0,
            &TraceEvent::MemoHit {
                node: 1,
                func: "f".into(),
                input_hash: 1,
                input_pairs: 2,
            },
        );
        m.event(
            0,
            &TraceEvent::Stmt {
                stmt: 0,
                func: "f".into(),
                pairs: 1,
                dur_us: 10,
            },
        );
        assert_eq!(m.memo_hits, 1);
        assert_eq!(m.memo_misses, 1);
        assert!((m.hit_rate() - 50.0).abs() < 1e-9);
        let f = &m.per_func["f"];
        assert_eq!((f.memo_hits, f.memo_misses, f.stmts), (1, 1, 1));
        let js = m.to_json();
        assert!(js.contains("\"memo_hits\":1"), "{js}");
        assert!(!js.contains("stmt_us"), "timings must stay out: {js}");
    }

    #[test]
    fn chrome_trace_is_balanced_json() {
        let mut c = ChromeTraceSink::new();
        c.event(
            0,
            &TraceEvent::IgEnter {
                node: 0,
                func: "main".into(),
                kind: "ordinary",
                path: "main".into(),
                input_pairs: 0,
                input_hash: 0,
            },
        );
        c.event(
            5,
            &TraceEvent::IgExit {
                node: 0,
                func: "main".into(),
                bottom: false,
                out_pairs: 2,
                rounds: 1,
            },
        );
        let doc = c.finish();
        assert_eq!(doc.matches('{').count(), doc.matches('}').count());
        assert!(doc.contains("\"traceEvents\""), "{doc}");
        assert!(doc.contains("\"ph\":\"B\"") && doc.contains("\"ph\":\"E\""));
    }

    #[test]
    fn tee_forwards_to_every_sink() {
        let mut a = TraceMetrics::new();
        let mut b = JsonlSink::scrubbed();
        {
            let mut tee = TeeSink::new();
            tee.push(&mut a);
            tee.push(&mut b);
            tee.event(
                1,
                &TraceEvent::BudgetTick {
                    steps: 64,
                    elapsed_us: 2,
                },
            );
        }
        assert_eq!(a.budget_ticks, 1);
        assert!(b.as_str().contains("budget_tick"));
    }
}
