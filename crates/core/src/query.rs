//! Read-only queries over a finished analysis.
//!
//! Client analyses (diagnostics, metrics, IDE integrations) want to ask
//! "what does this reference resolve to at this point?" without mutating
//! the analysis state. [`RefEnv`](crate::lvalue::RefEnv) interns
//! locations on demand and therefore needs `&mut LocationTable`; this
//! module re-implements the Table 1 resolution rules on top of
//! [`LocationTable::lookup`] only, so a [`FactQuery`] can be shared
//! freely. A location that was never interned during the analysis can
//! never appear in a points-to pair, so dropping it from a query result
//! (rather than interning it) loses nothing.

use crate::analysis::AnalysisResult;
use crate::location::{LocBase, LocId, Proj};
use crate::points_to_set::{Def, PtSet};
use pta_cfront::ast::FuncId;
use pta_cfront::span::Span;
use pta_simple::{
    BasicStmt, CallSiteId, Const, IdxClass, IrProgram, IrProj, Operand, StmtId, VarBase, VarPath,
    VarRef,
};
use std::collections::BTreeSet;

/// Read-only access to the points-to facts of one analysed program.
#[derive(Clone, Copy)]
pub struct FactQuery<'a> {
    /// The program in SIMPLE form.
    pub ir: &'a IrProgram,
    /// The analysis results being queried.
    pub result: &'a AnalysisResult,
}

impl<'a> FactQuery<'a> {
    /// Creates a query facade over `ir`'s analysis `result`.
    pub fn new(ir: &'a IrProgram, result: &'a AnalysisResult) -> Self {
        FactQuery { ir, result }
    }

    /// The merged points-to set flowing *into* a program point (empty if
    /// the point was never reached).
    pub fn at(&self, stmt: StmtId) -> PtSet {
        self.result.at(stmt)
    }

    /// True if the analysis visited this program point on some path.
    /// Distinguishes "reached with an empty set" from "never reached"
    /// ([`FactQuery::at`] returns an empty set for both).
    pub fn reached(&self, stmt: StmtId) -> bool {
        self.result.per_stmt.contains_key(&stmt)
    }

    /// The source span of a program point (dummy for built programs).
    pub fn span_of(&self, stmt: StmtId) -> Span {
        self.ir.span_of(stmt)
    }

    fn base_loc(&self, func: FuncId, base: &VarBase) -> Option<LocId> {
        let b = match base {
            VarBase::Global(g) => LocBase::Global(*g),
            VarBase::Var(v) => LocBase::Var(func, *v),
        };
        self.result.locs.lookup(&b, &[])
    }

    fn project(&self, l: LocId, p: Proj) -> Option<LocId> {
        let d = self.result.locs.get(l);
        let mut projs = d.projs.clone();
        projs.push(p);
        self.result.locs.lookup(&d.base, &projs)
    }

    fn apply_proj(&self, cur: &[(LocId, Def)], proj: &IrProj) -> Vec<(LocId, Def)> {
        let mut out = Vec::new();
        for (l, d) in cur {
            match proj {
                IrProj::Field(f) => {
                    if let Some(n) = self.project(*l, Proj::Field(f.clone())) {
                        push_unique(&mut out, n, *d);
                    }
                }
                IrProj::Index(IdxClass::Zero) => {
                    if let Some(n) = self.project(*l, Proj::Head) {
                        push_unique(&mut out, n, *d);
                    }
                }
                IrProj::Index(IdxClass::Positive) => {
                    if let Some(n) = self.project(*l, Proj::Tail) {
                        push_unique(&mut out, n, *d);
                    }
                }
                IrProj::Index(IdxClass::Unknown) => {
                    if let Some(n) = self.project(*l, Proj::Head) {
                        push_unique(&mut out, n, Def::P);
                    }
                    if let Some(n) = self.project(*l, Proj::Tail) {
                        push_unique(&mut out, n, Def::P);
                    }
                }
            }
        }
        out
    }

    /// Resolves a dereference-free path in `func`'s scope (Table 1,
    /// left column). Empty if the path was never materialized.
    pub fn path_locs(&self, func: FuncId, path: &VarPath) -> Vec<(LocId, Def)> {
        let Some(base) = self.base_loc(func, &path.base) else {
            return Vec::new();
        };
        let mut cur = vec![(base, Def::D)];
        for proj in &path.projs {
            cur = self.apply_proj(&cur, proj);
        }
        cur
    }

    fn tailify(&self, t: LocId) -> LocId {
        let d = self.result.locs.get(t);
        if matches!(
            d.base,
            LocBase::Heap | LocBase::HeapSite(_) | LocBase::StrLit
        ) {
            return t;
        }
        match d.projs.last() {
            Some(Proj::Head) => {
                let mut projs = d.projs.clone();
                projs.pop();
                projs.push(Proj::Tail);
                self.result.locs.lookup(&d.base, &projs).unwrap_or(t)
            }
            _ => t,
        }
    }

    fn shift_loc(&self, t: LocId, class: IdxClass) -> Vec<(LocId, Def)> {
        if self.result.locs.is_null(t) || self.result.locs.is_function(t) {
            return Vec::new();
        }
        match class {
            IdxClass::Zero => vec![(t, Def::D)],
            IdxClass::Positive => vec![(self.tailify(t), Def::D)],
            IdxClass::Unknown => {
                let mut v = vec![(t, Def::P)];
                let tl = self.tailify(t);
                if tl != t {
                    v.push((tl, Def::P));
                }
                v
            }
        }
    }

    /// The L-location set of a reference under `set` (Table 1, middle
    /// column): the locations a write through `r` could touch. NULL and
    /// function targets are skipped, as in the engine.
    pub fn l_locations(&self, func: FuncId, set: &PtSet, r: &VarRef) -> Vec<(LocId, Def)> {
        match r {
            VarRef::Path(p) => self.path_locs(func, p),
            VarRef::Deref { path, shift, after } => {
                let ptrs = self.path_locs(func, path);
                let mut out = Vec::new();
                for (pl, dl) in ptrs {
                    for (t, dp) in set.targets(pl) {
                        if self.result.locs.is_null(t) || self.result.locs.is_function(t) {
                            continue;
                        }
                        for (t2, ds) in self.shift_loc(t, *shift) {
                            let mut cur = vec![(t2, dl.and(dp).and(ds))];
                            for proj in after {
                                cur = self.apply_proj(&cur, proj);
                            }
                            for (l, d) in cur {
                                push_unique(&mut out, l, d);
                            }
                        }
                    }
                }
                out
            }
        }
    }

    /// The targets a dereference goes *through* under `set`: the union
    /// of the pointer path's target sets, NULL and function targets
    /// included (unlike [`FactQuery::l_locations`], which drops them).
    /// This is what dereference diagnostics inspect — did the pointer
    /// have NULL as a target, or as its *only* target?
    pub fn deref_base_targets(&self, func: FuncId, set: &PtSet, r: &VarRef) -> Vec<(LocId, Def)> {
        let VarRef::Deref { path, .. } = r else {
            return Vec::new();
        };
        let mut out = Vec::new();
        for (pl, dl) in self.path_locs(func, path) {
            for (t, dp) in set.targets(pl) {
                push_unique(&mut out, t, dl.and(dp));
            }
        }
        out
    }

    /// The R-location set of a reference read as a pointer value
    /// (Table 1, right column): one more hop through `set` than the
    /// L-location set, with definiteness conjunction.
    pub fn r_locations(&self, func: FuncId, set: &PtSet, r: &VarRef) -> Vec<(LocId, Def)> {
        let ls = self.l_locations(func, set, r);
        let mut out = Vec::new();
        for (l, d) in ls {
            for (t, dp) in set.targets(l) {
                push_unique(&mut out, t, d.and(dp));
            }
        }
        out
    }

    /// The R-location set of an operand in a pointer context.
    pub fn operand_r_locations(
        &self,
        func: FuncId,
        set: &PtSet,
        op: &Operand,
    ) -> Vec<(LocId, Def)> {
        match op {
            Operand::Ref(r) => self.r_locations(func, set, r),
            Operand::AddrOf(r) => self.l_locations(func, set, r),
            Operand::Func(f) => self
                .result
                .locs
                .lookup(&LocBase::Function(*f), &[])
                .map_or_else(Vec::new, |l| vec![(l, Def::D)]),
            Operand::Str(_) => self
                .result
                .locs
                .lookup(&LocBase::StrLit, &[])
                .map_or_else(Vec::new, |l| vec![(l, Def::P)]),
            Operand::Const(Const::Int(0)) => self
                .result
                .locs
                .lookup(&LocBase::Null, &[])
                .map_or_else(Vec::new, |l| vec![(l, Def::D)]),
            Operand::Const(_) => Vec::new(),
        }
    }

    /// The functions on some invocation-graph path from the entry.
    ///
    /// When the result came from a fallback engine (empty invocation
    /// graph), approximates reachability over the direct call graph
    /// seeded with the entry and every address-taken function — a
    /// superset, so "unreachable" stays trustworthy.
    pub fn reachable_functions(&self) -> BTreeSet<FuncId> {
        if !self.result.ig.is_empty() {
            return self.result.ig.iter().map(|(_, n)| n.func).collect();
        }
        let mut work: Vec<FuncId> = Vec::new();
        if let Some(e) = self.ir.entry {
            work.push(e);
        }
        // Fallback engines can't resolve indirect calls, so every
        // address-taken function is a root. Scoping roots to reachable
        // takers would be more precise, but the imprecision only widens
        // the superset.
        for (_, f) in self.ir.defined_functions() {
            let Some(body) = &f.body else { continue };
            body.for_each_basic(&mut |b, _| {
                for_each_function_operand(b, &mut |fid| work.push(fid));
            });
        }
        let mut seen = BTreeSet::new();
        while let Some(f) = work.pop() {
            if !seen.insert(f) {
                continue;
            }
            if let Some(body) = &self.ir.function(f).body {
                for (_, callee) in crate::invocation_graph::direct_callees(self.ir, body) {
                    work.push(callee);
                }
            }
        }
        seen
    }

    /// The callees the analysis actually invoked from a call site
    /// (several for a call through a function pointer). Empty for
    /// fallback results, whose invocation graph is empty.
    pub fn call_targets(&self, cs: CallSiteId) -> BTreeSet<FuncId> {
        let mut out = BTreeSet::new();
        for (_, n) in self.result.ig.iter() {
            for &(site, callee) in n.children.keys() {
                if site == cs {
                    out.insert(callee);
                }
            }
        }
        out
    }
}

fn for_each_function_operand(b: &BasicStmt, f: &mut impl FnMut(FuncId)) {
    let mut op = |o: &Operand| {
        if let Operand::Func(fid) = o {
            f(*fid);
        }
    };
    match b {
        BasicStmt::Copy { rhs, .. } | BasicStmt::Unary { rhs, .. } => op(rhs),
        BasicStmt::Binary { a, b, .. } => {
            op(a);
            op(b);
        }
        BasicStmt::PtrArith { .. } => {}
        BasicStmt::Alloc { size, .. } => op(size),
        BasicStmt::Call { args, .. } => args.iter().for_each(&mut op),
        BasicStmt::Return(Some(o)) => op(o),
        BasicStmt::Return(None) => {}
    }
}

fn push_unique(out: &mut Vec<(LocId, Def)>, l: LocId, d: Def) {
    for (el, ed) in out.iter_mut() {
        if *el == l {
            if *ed != d {
                *ed = Def::P;
            }
            return;
        }
    }
    out.push((l, d));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn query_matches_engine_resolution() {
        let pta = crate::run_source("int x; int main(void) { int *p; p = &x; return *p; }")
            .expect("analyses");
        let q = FactQuery::new(&pta.ir, &pta.result);
        let (main, f) = pta.ir.function_by_name("main").unwrap();
        // Resolve `*p` at the return statement.
        let mut ret_stmt = None;
        f.body.as_ref().unwrap().for_each_basic(&mut |b, id| {
            if matches!(b, BasicStmt::Return(_)) {
                ret_stmt = Some((b.clone(), id));
            }
        });
        let (_, id) = ret_stmt.expect("return present");
        assert!(q.reached(id));
        let set = q.at(id);
        let p = f.vars.iter().position(|v| v.name == "p").unwrap();
        let r = VarRef::Deref {
            path: VarPath::var(pta_simple::IrVarId(p as u32)),
            shift: IdxClass::Zero,
            after: vec![],
        };
        let ls = q.l_locations(main, &set, &r);
        assert_eq!(ls.len(), 1);
        assert_eq!(q.result.locs.name(ls[0].0), "x");
        assert_eq!(ls[0].1, Def::D);
    }

    #[test]
    fn unresolved_paths_are_empty_not_interned() {
        let pta = crate::run_source("int main(void) { return 0; }").expect("analyses");
        let q = FactQuery::new(&pta.ir, &pta.result);
        let before = q.result.locs.len();
        let (main, _) = pta.ir.function_by_name("main").unwrap();
        // A variable id that exists in no scope.
        let ghost = VarPath::var(pta_simple::IrVarId(99));
        assert!(q.path_locs(main, &ghost).is_empty());
        assert_eq!(q.result.locs.len(), before);
    }

    #[test]
    fn reachability_via_invocation_graph() {
        let pta = crate::run_source(
            "void used(void) {}
             void unused(void) {}
             int main(void) { used(); return 0; }",
        )
        .expect("analyses");
        let q = FactQuery::new(&pta.ir, &pta.result);
        let reach = q.reachable_functions();
        let (used, _) = pta.ir.function_by_name("used").unwrap();
        let (unused, _) = pta.ir.function_by_name("unused").unwrap();
        let (main, _) = pta.ir.function_by_name("main").unwrap();
        assert!(reach.contains(&main));
        assert!(reach.contains(&used));
        assert!(!reach.contains(&unused));
    }

    #[test]
    fn fallback_reachability_keeps_address_taken() {
        let ir = pta_simple::compile(
            "void cb(void) {}
             void dead(void) {}
             int main(void) { void (*fp)(void); fp = cb; fp(); return 0; }",
        )
        .expect("compiles");
        let out = crate::analyze_resilient(
            &ir,
            crate::AnalysisConfig {
                max_steps: 1,
                ..Default::default()
            },
        )
        .expect("ladder lands");
        assert!(!out.fidelity.is_full());
        let q = FactQuery::new(&ir, &out.result);
        let reach = q.reachable_functions();
        let (cb, _) = ir.function_by_name("cb").unwrap();
        let (dead, _) = ir.function_by_name("dead").unwrap();
        assert!(reach.contains(&cb), "address-taken stays reachable");
        assert!(!reach.contains(&dead));
    }

    #[test]
    fn call_targets_resolves_indirect_sites() {
        let pta = crate::run_source(
            "int f(void) { return 1; }
             int main(void) { int (*fp)(void); fp = f; return fp(); }",
        )
        .expect("analyses");
        let q = FactQuery::new(&pta.ir, &pta.result);
        let (fid, _) = pta.ir.function_by_name("f").unwrap();
        let indirect = pta
            .ir
            .call_sites
            .iter()
            .position(|c| c.indirect)
            .expect("indirect site");
        let targets = q.call_targets(CallSiteId(indirect as u32));
        assert!(targets.contains(&fid));
    }
}
