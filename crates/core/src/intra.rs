//! Intraprocedural (compositional) analysis rules — Figure 1 of the
//! paper, extended with the full set of structured constructs
//! (`do`/`for`/`switch`/`break`/`continue`/`return`).

use crate::analysis::{AnalysisError, Analyzer};
use crate::invocation_graph::IgNodeId;
use crate::location::LocId;
use crate::points_to_set::{merge_flow, Def, Flow, PtSet};
use crate::trace::TraceEvent;
use pta_cfront::ast::FuncId;
use pta_simple::{BasicStmt, IdxClass, Stmt, StmtId, VarRef};

/// The compositional flow result of a statement: the fall-through state
/// plus the pending states of each non-structured exit.
#[derive(Debug, Clone, Default)]
pub(crate) struct FlowOut {
    /// Normal completion.
    pub normal: Flow,
    /// Pending `break` states (resolved by the enclosing loop/switch).
    pub brk: Flow,
    /// Pending `continue` states (resolved by the enclosing loop).
    pub cont: Flow,
    /// Pending `return` states (resolved at the function boundary).
    pub ret: Flow,
}

impl FlowOut {
    pub(crate) fn normal(f: Flow) -> Self {
        FlowOut {
            normal: f,
            ..Default::default()
        }
    }

    fn absorb_exits(&mut self, other: &mut FlowOut) {
        self.brk = merge_flow(self.brk.take(), other.brk.take());
        self.cont = merge_flow(self.cont.take(), other.cont.take());
        self.ret = merge_flow(self.ret.take(), other.ret.take());
    }
}

impl<'p> Analyzer<'p> {
    /// Processes a statement tree with the given input flow fact.
    pub(crate) fn process_stmt(
        &mut self,
        func: FuncId,
        node: IgNodeId,
        stmt: &'p Stmt,
        input: Flow,
    ) -> Result<FlowOut, AnalysisError> {
        let Some(input) = input else {
            return Ok(FlowOut::default()); // unreachable code
        };
        match stmt {
            Stmt::Basic(b, id) => self.process_basic(func, node, b, *id, input),
            Stmt::Seq(stmts) => {
                let mut out = FlowOut::normal(Some(input));
                for s in stmts {
                    let mut next = self.process_stmt(func, node, s, out.normal.take())?;
                    out.normal = next.normal.take();
                    out.absorb_exits(&mut next);
                }
                Ok(out)
            }
            Stmt::If {
                cond,
                then_s,
                else_s,
                id,
            } => {
                self.record(*id, &input);
                self.record_cond_refs(func, cond, &input);
                let mut t = self.process_stmt(func, node, then_s, Some(input.clone()))?;
                let mut e = match else_s {
                    Some(e) => self.process_stmt(func, node, e, Some(input))?,
                    None => FlowOut::normal(Some(input)),
                };
                let mut out = FlowOut::normal(merge_flow(t.normal.take(), e.normal.take()));
                out.absorb_exits(&mut t);
                out.absorb_exits(&mut e);
                Ok(out)
            }
            Stmt::While {
                pre_cond,
                cond,
                body,
                id,
            } => {
                let mut inv = Some(input);
                let mut acc = FlowOut::default();
                loop {
                    let mut pre = self.process_stmt(func, node, pre_cond, inv.clone())?;
                    let test = pre.normal.take();
                    if let Some(t) = &test {
                        self.record(*id, t);
                        self.record_cond_refs(func, cond, t);
                    }
                    let mut b = self.process_stmt(func, node, body, test.clone())?;
                    let back = merge_flow(b.normal.take(), b.cont.take());
                    acc.brk = merge_flow(acc.brk.take(), b.brk.take());
                    acc.ret = merge_flow(acc.ret.take(), pre.ret.take());
                    acc.ret = merge_flow(acc.ret.take(), b.ret.take());
                    let new_inv = merge_flow(inv.clone(), back);
                    if new_inv == inv {
                        let normal = merge_flow(test, acc.brk.take());
                        return Ok(FlowOut {
                            normal,
                            brk: None,
                            cont: None,
                            ret: acc.ret,
                        });
                    }
                    inv = new_inv;
                }
            }
            Stmt::DoWhile {
                body,
                pre_cond,
                cond,
                id,
            } => {
                let mut inv = Some(input);
                let mut acc = FlowOut::default();
                loop {
                    let mut b = self.process_stmt(func, node, body, inv.clone())?;
                    let to_test = merge_flow(b.normal.take(), b.cont.take());
                    let mut pre = self.process_stmt(func, node, pre_cond, to_test)?;
                    let test = pre.normal.take();
                    if let Some(t) = &test {
                        self.record(*id, t);
                        self.record_cond_refs(func, cond, t);
                    }
                    acc.brk = merge_flow(acc.brk.take(), b.brk.take());
                    acc.ret = merge_flow(acc.ret.take(), b.ret.take());
                    acc.ret = merge_flow(acc.ret.take(), pre.ret.take());
                    let new_inv = merge_flow(inv.clone(), test.clone());
                    if new_inv == inv {
                        let normal = merge_flow(test, acc.brk.take());
                        return Ok(FlowOut {
                            normal,
                            brk: None,
                            cont: None,
                            ret: acc.ret,
                        });
                    }
                    inv = new_inv;
                }
            }
            Stmt::For {
                init,
                pre_cond,
                cond,
                step,
                body,
                id,
            } => {
                let mut i = self.process_stmt(func, node, init, Some(input))?;
                let mut inv = i.normal.take();
                let mut acc = FlowOut::default();
                acc.ret = merge_flow(acc.ret.take(), i.ret.take());
                loop {
                    let mut pre = self.process_stmt(func, node, pre_cond, inv.clone())?;
                    let test = pre.normal.take();
                    if let Some(t) = &test {
                        self.record(*id, t);
                        self.record_cond_refs(func, cond, t);
                    }
                    let mut b = self.process_stmt(func, node, body, test.clone())?;
                    let to_step = merge_flow(b.normal.take(), b.cont.take());
                    let mut st = self.process_stmt(func, node, step, to_step)?;
                    acc.brk = merge_flow(acc.brk.take(), b.brk.take());
                    for r in [pre.ret.take(), b.ret.take(), st.ret.take()] {
                        acc.ret = merge_flow(acc.ret.take(), r);
                    }
                    let new_inv = merge_flow(inv.clone(), st.normal.take());
                    if new_inv == inv {
                        let normal = merge_flow(test, acc.brk.take());
                        return Ok(FlowOut {
                            normal,
                            brk: None,
                            cont: None,
                            ret: acc.ret,
                        });
                    }
                    inv = new_inv;
                }
            }
            Stmt::Switch {
                scrutinee: _,
                arms,
                has_default,
                id,
            } => {
                self.record(*id, &input);
                // Conservative compositional rule: any arm may be
                // entered from the dispatch; fall-through chains arms.
                let mut exit: Flow = if *has_default {
                    None
                } else {
                    Some(input.clone())
                };
                let mut fall: Flow = None;
                let mut acc = FlowOut::default();
                for arm in arms {
                    let arm_in = merge_flow(Some(input.clone()), fall.take());
                    let mut o = self.process_stmt(func, node, &arm.body, arm_in)?;
                    exit = merge_flow(exit, o.brk.take());
                    fall = o.normal.take();
                    acc.cont = merge_flow(acc.cont.take(), o.cont.take());
                    acc.ret = merge_flow(acc.ret.take(), o.ret.take());
                }
                exit = merge_flow(exit, fall);
                Ok(FlowOut {
                    normal: exit,
                    brk: None,
                    cont: acc.cont,
                    ret: acc.ret,
                })
            }
            Stmt::Break(id) => {
                self.record(*id, &input);
                Ok(FlowOut {
                    brk: Some(input),
                    ..Default::default()
                })
            }
            Stmt::Continue(id) => {
                self.record(*id, &input);
                Ok(FlowOut {
                    cont: Some(input),
                    ..Default::default()
                })
            }
        }
    }

    /// Program points inside conditions carry indirect references too;
    /// recording happens at the owning control statement's id, which
    /// `record` already did — this hook exists for symmetry and future
    /// per-operand stats.
    fn record_cond_refs(&mut self, _func: FuncId, _cond: &pta_simple::CondExpr, _set: &PtSet) {}

    /// Figure 1's `process_basic_stmt`, extended with pointer
    /// arithmetic, allocation, calls, and returns. This wrapper owns
    /// the budget accounting and the trace points (budget heartbeat +
    /// per-statement transfer timing); the kernel below does the work.
    fn process_basic(
        &mut self,
        func: FuncId,
        node: IgNodeId,
        b: &'p BasicStmt,
        id: StmtId,
        input: PtSet,
    ) -> Result<FlowOut, AnalysisError> {
        if let Err(e) = self.budget.step(input.len()) {
            return Err(self.exhausted(e, node, Some(id)));
        }
        if self.tracer.enabled() {
            if self.budget.tick_due() {
                let (steps, elapsed_us) = (self.budget.steps(), self.budget.elapsed_us());
                self.tracer
                    .emit(|| TraceEvent::BudgetTick { steps, elapsed_us });
            }
            let pairs = input.len();
            let t0 = std::time::Instant::now();
            self.record(id, &input);
            let mut out = self.process_basic_kernel(func, node, b, id, input);
            if self.config.prune_liveness {
                if let Ok(o) = &mut out {
                    self.prune_flow(func, id, &mut o.normal);
                }
            }
            // For call statements the duration includes the nested call
            // processing (map, callee body, unmap).
            let dur_us = t0.elapsed().as_micros() as u64;
            let name = self.ir.function(func).name.clone();
            self.tracer.emit(|| TraceEvent::Stmt {
                stmt: id.0,
                func: name,
                pairs,
                dur_us,
            });
            return out;
        }
        self.record(id, &input);
        let mut out = self.process_basic_kernel(func, node, b, id, input);
        if self.config.prune_liveness {
            if let Ok(o) = &mut out {
                self.prune_flow(func, id, &mut o.normal);
            }
        }
        out
    }

    /// The `prune_liveness` hook: drops pairs sourced at a dead,
    /// never-address-taken local from a statement's fall-through flow.
    /// Only the *normal* edge is pruned — `return` states feed the
    /// function's exit set (queried by clients) and unmap discards
    /// callee locals anyway. Pairs whose source is not a frame variable
    /// of `func` (globals, symbolics, heap, other frames) always
    /// survive, as do pairs sourced under an address-taken or parameter
    /// root, so every resolution at a *use* point sees the exhaustive
    /// answer.
    fn prune_flow(&mut self, func: FuncId, id: StmtId, flow: &mut Flow) {
        self.ensure_prune_mask(func);
        let Some(set) = flow.as_mut() else { return };
        let (seen, pruned) = {
            let Some(mask) = self.prune_masks.get(&func).and_then(|m| m.as_ref()) else {
                return;
            };
            let Some(live) = mask.live_out.get(&id) else {
                return;
            };
            let before = set.len();
            let locs = &self.locs;
            set.retain(|src, _, _| match &locs.get(src).base {
                crate::location::LocBase::Var(g, v) if *g == func => {
                    let i = v.0 as usize;
                    // Keep the pair unless its source is provably dead.
                    !mask.prunable.contains(i) || live.contains(i)
                }
                _ => true,
            });
            (before as u64, (before - set.len()) as u64)
        };
        self.prune.seen_pairs += seen;
        self.prune.pruned_pairs += pruned;
    }

    /// Builds (once per function) the liveness mask `prune_flow` uses.
    fn ensure_prune_mask(&mut self, func: FuncId) {
        if self.prune_masks.contains_key(&func) {
            return;
        }
        let f = self.ir.function(func);
        let mask = crate::dataflow::prune_mask(self.ir, f);
        match &mask {
            Some(m) => {
                self.prune.funcs_analyzed += 1;
                if self.tracer.enabled() {
                    let (name, prunable, nodes, visits) =
                        (f.name.clone(), m.prunable.count(), m.nodes, m.visits);
                    self.tracer.emit(|| TraceEvent::Dataflow {
                        func: name,
                        prunable,
                        nodes,
                        visits,
                        converged: true,
                    });
                }
            }
            None => self.prune.funcs_skipped += 1,
        }
        self.prune_masks.insert(func, mask);
    }

    fn process_basic_kernel(
        &mut self,
        func: FuncId,
        node: IgNodeId,
        b: &'p BasicStmt,
        id: StmtId,
        input: PtSet,
    ) -> Result<FlowOut, AnalysisError> {
        match b {
            BasicStmt::Copy { lhs, rhs } => {
                if !self.is_pointer_assignment(func, lhs) {
                    self.check_discarded_address(func, rhs);
                    return Ok(FlowOut::normal(Some(input)));
                }
                let (l, r) = {
                    let mut env = self.renv(func);
                    let l = env.l_locations(&input, lhs);
                    let r = env.operand_r_locations(&input, rhs);
                    (l, r)
                };
                Ok(FlowOut::normal(Some(self.assign(input, &l, &r))))
            }
            BasicStmt::Unary { .. } | BasicStmt::Binary { .. } => {
                // Arithmetic only: pointer-producing forms were lowered
                // to Copy/PtrArith by the simplifier.
                Ok(FlowOut::normal(Some(input)))
            }
            BasicStmt::PtrArith { lhs, ptr, shift } => {
                let (l, r) = {
                    let mut env = self.renv(func);
                    let l = env.l_locations(&input, lhs);
                    let base = env.r_locations(&input, ptr);
                    let mut r = Vec::new();
                    for (t, d) in base {
                        for (t2, ds) in env.shift_loc(t, *shift) {
                            push_pair(&mut r, t2, d.and(ds));
                        }
                    }
                    (l, r)
                };
                if *shift != IdxClass::Zero {
                    self.warn(format!(
                        "pointer arithmetic in `{}` assumed to stay within the pointed-to object",
                        self.ir.function(func).name
                    ));
                }
                Ok(FlowOut::normal(Some(self.assign(input, &l, &r))))
            }
            BasicStmt::Alloc { lhs, .. } => {
                let heap_sites = self.config.heap_sites;
                let (l, r) = {
                    let mut env = self.renv(func);
                    let l = env.l_locations(&input, lhs);
                    let heap = if heap_sites {
                        env.locs.heap_site(id.0)
                    } else {
                        env.locs.heap()
                    };
                    (l, vec![(heap, Def::P)])
                };
                Ok(FlowOut::normal(Some(self.assign(input, &l, &r))))
            }
            BasicStmt::Call {
                lhs,
                target,
                args,
                call_site,
            } => {
                let out = self.process_call_stmt(
                    func,
                    node,
                    *call_site,
                    target,
                    lhs.as_ref(),
                    args,
                    input,
                )?;
                Ok(FlowOut::normal(out))
            }
            BasicStmt::Return(v) => {
                let ret_ty = &self.ir.function(func).ret;
                let carries = ret_ty.carries_pointers(&self.ir.structs);
                let mut out = input;
                if carries {
                    if let Some(v) = v {
                        out = self.assign_return(func, v, out);
                    }
                }
                Ok(FlowOut {
                    ret: Some(out),
                    ..Default::default()
                })
            }
        }
    }

    /// Records the returned pointer value into the function's
    /// return-value slot (`ret@f`), field-by-field for struct returns.
    fn assign_return(&mut self, func: FuncId, v: &pta_simple::Operand, input: PtSet) -> PtSet {
        let ir = self.ir;
        let ret_loc = self.locs.ret(ir, func);
        let leaves = self.ptr_leaves(ret_loc);
        if leaves.is_empty() {
            return input;
        }
        let ret_data = self.locs.get(ret_loc).clone();
        let mut out = input;
        for leaf in leaves {
            // Project the operand by the same path as the leaf.
            let leaf_projs = self.locs.get(leaf).projs[ret_data.projs.len()..].to_vec();
            let r = {
                let mut env = self.renv(func);
                match project_operand(v, &leaf_projs) {
                    Some(op) => env.operand_r_locations(&out, &op),
                    None => Vec::new(),
                }
            };
            let l = vec![(leaf, Def::D)];
            out = self.assign(out, &l, &r);
        }
        out
    }

    /// The kill/change/gen rule of Figure 1. Strong kills are restricted
    /// to non-summary L-locations; a definite L-location that is a
    /// summary (array tail, heap) is demoted to a change, and generated
    /// pairs from it are possible.
    pub(crate) fn assign(
        &mut self,
        input: PtSet,
        l_locs: &[(LocId, Def)],
        r_locs: &[(LocId, Def)],
    ) -> PtSet {
        let mut out = input;
        for (p, d) in l_locs {
            match d {
                Def::D if !self.locs.is_summary(*p) => out.kill_from(*p),
                _ => out.demote_from(*p),
            }
        }
        for (p, d1) in l_locs {
            let d1 = if self.locs.is_summary(*p) {
                Def::P
            } else {
                *d1
            };
            for (x, d2) in r_locs {
                out.insert(*p, *x, d1.and(*d2));
            }
        }
        out
    }

    /// Warns when an address value flows into a non-pointer destination
    /// (cast abuse loses points-to information).
    fn check_discarded_address(&mut self, func: FuncId, rhs: &pta_simple::Operand) {
        if matches!(
            rhs,
            pta_simple::Operand::AddrOf(_) | pta_simple::Operand::Func(_)
        ) {
            self.warn(format!(
                "address value stored into a non-pointer in `{}`; points-to information is lost",
                self.ir.function(func).name
            ));
        }
    }
}

/// Projects an operand by extra projections (for struct returns:
/// `return s;` assigns `ret.f = s.f` for each leaf).
fn project_operand(
    op: &pta_simple::Operand,
    projs: &[crate::location::Proj],
) -> Option<pta_simple::Operand> {
    use crate::location::Proj;
    use pta_simple::{IrProj, Operand};
    if projs.is_empty() {
        return Some(op.clone());
    }
    let Operand::Ref(r) = op else { return None };
    let mut r = r.clone();
    for p in projs {
        let ip = match p {
            Proj::Field(f) => IrProj::Field(f.clone()),
            Proj::Head => IrProj::Index(IdxClass::Zero),
            Proj::Tail => IrProj::Index(IdxClass::Positive),
        };
        r = append_proj(r, ip);
    }
    Some(Operand::Ref(r))
}

pub(crate) fn append_proj(r: VarRef, p: pta_simple::IrProj) -> VarRef {
    match r {
        VarRef::Path(path) => VarRef::Path(path.project(p)),
        VarRef::Deref {
            path,
            shift,
            mut after,
        } => {
            after.push(p);
            VarRef::Deref { path, shift, after }
        }
    }
}

pub(crate) fn push_pair(out: &mut Vec<(LocId, Def)>, l: LocId, d: Def) {
    for (el, ed) in out.iter_mut() {
        if *el == l {
            if *ed != d {
                *ed = Def::P;
            }
            return;
        }
    }
    out.push((l, d));
}
