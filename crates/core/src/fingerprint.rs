//! Content fingerprints shared by the trace layer and the persistent
//! fact store.
//!
//! One FNV-1a implementation serves every fingerprint in the workspace:
//! the per-context input hashes in trace events
//! ([`crate::points_to_set::PtSet::fingerprint`]), the per-function
//! source fingerprints the store uses to decide which memoized context
//! pairs are safe to replay, and the snapshot payload checksum.
//!
//! # What the function fingerprint covers
//!
//! [`function`] hashes the function's name, signature, variables, and
//! its *printed* SIMPLE body. The printer embeds statement ids
//! (`[s12]`) and call-site ids (`/* cs3 */`) in its output, so any edit
//! that renumbers program points — even in an otherwise-untouched
//! function — changes that function's fingerprint. That is deliberate
//! and conservative: a replayed context pair stores facts keyed by
//! `StmtId`, so a function whose statement ids moved must be treated as
//! dirty.
//!
//! [`skeleton`] hashes everything *outside* function bodies: globals,
//! struct definitions, and the ordered function list with signatures
//! and defined/extern status. The store replays nothing when the
//! skeleton changed, because the dense ids (`FuncId`, `GlobalId`,
//! `StructId`) are only guaranteed stable while the skeleton is
//! unchanged.

use crate::analysis::AnalysisConfig;
use pta_cfront::ast::FuncId;
use pta_simple::IrProgram;

/// Version tag written into every persisted artifact (store snapshots,
/// bench JSON). Bump when any on-disk format changes shape.
pub const SCHEMA_VERSION: &str = "pta.v1";

/// The FNV-1a 64-bit offset basis.
pub const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// The FNV-1a 64-bit prime.
pub const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// An incremental FNV-1a 64-bit hasher.
#[derive(Debug, Clone, Copy)]
pub struct Fnv1a(u64);

impl Default for Fnv1a {
    fn default() -> Self {
        Fnv1a(FNV_OFFSET)
    }
}

impl Fnv1a {
    /// A hasher at the offset basis.
    pub fn new() -> Self {
        Self::default()
    }

    /// Hashes raw bytes.
    pub fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(FNV_PRIME);
        }
    }

    /// Hashes a string's bytes followed by a NUL separator, so
    /// `"ab","c"` and `"a","bc"` hash differently.
    pub fn write_str(&mut self, s: &str) {
        self.write(s.as_bytes());
        self.write(&[0]);
    }

    /// Hashes a `u64` in little-endian byte order.
    pub fn write_u64(&mut self, v: u64) {
        self.write(&v.to_le_bytes());
    }

    /// The current hash value.
    pub fn finish(&self) -> u64 {
        self.0
    }
}

/// One-shot FNV-1a over a byte slice (the snapshot payload checksum).
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = Fnv1a::new();
    h.write(bytes);
    h.finish()
}

/// Source fingerprint of one function: name, signature, variable table,
/// and the printed SIMPLE body (which embeds statement and call-site
/// ids — see the module docs for why that is wanted).
pub fn function(ir: &IrProgram, f: FuncId) -> u64 {
    let func = ir.function(f);
    let mut h = Fnv1a::new();
    h.write_str(&func.name);
    h.write_str(&format!("{:?}", func.ret));
    h.write_u64(func.n_params as u64);
    h.write_u64(u64::from(func.variadic));
    for v in &func.vars {
        h.write_str(&v.name);
        h.write_str(&format!("{:?}", v.ty));
        h.write_str(&format!("{:?}", v.kind));
    }
    match &func.body {
        Some(_) => h.write_str(&pta_simple::printer::print_function(ir, func)),
        None => h.write_str("<extern>"),
    }
    h.finish()
}

/// Skeleton fingerprint of a program: globals, struct definitions, and
/// the ordered function list with signatures and defined/extern status
/// — everything that pins the dense id spaces, but no function bodies.
pub fn skeleton(ir: &IrProgram) -> u64 {
    let mut h = Fnv1a::new();
    h.write_u64(ir.globals.len() as u64);
    for g in &ir.globals {
        h.write_str(&g.name);
        h.write_str(&format!("{:?}", g.ty));
    }
    h.write_u64(ir.structs.len() as u64);
    for (_, def) in ir.structs.iter() {
        h.write_str(&format!("{def:?}"));
    }
    h.write_u64(ir.functions.len() as u64);
    for func in &ir.functions {
        h.write_str(&func.name);
        h.write_str(&format!("{:?}", func.ret));
        h.write_u64(func.n_params as u64);
        for v in func.vars.iter().take(func.n_params) {
            h.write_str(&format!("{:?}", v.ty));
        }
        h.write_u64(u64::from(func.variadic));
        h.write_u64(u64::from(func.is_defined()));
    }
    h.write_u64(ir.entry.map_or(u64::MAX, |f| u64::from(f.0)));
    h.finish()
}

/// Digest of every analysis knob that can change computed facts. A
/// snapshot saved under one configuration is never replayed under
/// another.
pub fn config(c: &AnalysisConfig) -> u64 {
    let mut h = Fnv1a::new();
    h.write_u64(u64::from(c.max_sym_depth));
    h.write_u64(c.max_ig_nodes as u64);
    h.write_u64(u64::from(c.strict_externs));
    h.write_u64(c.max_steps);
    h.write_u64(u64::from(c.record_stats));
    h.write_u64(u64::from(c.heap_sites));
    h.write_u64(c.deadline.map_or(u64::MAX, |d| d.as_millis() as u64));
    h.write_u64(c.max_pt_pairs as u64);
    h.write_u64(u64::from(c.max_map_depth));
    h.write_u64(u64::from(c.prune_liveness));
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv_matches_reference_vectors() {
        // Standard FNV-1a 64 test vectors.
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn write_str_is_boundary_sensitive() {
        let mut a = Fnv1a::new();
        a.write_str("ab");
        a.write_str("c");
        let mut b = Fnv1a::new();
        b.write_str("a");
        b.write_str("bc");
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn body_edit_changes_only_that_function() {
        let ir1 = pta_simple::compile(
            "int f(void){ return 1; }
             int main(void){ return f(); }",
        )
        .unwrap();
        let ir2 = pta_simple::compile(
            "int f(void){ int x; x = 2; return x; }
             int main(void){ return f(); }",
        )
        .unwrap();
        let (f1, _) = ir1.function_by_name("f").unwrap();
        let (f2, _) = ir2.function_by_name("f").unwrap();
        assert_ne!(function(&ir1, f1), function(&ir2, f2));
        assert_eq!(skeleton(&ir1), skeleton(&ir2));
        // `f` comes first, so main's statement ids shift and its
        // fingerprint must change with them.
        let (m1, _) = ir1.function_by_name("main").unwrap();
        let (m2, _) = ir2.function_by_name("main").unwrap();
        assert_ne!(function(&ir1, m1), function(&ir2, m2));
    }

    #[test]
    fn skeleton_tracks_globals_and_signatures() {
        let a = pta_simple::compile("int g; int main(void){ return 0; }").unwrap();
        let b = pta_simple::compile("int h; int main(void){ return 0; }").unwrap();
        let c = pta_simple::compile("int g; int main(void){ return 0; }").unwrap();
        assert_ne!(skeleton(&a), skeleton(&b));
        assert_eq!(skeleton(&a), skeleton(&c));
    }

    #[test]
    fn config_digest_tracks_every_knob() {
        let base = AnalysisConfig::default();
        let d0 = config(&base);
        let variants = [
            AnalysisConfig {
                max_sym_depth: 4,
                ..base.clone()
            },
            AnalysisConfig {
                heap_sites: true,
                ..base.clone()
            },
            AnalysisConfig {
                max_steps: 1,
                ..base.clone()
            },
            AnalysisConfig {
                deadline: Some(std::time::Duration::from_millis(5)),
                ..base.clone()
            },
            AnalysisConfig {
                prune_liveness: true,
                ..base.clone()
            },
        ];
        for v in variants {
            assert_ne!(config(&v), d0);
        }
        assert_eq!(config(&base), d0);
    }
}
