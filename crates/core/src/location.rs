//! Abstract stack locations (§3.1 of the paper).
//!
//! Every real storage location that can participate in a points-to
//! relationship is represented by exactly one *named abstract stack
//! location* (Property 3.1): a named variable, a field path inside it,
//! an array head/tail element, a *symbolic name* (`1_x`, `2_x`, …) for an
//! invisible variable, the single `heap` location, the `null`
//! pseudo-location, string-literal storage, or a function (the target of
//! a function pointer).
//!
//! [`LocationTable`] is the per-program interner behind the analysis:
//! every location shape maps to a dense [`LocId`] exactly once, via an
//! FxHash-bucketed index (no structural tree comparisons on the hot
//! path), and each id carries a classification bitmask so predicates
//! like [`LocationTable::is_summary`] are a single flag test instead of
//! a match over the interned data.

use crate::dense::{FxHashMap, FxHasher};
use pta_cfront::ast::{FuncId, GlobalId};
use pta_cfront::types::Type;
use pta_simple::{IrProgram, IrVarId};
use std::fmt;
use std::hash::{Hash, Hasher};

/// An interned abstract stack location.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct LocId(pub u32);

impl fmt::Display for LocId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "loc{}", self.0)
    }
}

/// One projection step inside a storage object.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Proj {
    /// A struct/union field.
    Field(String),
    /// The first element of an array (`a[0]` — `a_head` in the paper).
    Head,
    /// All other elements (`a[1..]` — `a_tail`; a *summary* location).
    Tail,
}

/// The root of an abstract location.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum LocBase {
    /// A global variable.
    Global(GlobalId),
    /// A parameter, local, or temporary of a function.
    Var(FuncId, IrVarId),
    /// A symbolic name for invisible variables, owned by a function.
    /// The `u32` indexes the function's symbolic-name registry.
    Symbolic(FuncId, u32),
    /// The single abstract heap location.
    Heap,
    /// An allocation-site-specific heap location (extension: enabled by
    /// `AnalysisConfig::heap_sites`; the paper uses the single `heap`).
    HeapSite(u32),
    /// The NULL pseudo-location (every pointer is initialized to it).
    Null,
    /// Storage of all string literals.
    StrLit,
    /// The code location of a function (target of function pointers).
    Function(FuncId),
    /// The return-value slot of a function (analysis-internal).
    Ret(FuncId),
}

/// The interned data of one location.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LocData {
    /// Root storage.
    pub base: LocBase,
    /// Projections from the root.
    pub projs: Vec<Proj>,
    /// The C type of this location (`None` for `heap`, `null`,
    /// string-literal storage, and functions, which are untyped
    /// summaries).
    pub ty: Option<Type>,
    /// Human-readable name (stable, used in reports and tests).
    pub name: String,
}

/// Metadata of a symbolic name (created by the map process).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SymbolicData {
    /// The function whose scope the name lives in.
    pub func: FuncId,
    /// Indirection depth (the `1` of `1_x`).
    pub depth: u32,
    /// Printable name (`1_x`).
    pub name: String,
    /// The type of the invisible variables it stands for.
    pub ty: Option<Type>,
}

// Per-location classification flags, computed once at intern time.
const F_SUMMARY: u8 = 1 << 0;
const F_NULL: u8 = 1 << 1;
const F_FUNCTION: u8 = 1 << 2;
const F_HEAP: u8 = 1 << 3;
const F_SYMBOLIC: u8 = 1 << 4;

fn classify(base: &LocBase, projs: &[Proj]) -> u8 {
    let mut f = 0;
    match base {
        LocBase::Heap | LocBase::HeapSite(_) => f |= F_HEAP | F_SUMMARY,
        LocBase::StrLit => f |= F_SUMMARY,
        LocBase::Null => f |= F_NULL,
        LocBase::Function(_) => f |= F_FUNCTION,
        LocBase::Symbolic(..) => f |= F_SYMBOLIC,
        _ => {}
    }
    if projs.iter().any(|p| matches!(p, Proj::Tail)) {
        f |= F_SUMMARY;
    }
    f
}

fn key_hash(base: &LocBase, projs: &[Proj]) -> u64 {
    let mut h = FxHasher::default();
    base.hash(&mut h);
    projs.hash(&mut h);
    h.finish()
}

fn sym_hash(func: FuncId, name: &str) -> u64 {
    let mut h = FxHasher::default();
    func.hash(&mut h);
    name.hash(&mut h);
    h.finish()
}

/// Interning table for abstract locations.
///
/// Locations are created deterministically in analysis order, so ids are
/// stable for a given program and configuration. The index maps the
/// FxHash of `(base, projs)` to candidate ids (hand-rolled hash
/// buckets), so lookups never clone the key and hits cost one hash plus
/// a candidate comparison.
#[derive(Debug, Clone, Default)]
pub struct LocationTable {
    data: Vec<LocData>,
    flags: Vec<u8>,
    index: FxHashMap<u64, Vec<LocId>>,
    symbolics: Vec<SymbolicData>,
    sym_index: FxHashMap<u64, Vec<u32>>,
}

/// Former name of [`LocationTable`], kept for downstream code.
pub type LocTable = LocationTable;

impl LocationTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of interned locations.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True if no location has been interned.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// The data behind an id.
    pub fn get(&self, id: LocId) -> &LocData {
        &self.data[id.0 as usize]
    }

    /// The display name of a location.
    pub fn name(&self, id: LocId) -> &str {
        &self.data[id.0 as usize].name
    }

    /// Finds an already-interned location.
    pub fn lookup(&self, base: &LocBase, projs: &[Proj]) -> Option<LocId> {
        let candidates = self.index.get(&key_hash(base, projs))?;
        candidates.iter().copied().find(|&id| {
            let d = &self.data[id.0 as usize];
            d.base == *base && d.projs == projs
        })
    }

    /// Interns a location.
    pub fn intern(
        &mut self,
        base: LocBase,
        projs: Vec<Proj>,
        ty: Option<Type>,
        name: String,
    ) -> LocId {
        if let Some(id) = self.lookup(&base, &projs) {
            return id;
        }
        let id = LocId(self.data.len() as u32);
        self.index
            .entry(key_hash(&base, &projs))
            .or_default()
            .push(id);
        self.flags.push(classify(&base, &projs));
        self.data.push(LocData {
            base,
            projs,
            ty,
            name,
        });
        id
    }

    /// The `heap` location.
    pub fn heap(&mut self) -> LocId {
        self.intern(LocBase::Heap, vec![], None, "heap".to_owned())
    }

    /// An allocation-site heap location (extension).
    pub fn heap_site(&mut self, site: u32) -> LocId {
        self.intern(
            LocBase::HeapSite(site),
            vec![],
            None,
            format!("heap@s{site}"),
        )
    }

    /// The `null` pseudo-location.
    pub fn null(&mut self) -> LocId {
        self.intern(LocBase::Null, vec![], None, "null".to_owned())
    }

    /// The string-literal storage location.
    pub fn strlit(&mut self) -> LocId {
        self.intern(LocBase::StrLit, vec![], None, "strlit".to_owned())
    }

    /// The code location of function `f`.
    pub fn function(&mut self, ir: &IrProgram, f: FuncId) -> LocId {
        let name = ir.function(f).name.clone();
        self.intern(LocBase::Function(f), vec![], None, name)
    }

    /// The return-value slot of function `f`.
    pub fn ret(&mut self, ir: &IrProgram, f: FuncId) -> LocId {
        let func = ir.function(f);
        self.intern(
            LocBase::Ret(f),
            vec![],
            Some(func.ret.clone()),
            format!("ret@{}", func.name),
        )
    }

    /// The location of a variable root.
    pub fn var(&mut self, ir: &IrProgram, func: FuncId, v: IrVarId) -> LocId {
        let data = ir.function(func).var(v);
        self.intern(
            LocBase::Var(func, v),
            vec![],
            Some(data.ty.clone()),
            data.name.clone(),
        )
    }

    /// The location of a global root.
    pub fn global(&mut self, ir: &IrProgram, g: GlobalId) -> LocId {
        let data = ir.global(g);
        self.intern(
            LocBase::Global(g),
            vec![],
            Some(data.ty.clone()),
            data.name.clone(),
        )
    }

    /// Projects a location by one step, computing the resulting type and
    /// name. Projections on `heap`/`strlit` collapse back to the summary
    /// location itself; projections on `null` or functions return `None`.
    pub fn project(&mut self, id: LocId, proj: Proj, ir: &IrProgram) -> Option<LocId> {
        let d = self.get(id).clone();
        match d.base {
            LocBase::Heap | LocBase::HeapSite(_) | LocBase::StrLit => return Some(id),
            LocBase::Null | LocBase::Function(_) => return None,
            _ => {}
        }
        let ty = d.ty.as_ref()?;
        let (new_ty, suffix) = match &proj {
            Proj::Field(f) => {
                let Type::Struct(sid) = ty else { return None };
                let def = ir.structs.def(*sid);
                let field = def.field(f)?;
                (field.ty.clone(), format!(".{f}"))
            }
            Proj::Head => {
                let elem = ty.elem()?;
                (elem.clone(), "[0]".to_owned())
            }
            Proj::Tail => {
                let elem = ty.elem()?;
                (elem.clone(), "[1..]".to_owned())
            }
        };
        let mut projs = d.projs.clone();
        projs.push(proj);
        let name = format!("{}{}", d.name, suffix);
        Some(self.intern(d.base, projs, Some(new_ty), name))
    }

    /// Creates (or returns) a symbolic name owned by `func`.
    pub fn symbolic(&mut self, func: FuncId, name: &str, depth: u32, ty: Option<Type>) -> LocId {
        let h = sym_hash(func, name);
        let found = self.sym_index.get(&h).and_then(|candidates| {
            candidates.iter().copied().find(|&i| {
                let s = &self.symbolics[i as usize];
                s.func == func && s.name == name
            })
        });
        let sym_idx = match found {
            Some(i) => i,
            None => {
                let i = self.symbolics.len() as u32;
                self.symbolics.push(SymbolicData {
                    func,
                    depth,
                    name: name.to_owned(),
                    ty: ty.clone(),
                });
                self.sym_index.entry(h).or_default().push(i);
                i
            }
        };
        self.intern(
            LocBase::Symbolic(func, sym_idx),
            vec![],
            ty,
            name.to_owned(),
        )
    }

    /// Metadata of a symbolic location's base (if it is one).
    pub fn symbolic_data(&self, id: LocId) -> Option<&SymbolicData> {
        match self.get(id).base {
            LocBase::Symbolic(_, i) => Some(&self.symbolics[i as usize]),
            _ => None,
        }
    }

    /// The type of a location, if known.
    pub fn ty(&self, id: LocId) -> Option<&Type> {
        self.get(id).ty.as_ref()
    }

    #[inline]
    fn flag(&self, id: LocId, f: u8) -> bool {
        self.flags[id.0 as usize] & f != 0
    }

    /// True if this abstract location may stand for more than one real
    /// location, so that strong updates (kills) through it are unsound:
    /// the `heap`, string-literal storage, and any array-tail element.
    pub fn is_summary(&self, id: LocId) -> bool {
        self.flag(id, F_SUMMARY)
    }

    /// True if the location is the `null` pseudo-location.
    pub fn is_null(&self, id: LocId) -> bool {
        self.flag(id, F_NULL)
    }

    /// True for function code locations.
    pub fn is_function(&self, id: LocId) -> bool {
        self.flag(id, F_FUNCTION)
    }

    /// The function id if this is a function code location.
    pub fn as_function(&self, id: LocId) -> Option<FuncId> {
        match self.get(id).base {
            LocBase::Function(f) => Some(f),
            _ => None,
        }
    }

    /// True for heap locations (the summary `heap` or any
    /// allocation-site location).
    pub fn is_heap(&self, id: LocId) -> bool {
        self.flag(id, F_HEAP)
    }

    /// True if the location lives in the scope of `func` (its variables
    /// and symbolic names) — i.e. it disappears when `func` returns.
    pub fn is_scoped_to(&self, id: LocId, func: FuncId) -> bool {
        match self.get(id).base {
            LocBase::Var(f, _) | LocBase::Symbolic(f, _) | LocBase::Ret(f) => f == func,
            _ => false,
        }
    }

    /// True for symbolic locations (at any projection depth).
    pub fn is_symbolic(&self, id: LocId) -> bool {
        self.flag(id, F_SYMBOLIC)
    }

    /// Iterates over all interned ids.
    pub fn ids(&self) -> impl Iterator<Item = LocId> {
        (0..self.data.len() as u32).map(LocId)
    }

    /// The symbolic-name registry in creation order (persisted by the
    /// store so [`LocBase::Symbolic`] indices survive a reload).
    pub fn symbolic_entries(&self) -> &[SymbolicData] {
        &self.symbolics
    }

    /// Re-registers a symbolic name during a snapshot reload, *without*
    /// interning a location for it (the location rows are replayed
    /// separately, in id order). Must be called in the registry's
    /// original creation order. Returns the registry index.
    pub fn restore_symbolic(
        &mut self,
        func: FuncId,
        name: &str,
        depth: u32,
        ty: Option<Type>,
    ) -> u32 {
        let h = sym_hash(func, name);
        let i = self.symbolics.len() as u32;
        self.symbolics.push(SymbolicData {
            func,
            depth,
            name: name.to_owned(),
            ty,
        });
        self.sym_index.entry(h).or_default().push(i);
        i
    }

    /// Recomputes the types and names of variable-rooted rows belonging
    /// to `funcs` against a (possibly edited) program.
    ///
    /// A preloaded table keys rows by `(base, projs)` only, so rows of a
    /// *dirty* function would otherwise keep the types and names of the
    /// old source — and location types steer the analysis (pointer-leaf
    /// enumeration). Rows whose variable no longer exists, or whose
    /// projection path no longer type-checks, keep their old data: the
    /// new code can never look such a row up, because resolving the same
    /// path against the new program fails first.
    ///
    /// Rows rooted elsewhere need no refresh: globals and struct layouts
    /// are skeleton-fixed, `Ret` types are signature-fixed, and symbolic
    /// types derive from signatures and globals.
    pub fn refresh_for(&mut self, ir: &IrProgram, funcs: &std::collections::BTreeSet<FuncId>) {
        for i in 0..self.data.len() {
            let LocBase::Var(f, v) = self.data[i].base else {
                continue;
            };
            if !funcs.contains(&f) {
                continue;
            }
            let function = ir.function(f);
            let Some(var) = function.vars.get(v.0 as usize) else {
                continue;
            };
            let mut ty = var.ty.clone();
            let mut name = var.name.clone();
            let mut ok = true;
            for p in &self.data[i].projs {
                match p {
                    Proj::Field(fname) => {
                        let Type::Struct(sid) = ty else {
                            ok = false;
                            break;
                        };
                        let Some(field) = ir.structs.def(sid).field(fname) else {
                            ok = false;
                            break;
                        };
                        ty = field.ty.clone();
                        name.push('.');
                        name.push_str(fname);
                    }
                    Proj::Head => {
                        let Some(elem) = ty.elem() else {
                            ok = false;
                            break;
                        };
                        ty = elem.clone();
                        name.push_str("[0]");
                    }
                    Proj::Tail => {
                        let Some(elem) = ty.elem() else {
                            ok = false;
                            break;
                        };
                        ty = elem.clone();
                        name.push_str("[1..]");
                    }
                }
            }
            if ok {
                self.data[i].ty = Some(ty);
                self.data[i].name = name;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_ir() -> IrProgram {
        pta_simple::compile(
            "struct s { int *p; int a[4]; };
             struct s gs;
             int arr[8];
             int f1(void) { return 1; }
             int main(void) { int x; int *q; q = &x; return f1(); }",
        )
        .expect("compile ok")
    }

    #[test]
    fn intern_is_idempotent() {
        let ir = tiny_ir();
        let mut t = LocationTable::new();
        let a = t.global(&ir, pta_cfront::ast::GlobalId(0));
        let b = t.global(&ir, pta_cfront::ast::GlobalId(0));
        assert_eq!(a, b);
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn project_fields_and_arrays() {
        let ir = tiny_ir();
        let mut t = LocationTable::new();
        let gs = t.global(&ir, pta_cfront::ast::GlobalId(0));
        let p = t.project(gs, Proj::Field("p".into()), &ir).unwrap();
        assert_eq!(t.name(p), "gs.p");
        assert_eq!(t.ty(p), Some(&pta_cfront::types::Type::Int.ptr_to()));
        let a = t.project(gs, Proj::Field("a".into()), &ir).unwrap();
        let head = t.project(a, Proj::Head, &ir).unwrap();
        let tail = t.project(a, Proj::Tail, &ir).unwrap();
        assert_eq!(t.name(head), "gs.a[0]");
        assert_eq!(t.name(tail), "gs.a[1..]");
        assert!(!t.is_summary(head));
        assert!(t.is_summary(tail));
    }

    #[test]
    fn bad_projections_return_none() {
        let ir = tiny_ir();
        let mut t = LocationTable::new();
        let gs = t.global(&ir, pta_cfront::ast::GlobalId(0));
        assert!(t.project(gs, Proj::Field("zzz".into()), &ir).is_none());
        assert!(t.project(gs, Proj::Head, &ir).is_none());
        let null = t.null();
        assert!(t.project(null, Proj::Head, &ir).is_none());
    }

    #[test]
    fn heap_projections_collapse() {
        let ir = tiny_ir();
        let mut t = LocationTable::new();
        let h = t.heap();
        assert_eq!(t.project(h, Proj::Field("p".into()), &ir), Some(h));
        assert_eq!(t.project(h, Proj::Tail, &ir), Some(h));
        assert!(t.is_summary(h));
    }

    #[test]
    fn symbolic_names_are_per_function() {
        let ir = tiny_ir();
        let mut t = LocationTable::new();
        let (main_id, _) = ir.function_by_name("main").unwrap();
        let (f1_id, _) = ir.function_by_name("f1").unwrap();
        let s1 = t.symbolic(main_id, "1_x", 1, Some(pta_cfront::types::Type::Int));
        let s2 = t.symbolic(main_id, "1_x", 1, Some(pta_cfront::types::Type::Int));
        let s3 = t.symbolic(f1_id, "1_x", 1, Some(pta_cfront::types::Type::Int));
        assert_eq!(s1, s2);
        assert_ne!(s1, s3);
        assert_eq!(t.symbolic_data(s1).unwrap().depth, 1);
        assert!(t.is_symbolic(s1));
    }

    #[test]
    fn scoping_and_classification() {
        let ir = tiny_ir();
        // The old name still works through the alias.
        let mut t = LocTable::new();
        let (main_id, _) = ir.function_by_name("main").unwrap();
        let (f1_id, _) = ir.function_by_name("f1").unwrap();
        let x = t.var(&ir, main_id, pta_simple::IrVarId(0));
        assert!(t.is_scoped_to(x, main_id));
        assert!(!t.is_scoped_to(x, f1_id));
        let fl = t.function(&ir, f1_id);
        assert!(t.is_function(fl));
        assert_eq!(t.as_function(fl), Some(f1_id));
        let n = t.null();
        assert!(t.is_null(n));
        assert!(!t.is_summary(n));
    }
}
