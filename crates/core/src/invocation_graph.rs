//! The invocation graph (§4 of the paper).
//!
//! Each node represents one procedure invocation chain from `main`.
//! Recursion is approximated by matched pairs of *recursive* and
//! *approximate* nodes connected by a special back-edge. The graph is
//! built eagerly over direct calls (a depth-first traversal of the call
//! structure) and extended incrementally at indirect call sites during
//! points-to analysis (§5).

use crate::analysis::AnalysisError;
use crate::budget::TripPoint;
use crate::location::LocId;
use crate::points_to_set::{Flow, PtSet};
use pta_cfront::ast::FuncId;
use pta_simple::{BasicStmt, CallSiteId, CallTarget, IrProgram, Stmt, StmtId};
use std::collections::BTreeMap;

/// The invocation graph hit its node cap while being extended. Carries
/// the invocation chain that tripped it so the error can say *where*.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IgOverflow {
    /// The configured cap.
    pub limit: usize,
    /// Function names from `main` down to the call that did not fit.
    pub chain: Vec<String>,
}

impl IgOverflow {
    /// Converts into the analysis-level budget error.
    pub fn into_error(self, _ir: &IrProgram, stmt: Option<StmtId>) -> AnalysisError {
        let function = self.chain.last().cloned().unwrap_or_else(|| "?".into());
        AnalysisError::IgBudget {
            limit: self.limit,
            at: TripPoint {
                function,
                ig_path: self.chain.join(" > "),
                stmt,
            },
        }
    }
}

/// Index of a node in the invocation graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct IgNodeId(pub u32);

/// Node classification (Figure 2 of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum IgKind {
    /// A normal invocation.
    Ordinary,
    /// The head of a recursive cycle: a fixed-point is computed here.
    Recursive,
    /// A repeated occurrence of a recursive function: uses the stored
    /// approximation of its matching recursive node instead of
    /// re-evaluating the body.
    Approximate,
}

impl IgKind {
    /// A stable lowercase tag (the trace layer's `kind` field value).
    pub fn tag(self) -> &'static str {
        match self {
            IgKind::Ordinary => "ordinary",
            IgKind::Recursive => "recursive",
            IgKind::Approximate => "approximate",
        }
    }
}

/// Per-context mapping information: which caller locations each symbolic
/// name stands for in this invocation (recorded by the map process and
/// consumed by unmapping and by later interprocedural analyses).
pub type MapInfo = BTreeMap<LocId, Vec<LocId>>;

/// One invocation-graph node.
#[derive(Debug, Clone)]
pub struct IgNode {
    /// The invoked function.
    pub func: FuncId,
    /// The caller's node (`None` for the root).
    pub parent: Option<IgNodeId>,
    /// Node classification.
    pub kind: IgKind,
    /// For approximate nodes: the matching recursive ancestor.
    pub rec_edge: Option<IgNodeId>,
    /// Children, keyed by call site and callee (a call site has several
    /// children when it calls through a function pointer).
    pub children: BTreeMap<(CallSiteId, FuncId), IgNodeId>,
    /// Memoized input (Figure 4).
    pub stored_input: Option<PtSet>,
    /// Memoized output; `None` is ⊥.
    pub stored_output: Flow,
    /// True once `stored_output` is a valid summary for `stored_input`.
    pub memo_valid: bool,
    /// Unresolved inputs from approximate descendants (Figure 4).
    pub pending: Vec<PtSet>,
    /// Map information of the most recent analysis of this node.
    pub map_info: MapInfo,
}

impl IgNode {
    fn new(func: FuncId, parent: Option<IgNodeId>, kind: IgKind) -> Self {
        IgNode {
            func,
            parent,
            kind,
            rec_edge: None,
            children: BTreeMap::new(),
            stored_input: None,
            stored_output: None,
            memo_valid: false,
            pending: Vec::new(),
            map_info: MapInfo::new(),
        }
    }
}

/// One node of a detached, self-contained invocation-graph subtree
/// (see [`InvocationGraph::extract_fragment`]). Indices are
/// fragment-relative (preorder, root at 0), so a fragment can be
/// persisted and grafted into a *different* graph.
#[derive(Debug, Clone, PartialEq)]
pub struct FragmentNode {
    /// The invoked function.
    pub func: FuncId,
    /// Node classification.
    pub kind: IgKind,
    /// For approximate nodes: how many parent steps up the matching
    /// recursive node sits (always within the fragment).
    pub rec_up: Option<u32>,
    /// Memoized input.
    pub stored_input: Option<PtSet>,
    /// Memoized output.
    pub stored_output: Flow,
    /// Memo validity.
    pub memo_valid: bool,
    /// Per-context map information.
    pub map_info: MapInfo,
    /// Children as `(call-site key, fragment index)`.
    pub children: Vec<((CallSiteId, FuncId), u32)>,
}

/// A self-contained invocation-graph subtree with its memo state: the
/// unit the fact store persists per warm context pair. *Self-contained*
/// means no approximate node inside points at a recursive node outside,
/// so replaying the pair can never need state from above the hit node.
#[derive(Debug, Clone, PartialEq)]
pub struct IgFragment {
    /// Preorder nodes; index 0 is the subtree root.
    pub nodes: Vec<FragmentNode>,
}

impl IgFragment {
    /// Every function invoked inside the fragment (the set whose
    /// fingerprints must be clean for the pair to be replayable).
    pub fn functions(&self) -> std::collections::BTreeSet<FuncId> {
        self.nodes.iter().map(|n| n.func).collect()
    }
}

/// Statistics of an invocation graph (Table 6 of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IgStats {
    /// Total nodes.
    pub nodes: usize,
    /// Recursive nodes.
    pub recursive: usize,
    /// Approximate nodes.
    pub approximate: usize,
    /// Distinct functions with at least one node.
    pub functions: usize,
}

/// The invocation graph.
#[derive(Debug, Clone)]
pub struct InvocationGraph {
    nodes: Vec<IgNode>,
    root: Option<IgNodeId>,
}

impl InvocationGraph {
    /// Creates an empty graph.
    pub fn empty() -> Self {
        InvocationGraph {
            nodes: Vec::new(),
            root: None,
        }
    }

    /// Builds the initial graph by depth-first traversal of the *direct*
    /// call structure starting at `entry`, leaving indirect call sites
    /// incomplete (they are bound during the analysis, §5).
    ///
    /// `max_nodes` bounds the construction (the graph is worst-case
    /// exponential in program size).
    pub fn build(ir: &IrProgram, entry: FuncId, max_nodes: usize) -> Result<Self, IgOverflow> {
        let mut g = InvocationGraph::empty();
        let root = g.push(IgNode::new(entry, None, IgKind::Ordinary));
        g.root = Some(root);
        g.expand_direct(ir, root, max_nodes)?;
        Ok(g)
    }

    fn push(&mut self, node: IgNode) -> IgNodeId {
        let id = IgNodeId(self.nodes.len() as u32);
        self.nodes.push(node);
        id
    }

    /// The root node (the invocation of `main`).
    pub fn root(&self) -> IgNodeId {
        self.root.expect("graph built with a root")
    }

    /// Node access.
    pub fn node(&self, id: IgNodeId) -> &IgNode {
        &self.nodes[id.0 as usize]
    }

    /// Mutable node access.
    pub fn node_mut(&mut self, id: IgNodeId) -> &mut IgNode {
        &mut self.nodes[id.0 as usize]
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True if the graph has no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Iterates nodes with ids.
    pub fn iter(&self) -> impl Iterator<Item = (IgNodeId, &IgNode)> {
        self.nodes
            .iter()
            .enumerate()
            .map(|(i, n)| (IgNodeId(i as u32), n))
    }

    /// Renders the invocation chain from the root down to `node` as
    /// `main > f > g` (trip-point context for budget errors).
    pub fn path_to(&self, ir: &IrProgram, node: IgNodeId) -> String {
        let mut names = Vec::new();
        let mut cur = Some(node);
        while let Some(id) = cur {
            let n = self.node(id);
            names.push(ir.function(n.func).name.clone());
            cur = n.parent;
        }
        names.reverse();
        names.join(" > ")
    }

    /// Expands all direct call sites reachable under `at` (recursively).
    pub fn expand_direct(
        &mut self,
        ir: &IrProgram,
        at: IgNodeId,
        max_nodes: usize,
    ) -> Result<(), IgOverflow> {
        let func = self.node(at).func;
        let Some(body) = ir.function(func).body.as_ref() else {
            return Ok(());
        };
        let mut calls: Vec<(CallSiteId, FuncId)> = Vec::new();
        body.for_each_basic(&mut |b, _| {
            if let BasicStmt::Call {
                target: CallTarget::Direct(callee),
                call_site,
                ..
            } = b
            {
                if ir.function(*callee).is_defined() {
                    calls.push((*call_site, *callee));
                }
            }
        });
        for (cs, callee) in calls {
            let child = self.ensure_child(ir, at, cs, callee, max_nodes)?;
            if self.node(child).kind == IgKind::Ordinary && self.node(child).children.is_empty() {
                self.expand_direct(ir, child, max_nodes)?;
            }
        }
        Ok(())
    }

    /// Finds or creates the child of `parent` for `(call_site, callee)`,
    /// creating an approximate node (and marking its matching ancestor
    /// recursive) when `callee` already occurs on the invocation chain.
    /// New ordinary nodes created for *indirect* call targets are
    /// expanded over their own direct calls by the caller.
    pub fn ensure_child(
        &mut self,
        ir: &IrProgram,
        parent: IgNodeId,
        cs: CallSiteId,
        callee: FuncId,
        max_nodes: usize,
    ) -> Result<IgNodeId, IgOverflow> {
        if let Some(id) = self.node(parent).children.get(&(cs, callee)) {
            return Ok(*id);
        }
        if self.nodes.len() >= max_nodes {
            let mut chain: Vec<String> = self
                .path_to(ir, parent)
                .split(" > ")
                .map(str::to_owned)
                .collect();
            chain.push(ir.function(callee).name.clone());
            return Err(IgOverflow {
                limit: max_nodes,
                chain,
            });
        }
        // Look for `callee` among the ancestors (including `parent`).
        let mut anc = Some(parent);
        let mut rec_target = None;
        while let Some(a) = anc {
            if self.node(a).func == callee {
                rec_target = Some(a);
                break;
            }
            anc = self.node(a).parent;
        }
        let id = match rec_target {
            Some(rec) => {
                self.node_mut(rec).kind = IgKind::Recursive;
                let mut n = IgNode::new(callee, Some(parent), IgKind::Approximate);
                n.rec_edge = Some(rec);
                self.push(n)
            }
            None => self.push(IgNode::new(callee, Some(parent), IgKind::Ordinary)),
        };
        self.node_mut(parent).children.insert((cs, callee), id);
        Ok(id)
    }

    /// Reassembles a graph from externally constructed nodes (the store
    /// reload path), validating every cross-reference so a corrupt
    /// snapshot cannot produce an out-of-bounds panic later.
    ///
    /// # Errors
    ///
    /// Returns a description of the first inconsistency found.
    pub fn from_nodes(nodes: Vec<IgNode>, root: Option<IgNodeId>) -> Result<Self, String> {
        let len = nodes.len();
        let in_range = |id: IgNodeId| (id.0 as usize) < len;
        if let Some(r) = root {
            if !in_range(r) {
                return Err("root node out of range".to_owned());
            }
        } else if len != 0 {
            return Err("non-empty graph without a root".to_owned());
        }
        for (i, n) in nodes.iter().enumerate() {
            let id = IgNodeId(i as u32);
            match n.parent {
                Some(p) if !in_range(p) => {
                    return Err(format!("node {i}: parent out of range"));
                }
                None if root != Some(id) => {
                    return Err(format!("node {i}: only the root may lack a parent"));
                }
                _ => {}
            }
            if let Some(r) = n.rec_edge {
                if !in_range(r) {
                    return Err(format!("node {i}: rec edge out of range"));
                }
            }
            if (n.kind == IgKind::Approximate) != n.rec_edge.is_some() {
                return Err(format!("node {i}: rec edge inconsistent with node kind"));
            }
            for ((_, f), c) in &n.children {
                if !in_range(*c) {
                    return Err(format!("node {i}: child out of range"));
                }
                let cn = &nodes[c.0 as usize];
                if cn.parent != Some(id) {
                    return Err(format!("node {i}: child does not point back to parent"));
                }
                if cn.func != *f {
                    return Err(format!("node {i}: child key disagrees with child function"));
                }
            }
        }
        Ok(InvocationGraph { nodes, root })
    }

    /// Detaches the subtree rooted at `root` (with its memo state) as a
    /// relocatable fragment, or `None` when the subtree is not
    /// self-contained: the root is approximate, an approximate
    /// descendant's back-edge escapes the subtree, or unresolved pending
    /// inputs remain (a mid-fixpoint state is not a summary).
    pub fn extract_fragment(&self, root: IgNodeId) -> Option<IgFragment> {
        if self.node(root).kind == IgKind::Approximate {
            return None;
        }
        // Preorder walk with deterministic (BTreeMap) child order.
        let mut order: Vec<IgNodeId> = Vec::new();
        let mut index: BTreeMap<u32, u32> = BTreeMap::new();
        let mut stack = vec![root];
        while let Some(id) = stack.pop() {
            index.insert(id.0, order.len() as u32);
            order.push(id);
            for (_, c) in self.node(id).children.iter().rev() {
                stack.push(*c);
            }
        }
        let mut nodes = Vec::with_capacity(order.len());
        for id in &order {
            let n = self.node(*id);
            if !n.pending.is_empty() {
                return None;
            }
            let rec_up = match n.rec_edge {
                None => None,
                Some(t) => {
                    index.get(&t.0)?;
                    let mut d: u32 = 0;
                    let mut cur = *id;
                    while cur != t {
                        d += 1;
                        cur = self.node(cur).parent?;
                    }
                    Some(d)
                }
            };
            let children = n.children.iter().map(|(k, v)| (*k, index[&v.0])).collect();
            nodes.push(FragmentNode {
                func: n.func,
                kind: n.kind,
                rec_up,
                stored_input: n.stored_input.clone(),
                stored_output: n.stored_output.clone(),
                memo_valid: n.memo_valid,
                map_info: n.map_info.clone(),
                children,
            });
        }
        Some(IgFragment { nodes })
    }

    /// Overlays a fragment onto the subtree at `at`: existing children
    /// (the eagerly built direct-call tree) get the fragment's memo
    /// state; children the fragment grew during analysis (indirect
    /// targets and their expansions) are created. Returns the graph ids
    /// aligned with `frag.nodes`.
    ///
    /// # Errors
    ///
    /// Returns [`IgOverflow`] if creating a missing child would exceed
    /// `max_nodes`, exactly as a cold re-analysis would.
    pub fn graft(
        &mut self,
        ir: &IrProgram,
        at: IgNodeId,
        frag: &IgFragment,
        max_nodes: usize,
    ) -> Result<Vec<IgNodeId>, IgOverflow> {
        let n = frag.nodes.len();
        let mut parent_of: Vec<Option<(u32, (CallSiteId, FuncId))>> = vec![None; n];
        for (i, fnode) in frag.nodes.iter().enumerate() {
            for (key, ci) in &fnode.children {
                parent_of[*ci as usize] = Some((i as u32, *key));
            }
        }
        let mut ids: Vec<IgNodeId> = Vec::with_capacity(n);
        for (i, fnode) in frag.nodes.iter().enumerate() {
            let id = if i == 0 {
                at
            } else {
                let (pi, key) = parent_of[i].expect("fragment nodes form a tree");
                let pid = ids[pi as usize];
                match self.node(pid).children.get(&key) {
                    Some(c) => *c,
                    None => {
                        if self.nodes.len() >= max_nodes {
                            let mut chain: Vec<String> = self
                                .path_to(ir, pid)
                                .split(" > ")
                                .map(str::to_owned)
                                .collect();
                            chain.push(ir.function(fnode.func).name.clone());
                            return Err(IgOverflow {
                                limit: max_nodes,
                                chain,
                            });
                        }
                        let nid = self.push(IgNode::new(fnode.func, Some(pid), fnode.kind));
                        self.node_mut(pid).children.insert(key, nid);
                        nid
                    }
                }
            };
            ids.push(id);
            let node = self.node_mut(id);
            node.kind = fnode.kind;
            node.stored_input = fnode.stored_input.clone();
            node.stored_output = fnode.stored_output.clone();
            node.memo_valid = fnode.memo_valid;
            node.map_info = fnode.map_info.clone();
            node.pending.clear();
            node.rec_edge = None;
        }
        // Back-edges resolve through the graft's own parent chain.
        for (i, fnode) in frag.nodes.iter().enumerate() {
            if let Some(d) = fnode.rec_up {
                let mut cur = ids[i];
                for _ in 0..d {
                    cur = self
                        .node(cur)
                        .parent
                        .expect("rec target lies within the grafted subtree");
                }
                self.node_mut(ids[i]).rec_edge = Some(cur);
            }
        }
        Ok(ids)
    }

    /// Graph statistics (Table 6).
    pub fn stats(&self) -> IgStats {
        let mut funcs: Vec<FuncId> = self.nodes.iter().map(|n| n.func).collect();
        funcs.sort_unstable();
        funcs.dedup();
        IgStats {
            nodes: self.nodes.len(),
            recursive: self
                .nodes
                .iter()
                .filter(|n| n.kind == IgKind::Recursive)
                .count(),
            approximate: self
                .nodes
                .iter()
                .filter(|n| n.kind == IgKind::Approximate)
                .count(),
            functions: funcs.len(),
        }
    }

    /// Renders the graph as an indented tree (tests, CLI).
    pub fn render(&self, ir: &IrProgram) -> String {
        let mut out = String::new();
        if let Some(root) = self.root {
            self.render_node(ir, root, 0, &mut out);
        }
        out
    }

    /// Renders the graph in Graphviz DOT format (solid edges are calls;
    /// dashed edges are the approximate→recursive back-edges).
    pub fn to_dot(&self, ir: &IrProgram) -> String {
        let mut out = String::from("digraph invocation_graph {\n  node [shape=box];\n");
        for (id, n) in self.iter() {
            let label = ir.function(n.func).name.clone();
            let style = match n.kind {
                IgKind::Ordinary => String::new(),
                IgKind::Recursive => ", color=red, xlabel=\"R\"".to_owned(),
                IgKind::Approximate => ", style=dashed, xlabel=\"A\"".to_owned(),
            };
            out.push_str(&format!("  n{} [label=\"{}\"{}];\n", id.0, label, style));
        }
        for (id, n) in self.iter() {
            for ((cs, _), child) in &n.children {
                out.push_str(&format!(
                    "  n{} -> n{} [label=\"cs{}\"];\n",
                    id.0, child.0, cs.0
                ));
            }
            if let Some(rec) = n.rec_edge {
                out.push_str(&format!(
                    "  n{} -> n{} [style=dashed, constraint=false];\n",
                    id.0, rec.0
                ));
            }
        }
        out.push_str("}\n");
        out
    }

    fn render_node(&self, ir: &IrProgram, id: IgNodeId, depth: usize, out: &mut String) {
        let n = self.node(id);
        for _ in 0..depth {
            out.push_str("  ");
        }
        let tag = match n.kind {
            IgKind::Ordinary => "",
            IgKind::Recursive => " (R)",
            IgKind::Approximate => " (A)",
        };
        out.push_str(&format!("{}{}\n", ir.function(n.func).name, tag));
        for (_, child) in n.children.iter() {
            self.render_node(ir, *child, depth + 1, out);
        }
    }
}

/// Collects the direct-call structure of a statement tree (used by
/// tests and by the baseline call-graph strategies).
pub fn direct_callees(ir: &IrProgram, body: &Stmt) -> Vec<(CallSiteId, FuncId)> {
    let mut calls = Vec::new();
    body.for_each_basic(&mut |b, _| {
        if let BasicStmt::Call {
            target: CallTarget::Direct(callee),
            call_site,
            ..
        } = b
        {
            if ir.function(*callee).is_defined() {
                calls.push((*call_site, *callee));
            }
        }
    });
    calls
}

#[cfg(test)]
mod tests {
    use super::*;

    fn build(src: &str) -> (IrProgram, InvocationGraph) {
        let ir = pta_simple::compile(src).expect("compile ok");
        let entry = ir.entry.expect("main");
        let g = InvocationGraph::build(&ir, entry, 100_000).expect("ig ok");
        (ir, g)
    }

    #[test]
    fn figure_2a_distinct_paths() {
        // main calls g twice; g calls f — every chain gets its own node.
        let (ir, g) = build(
            "int f(void){ return 1; }
             int g(void){ return f(); }
             int main(void){ g(); g(); return 0; }",
        );
        let s = g.stats();
        // main, g, f, g, f
        assert_eq!(s.nodes, 5);
        assert_eq!(s.recursive, 0);
        assert_eq!(s.approximate, 0);
        assert_eq!(s.functions, 3);
        let r = g.render(&ir);
        assert_eq!(r.matches("g\n").count(), 2);
        assert_eq!(r.matches("f\n").count(), 2);
    }

    #[test]
    fn figure_2b_simple_recursion() {
        let (ir, g) = build(
            "int f(int n){ if (n) return f(n - 1); return 0; }
             int main(void){ return f(10); }",
        );
        let s = g.stats();
        // main, f (recursive), f (approximate)
        assert_eq!(s.nodes, 3);
        assert_eq!(s.recursive, 1);
        assert_eq!(s.approximate, 1);
        let r = g.render(&ir);
        assert!(r.contains("f (R)"));
        assert!(r.contains("f (A)"));
    }

    #[test]
    fn figure_2c_mutual_recursion() {
        let (_, g) = build(
            "int b(int n);
             int a(int n){ if (n) return b(n - 1); return 0; }
             int b(int n){ if (n) return a(n - 1); return 1; }
             int main(void){ a(5); return b(5); }",
        );
        let s = g.stats();
        // main → a(R) → b → a(A); main → b(R) → a → b(A)
        assert_eq!(s.nodes, 7);
        assert_eq!(s.recursive, 2);
        assert_eq!(s.approximate, 2);
    }

    #[test]
    fn approximate_node_points_to_matching_ancestor() {
        let (_, g) = build(
            "int f(int n){ if (n) return f(n - 1); return 0; }
             int main(void){ return f(3); }",
        );
        let (approx_id, approx) = g
            .iter()
            .find(|(_, n)| n.kind == IgKind::Approximate)
            .expect("approximate node exists");
        let rec = approx.rec_edge.expect("rec edge set");
        assert_eq!(g.node(rec).kind, IgKind::Recursive);
        assert_eq!(g.node(rec).func, approx.func);
        assert_ne!(rec, approx_id);
    }

    #[test]
    fn indirect_sites_left_incomplete_then_extended() {
        let (ir, mut g) = build(
            "int f1(void){ return 1; }
             int f2(void){ return 2; }
             int main(void){ int (*fp)(void); fp = f1; return fp(); }",
        );
        // Only main initially: f1/f2 are not direct callees.
        assert_eq!(g.len(), 1);
        let cs = ir.call_sites[0].stmt;
        let _ = cs;
        let (f1, _) = ir.function_by_name("f1").unwrap();
        let child = g
            .ensure_child(&ir, g.root(), pta_simple::CallSiteId(0), f1, 100)
            .unwrap();
        assert_eq!(g.len(), 2);
        assert_eq!(g.node(child).func, f1);
        // Idempotent.
        let again = g
            .ensure_child(&ir, g.root(), pta_simple::CallSiteId(0), f1, 100)
            .unwrap();
        assert_eq!(child, again);
    }

    #[test]
    fn externals_do_not_get_nodes() {
        let (_, g) = build("int main(void){ printf(\"hi\"); return 0; }");
        assert_eq!(g.len(), 1);
    }

    #[test]
    fn node_budget_is_enforced() {
        let ir = pta_simple::compile(
            "int f(void){ return 1; }
             int g(void){ f(); f(); return 0; }
             int h(void){ g(); g(); return 0; }
             int main(void){ h(); h(); return 0; }",
        )
        .unwrap();
        let entry = ir.entry.unwrap();
        let err = InvocationGraph::build(&ir, entry, 4).unwrap_err();
        assert_eq!(err.limit, 4);
        assert_eq!(err.chain.first().map(String::as_str), Some("main"));
        let msg = err.into_error(&ir, None).to_string();
        assert!(msg.contains("exceeded") && msg.contains("main"), "{msg}");
    }

    #[test]
    fn path_to_renders_the_chain() {
        let (ir, g) = build(
            "int f(void){ return 1; }
             int g(void){ return f(); }
             int main(void){ return g(); }",
        );
        let (leaf, _) = g
            .iter()
            .find(|(_, n)| ir.function(n.func).name == "f")
            .expect("f has a node");
        assert_eq!(g.path_to(&ir, leaf), "main > g > f");
    }
}
