//! L-location and R-location sets (Table 1 of the paper).
//!
//! An *L-location set* names the abstract locations a variable reference
//! may denote when written; an *R-location set* names the locations a
//! reference (or operand) may evaluate to when read as a pointer value.
//! Both are sets of `(location, D|P)` pairs relative to the current
//! points-to set `S`.

use crate::location::{LocBase, LocId, LocationTable, Proj};
use crate::points_to_set::{Def, PtSet};
use pta_cfront::ast::FuncId;
use pta_simple::{Const, IdxClass, IrProgram, IrProj, Operand, VarBase, VarPath, VarRef};

/// Context needed to resolve references to locations.
pub struct RefEnv<'a> {
    /// The program.
    pub ir: &'a IrProgram,
    /// The function whose scope references are resolved in.
    pub func: FuncId,
    /// The location table (locations are interned on demand).
    pub locs: &'a mut LocationTable,
}

impl RefEnv<'_> {
    fn base_loc(&mut self, base: VarBase) -> LocId {
        match base {
            VarBase::Global(g) => self.locs.global(self.ir, g),
            VarBase::Var(v) => self.locs.var(self.ir, self.func, v),
        }
    }

    /// Resolves a dereference-free path to its location set. Constant
    /// indices are precise (`D`); unknown indices yield both the head
    /// and tail locations, possibly (`P`).
    pub fn path_locs(&mut self, path: &VarPath) -> Vec<(LocId, Def)> {
        let mut cur = vec![(self.base_loc(path.base), Def::D)];
        for proj in &path.projs {
            cur = self.apply_proj(&cur, proj);
        }
        cur
    }

    fn apply_proj(&mut self, cur: &[(LocId, Def)], proj: &IrProj) -> Vec<(LocId, Def)> {
        let mut out = Vec::new();
        for (l, d) in cur {
            match proj {
                IrProj::Field(f) => {
                    if let Some(n) = self.locs.project(*l, Proj::Field(f.clone()), self.ir) {
                        push_unique(&mut out, n, *d);
                    }
                }
                IrProj::Index(IdxClass::Zero) => {
                    if let Some(n) = self.locs.project(*l, Proj::Head, self.ir) {
                        push_unique(&mut out, n, *d);
                    }
                }
                IrProj::Index(IdxClass::Positive) => {
                    if let Some(n) = self.locs.project(*l, Proj::Tail, self.ir) {
                        push_unique(&mut out, n, *d);
                    }
                }
                IrProj::Index(IdxClass::Unknown) => {
                    if let Some(n) = self.locs.project(*l, Proj::Head, self.ir) {
                        push_unique(&mut out, n, Def::P);
                    }
                    if let Some(n) = self.locs.project(*l, Proj::Tail, self.ir) {
                        push_unique(&mut out, n, Def::P);
                    }
                }
            }
        }
        out
    }

    /// Shifts a points-to target by a pointer-arithmetic class, under the
    /// paper's assumption that array pointers stay inside their array
    /// (§6). Shifting `null` or a function drops the target.
    pub fn shift_loc(&mut self, t: LocId, class: IdxClass) -> Vec<(LocId, Def)> {
        if self.locs.is_null(t) || self.locs.is_function(t) {
            return Vec::new();
        }
        match class {
            IdxClass::Zero => vec![(t, Def::D)],
            IdxClass::Positive => vec![(self.tailify(t), Def::D)],
            IdxClass::Unknown => {
                let mut v = vec![(t, Def::P)];
                let tl = self.tailify(t);
                if tl != t {
                    v.push((tl, Def::P));
                }
                v
            }
        }
    }

    /// `head → tail` on the last array projection; other shapes stay
    /// put (pointer arithmetic within the pointed-to object).
    fn tailify(&mut self, t: LocId) -> LocId {
        let d = self.locs.get(t).clone();
        if matches!(
            d.base,
            LocBase::Heap | LocBase::HeapSite(_) | LocBase::StrLit
        ) {
            return t;
        }
        match d.projs.last() {
            Some(Proj::Head) => {
                let mut projs = d.projs.clone();
                projs.pop();
                // Re-intern the parent, then take its tail.
                let parent_name = d.name.strip_suffix("[0]").unwrap_or(&d.name).to_owned();
                let parent = self.locs.intern(
                    d.base.clone(),
                    projs,
                    None, // parent type unused: project recomputes via stored data
                    parent_name,
                );
                self.locs.project(parent, Proj::Tail, self.ir).unwrap_or(t)
            }
            _ => t,
        }
    }

    /// The L-location set of a variable reference (Table 1, middle
    /// column).
    pub fn l_locations(&mut self, set: &PtSet, r: &VarRef) -> Vec<(LocId, Def)> {
        match r {
            VarRef::Path(p) => self.path_locs(p),
            VarRef::Deref { path, shift, after } => {
                let ptrs = self.path_locs(path);
                let mut out = Vec::new();
                for (pl, dl) in ptrs {
                    let targets: Vec<(LocId, Def)> = set.targets(pl).collect();
                    for (t, dp) in targets {
                        if self.locs.is_null(t) || self.locs.is_function(t) {
                            continue; // cannot write through null / code
                        }
                        for (t2, ds) in self.shift_loc(t, *shift) {
                            let mut cur = vec![(t2, dl.and(dp).and(ds))];
                            for proj in after {
                                cur = self.apply_proj(&cur, proj);
                            }
                            for (l, d) in cur {
                                push_unique(&mut out, l, d);
                            }
                        }
                    }
                }
                out
            }
        }
    }

    /// The R-location set of a variable reference read as a pointer
    /// value (Table 1, right column): one more hop through `S` than the
    /// L-location set.
    pub fn r_locations(&mut self, set: &PtSet, r: &VarRef) -> Vec<(LocId, Def)> {
        let ls = self.l_locations(set, r);
        let mut out = Vec::new();
        for (l, d) in ls {
            for (t, dp) in set.targets(l) {
                push_unique(&mut out, t, d.and(dp));
            }
        }
        out
    }

    /// The R-location set of an operand in a pointer context.
    pub fn operand_r_locations(&mut self, set: &PtSet, op: &Operand) -> Vec<(LocId, Def)> {
        match op {
            Operand::Ref(r) => self.r_locations(set, r),
            Operand::AddrOf(r) => self.l_locations(set, r),
            Operand::Func(f) => vec![(self.locs.function(self.ir, *f), Def::D)],
            Operand::Str(_) => vec![(self.locs.strlit(), Def::P)],
            Operand::Const(Const::Int(0)) => vec![(self.locs.null(), Def::D)],
            Operand::Const(_) => Vec::new(),
        }
    }
}

fn push_unique(out: &mut Vec<(LocId, Def)>, l: LocId, d: Def) {
    for (el, ed) in out.iter_mut() {
        if *el == l {
            // Same location reached twice: keep D only if both are D.
            if *ed != d {
                *ed = Def::P;
            }
            return;
        }
    }
    out.push((l, d));
}

#[cfg(test)]
mod tests {
    use super::*;
    use pta_simple::VarPath;

    struct Fixture {
        ir: IrProgram,
        locs: LocationTable,
        main: FuncId,
    }

    fn fixture(src: &str) -> Fixture {
        let ir = pta_simple::compile(src).expect("compile ok");
        let main = ir.entry.expect("main");
        Fixture {
            ir,
            locs: LocationTable::new(),
            main,
        }
    }

    fn var_id(ir: &IrProgram, f: FuncId, name: &str) -> pta_simple::IrVarId {
        let func = ir.function(f);
        let idx = func
            .vars
            .iter()
            .position(|v| v.name == name)
            .expect("var exists");
        pta_simple::IrVarId(idx as u32)
    }

    #[test]
    fn direct_reference_llocs() {
        let mut fx = fixture("int main(void){ int a; a = 1; return a; }");
        let a = var_id(&fx.ir, fx.main, "a");
        let mut env = RefEnv {
            ir: &fx.ir,
            func: fx.main,
            locs: &mut fx.locs,
        };
        let r = VarRef::Path(VarPath::var(a));
        let ls = env.l_locations(&PtSet::new(), &r);
        assert_eq!(ls.len(), 1);
        assert_eq!(ls[0].1, Def::D);
        assert_eq!(env.locs.name(ls[0].0), "a");
    }

    #[test]
    fn array_reference_llocs_follow_table1() {
        let mut fx = fixture("int a[10]; int main(void){ return 0; }");
        let mut env = RefEnv {
            ir: &fx.ir,
            func: fx.main,
            locs: &mut fx.locs,
        };
        let ga = pta_cfront::ast::GlobalId(0);
        // a[0] → {(a[0], D)}
        let head = VarRef::Path(VarPath::global(ga).project(IrProj::Index(IdxClass::Zero)));
        let ls = env.l_locations(&PtSet::new(), &head);
        assert_eq!(ls.len(), 1);
        assert_eq!((env.locs.name(ls[0].0), ls[0].1), ("a[0]", Def::D));
        // a[i>0] → {(a[1..], D)}
        let tail = VarRef::Path(VarPath::global(ga).project(IrProj::Index(IdxClass::Positive)));
        let ls = env.l_locations(&PtSet::new(), &tail);
        assert_eq!((env.locs.name(ls[0].0), ls[0].1), ("a[1..]", Def::D));
        // a[i?] → {(a[0], P), (a[1..], P)}
        let unk = VarRef::Path(VarPath::global(ga).project(IrProj::Index(IdxClass::Unknown)));
        let ls = env.l_locations(&PtSet::new(), &unk);
        assert_eq!(ls.len(), 2);
        assert!(ls.iter().all(|(_, d)| *d == Def::P));
    }

    #[test]
    fn deref_llocs_follow_points_to() {
        // *p with (p,x,D) → {(x, D)}; with possibles → P.
        let mut fx = fixture("int main(void){ int x; int y; int *p; p = &x; return 0; }");
        let x = var_id(&fx.ir, fx.main, "x");
        let y = var_id(&fx.ir, fx.main, "y");
        let p = var_id(&fx.ir, fx.main, "p");
        let mut env = RefEnv {
            ir: &fx.ir,
            func: fx.main,
            locs: &mut fx.locs,
        };
        let (lx, ly, lp) = (
            env.locs.var(&fx.ir, fx.main, x),
            env.locs.var(&fx.ir, fx.main, y),
            env.locs.var(&fx.ir, fx.main, p),
        );
        let deref = VarRef::Deref {
            path: VarPath::var(p),
            shift: IdxClass::Zero,
            after: vec![],
        };
        let mut s = PtSet::new();
        s.insert(lp, lx, Def::D);
        let ls = env.l_locations(&s, &deref);
        assert_eq!(ls, vec![(lx, Def::D)]);
        // Two possible targets.
        let mut s2 = PtSet::new();
        s2.insert(lp, lx, Def::P);
        s2.insert(lp, ly, Def::P);
        let ls2 = env.l_locations(&s2, &deref);
        assert_eq!(ls2.len(), 2);
        assert!(ls2.iter().all(|(_, d)| *d == Def::P));
    }

    #[test]
    fn deref_skips_null_targets() {
        let mut fx = fixture("int main(void){ int *p; p = 0; return 0; }");
        let p = var_id(&fx.ir, fx.main, "p");
        let mut env = RefEnv {
            ir: &fx.ir,
            func: fx.main,
            locs: &mut fx.locs,
        };
        let lp = env.locs.var(&fx.ir, fx.main, p);
        let null = env.locs.null();
        let mut s = PtSet::new();
        s.insert(lp, null, Def::D);
        let deref = VarRef::Deref {
            path: VarPath::var(p),
            shift: IdxClass::Zero,
            after: vec![],
        };
        assert!(env.l_locations(&s, &deref).is_empty());
    }

    #[test]
    fn rlocs_are_two_hops_with_d_conjunction() {
        // Table 1: R-locs of *a are definite only if both hops definite.
        let mut fx = fixture("int main(void){ int x; int *p; int **pp; return 0; }");
        let x = var_id(&fx.ir, fx.main, "x");
        let p = var_id(&fx.ir, fx.main, "p");
        let pp = var_id(&fx.ir, fx.main, "pp");
        let mut env = RefEnv {
            ir: &fx.ir,
            func: fx.main,
            locs: &mut fx.locs,
        };
        let (lx, lp, lpp) = (
            env.locs.var(&fx.ir, fx.main, x),
            env.locs.var(&fx.ir, fx.main, p),
            env.locs.var(&fx.ir, fx.main, pp),
        );
        let mut s = PtSet::new();
        s.insert(lpp, lp, Def::D);
        s.insert(lp, lx, Def::P);
        let deref = VarRef::Deref {
            path: VarPath::var(pp),
            shift: IdxClass::Zero,
            after: vec![],
        };
        let rs = env.r_locations(&s, &deref);
        assert_eq!(rs, vec![(lx, Def::P)]);
        // Make both hops definite → D.
        let mut s2 = PtSet::new();
        s2.insert(lpp, lp, Def::D);
        s2.insert(lp, lx, Def::D);
        let rs2 = env.r_locations(&s2, &deref);
        assert_eq!(rs2, vec![(lx, Def::D)]);
    }

    #[test]
    fn addr_of_operand_uses_llocs() {
        let mut fx = fixture("int main(void){ int a; return 0; }");
        let a = var_id(&fx.ir, fx.main, "a");
        let mut env = RefEnv {
            ir: &fx.ir,
            func: fx.main,
            locs: &mut fx.locs,
        };
        let la = env.locs.var(&fx.ir, fx.main, a);
        let op = Operand::AddrOf(VarRef::Path(VarPath::var(a)));
        let rs = env.operand_r_locations(&PtSet::new(), &op);
        assert_eq!(rs, vec![(la, Def::D)]);
    }

    #[test]
    fn null_and_function_operands() {
        let mut fx = fixture("int f(void){ return 1; } int main(void){ return f(); }");
        let mut env = RefEnv {
            ir: &fx.ir,
            func: fx.main,
            locs: &mut fx.locs,
        };
        let rs = env.operand_r_locations(&PtSet::new(), &Operand::int(0));
        assert_eq!(rs.len(), 1);
        assert!(env.locs.is_null(rs[0].0));
        assert_eq!(rs[0].1, Def::D);
        let (fid, _) = fx.ir.function_by_name("f").unwrap();
        let rs2 = env.operand_r_locations(&PtSet::new(), &Operand::Func(fid));
        assert!(env.locs.is_function(rs2[0].0));
        // Non-zero integer constants carry no address.
        assert!(env
            .operand_r_locations(&PtSet::new(), &Operand::int(7))
            .is_empty());
    }

    #[test]
    fn shift_semantics() {
        let mut fx = fixture("int a[10]; int main(void){ return 0; }");
        let mut env = RefEnv {
            ir: &fx.ir,
            func: fx.main,
            locs: &mut fx.locs,
        };
        let ga = env.locs.global(&fx.ir, pta_cfront::ast::GlobalId(0));
        let head = env.locs.project(ga, Proj::Head, &fx.ir).unwrap();
        let tail = env.locs.project(ga, Proj::Tail, &fx.ir).unwrap();
        assert_eq!(env.shift_loc(head, IdxClass::Zero), vec![(head, Def::D)]);
        assert_eq!(
            env.shift_loc(head, IdxClass::Positive),
            vec![(tail, Def::D)]
        );
        let unk = env.shift_loc(head, IdxClass::Unknown);
        assert_eq!(unk.len(), 2);
        // Shifting the tail stays in the tail.
        assert_eq!(
            env.shift_loc(tail, IdxClass::Positive),
            vec![(tail, Def::D)]
        );
        // Shifting null drops it.
        let null = env.locs.null();
        assert!(env.shift_loc(null, IdxClass::Positive).is_empty());
    }

    #[test]
    fn deref_field_after_projection() {
        let mut fx = fixture(
            "struct s { int *q; int v; };
             int main(void){ struct s t; struct s *p; p = &t; return 0; }",
        );
        let t = var_id(&fx.ir, fx.main, "t");
        let p = var_id(&fx.ir, fx.main, "p");
        let mut env = RefEnv {
            ir: &fx.ir,
            func: fx.main,
            locs: &mut fx.locs,
        };
        let (lt, lp) = (
            env.locs.var(&fx.ir, fx.main, t),
            env.locs.var(&fx.ir, fx.main, p),
        );
        let mut s = PtSet::new();
        s.insert(lp, lt, Def::D);
        let r = VarRef::Deref {
            path: VarPath::var(p),
            shift: IdxClass::Zero,
            after: vec![IrProj::Field("q".into())],
        };
        let ls = env.l_locations(&s, &r);
        assert_eq!(ls.len(), 1);
        assert_eq!(env.locs.name(ls[0].0), "t.q");
        assert_eq!(ls[0].1, Def::D);
    }
}
