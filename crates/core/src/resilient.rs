//! Graceful degradation: budget-exhausted runs fall back to cheaper
//! analyses instead of failing.
//!
//! The paper's algorithm is worst-case exponential; real inputs (and the
//! stress generator in `pta-prop`) can trip any of the configured
//! budgets. Rather than surface an error, [`analyze_resilient`] walks a
//! ladder of strictly cheaper analyses — context-sensitive →
//! context-insensitive → Andersen → Steensgaard — and returns the first
//! one that completes, tagged with its [`Fidelity`] so tables and JSON
//! output can show the provenance of every number.
//!
//! Each rung is sound but coarser than the one above it (fewer kills,
//! more merging), so falling down the ladder loses precision, never
//! correctness. Every rung gets a *fresh* deadline: a caller asking for
//! a 2-second budget gets at most ~8 seconds worst-case (4 rungs), not
//! a ladder that dies because rung one consumed the whole allowance.
//! Rungs are additionally isolated with [`std::panic::catch_unwind`]: an
//! internal invariant failure in one engine degrades to the next engine
//! instead of aborting the caller (important for the fault-isolated
//! suite driver).

use crate::analysis::{AnalysisConfig, AnalysisError, AnalysisResult};
use crate::baseline::{
    andersen_budgeted, insensitive_budgeted, steensgaard_budgeted, SteensgaardResult,
};
use crate::invocation_graph::InvocationGraph;
use crate::points_to_set::{Def, PtSet};
use crate::trace::{TraceEvent, TraceSink};
use pta_simple::{IrProgram, StmtId};
use std::collections::BTreeMap;
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};

/// Which analysis produced a result — the provenance tag of the
/// degradation ladder, ordered from most to least precise.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Fidelity {
    /// The paper's full context-sensitive analysis completed.
    ContextSensitive,
    /// Fell back to the context-insensitive flow-sensitive baseline.
    ContextInsensitive,
    /// Fell back to the Andersen-style flow-insensitive baseline.
    Andersen,
    /// Fell back to the Steensgaard-style unification baseline.
    Steensgaard,
}

impl Fidelity {
    /// Short machine-readable tag (used in JSON output).
    pub fn tag(self) -> &'static str {
        match self {
            Fidelity::ContextSensitive => "context-sensitive",
            Fidelity::ContextInsensitive => "context-insensitive",
            Fidelity::Andersen => "andersen",
            Fidelity::Steensgaard => "steensgaard",
        }
    }

    /// True when this is the full-precision analysis (no degradation).
    pub fn is_full(self) -> bool {
        self == Fidelity::ContextSensitive
    }
}

impl fmt::Display for Fidelity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.tag())
    }
}

/// A result plus the record of how it was obtained.
#[derive(Debug)]
pub struct ResilientOutcome {
    /// The analysis result (shape-compatible with the full analysis;
    /// fallback rungs carry an empty invocation graph).
    pub result: AnalysisResult,
    /// Which rung of the ladder produced `result`.
    pub fidelity: Fidelity,
    /// The rungs that failed before `fidelity` succeeded, with the
    /// error that pushed the ladder past each one.
    pub degradations: Vec<(Fidelity, AnalysisError)>,
}

impl ResilientOutcome {
    /// Human-readable one-line provenance, e.g.
    /// `"andersen (degraded: context-sensitive: …; context-insensitive: …)"`.
    pub fn provenance(&self) -> String {
        if self.degradations.is_empty() {
            return self.fidelity.to_string();
        }
        let why: Vec<String> = self
            .degradations
            .iter()
            .map(|(f, e)| format!("{f}: {e}"))
            .collect();
        format!("{} (degraded: {})", self.fidelity, why.join("; "))
    }
}

/// Runs the ladder: full context-sensitive analysis under `config`'s
/// budgets, then progressively cheaper baselines on recoverable errors.
///
/// # Errors
///
/// Non-recoverable errors ([`AnalysisError::NoEntry`],
/// [`AnalysisError::Unsupported`]) propagate from the first rung that
/// reports one; they would fail identically on every rung. If every
/// rung fails recoverably, the *last* error is returned (the ladder is
/// exhausted — with Steensgaard near-linear this effectively requires a
/// pathological deadline).
pub fn analyze_resilient(
    ir: &IrProgram,
    config: AnalysisConfig,
) -> Result<ResilientOutcome, AnalysisError> {
    resilient_impl(ir, config, None)
}

/// [`analyze_resilient`] with a [`TraceSink`] attached: the
/// context-sensitive rung runs fully instrumented (see
/// [`crate::analysis::analyze_traced`]), and every ladder transition is
/// reported as a `rung` event. The baseline rungs themselves run
/// uninstrumented — they are the fallback path, not the engine the
/// trace layer profiles — so a degraded run's stream ends with its
/// `rung` events.
///
/// # Errors
///
/// As [`analyze_resilient`].
pub fn analyze_resilient_traced(
    ir: &IrProgram,
    config: AnalysisConfig,
    sink: &mut dyn TraceSink,
) -> Result<ResilientOutcome, AnalysisError> {
    resilient_impl(ir, config, Some(sink))
}

fn resilient_impl(
    ir: &IrProgram,
    config: AnalysisConfig,
    mut sink: Option<&mut dyn TraceSink>,
) -> Result<ResilientOutcome, AnalysisError> {
    let mut degradations: Vec<(Fidelity, AnalysisError)> = Vec::new();

    let rungs: [(Fidelity, RunFn); 4] = [
        (Fidelity::ContextSensitive, run_context_sensitive),
        (Fidelity::ContextInsensitive, run_insensitive),
        (Fidelity::Andersen, run_andersen),
        (Fidelity::Steensgaard, run_steensgaard),
    ];
    for (i, (fidelity, run)) in rungs.iter().enumerate() {
        let traced = sink.as_deref_mut().filter(|_| fidelity.is_full());
        let attempt = match traced {
            Some(s) => catch_unwind(AssertUnwindSafe(|| {
                crate::analysis::analyze_traced(ir, config.clone(), s)
            })),
            None => catch_unwind(AssertUnwindSafe(|| run(ir, &config))),
        }
        .unwrap_or_else(|p| Err(AnalysisError::Internal(panic_message(&*p))));
        match attempt {
            Ok(result) => {
                return Ok(ResilientOutcome {
                    result,
                    fidelity: *fidelity,
                    degradations,
                })
            }
            Err(e) if e.is_recoverable() => {
                if let (Some(s), Some((next, _))) = (sink.as_deref_mut(), rungs.get(i + 1)) {
                    // Between engine runs no trace clock is active, so
                    // rung events carry ts_us 0.
                    s.event(
                        0,
                        &TraceEvent::Rung {
                            from: fidelity.tag(),
                            to: next.tag(),
                            reason: e.to_string(),
                        },
                    );
                }
                degradations.push((*fidelity, e));
            }
            Err(e) => return Err(e),
        }
    }
    // Ladder exhausted: every rung tripped a budget (or panicked).
    let (_, last) = degradations
        .pop()
        .unwrap_or((Fidelity::Steensgaard, AnalysisError::NoEntry));
    Err(last)
}

type RunFn = fn(&IrProgram, &AnalysisConfig) -> Result<AnalysisResult, AnalysisError>;

fn run_context_sensitive(
    ir: &IrProgram,
    config: &AnalysisConfig,
) -> Result<AnalysisResult, AnalysisError> {
    crate::analysis::analyze_with(ir, config.clone())
}

fn run_insensitive(
    ir: &IrProgram,
    config: &AnalysisConfig,
) -> Result<AnalysisResult, AnalysisError> {
    let r = insensitive_budgeted(ir, config.deadline)?;
    Ok(AnalysisResult {
        locs: r.locs,
        ig: InvocationGraph::empty(),
        per_stmt: r.per_stmt,
        exit_set: r.exit_set,
        warnings: Vec::new(),
        escapes: Vec::new(),
        prune: Default::default(),
    })
}

fn run_andersen(ir: &IrProgram, config: &AnalysisConfig) -> Result<AnalysisResult, AnalysisError> {
    let r = andersen_budgeted(ir, config.deadline)?;
    Ok(AnalysisResult {
        locs: r.locs,
        ig: InvocationGraph::empty(),
        per_stmt: replicate(ir, &r.solution),
        exit_set: r.solution,
        warnings: Vec::new(),
        escapes: Vec::new(),
        prune: Default::default(),
    })
}

fn run_steensgaard(
    ir: &IrProgram,
    config: &AnalysisConfig,
) -> Result<AnalysisResult, AnalysisError> {
    let r = steensgaard_budgeted(ir, config.deadline)?;
    let sol = steensgaard_pairs(&r);
    Ok(AnalysisResult {
        locs: r.locs,
        ig: InvocationGraph::empty(),
        per_stmt: replicate(ir, &sol),
        exit_set: sol,
        warnings: Vec::new(),
        escapes: Vec::new(),
        prune: Default::default(),
    })
}

/// Materializes Steensgaard's storage classes as (possible) points-to
/// pairs so the result is shape-compatible with the other engines.
fn steensgaard_pairs(r: &SteensgaardResult) -> PtSet {
    let mut sol = PtSet::new();
    for s in r.locs.ids() {
        for t in r.targets(s) {
            sol.insert(s, t, Def::P);
        }
    }
    sol
}

/// A flow-insensitive engine has one global solution; use it at every
/// program point so per-statement consumers (the statistics tables)
/// keep working.
fn replicate(ir: &IrProgram, sol: &PtSet) -> BTreeMap<StmtId, PtSet> {
    let mut m = BTreeMap::new();
    for f in &ir.functions {
        let Some(body) = &f.body else { continue };
        body.for_each_basic(&mut |_, id| {
            m.insert(id, sol.clone());
        });
    }
    m
}

fn panic_message(p: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = p.downcast_ref::<&str>() {
        format!("panic: {s}")
    } else if let Some(s) = p.downcast_ref::<String>() {
        format!("panic: {s}")
    } else {
        String::from("panic: <non-string payload>")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    const PROG: &str = "int x, y;
         void set(int **p, int *v) { *p = v; }
         int main(void) { int *q; set(&q, &x); q = &y; return *q; }";

    #[test]
    fn full_precision_when_budgets_suffice() {
        let ir = pta_simple::compile(PROG).unwrap();
        let out = analyze_resilient(&ir, AnalysisConfig::default()).unwrap();
        assert_eq!(out.fidelity, Fidelity::ContextSensitive);
        assert!(out.degradations.is_empty());
        assert!(out.fidelity.is_full());
    }

    #[test]
    fn step_budget_degrades_to_insensitive() {
        let ir = pta_simple::compile(PROG).unwrap();
        let config = AnalysisConfig {
            max_steps: 1,
            ..AnalysisConfig::default()
        };
        let out = analyze_resilient(&ir, config).unwrap();
        assert_eq!(out.fidelity, Fidelity::ContextInsensitive);
        assert_eq!(out.degradations.len(), 1);
        assert!(matches!(
            out.degradations[0].1,
            AnalysisError::StepBudget { limit: 1, .. }
        ));
        assert!(out.provenance().contains("degraded"));
    }

    #[test]
    fn ig_budget_degrades_and_keeps_answers() {
        let ir = pta_simple::compile(PROG).unwrap();
        let config = AnalysisConfig {
            max_ig_nodes: 1,
            ..AnalysisConfig::default()
        };
        let out = analyze_resilient(&ir, config).unwrap();
        assert_eq!(out.fidelity, Fidelity::ContextInsensitive);
        // The fallback still knows q's final target.
        assert!(!out.result.exit_set.is_empty());
    }

    #[test]
    fn zero_deadline_exhausts_the_whole_ladder() {
        let ir = pta_simple::compile(PROG).unwrap();
        let config = AnalysisConfig {
            deadline: Some(Duration::ZERO),
            ..AnalysisConfig::default()
        };
        let err = analyze_resilient(&ir, config).unwrap_err();
        assert!(matches!(err, AnalysisError::Deadline { .. }), "{err:?}");
    }

    #[test]
    fn no_entry_is_not_recoverable() {
        let ir = pta_simple::compile("int f(void) { return 0; }").unwrap();
        let err = analyze_resilient(&ir, AnalysisConfig::default()).unwrap_err();
        assert_eq!(err, AnalysisError::NoEntry);
    }
}
