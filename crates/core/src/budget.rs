//! Cooperative resource budgets for the analysis.
//!
//! The paper's algorithm is worst-case exponential (invocation-graph
//! size) and the fixed-point loops can be very slow on adversarial
//! inputs, so every production entry point runs under a [`Budget`]:
//! a statement-count ceiling, an optional wall-clock deadline, a
//! points-to-set cardinality cap, and a map-process depth cap. Budgets
//! are checked cooperatively on the hot loops via the cheap
//! [`Budget::step`] — the wall clock is only consulted every
//! [`DEADLINE_STRIDE`] statements so the common path stays a counter
//! increment and a mask test.
//!
//! Exhaustion is reported as a distinct [`AnalysisError`] variant
//! carrying a [`TripPoint`]: the function being analysed, the
//! invocation-graph path that reached it, and the statement id (when
//! one is at hand). Callers that prefer degraded answers over errors
//! use the [`crate::resilient`] ladder on top of these errors.

use pta_simple::StmtId;
use std::fmt;
use std::time::{Duration, Instant};

/// How often (in processed statements) the wall clock is consulted.
/// A power of two so the check compiles to a mask test.
pub const DEADLINE_STRIDE: u64 = 64;

/// Where a budget tripped: enough context to point a user at the
/// offending part of their program.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TripPoint {
    /// The function being analysed when the budget ran out.
    pub function: String,
    /// The invocation-graph path from `main` (e.g. `main > f > g`).
    pub ig_path: String,
    /// The statement being processed, if the trip happened at one.
    pub stmt: Option<StmtId>,
}

impl TripPoint {
    /// A trip point with no context (used where none is available).
    pub fn unknown() -> Self {
        TripPoint {
            function: String::from("?"),
            ig_path: String::new(),
            stmt: None,
        }
    }
}

impl fmt::Display for TripPoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "in `{}`", self.function)?;
        if !self.ig_path.is_empty() {
            write!(f, " (via {})", self.ig_path)?;
        }
        if let Some(s) = self.stmt {
            write!(f, " at {s}")?;
        }
        Ok(())
    }
}

/// Which resource ran out (used by the degradation ladder to decide
/// whether an error is recoverable by a cheaper analysis).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BudgetKind {
    /// Statement-count ceiling.
    Steps,
    /// Wall-clock deadline.
    Deadline,
    /// Invocation-graph node cap.
    IgNodes,
    /// Points-to-set cardinality cap.
    PtPairs,
    /// Map-process pointer-chain depth cap.
    MapDepth,
}

impl fmt::Display for BudgetKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            BudgetKind::Steps => "statement budget",
            BudgetKind::Deadline => "wall-clock deadline",
            BudgetKind::IgNodes => "invocation-graph node budget",
            BudgetKind::PtPairs => "points-to-set cardinality budget",
            BudgetKind::MapDepth => "map-process depth budget",
        };
        f.write_str(s)
    }
}

/// Runtime budget state, threaded through the analyzer. Creation
/// snapshots the clock, so a deadline bounds one analysis run (each
/// rung of the degradation ladder gets a fresh one).
#[derive(Debug, Clone)]
pub struct Budget {
    steps: u64,
    max_steps: u64,
    start: Instant,
    deadline: Option<Duration>,
    max_pt_pairs: usize,
    max_map_depth: u32,
}

/// What [`Budget::step`] found; the caller attaches the trip point.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Exhausted {
    /// Step ceiling crossed (carries the limit).
    Steps(u64),
    /// Deadline crossed (carries the limit).
    Deadline(Duration),
    /// Cardinality cap crossed (carries limit and observed size).
    PtPairs { limit: usize, size: usize },
}

impl Budget {
    /// A budget from the configured limits, starting the clock now.
    pub fn new(
        max_steps: u64,
        deadline: Option<Duration>,
        max_pt_pairs: usize,
        max_map_depth: u32,
    ) -> Self {
        Budget {
            steps: 0,
            max_steps,
            start: Instant::now(),
            deadline,
            max_pt_pairs,
            max_map_depth,
        }
    }

    /// An effectively unlimited budget (tests, internal helpers).
    pub fn unlimited() -> Self {
        Budget::new(u64::MAX, None, usize::MAX, u32::MAX)
    }

    /// Statements processed so far.
    pub fn steps(&self) -> u64 {
        self.steps
    }

    /// Time elapsed since the budget was created.
    pub fn elapsed(&self) -> Duration {
        self.start.elapsed()
    }

    /// Time elapsed since the budget was created, in whole microseconds
    /// (the unit of the trace layer's `elapsed_us` field).
    pub fn elapsed_us(&self) -> u64 {
        self.start.elapsed().as_micros() as u64
    }

    /// True when the step counter just crossed a [`DEADLINE_STRIDE`]
    /// boundary — the trace layer's heartbeat cadence, aligned with the
    /// deadline-check stride so tracing adds no extra clock reads.
    #[inline]
    pub fn tick_due(&self) -> bool {
        self.steps.is_multiple_of(DEADLINE_STRIDE)
    }

    /// The configured map-process depth cap.
    pub fn max_map_depth(&self) -> u32 {
        self.max_map_depth
    }

    /// Accounts for one processed statement and checks the step,
    /// deadline, and cardinality budgets. `set_size` is the cardinality
    /// of the flow fact at this statement (checked every step — it is
    /// already O(1) to obtain).
    #[inline]
    pub fn step(&mut self, set_size: usize) -> Result<(), Exhausted> {
        self.steps += 1;
        if self.steps > self.max_steps {
            return Err(Exhausted::Steps(self.max_steps));
        }
        if set_size > self.max_pt_pairs {
            return Err(Exhausted::PtPairs {
                limit: self.max_pt_pairs,
                size: set_size,
            });
        }
        if self.steps % DEADLINE_STRIDE == 1 {
            self.check_deadline()?;
        }
        Ok(())
    }

    /// Checks only the wall clock (for coarse loops that do substantial
    /// work per iteration, e.g. fixed-point rounds).
    #[inline]
    pub fn check_deadline(&self) -> Result<(), Exhausted> {
        if let Some(d) = self.deadline {
            if self.start.elapsed() >= d {
                return Err(Exhausted::Deadline(d));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn step_budget_trips_at_the_limit() {
        let mut b = Budget::new(3, None, usize::MAX, 8);
        assert!(b.step(0).is_ok());
        assert!(b.step(0).is_ok());
        assert!(b.step(0).is_ok());
        assert_eq!(b.step(0), Err(Exhausted::Steps(3)));
    }

    #[test]
    fn cardinality_budget_trips_on_large_sets() {
        let mut b = Budget::new(u64::MAX, None, 10, 8);
        assert!(b.step(10).is_ok());
        assert_eq!(
            b.step(11),
            Err(Exhausted::PtPairs {
                limit: 10,
                size: 11
            })
        );
    }

    #[test]
    fn zero_deadline_trips_on_first_step() {
        let mut b = Budget::new(u64::MAX, Some(Duration::ZERO), usize::MAX, 8);
        assert_eq!(b.step(0), Err(Exhausted::Deadline(Duration::ZERO)));
    }

    #[test]
    fn unlimited_budget_never_trips() {
        let mut b = Budget::unlimited();
        for _ in 0..10_000 {
            assert!(b.step(1_000_000).is_ok());
        }
    }

    #[test]
    fn trip_point_renders_context() {
        let t = TripPoint {
            function: "f".into(),
            ig_path: "main > f".into(),
            stmt: Some(StmtId(7)),
        };
        let s = t.to_string();
        assert!(s.contains("`f`") && s.contains("main > f"), "{s}");
        assert!(TripPoint::unknown().to_string().contains('?'));
    }
}
