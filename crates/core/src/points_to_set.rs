//! Points-to sets: the analysis abstraction of §3 of the paper.
//!
//! A points-to set is a set of triples `(x, y, D|P)`: abstract stack
//! location `x` *definitely* or *possibly* contains the address of `y`
//! (Definitions 3.1/3.2).
//!
//! # Representation
//!
//! Triples are packed into single `u64` words — source id in the high
//! 32 bits, target id in bits 1..32, the definiteness in bit 0 (set
//! for `D`) — and kept in one sorted flat array. Sorting by the word
//! is sorting by `(source, target)`, so set operations (merge, subset,
//! equality) are linear merge-joins over machine words, lookups are a
//! binary search, and per-source ranges (`targets`, `kill_from`) are
//! contiguous slices. Demoting `D → P` clears bit 0, which cannot
//! reorder the array because pair keys are unique. Sets of up to six
//! triples — the overwhelming majority of per-variable sets — live
//! inline without a heap allocation.

use crate::location::LocId;
use std::fmt;

/// Definiteness of a points-to relationship.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Def {
    /// Holds on every execution path, and both endpoints name exactly
    /// one real location.
    D,
    /// May hold on some execution path.
    P,
}

impl Def {
    /// `D ∧ D = D`, anything else `P` (used when composing hops and when
    /// merging control-flow branches).
    pub fn and(self, other: Def) -> Def {
        if self == Def::D && other == Def::D {
            Def::D
        } else {
            Def::P
        }
    }
}

impl fmt::Display for Def {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Def::D => write!(f, "D"),
            Def::P => write!(f, "P"),
        }
    }
}

/// Bit 0 of a packed triple: set for `D`, clear for `P`.
const D_BIT: u64 = 1;
/// Mask selecting the `(source, target)` pair key of a packed triple.
const KEY_MASK: u64 = !D_BIT;

#[inline]
fn pack(src: LocId, tgt: LocId, d: Def) -> u64 {
    debug_assert!(tgt.0 < 1 << 31, "LocId overflows the packed target field");
    key(src, tgt) | (d == Def::D) as u64
}

#[inline]
fn key(src: LocId, tgt: LocId) -> u64 {
    ((src.0 as u64) << 32) | ((tgt.0 as u64) << 1)
}

#[inline]
fn unpack_src(e: u64) -> LocId {
    LocId((e >> 32) as u32)
}

#[inline]
fn unpack_tgt(e: u64) -> LocId {
    LocId(((e >> 1) & 0x7FFF_FFFF) as u32)
}

#[inline]
fn unpack_def(e: u64) -> Def {
    if e & D_BIT != 0 {
        Def::D
    } else {
        Def::P
    }
}

/// Triples held inline before the set spills to the heap.
const INLINE: usize = 6;

/// Storage of the packed triples: a small inline buffer or a spilled
/// vector. Invariant: the occupied prefix is sorted and pair keys are
/// unique.
#[derive(Clone)]
enum Rep {
    Inline { len: u8, buf: [u64; INLINE] },
    Spilled(Vec<u64>),
}

impl Rep {
    #[inline]
    fn as_slice(&self) -> &[u64] {
        match self {
            Rep::Inline { len, buf } => &buf[..*len as usize],
            Rep::Spilled(v) => v,
        }
    }

    #[inline]
    fn as_mut_slice(&mut self) -> &mut [u64] {
        match self {
            Rep::Inline { len, buf } => &mut buf[..*len as usize],
            Rep::Spilled(v) => v,
        }
    }

    fn insert_at(&mut self, i: usize, e: u64) {
        match self {
            Rep::Inline { len, buf } => {
                let n = *len as usize;
                if n < INLINE {
                    buf.copy_within(i..n, i + 1);
                    buf[i] = e;
                    *len += 1;
                } else {
                    let mut v = Vec::with_capacity(n * 2);
                    v.extend_from_slice(&buf[..i]);
                    v.push(e);
                    v.extend_from_slice(&buf[i..]);
                    *self = Rep::Spilled(v);
                }
            }
            Rep::Spilled(v) => v.insert(i, e),
        }
    }

    fn remove_range(&mut self, range: std::ops::Range<usize>) {
        match self {
            Rep::Inline { len, buf } => {
                let n = *len as usize;
                buf.copy_within(range.end..n, range.start);
                *len -= (range.end - range.start) as u8;
            }
            Rep::Spilled(v) => {
                v.drain(range);
            }
        }
    }

    fn truncate(&mut self, n: usize) {
        match self {
            Rep::Inline { len, .. } => *len = (*len).min(n as u8),
            Rep::Spilled(v) => v.truncate(n),
        }
    }

    fn from_sorted(v: Vec<u64>) -> Self {
        if v.len() <= INLINE {
            let mut buf = [0u64; INLINE];
            buf[..v.len()].copy_from_slice(&v);
            Rep::Inline {
                len: v.len() as u8,
                buf,
            }
        } else {
            Rep::Spilled(v)
        }
    }
}

impl Default for Rep {
    fn default() -> Self {
        Rep::Inline {
            len: 0,
            buf: [0; INLINE],
        }
    }
}

/// A set of points-to triples over interned locations, stored as one
/// sorted array of packed `u64` words (see the module docs).
#[derive(Clone, Default)]
pub struct PtSet {
    rep: Rep,
}

impl PartialEq for PtSet {
    fn eq(&self, other: &Self) -> bool {
        self.rep.as_slice() == other.rep.as_slice()
    }
}

impl Eq for PtSet {}

impl fmt::Debug for PtSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_set()
            .entries(self.iter().map(|(s, t, d)| (s.0, t.0, d)))
            .finish()
    }
}

impl PtSet {
    /// An empty set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of triples.
    pub fn len(&self) -> usize {
        self.rep.as_slice().len()
    }

    /// True if there are no triples.
    pub fn is_empty(&self) -> bool {
        self.rep.as_slice().is_empty()
    }

    /// A content fingerprint (FNV-1a over the packed words). Equal sets
    /// hash equal; used by the trace layer as a compact input-context
    /// id for memo hit/miss events and by the store to match warm
    /// context pairs.
    pub fn fingerprint(&self) -> u64 {
        let mut h = crate::fingerprint::Fnv1a::new();
        for &w in self.rep.as_slice() {
            h.write_u64(w);
        }
        h.finish()
    }

    /// Index of the pair `(src, tgt)` if present, else its insertion
    /// point.
    #[inline]
    fn pair_index(&self, src: LocId, tgt: LocId) -> Result<usize, usize> {
        let k = key(src, tgt);
        let s = self.rep.as_slice();
        let i = s.partition_point(|&e| (e & KEY_MASK) < k);
        if s.get(i).is_some_and(|&e| e & KEY_MASK == k) {
            Ok(i)
        } else {
            Err(i)
        }
    }

    /// The contiguous index range of triples whose source is `src`.
    #[inline]
    fn source_range(&self, src: LocId) -> std::ops::Range<usize> {
        let s = self.rep.as_slice();
        let lo = (src.0 as u64) << 32;
        let hi = ((src.0 as u64) + 1) << 32;
        s.partition_point(|&e| e < lo)..s.partition_point(|&e| e < hi)
    }

    /// The definiteness of `(src, tgt)` if present.
    pub fn get(&self, src: LocId, tgt: LocId) -> Option<Def> {
        self.pair_index(src, tgt)
            .ok()
            .map(|i| unpack_def(self.rep.as_slice()[i]))
    }

    /// True if the triple `(src, tgt, d)` with any definiteness exists.
    pub fn contains(&self, src: LocId, tgt: LocId) -> bool {
        self.pair_index(src, tgt).is_ok()
    }

    /// The targets of `src` with their definiteness.
    pub fn targets(&self, src: LocId) -> impl Iterator<Item = (LocId, Def)> + '_ {
        let r = self.source_range(src);
        self.rep.as_slice()[r]
            .iter()
            .map(|&e| (unpack_tgt(e), unpack_def(e)))
    }

    /// Number of targets of `src`.
    pub fn target_count(&self, src: LocId) -> usize {
        self.source_range(src).len()
    }

    /// Inserts a triple. If the pair already exists, `D` wins: an
    /// insertion is a *generated* fact at the current point, which can
    /// only sharpen what survived kill/change processing.
    pub fn insert(&mut self, src: LocId, tgt: LocId, d: Def) {
        match self.pair_index(src, tgt) {
            Ok(i) => {
                if d == Def::D {
                    self.rep.as_mut_slice()[i] |= D_BIT;
                }
            }
            Err(i) => self.rep.insert_at(i, pack(src, tgt, d)),
        }
    }

    /// Inserts a triple, weakening to `P` if the pair already exists with
    /// a different definiteness (used when accumulating from multiple
    /// contexts).
    pub fn insert_weak(&mut self, src: LocId, tgt: LocId, d: Def) {
        match self.pair_index(src, tgt) {
            Ok(i) => {
                let e = &mut self.rep.as_mut_slice()[i];
                if unpack_def(*e) != d {
                    *e &= KEY_MASK;
                }
            }
            Err(i) => self.rep.insert_at(i, pack(src, tgt, d)),
        }
    }

    /// Removes every triple whose source is `src` ("kill").
    pub fn kill_from(&mut self, src: LocId) {
        let r = self.source_range(src);
        if !r.is_empty() {
            self.rep.remove_range(r);
        }
    }

    /// Demotes every triple from `src` to `P` ("change").
    pub fn demote_from(&mut self, src: LocId) {
        let r = self.source_range(src);
        for e in &mut self.rep.as_mut_slice()[r] {
            *e &= KEY_MASK;
        }
    }

    /// Removes a specific triple.
    pub fn remove(&mut self, src: LocId, tgt: LocId) {
        if let Ok(i) = self.pair_index(src, tgt) {
            self.rep.remove_range(i..i + 1);
        }
    }

    /// Merges two flow facts at a control-flow join: a pair definite in
    /// both stays definite; a pair present in only one side, or possible
    /// in either, is possible (Definition 3.3). A sorted merge-join.
    pub fn merge(&self, other: &PtSet) -> PtSet {
        let (a, b) = (self.rep.as_slice(), other.rep.as_slice());
        let mut out = Vec::with_capacity(a.len().max(b.len()));
        let (mut i, mut j) = (0, 0);
        while i < a.len() && j < b.len() {
            let (ka, kb) = (a[i] & KEY_MASK, b[j] & KEY_MASK);
            match ka.cmp(&kb) {
                std::cmp::Ordering::Equal => {
                    // D ∧ D = D: the definiteness bits AND together.
                    out.push(ka | (a[i] & b[j] & D_BIT));
                    i += 1;
                    j += 1;
                }
                std::cmp::Ordering::Less => {
                    out.push(ka); // one-sided → P
                    i += 1;
                }
                std::cmp::Ordering::Greater => {
                    out.push(kb);
                    j += 1;
                }
            }
        }
        out.extend(a[i..].iter().map(|e| e & KEY_MASK));
        out.extend(b[j..].iter().map(|e| e & KEY_MASK));
        PtSet {
            rep: Rep::from_sorted(out),
        }
    }

    /// Accumulates `other` into `self` with [`PtSet::insert_weak`]
    /// semantics (union; conflicting definiteness becomes `P`). Unlike
    /// [`PtSet::merge`], pairs present on only one side keep their
    /// definiteness — used for per-statement statistics over contexts.
    pub fn absorb(&mut self, other: &PtSet) {
        for (src, tgt, d) in other.iter() {
            self.insert_weak(src, tgt, d);
        }
    }

    /// True if analyzing with `other` as input subsumes analyzing with
    /// `self`: every triple of `self` appears in `other`, and a
    /// possible triple in `self` is not claimed definite by `other`
    /// (a definite claim is *stronger*, so it would not be a safe
    /// generalization). A sorted two-pointer walk.
    pub fn subset_of(&self, other: &PtSet) -> bool {
        let (a, b) = (self.rep.as_slice(), other.rep.as_slice());
        let mut j = 0;
        for &ea in a {
            let ka = ea & KEY_MASK;
            while j < b.len() && (b[j] & KEY_MASK) < ka {
                j += 1;
            }
            if j >= b.len() || b[j] & KEY_MASK != ka {
                return false;
            }
            // Fails only when `other` claims D for a pair `self` has
            // as P (bit arithmetic: D = 1 > P = 0).
            if ea & D_BIT < b[j] & D_BIT {
                return false;
            }
            j += 1;
        }
        true
    }

    /// Iterates all triples in deterministic `(source, target)` order.
    pub fn iter(&self) -> impl Iterator<Item = (LocId, LocId, Def)> + '_ {
        self.rep
            .as_slice()
            .iter()
            .map(|&e| (unpack_src(e), unpack_tgt(e), unpack_def(e)))
    }

    /// Iterates all source locations (ascending, deduplicated).
    pub fn sources(&self) -> impl Iterator<Item = LocId> + '_ {
        let s = self.rep.as_slice();
        let mut i = 0;
        std::iter::from_fn(move || {
            if i >= s.len() {
                return None;
            }
            let src = unpack_src(s[i]);
            while i < s.len() && unpack_src(s[i]) == src {
                i += 1;
            }
            Some(src)
        })
    }

    /// Retains only the triples satisfying the predicate.
    pub fn retain(&mut self, mut pred: impl FnMut(LocId, LocId, Def) -> bool) {
        let s = self.rep.as_mut_slice();
        let mut w = 0;
        for r in 0..s.len() {
            let e = s[r];
            if pred(unpack_src(e), unpack_tgt(e), unpack_def(e)) {
                s[w] = e;
                w += 1;
            }
        }
        self.rep.truncate(w);
    }
}

impl FromIterator<(LocId, LocId, Def)> for PtSet {
    fn from_iter<I: IntoIterator<Item = (LocId, LocId, Def)>>(iter: I) -> Self {
        let mut s = PtSet::new();
        for (a, b, d) in iter {
            s.insert(a, b, d);
        }
        s
    }
}

impl Extend<(LocId, LocId, Def)> for PtSet {
    fn extend<I: IntoIterator<Item = (LocId, LocId, Def)>>(&mut self, iter: I) {
        for (a, b, d) in iter {
            self.insert(a, b, d);
        }
    }
}

/// A flow fact: `None` is ⊥ (program point unreachable), used as the
/// initial output estimate of recursive nodes (Figure 4) and for paths
/// cut by `break`/`return`/`exit`.
pub type Flow = Option<PtSet>;

/// Merges two flow facts (`⊥` is the identity).
pub fn merge_flow(a: Flow, b: Flow) -> Flow {
    match (a, b) {
        (None, x) | (x, None) => x,
        (Some(x), Some(y)) => Some(x.merge(&y)),
    }
}

/// `a ⊆ b` on flow facts (`⊥` is below everything).
pub fn flow_subset(a: &Flow, b: &Flow) -> bool {
    match (a, b) {
        (None, _) => true,
        (Some(_), None) => false,
        (Some(x), Some(y)) => x.subset_of(y),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn l(i: u32) -> LocId {
        LocId(i)
    }

    #[test]
    fn insert_and_query() {
        let mut s = PtSet::new();
        s.insert(l(0), l(1), Def::D);
        s.insert(l(0), l(2), Def::P);
        assert_eq!(s.len(), 2);
        assert_eq!(s.get(l(0), l(1)), Some(Def::D));
        assert_eq!(s.target_count(l(0)), 2);
        assert_eq!(s.target_count(l(1)), 0);
    }

    #[test]
    fn insert_d_wins_over_p() {
        let mut s = PtSet::new();
        s.insert(l(0), l(1), Def::P);
        s.insert(l(0), l(1), Def::D);
        assert_eq!(s.get(l(0), l(1)), Some(Def::D));
        // And D stays D when P inserted after.
        s.insert(l(0), l(1), Def::P);
        assert_eq!(s.get(l(0), l(1)), Some(Def::D));
    }

    #[test]
    fn insert_weak_conflict_becomes_p() {
        let mut s = PtSet::new();
        s.insert_weak(l(0), l(1), Def::D);
        assert_eq!(s.get(l(0), l(1)), Some(Def::D));
        s.insert_weak(l(0), l(1), Def::P);
        assert_eq!(s.get(l(0), l(1)), Some(Def::P));
    }

    #[test]
    fn kill_and_demote() {
        let mut s = PtSet::new();
        s.insert(l(0), l(1), Def::D);
        s.insert(l(0), l(2), Def::D);
        s.insert(l(3), l(1), Def::D);
        s.demote_from(l(0));
        assert_eq!(s.get(l(0), l(1)), Some(Def::P));
        assert_eq!(s.get(l(3), l(1)), Some(Def::D));
        s.kill_from(l(0));
        assert_eq!(s.target_count(l(0)), 0);
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn merge_definiteness_rules() {
        let mut a = PtSet::new();
        a.insert(l(0), l(1), Def::D); // D on both sides → D
        a.insert(l(0), l(2), Def::D); // only on this side → P
        a.insert(l(0), l(3), Def::P); // P+D → P
        let mut b = PtSet::new();
        b.insert(l(0), l(1), Def::D);
        b.insert(l(0), l(3), Def::D);
        b.insert(l(4), l(5), Def::P); // only on that side → P
        let m = a.merge(&b);
        assert_eq!(m.get(l(0), l(1)), Some(Def::D));
        assert_eq!(m.get(l(0), l(2)), Some(Def::P));
        assert_eq!(m.get(l(0), l(3)), Some(Def::P));
        assert_eq!(m.get(l(4), l(5)), Some(Def::P));
    }

    #[test]
    fn merge_is_commutative() {
        let mut a = PtSet::new();
        a.insert(l(0), l(1), Def::D);
        a.insert(l(2), l(3), Def::P);
        let mut b = PtSet::new();
        b.insert(l(0), l(1), Def::P);
        b.insert(l(5), l(6), Def::D);
        assert_eq!(a.merge(&b), b.merge(&a));
    }

    #[test]
    fn subset_semantics() {
        let mut small = PtSet::new();
        small.insert(l(0), l(1), Def::D);
        let mut big = PtSet::new();
        big.insert(l(0), l(1), Def::P);
        big.insert(l(0), l(2), Def::P);
        // D input is subsumed by a more general P input.
        assert!(small.subset_of(&big));
        assert!(!big.subset_of(&small));
        // A definite claim does NOT subsume a possible fact.
        let mut dset = PtSet::new();
        dset.insert(l(0), l(1), Def::D);
        let mut pset = PtSet::new();
        pset.insert(l(0), l(1), Def::P);
        assert!(!pset.subset_of(&dset));
        assert!(dset.subset_of(&pset));
    }

    #[test]
    fn flow_merge_bottom_is_identity() {
        let mut a = PtSet::new();
        a.insert(l(0), l(1), Def::D);
        let m = merge_flow(Some(a.clone()), None);
        assert_eq!(m, Some(a.clone()));
        let m2 = merge_flow(None, Some(a.clone()));
        assert_eq!(m2, Some(a));
        assert_eq!(merge_flow(None, None), None);
    }

    #[test]
    fn absorb_keeps_one_sided_defs() {
        let mut a = PtSet::new();
        a.insert(l(0), l(1), Def::D);
        let mut b = PtSet::new();
        b.insert(l(2), l(3), Def::D);
        a.absorb(&b);
        assert_eq!(a.get(l(2), l(3)), Some(Def::D));
        assert_eq!(a.get(l(0), l(1)), Some(Def::D));
    }

    #[test]
    fn retain_filters() {
        let mut s = PtSet::new();
        s.insert(l(0), l(1), Def::D);
        s.insert(l(2), l(3), Def::P);
        s.retain(|_, _, d| d == Def::D);
        assert_eq!(s.len(), 1);
        assert!(s.contains(l(0), l(1)));
    }

    // ---- packed-representation specifics --------------------------------

    #[test]
    fn spill_past_inline_capacity_preserves_order_and_content() {
        let mut s = PtSet::new();
        // Insert out of order, well past the inline capacity.
        for i in (0..40u32).rev() {
            s.insert(l(i % 7), l(i), if i % 3 == 0 { Def::D } else { Def::P });
        }
        assert_eq!(s.len(), 40);
        let triples: Vec<_> = s.iter().collect();
        let mut sorted = triples.clone();
        sorted.sort_by_key(|(a, b, _)| (*a, *b));
        assert_eq!(triples, sorted, "iteration is (source, target) ordered");
        for (src, tgt, d) in triples {
            assert_eq!(s.get(src, tgt), Some(d));
        }
    }

    #[test]
    fn equality_ignores_storage_mode() {
        let mut a = PtSet::new();
        for i in 0..20u32 {
            a.insert(l(0), l(i), Def::P);
        }
        for i in 1..20u32 {
            a.remove(l(0), l(i)); // spilled, then shrunk back to 1
        }
        let mut b = PtSet::new();
        b.insert(l(0), l(0), Def::P);
        assert_eq!(a, b);
    }

    #[test]
    fn kill_removes_a_contiguous_run_in_a_spilled_set() {
        let mut s = PtSet::new();
        for i in 0..10u32 {
            s.insert(l(1), l(i), Def::P);
        }
        s.insert(l(0), l(0), Def::D);
        s.insert(l(2), l(0), Def::D);
        s.kill_from(l(1));
        assert_eq!(s.len(), 2);
        assert!(s.contains(l(0), l(0)));
        assert!(s.contains(l(2), l(0)));
    }
}
