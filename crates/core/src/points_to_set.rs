//! Points-to sets: the analysis abstraction of §3 of the paper.
//!
//! A points-to set is a set of triples `(x, y, D|P)`: abstract stack
//! location `x` *definitely* or *possibly* contains the address of `y`
//! (Definitions 3.1/3.2).

use crate::location::LocId;
use std::collections::BTreeMap;
use std::fmt;

/// Definiteness of a points-to relationship.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Def {
    /// Holds on every execution path, and both endpoints name exactly
    /// one real location.
    D,
    /// May hold on some execution path.
    P,
}

impl Def {
    /// `D ∧ D = D`, anything else `P` (used when composing hops and when
    /// merging control-flow branches).
    pub fn and(self, other: Def) -> Def {
        if self == Def::D && other == Def::D {
            Def::D
        } else {
            Def::P
        }
    }
}

impl fmt::Display for Def {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Def::D => write!(f, "D"),
            Def::P => write!(f, "P"),
        }
    }
}

/// A set of points-to triples, indexed by source location.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PtSet {
    map: BTreeMap<LocId, BTreeMap<LocId, Def>>,
}

impl PtSet {
    /// An empty set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of triples.
    pub fn len(&self) -> usize {
        self.map.values().map(|m| m.len()).sum()
    }

    /// True if there are no triples.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// The definiteness of `(src, tgt)` if present.
    pub fn get(&self, src: LocId, tgt: LocId) -> Option<Def> {
        self.map.get(&src).and_then(|m| m.get(&tgt)).copied()
    }

    /// True if the triple `(src, tgt, d)` with any definiteness exists.
    pub fn contains(&self, src: LocId, tgt: LocId) -> bool {
        self.get(src, tgt).is_some()
    }

    /// The targets of `src` with their definiteness.
    pub fn targets(&self, src: LocId) -> impl Iterator<Item = (LocId, Def)> + '_ {
        self.map.get(&src).into_iter().flatten().map(|(l, d)| (*l, *d))
    }

    /// Number of targets of `src`.
    pub fn target_count(&self, src: LocId) -> usize {
        self.map.get(&src).map_or(0, |m| m.len())
    }

    /// Inserts a triple. If the pair already exists, `D` wins: an
    /// insertion is a *generated* fact at the current point, which can
    /// only sharpen what survived kill/change processing.
    pub fn insert(&mut self, src: LocId, tgt: LocId, d: Def) {
        let slot = self.map.entry(src).or_default().entry(tgt).or_insert(d);
        if d == Def::D {
            *slot = Def::D;
        }
    }

    /// Inserts a triple, weakening to `P` if the pair already exists with
    /// a different definiteness (used when accumulating from multiple
    /// contexts).
    pub fn insert_weak(&mut self, src: LocId, tgt: LocId, d: Def) {
        match self.map.entry(src).or_default().entry(tgt) {
            std::collections::btree_map::Entry::Vacant(e) => {
                e.insert(d);
            }
            std::collections::btree_map::Entry::Occupied(mut e) => {
                if *e.get() != d {
                    e.insert(Def::P);
                }
            }
        }
    }

    /// Removes every triple whose source is `src` ("kill").
    pub fn kill_from(&mut self, src: LocId) {
        self.map.remove(&src);
    }

    /// Demotes every triple from `src` to `P` ("change").
    pub fn demote_from(&mut self, src: LocId) {
        if let Some(m) = self.map.get_mut(&src) {
            for d in m.values_mut() {
                *d = Def::P;
            }
        }
    }

    /// Removes a specific triple.
    pub fn remove(&mut self, src: LocId, tgt: LocId) {
        if let Some(m) = self.map.get_mut(&src) {
            m.remove(&tgt);
            if m.is_empty() {
                self.map.remove(&src);
            }
        }
    }

    /// Merges two flow facts at a control-flow join: a pair definite in
    /// both stays definite; a pair present in only one side, or possible
    /// in either, is possible (Definition 3.3).
    pub fn merge(&self, other: &PtSet) -> PtSet {
        let mut out = PtSet::new();
        for (src, tgts) in &self.map {
            for (tgt, d) in tgts {
                let merged = match other.get(*src, *tgt) {
                    Some(od) => d.and(od),
                    None => Def::P,
                };
                out.insert(*src, *tgt, merged);
            }
        }
        for (src, tgts) in &other.map {
            for (tgt, d) in tgts {
                if !self.contains(*src, *tgt) {
                    out.insert(*src, *tgt, d.and(Def::P));
                }
            }
        }
        out
    }

    /// Accumulates `other` into `self` with [`PtSet::insert_weak`]
    /// semantics (union; conflicting definiteness becomes `P`). Unlike
    /// [`PtSet::merge`], pairs present on only one side keep their
    /// definiteness — used for per-statement statistics over contexts.
    pub fn absorb(&mut self, other: &PtSet) {
        for (src, tgts) in &other.map {
            for (tgt, d) in tgts {
                self.insert_weak(*src, *tgt, *d);
            }
        }
    }

    /// True if analyzing with `other` as input subsumes analyzing with
    /// `self`: every triple of `self` appears in `other`, and a
    /// possible triple in `self` is not claimed definite by `other`
    /// (a definite claim is *stronger*, so it would not be a safe
    /// generalization).
    pub fn subset_of(&self, other: &PtSet) -> bool {
        for (src, tgts) in &self.map {
            for (tgt, d) in tgts {
                match other.get(*src, *tgt) {
                    None => return false,
                    Some(Def::P) => {}
                    Some(Def::D) => {
                        if *d == Def::P {
                            return false;
                        }
                    }
                }
            }
        }
        true
    }

    /// Iterates all triples in deterministic order.
    pub fn iter(&self) -> impl Iterator<Item = (LocId, LocId, Def)> + '_ {
        self.map
            .iter()
            .flat_map(|(src, tgts)| tgts.iter().map(move |(tgt, d)| (*src, *tgt, *d)))
    }

    /// Iterates all source locations.
    pub fn sources(&self) -> impl Iterator<Item = LocId> + '_ {
        self.map.keys().copied()
    }

    /// Retains only the triples satisfying the predicate.
    pub fn retain(&mut self, mut pred: impl FnMut(LocId, LocId, Def) -> bool) {
        let mut empty = Vec::new();
        for (src, tgts) in self.map.iter_mut() {
            tgts.retain(|tgt, d| pred(*src, *tgt, *d));
            if tgts.is_empty() {
                empty.push(*src);
            }
        }
        for s in empty {
            self.map.remove(&s);
        }
    }
}

impl FromIterator<(LocId, LocId, Def)> for PtSet {
    fn from_iter<I: IntoIterator<Item = (LocId, LocId, Def)>>(iter: I) -> Self {
        let mut s = PtSet::new();
        for (a, b, d) in iter {
            s.insert(a, b, d);
        }
        s
    }
}

impl Extend<(LocId, LocId, Def)> for PtSet {
    fn extend<I: IntoIterator<Item = (LocId, LocId, Def)>>(&mut self, iter: I) {
        for (a, b, d) in iter {
            self.insert(a, b, d);
        }
    }
}

/// A flow fact: `None` is ⊥ (program point unreachable), used as the
/// initial output estimate of recursive nodes (Figure 4) and for paths
/// cut by `break`/`return`/`exit`.
pub type Flow = Option<PtSet>;

/// Merges two flow facts (`⊥` is the identity).
pub fn merge_flow(a: Flow, b: Flow) -> Flow {
    match (a, b) {
        (None, x) | (x, None) => x,
        (Some(x), Some(y)) => Some(x.merge(&y)),
    }
}

/// `a ⊆ b` on flow facts (`⊥` is below everything).
pub fn flow_subset(a: &Flow, b: &Flow) -> bool {
    match (a, b) {
        (None, _) => true,
        (Some(_), None) => false,
        (Some(x), Some(y)) => x.subset_of(y),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn l(i: u32) -> LocId {
        LocId(i)
    }

    #[test]
    fn insert_and_query() {
        let mut s = PtSet::new();
        s.insert(l(0), l(1), Def::D);
        s.insert(l(0), l(2), Def::P);
        assert_eq!(s.len(), 2);
        assert_eq!(s.get(l(0), l(1)), Some(Def::D));
        assert_eq!(s.target_count(l(0)), 2);
        assert_eq!(s.target_count(l(1)), 0);
    }

    #[test]
    fn insert_d_wins_over_p() {
        let mut s = PtSet::new();
        s.insert(l(0), l(1), Def::P);
        s.insert(l(0), l(1), Def::D);
        assert_eq!(s.get(l(0), l(1)), Some(Def::D));
        // And D stays D when P inserted after.
        s.insert(l(0), l(1), Def::P);
        assert_eq!(s.get(l(0), l(1)), Some(Def::D));
    }

    #[test]
    fn insert_weak_conflict_becomes_p() {
        let mut s = PtSet::new();
        s.insert_weak(l(0), l(1), Def::D);
        assert_eq!(s.get(l(0), l(1)), Some(Def::D));
        s.insert_weak(l(0), l(1), Def::P);
        assert_eq!(s.get(l(0), l(1)), Some(Def::P));
    }

    #[test]
    fn kill_and_demote() {
        let mut s = PtSet::new();
        s.insert(l(0), l(1), Def::D);
        s.insert(l(0), l(2), Def::D);
        s.insert(l(3), l(1), Def::D);
        s.demote_from(l(0));
        assert_eq!(s.get(l(0), l(1)), Some(Def::P));
        assert_eq!(s.get(l(3), l(1)), Some(Def::D));
        s.kill_from(l(0));
        assert_eq!(s.target_count(l(0)), 0);
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn merge_definiteness_rules() {
        let mut a = PtSet::new();
        a.insert(l(0), l(1), Def::D); // D on both sides → D
        a.insert(l(0), l(2), Def::D); // only on this side → P
        a.insert(l(0), l(3), Def::P); // P+D → P
        let mut b = PtSet::new();
        b.insert(l(0), l(1), Def::D);
        b.insert(l(0), l(3), Def::D);
        b.insert(l(4), l(5), Def::P); // only on that side → P
        let m = a.merge(&b);
        assert_eq!(m.get(l(0), l(1)), Some(Def::D));
        assert_eq!(m.get(l(0), l(2)), Some(Def::P));
        assert_eq!(m.get(l(0), l(3)), Some(Def::P));
        assert_eq!(m.get(l(4), l(5)), Some(Def::P));
    }

    #[test]
    fn merge_is_commutative() {
        let mut a = PtSet::new();
        a.insert(l(0), l(1), Def::D);
        a.insert(l(2), l(3), Def::P);
        let mut b = PtSet::new();
        b.insert(l(0), l(1), Def::P);
        b.insert(l(5), l(6), Def::D);
        assert_eq!(a.merge(&b), b.merge(&a));
    }

    #[test]
    fn subset_semantics() {
        let mut small = PtSet::new();
        small.insert(l(0), l(1), Def::D);
        let mut big = PtSet::new();
        big.insert(l(0), l(1), Def::P);
        big.insert(l(0), l(2), Def::P);
        // D input is subsumed by a more general P input.
        assert!(small.subset_of(&big));
        assert!(!big.subset_of(&small));
        // A definite claim does NOT subsume a possible fact.
        let mut dset = PtSet::new();
        dset.insert(l(0), l(1), Def::D);
        let mut pset = PtSet::new();
        pset.insert(l(0), l(1), Def::P);
        assert!(!pset.subset_of(&dset));
        assert!(dset.subset_of(&pset));
    }

    #[test]
    fn flow_merge_bottom_is_identity() {
        let mut a = PtSet::new();
        a.insert(l(0), l(1), Def::D);
        let m = merge_flow(Some(a.clone()), None);
        assert_eq!(m, Some(a.clone()));
        let m2 = merge_flow(None, Some(a.clone()));
        assert_eq!(m2, Some(a));
        assert_eq!(merge_flow(None, None), None);
    }

    #[test]
    fn absorb_keeps_one_sided_defs() {
        let mut a = PtSet::new();
        a.insert(l(0), l(1), Def::D);
        let mut b = PtSet::new();
        b.insert(l(2), l(3), Def::D);
        a.absorb(&b);
        assert_eq!(a.get(l(2), l(3)), Some(Def::D));
        assert_eq!(a.get(l(0), l(1)), Some(Def::D));
    }

    #[test]
    fn retain_filters() {
        let mut s = PtSet::new();
        s.insert(l(0), l(1), Def::D);
        s.insert(l(2), l(3), Def::P);
        s.retain(|_, _, d| d == Def::D);
        assert_eq!(s.len(), 1);
        assert!(s.contains(l(0), l(1)));
    }
}
