//! A shared, atomically swappable, read-only snapshot handle.
//!
//! The serving layer keeps one immutable analysed snapshot per program
//! and shares it across every connection via `Arc` — no re-parse, no
//! copy. When the on-disk store changes, the snapshot is *replaced*,
//! never mutated: readers that already hold an `Arc` keep answering
//! from the old version until they drop it (the old `Arc` drains),
//! while every new [`Shared::load`] sees the replacement. This type is
//! that reload primitive.
//!
//! ```
//! use pta_core::shared::Shared;
//!
//! let handle = Shared::new("v1".to_owned());
//! let reader = handle.load();           // a long-lived connection
//! let old = handle.swap("v2".to_owned());
//! assert_eq!(*old, "v1");
//! assert_eq!(*reader, "v1");            // old readers drain gracefully
//! assert_eq!(*handle.load(), "v2");     // new readers see the swap
//! assert_eq!(handle.epoch(), 1);
//! ```

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

/// An `Arc`-shared value that can be atomically replaced.
///
/// `load` is cheap (one `RwLock` read + `Arc` clone) and never blocks
/// behind a long computation: builders construct the replacement value
/// *outside* the handle and only [`Shared::swap`] it in. The epoch
/// counter increments on every swap, so callers can tell whether the
/// value they hold is current without comparing contents.
#[derive(Debug)]
pub struct Shared<T> {
    slot: RwLock<Arc<T>>,
    epoch: AtomicU64,
}

impl<T> Shared<T> {
    /// Wraps an initial value (epoch 0).
    pub fn new(value: T) -> Self {
        Shared {
            slot: RwLock::new(Arc::new(value)),
            epoch: AtomicU64::new(0),
        }
    }

    /// The current value. The returned `Arc` stays valid across any
    /// number of subsequent [`Shared::swap`]s.
    pub fn load(&self) -> Arc<T> {
        Arc::clone(&self.slot.read().expect("internal: Shared lock poisoned"))
    }

    /// Replaces the value, returning the previous one and bumping the
    /// epoch. Existing `Arc`s from [`Shared::load`] are unaffected.
    pub fn swap(&self, value: T) -> Arc<T> {
        self.swap_arc(Arc::new(value))
    }

    /// [`Shared::swap`] for a value that is already shared.
    pub fn swap_arc(&self, value: Arc<T>) -> Arc<T> {
        let mut slot = self.slot.write().expect("internal: Shared lock poisoned");
        let old = std::mem::replace(&mut *slot, value);
        self.epoch.fetch_add(1, Ordering::Release);
        old
    }

    /// How many times the value has been replaced.
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::Acquire)
    }
}

impl<T> From<T> for Shared<T> {
    fn from(value: T) -> Self {
        Shared::new(value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn swap_is_visible_to_new_loads_only() {
        let h = Shared::new(vec![1, 2, 3]);
        let before = h.load();
        assert_eq!(h.epoch(), 0);
        let old = h.swap(vec![4]);
        assert_eq!(*old, vec![1, 2, 3]);
        assert_eq!(*before, vec![1, 2, 3]);
        assert_eq!(*h.load(), vec![4]);
        assert_eq!(h.epoch(), 1);
    }

    #[test]
    fn concurrent_readers_see_a_consistent_value() {
        let h = Arc::new(Shared::new(0u64));
        std::thread::scope(|s| {
            for _ in 0..4 {
                let h = Arc::clone(&h);
                s.spawn(move || {
                    for _ in 0..1000 {
                        // Whatever version a reader gets, it is a full
                        // value, never a torn one.
                        let v = h.load();
                        assert!(*v <= 1000);
                    }
                });
            }
            for i in 1..=1000u64 {
                h.swap(i);
            }
        });
        assert_eq!(*h.load(), 1000);
        assert_eq!(h.epoch(), 1000);
    }

    #[test]
    fn racing_swaps_never_tear_a_multi_field_snapshot() {
        // A value whose fields must agree: payload derived from the
        // version, checksum derived from both. Any torn read — fields
        // from two different versions — breaks the invariant.
        #[derive(Debug)]
        struct Snap {
            version: u64,
            payload: Vec<u64>,
            checksum: u64,
        }
        fn make(version: u64) -> Snap {
            let payload: Vec<u64> = (0..64)
                .map(|i| version.wrapping_mul(31).wrapping_add(i))
                .collect();
            let checksum = payload.iter().fold(version, |a, &b| a.wrapping_add(b));
            Snap {
                version,
                payload,
                checksum,
            }
        }
        let h = Arc::new(Shared::new(make(0)));
        let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
        std::thread::scope(|s| {
            for _ in 0..8 {
                let h = Arc::clone(&h);
                let stop = Arc::clone(&stop);
                s.spawn(move || {
                    while !stop.load(Ordering::Acquire) {
                        let v = h.load();
                        let want = v.payload.iter().fold(v.version, |a, &b| a.wrapping_add(b));
                        assert_eq!(v.checksum, want, "torn snapshot at version {}", v.version);
                        assert_eq!(v.payload.len(), 64);
                        assert_eq!(v.payload[0], v.version.wrapping_mul(31));
                    }
                });
            }
            for version in 1..=2000u64 {
                h.swap(make(version));
            }
            stop.store(true, Ordering::Release);
        });
        assert_eq!(h.epoch(), 2000);
        assert_eq!(h.load().version, 2000);
    }
}
