//! The analysis driver: configuration, results, and the top-level
//! [`analyze`] entry point.

use crate::budget::{Budget, BudgetKind, Exhausted, TripPoint};
use crate::invocation_graph::{IgFragment, IgNodeId, InvocationGraph};
use crate::location::{LocId, LocationTable, Proj};
use crate::lvalue::RefEnv;
use crate::points_to_set::{Def, Flow, PtSet};
use crate::trace::{TraceEvent, TraceSink, Tracer};
use pta_cfront::ast::FuncId;
use pta_cfront::types::Type;
use pta_simple::{CallSiteId, IrProgram, StmtId};
use std::collections::BTreeMap;
use std::error::Error;
use std::fmt;
use std::time::Duration;

/// Tunable parameters of the analysis, including its resource budgets.
///
/// Every budget exhaustion surfaces as a distinct [`AnalysisError`]
/// variant; [`crate::resilient::analyze_resilient`] turns those errors
/// into degraded-but-sound answers instead.
#[derive(Debug, Clone)]
pub struct AnalysisConfig {
    /// Maximum symbolic-name depth per invisible-variable chain (the
    /// `k` of `k_x`); deeper chains collapse into the last symbol.
    pub max_sym_depth: u32,
    /// Bound on invocation-graph size (it is worst-case exponential).
    pub max_ig_nodes: usize,
    /// Error (rather than warn) on calls to unmodelled externals.
    pub strict_externs: bool,
    /// Safety budget on processed basic statements.
    pub max_steps: u64,
    /// Record per-statement points-to sets (needed for the statistics
    /// tables; adds memory).
    pub record_stats: bool,
    /// Name heap storage per allocation site (`heap@sN`) instead of the
    /// paper's single `heap` location (extension; improves heap
    /// precision at the cost of more locations).
    pub heap_sites: bool,
    /// Wall-clock deadline for one analysis run (`None` = unbounded).
    /// Checked cooperatively every few statements and at every
    /// fixed-point round, so a run ends within a small overshoot of
    /// the deadline rather than exactly at it.
    pub deadline: Option<Duration>,
    /// Cardinality cap on any single flow fact (points-to set). Blowups
    /// multiply pair counts long before they exhaust memory; this trips
    /// them early with a precise location.
    pub max_pt_pairs: usize,
    /// Depth cap on the map process's pointer-chain traversal (how many
    /// indirection levels of the caller's state are conveyed into a
    /// callee). Distinct from `max_sym_depth`, which bounds the *names*
    /// invented for invisible variables, not the traversal itself.
    pub max_map_depth: u32,
    /// Drop points-to pairs sourced at dead, never-address-taken locals
    /// during propagation (liveness from [`crate::dataflow`]). Shrinks
    /// the flowed and recorded sets; resolutions at every *use* point
    /// are unchanged (a used pointer is live there by definition), and
    /// globals/parameters are never pruned, but per-point tables are
    /// sparser and locals dead at a function's exit drop out of its
    /// exit flow — see `docs/DESIGN.md`.
    pub prune_liveness: bool,
}

impl Default for AnalysisConfig {
    fn default() -> Self {
        AnalysisConfig {
            max_sym_depth: 5,
            max_ig_nodes: 100_000,
            strict_externs: false,
            max_steps: 50_000_000,
            record_stats: true,
            heap_sites: false,
            deadline: None,
            max_pt_pairs: 4_000_000,
            max_map_depth: 128,
            prune_liveness: false,
        }
    }
}

/// Statistics from the opt-in `prune_liveness` mode (all zero when the
/// mode is off or the engine never ran — fallback rungs don't prune).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PruneStats {
    /// The mode was on for this run.
    pub enabled: bool,
    /// Pairs that flowed out of basic statements (pre-prune).
    pub seen_pairs: u64,
    /// Pairs dropped because their source was dead.
    pub pruned_pairs: u64,
    /// Functions with a usable liveness mask.
    pub funcs_analyzed: usize,
    /// Functions skipped (no body, nothing prunable, or the solver ran
    /// out of visits).
    pub funcs_skipped: usize,
}

impl PruneStats {
    /// Percentage of flowed pairs that pruning dropped.
    pub fn sparsity_pct(&self) -> f64 {
        if self.seen_pairs == 0 {
            0.0
        } else {
            100.0 * self.pruned_pairs as f64 / self.seen_pairs as f64
        }
    }
}

/// Errors the analysis can report. The budget variants carry a
/// [`TripPoint`] saying *where* the resource ran out.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AnalysisError {
    /// The program has no `main`.
    NoEntry,
    /// The invocation graph exceeded its configured node bound.
    IgBudget {
        /// The configured cap.
        limit: usize,
        /// The invocation chain whose extension tripped the cap.
        at: TripPoint,
    },
    /// The statement budget was exceeded (non-termination guard).
    StepBudget {
        /// The configured cap.
        limit: u64,
        /// Where processing stopped.
        at: TripPoint,
    },
    /// The wall-clock deadline passed.
    Deadline {
        /// The configured deadline.
        limit: Duration,
        /// Where processing stopped.
        at: TripPoint,
    },
    /// A single points-to set grew beyond the cardinality cap.
    PtBudget {
        /// The configured cap.
        limit: usize,
        /// The observed cardinality.
        size: usize,
        /// The statement whose flow fact blew up.
        at: TripPoint,
    },
    /// The map process chased a pointer chain deeper than the cap.
    MapDepthBudget {
        /// The configured cap.
        limit: u32,
        /// The call being mapped.
        at: TripPoint,
    },
    /// A construct the analysis does not support.
    Unsupported(String),
    /// An internal invariant failed (e.g. a panic caught by the
    /// resilient driver). Always a bug, but reported as an error so a
    /// suite run can continue past it.
    Internal(String),
}

impl AnalysisError {
    /// The budget that ran out, when this error is a budget exhaustion.
    /// The degradation ladder treats exactly these (plus [`Internal`])
    /// as recoverable by a cheaper analysis.
    ///
    /// [`Internal`]: AnalysisError::Internal
    pub fn budget_kind(&self) -> Option<BudgetKind> {
        match self {
            AnalysisError::IgBudget { .. } => Some(BudgetKind::IgNodes),
            AnalysisError::StepBudget { .. } => Some(BudgetKind::Steps),
            AnalysisError::Deadline { .. } => Some(BudgetKind::Deadline),
            AnalysisError::PtBudget { .. } => Some(BudgetKind::PtPairs),
            AnalysisError::MapDepthBudget { .. } => Some(BudgetKind::MapDepth),
            _ => None,
        }
    }

    /// True if a cheaper analysis may still produce an answer (budget
    /// exhaustions and caught internal failures).
    pub fn is_recoverable(&self) -> bool {
        self.budget_kind().is_some() || matches!(self, AnalysisError::Internal(_))
    }
}

impl fmt::Display for AnalysisError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AnalysisError::NoEntry => write!(f, "program has no `main` function"),
            AnalysisError::IgBudget { limit, at } => write!(
                f,
                "invocation graph exceeded {limit} nodes {at}; raise AnalysisConfig::max_ig_nodes"
            ),
            AnalysisError::StepBudget { limit, at } => write!(
                f,
                "analysis exceeded its statement budget ({limit}) {at}; raise AnalysisConfig::max_steps"
            ),
            AnalysisError::Deadline { limit, at } => write!(
                f,
                "analysis exceeded its deadline ({} ms) {at}",
                limit.as_millis()
            ),
            AnalysisError::PtBudget { limit, size, at } => write!(
                f,
                "a points-to set grew to {size} pairs (cap {limit}) {at}; raise AnalysisConfig::max_pt_pairs"
            ),
            AnalysisError::MapDepthBudget { limit, at } => write!(
                f,
                "map process exceeded its pointer-chain depth cap ({limit}) {at}; raise AnalysisConfig::max_map_depth"
            ),
            AnalysisError::Unsupported(m) => write!(f, "unsupported construct: {m}"),
            AnalysisError::Internal(m) => write!(f, "internal analysis failure: {m}"),
        }
    }
}

impl Error for AnalysisError {}

/// The boundary a callee-local address escaped through (see
/// [`EscapeEvent`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum EscapeVia {
    /// Via a caller-visible memory location during the unmap process.
    Unmap,
    /// Via the callee's return value.
    Return,
}

/// A dangling-pointer event: during unmap, a caller-visible location
/// (or the return value) was found pointing at a local of the returning
/// callee. The engine drops the pair (the storage is dead); the event
/// records what was dropped so clients can report the bug.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EscapeEvent {
    /// The function whose local escaped.
    pub callee: FuncId,
    /// The call site the escape was observed at.
    pub call_site: CallSiteId,
    /// The boundary the address crossed.
    pub via: EscapeVia,
    /// Name of the escaping callee-local location.
    pub local: String,
    /// Definiteness of the dropped pair: `D` means the dangling pointer
    /// exists on every path through the call.
    pub def: Def,
}

/// The output of the context-sensitive points-to analysis.
#[derive(Debug)]
pub struct AnalysisResult {
    /// All abstract locations created during the analysis.
    pub locs: LocationTable,
    /// The final invocation graph (with memoized summaries and
    /// per-context map information).
    pub ig: InvocationGraph,
    /// Points-to facts per program point, merged over all invocation
    /// contexts (`D` only where definite in every context that reaches
    /// the point).
    pub per_stmt: BTreeMap<StmtId, PtSet>,
    /// The points-to set at the end of `main`.
    pub exit_set: PtSet,
    /// Non-fatal diagnostics (pointer arithmetic warnings, escaping
    /// locals, unmodelled externals, …).
    pub warnings: Vec<String>,
    /// Structured dangling-pointer events observed during unmap (empty
    /// for the fallback engines, which do not model scopes).
    pub escapes: Vec<EscapeEvent>,
    /// Liveness-pruning statistics (zeroed unless the run had
    /// [`AnalysisConfig::prune_liveness`] on).
    pub prune: PruneStats,
}

impl AnalysisResult {
    /// The merged points-to set at a program point (empty if the point
    /// was never reached).
    pub fn at(&self, stmt: StmtId) -> PtSet {
        self.per_stmt.get(&stmt).cloned().unwrap_or_default()
    }
}

/// Everything one invocation-graph subtree contributed to the *global*
/// analysis outputs: per-statement facts, warnings, and escape events.
///
/// Memoized context pairs alone are not enough to replay a call without
/// re-walking its body — the byte-identity guarantee of the store also
/// covers `per_stmt`, `warnings`, and `escapes`, which the Figure 4
/// memo hit would otherwise silently skip. A `Capture` records those
/// side outputs while a subtree is analysed cold, so a later warm run
/// can replay them verbatim at the memo-hit point.
#[derive(Debug, Clone, PartialEq)]
pub struct Capture {
    /// Per-statement contributions, pre-merged across every fixpoint
    /// round and inner context of the subtree.
    pub per_stmt: BTreeMap<StmtId, PtSet>,
    /// Warnings first emitted inside the subtree, in emission order.
    pub warnings: Vec<String>,
    /// Escape events observed inside the subtree.
    pub escapes: Vec<EscapeEvent>,
    /// False if some inner memo hit could not be attributed (its own
    /// capture was missing) — an incomplete capture must not be
    /// persisted as a warm pair.
    pub complete: bool,
}

impl Capture {
    /// An empty, complete capture.
    pub fn new() -> Self {
        Capture {
            per_stmt: BTreeMap::new(),
            warnings: Vec::new(),
            escapes: Vec::new(),
            complete: true,
        }
    }

    fn record(&mut self, id: StmtId, set: &PtSet) {
        match self.per_stmt.entry(id) {
            std::collections::btree_map::Entry::Vacant(e) => {
                e.insert(set.clone());
            }
            std::collections::btree_map::Entry::Occupied(mut e) => {
                let merged = e.get().merge(set);
                e.insert(merged);
            }
        }
    }

    fn warn(&mut self, msg: &str) {
        if !self.warnings.iter().any(|w| w == msg) {
            self.warnings.push(msg.to_owned());
        }
    }

    fn escape(&mut self, ev: &EscapeEvent) {
        for e in &mut self.escapes {
            if e.callee == ev.callee
                && e.call_site == ev.call_site
                && e.via == ev.via
                && e.local == ev.local
            {
                if ev.def == Def::D {
                    e.def = Def::D;
                }
                return;
            }
        }
        self.escapes.push(ev.clone());
    }

    /// Folds a child subtree's capture into this one (same merge
    /// discipline as the global outputs).
    pub fn merge_from(&mut self, other: &Capture) {
        for (id, set) in &other.per_stmt {
            self.record(*id, set);
        }
        for w in &other.warnings {
            self.warn(w);
        }
        for e in &other.escapes {
            self.escape(e);
        }
        self.complete &= other.complete;
    }
}

impl Default for Capture {
    fn default() -> Self {
        Capture::new()
    }
}

/// One replayable memo entry: a context pair `(input, output)` for a
/// function, the invocation-graph fragment its cold analysis grew
/// beneath the node, and the captured side outputs of that subtree.
#[derive(Debug, Clone)]
pub struct WarmPair {
    /// The callee input context (exact-match key).
    pub input: PtSet,
    /// The memoized output flow.
    pub output: Flow,
    /// Side outputs to replay at the hit point.
    pub capture: Capture,
    /// The self-contained IG subtree to graft under the hit node.
    pub fragment: IgFragment,
}

/// Warm context pairs, keyed by function. Lookup is an exact-input
/// linear scan — context counts per function are small in practice
/// (Table 5), and exactness is what makes replay sound without any
/// monotonicity argument.
#[derive(Debug, Clone, Default)]
pub struct WarmSeeds {
    /// Pairs per function, in snapshot order.
    pub pairs: BTreeMap<FuncId, Vec<WarmPair>>,
}

impl WarmSeeds {
    /// Adds a pair unless an equal-input pair for `func` is present.
    /// Returns true if the pair was added.
    pub fn insert(&mut self, func: FuncId, pair: WarmPair) -> bool {
        let v = self.pairs.entry(func).or_default();
        if v.iter().any(|p| p.input == pair.input) {
            return false;
        }
        v.push(pair);
        true
    }

    /// The pair for `func` whose input equals `input`, if any.
    pub fn find(&self, func: FuncId, input: &PtSet) -> Option<&WarmPair> {
        self.pairs.get(&func)?.iter().find(|p| &p.input == input)
    }

    /// Total number of pairs.
    pub fn len(&self) -> usize {
        self.pairs.values().map(Vec::len).sum()
    }

    /// True if no pairs are held.
    pub fn is_empty(&self) -> bool {
        self.pairs.values().all(Vec::is_empty)
    }
}

/// What a warm (incremental) run starts from: the previous run's
/// location table (refreshed for dirty functions, so retained ids — and
/// with them every replayed `PtSet` — stay valid) and the surviving
/// context pairs.
#[derive(Debug, Clone, Default)]
pub struct WarmStart {
    /// The preloaded location table.
    pub locs: LocationTable,
    /// Context pairs whose subtrees are clean.
    pub seeds: WarmSeeds,
}

/// An analysis run together with the persistence-facing extras: the
/// per-node captures a snapshot needs, and how many warm pairs were
/// replayed instead of analysed.
#[derive(Debug)]
pub struct EngineRun {
    /// The ordinary analysis result.
    pub result: AnalysisResult,
    /// Captured side outputs per invocation-graph node (node id →
    /// capture), for every node analysed or grafted while capturing.
    pub node_captures: BTreeMap<u32, Capture>,
    /// Number of memo hits served from [`WarmSeeds`].
    pub seed_hits: usize,
}

/// Runs the full context-sensitive interprocedural points-to analysis.
///
/// # Errors
///
/// See [`AnalysisError`].
pub fn analyze(ir: &IrProgram) -> Result<AnalysisResult, AnalysisError> {
    analyze_with(ir, AnalysisConfig::default())
}

/// [`analyze`] with an explicit configuration.
///
/// # Errors
///
/// See [`AnalysisError`].
pub fn analyze_with(
    ir: &IrProgram,
    config: AnalysisConfig,
) -> Result<AnalysisResult, AnalysisError> {
    Ok(analyze_impl(ir, config, None, false, None)?.result)
}

/// [`analyze_with`] that also captures per-subtree side outputs, so the
/// run can be persisted as warm context pairs (see `pta-store`).
/// Analysis results are identical to the uncaptured run.
///
/// # Errors
///
/// See [`AnalysisError`].
pub fn analyze_recorded(
    ir: &IrProgram,
    config: AnalysisConfig,
) -> Result<EngineRun, AnalysisError> {
    analyze_impl(ir, config, None, true, None)
}

/// An incremental run: starts from a preloaded location table and warm
/// context pairs, replaying any memo lookup whose function and exact
/// input context match a seed instead of re-analysing its subtree.
/// When `capture` is true the run also records fresh captures, so its
/// own results can be persisted again.
///
/// # Errors
///
/// See [`AnalysisError`].
pub fn analyze_seeded(
    ir: &IrProgram,
    config: AnalysisConfig,
    warm: WarmStart,
    capture: bool,
) -> Result<EngineRun, AnalysisError> {
    analyze_impl(ir, config, None, capture, Some(warm))
}

/// [`analyze_with`] with a [`TraceSink`] attached: the engine emits
/// structured trace events at every invocation-graph transition, memo
/// lookup, map/unmap, statement transfer, and budget heartbeat. See the
/// [`crate::trace`] module and `docs/TRACING.md` for the schema.
/// Analysis results are identical to the untraced run.
///
/// # Errors
///
/// See [`AnalysisError`].
pub fn analyze_traced(
    ir: &IrProgram,
    config: AnalysisConfig,
    sink: &mut dyn TraceSink,
) -> Result<AnalysisResult, AnalysisError> {
    Ok(analyze_impl(ir, config, Some(sink), false, None)?.result)
}

fn analyze_impl<'p>(
    ir: &'p IrProgram,
    config: AnalysisConfig,
    sink: Option<&'p mut dyn TraceSink>,
    capture: bool,
    warm: Option<WarmStart>,
) -> Result<EngineRun, AnalysisError> {
    let entry = ir.entry.ok_or(AnalysisError::NoEntry)?;
    let budget = Budget::new(
        config.max_steps,
        config.deadline,
        config.max_pt_pairs,
        config.max_map_depth,
    );
    let ig = InvocationGraph::build(ir, entry, config.max_ig_nodes)
        .map_err(|o| o.into_error(ir, None))?;
    let (locs, seeds) = match warm {
        Some(w) => (w.locs, w.seeds),
        None => (LocationTable::new(), WarmSeeds::default()),
    };
    let prune = PruneStats {
        enabled: config.prune_liveness,
        ..PruneStats::default()
    };
    let mut a = Analyzer {
        ir,
        config,
        locs,
        ig,
        per_stmt: BTreeMap::new(),
        warnings: Vec::new(),
        escapes: Vec::new(),
        budget,
        tracer: Tracer::new(sink),
        seeds,
        capture,
        cap_stack: Vec::new(),
        node_caps: BTreeMap::new(),
        seed_hits: 0,
        prune_masks: BTreeMap::new(),
        prune,
    };
    a.tracer.emit(|| TraceEvent::AnalysisStart {
        functions: ir.defined_functions().count(),
        stmts: ir.total_basic_stmts(),
    });
    // Pre-intern the distinguished locations so their ids are stable.
    a.locs.null();
    a.locs.heap();
    a.locs.strlit();

    // Initial set for main: every global and local pointer leaf starts
    // at NULL (§6: "we initialize all pointers to NULL").
    let mut init = PtSet::new();
    let null = a.locs.null();
    for gi in 0..ir.globals.len() {
        let g = a.locs.global(ir, pta_cfront::ast::GlobalId(gi as u32));
        for leaf in a.ptr_leaves(g) {
            init.insert(leaf, null, Def::D);
        }
    }
    a.null_init_function_vars(entry, &mut init, true);

    let root = a.ig.root();
    let out = a.analyze_node(root, init)?;
    let exit_set = out.unwrap_or_default();
    if a.tracer.enabled() {
        let s = a.ig.stats();
        let (steps, exit_pairs, warnings) = (a.budget.steps(), exit_set.len(), a.warnings.len());
        a.tracer.emit(|| TraceEvent::AnalysisEnd {
            steps,
            ig_nodes: s.nodes,
            recursive: s.recursive,
            approximate: s.approximate,
            exit_pairs,
            warnings,
        });
    }
    Ok(EngineRun {
        result: AnalysisResult {
            locs: a.locs,
            ig: a.ig,
            per_stmt: a.per_stmt,
            exit_set,
            warnings: a.warnings,
            escapes: a.escapes,
            prune: a.prune,
        },
        node_captures: a.node_caps,
        seed_hits: a.seed_hits,
    })
}

/// The analysis engine. Split across `intra`, `interproc`, `map_process`,
/// `unmap`, `funcptr`, and `externs` modules.
pub(crate) struct Analyzer<'p> {
    pub(crate) ir: &'p IrProgram,
    pub(crate) config: AnalysisConfig,
    pub(crate) locs: LocationTable,
    pub(crate) ig: InvocationGraph,
    pub(crate) per_stmt: BTreeMap<StmtId, PtSet>,
    pub(crate) warnings: Vec<String>,
    pub(crate) escapes: Vec<EscapeEvent>,
    pub(crate) budget: Budget,
    pub(crate) tracer: Tracer<'p>,
    /// Warm context pairs consulted on memo misses (empty on cold runs).
    pub(crate) seeds: WarmSeeds,
    /// True if this run records per-subtree captures.
    pub(crate) capture: bool,
    /// One frame per invocation-graph node currently on the analysis
    /// stack (miss path only); outputs land in every open frame.
    pub(crate) cap_stack: Vec<Capture>,
    /// Finished captures per node id (replaced when a node is
    /// re-analysed under a new input context).
    pub(crate) node_caps: BTreeMap<u32, Capture>,
    /// Memo hits served from `seeds`.
    pub(crate) seed_hits: usize,
    /// Lazily-built per-function liveness masks for `prune_liveness`
    /// (`None` = function skipped: no body, nothing prunable, or the
    /// solver budget ran out).
    pub(crate) prune_masks: BTreeMap<pta_cfront::ast::FuncId, Option<crate::dataflow::PruneMask>>,
    /// Pruning counters for this run.
    pub(crate) prune: PruneStats,
}

impl<'p> Analyzer<'p> {
    /// Builds the trip context for a budget exhaustion: the current
    /// function, the invocation-graph chain that reached it, and the
    /// statement (when one is at hand).
    pub(crate) fn trip(&self, node: IgNodeId, stmt: Option<StmtId>) -> TripPoint {
        let function = self.ir.function(self.ig.node(node).func).name.clone();
        TripPoint {
            function,
            ig_path: self.ig.path_to(self.ir, node),
            stmt,
        }
    }

    /// Converts a raw budget exhaustion into the matching error variant.
    pub(crate) fn exhausted(
        &self,
        e: Exhausted,
        node: IgNodeId,
        stmt: Option<StmtId>,
    ) -> AnalysisError {
        let at = self.trip(node, stmt);
        match e {
            Exhausted::Steps(limit) => AnalysisError::StepBudget { limit, at },
            Exhausted::Deadline(limit) => AnalysisError::Deadline { limit, at },
            Exhausted::PtPairs { limit, size } => AnalysisError::PtBudget { limit, size, at },
        }
    }
    /// A reference-resolution environment for `func`.
    pub(crate) fn renv(&mut self, func: FuncId) -> RefEnv<'_> {
        RefEnv {
            ir: self.ir,
            func,
            locs: &mut self.locs,
        }
    }

    pub(crate) fn warn(&mut self, msg: String) {
        if let Some(top) = self.cap_stack.last_mut() {
            top.warn(&msg);
        }
        if !self.warnings.contains(&msg) {
            self.warnings.push(msg);
        }
    }

    /// Records a dangling-pointer event (deduplicated; strengthened to
    /// `D` if the same escape is later seen definitely).
    pub(crate) fn escape(&mut self, ev: EscapeEvent) {
        if let Some(top) = self.cap_stack.last_mut() {
            top.escape(&ev);
        }
        for e in &mut self.escapes {
            if e.callee == ev.callee
                && e.call_site == ev.call_site
                && e.via == ev.via
                && e.local == ev.local
            {
                if ev.def == Def::D {
                    e.def = Def::D;
                }
                return;
            }
        }
        self.escapes.push(ev);
    }

    /// Records the points-to set at a program point, merging across
    /// contexts (and loop iterations): a pair stays definite only if it
    /// is definite every time control reaches the point.
    pub(crate) fn record(&mut self, id: StmtId, set: &PtSet) {
        if self.config.record_stats {
            if let Some(top) = self.cap_stack.last_mut() {
                top.record(id, set);
            }
            match self.per_stmt.entry(id) {
                std::collections::btree_map::Entry::Vacant(e) => {
                    e.insert(set.clone());
                }
                std::collections::btree_map::Entry::Occupied(mut e) => {
                    let merged = e.get().merge(set);
                    e.insert(merged);
                }
            }
        }
    }

    /// Opens a capture frame for a node entering its miss path.
    pub(crate) fn cap_push(&mut self) {
        if self.capture {
            self.cap_stack.push(Capture::new());
        }
    }

    /// Closes the current frame: stores it as `node`'s capture
    /// (replacing any capture from an earlier input context) and folds
    /// it into the enclosing frame.
    pub(crate) fn cap_pop(&mut self, node: IgNodeId) {
        if !self.capture {
            return;
        }
        let Some(frame) = self.cap_stack.pop() else {
            return;
        };
        if let Some(parent) = self.cap_stack.last_mut() {
            parent.merge_from(&frame);
        }
        self.node_caps.insert(node.0, frame);
    }

    /// On an in-run memo hit while capturing: attribute the hit
    /// subtree's recorded outputs to the enclosing frame, or poison the
    /// frame if no capture exists for the node (the frame then never
    /// becomes a warm pair).
    pub(crate) fn cap_note_hit(&mut self, node: IgNodeId) {
        if !self.capture || self.cap_stack.is_empty() {
            return;
        }
        match self.node_caps.get(&node.0).cloned() {
            Some(cap) => {
                if let Some(top) = self.cap_stack.last_mut() {
                    top.merge_from(&cap);
                }
            }
            None => {
                if let Some(top) = self.cap_stack.last_mut() {
                    top.complete = false;
                }
            }
        }
    }

    /// Replays a stored capture into the global outputs (and, via the
    /// hooks above, into any open frames).
    pub(crate) fn cap_replay(&mut self, cap: &Capture) {
        for (id, set) in cap.per_stmt.clone() {
            self.record(id, &set);
        }
        for w in cap.warnings.clone() {
            self.warn(w);
        }
        for e in cap.escapes.clone() {
            self.escape(e);
        }
    }

    /// Enumerates the pointer-valued leaf locations reachable inside
    /// `loc` without dereferencing (the location itself if it is a
    /// pointer; struct fields and array head/tail elements recursively).
    pub(crate) fn ptr_leaves(&mut self, loc: LocId) -> Vec<LocId> {
        let mut out = Vec::new();
        self.ptr_leaves_into(loc, &mut out, 0);
        out
    }

    fn ptr_leaves_into(&mut self, loc: LocId, out: &mut Vec<LocId>, depth: usize) {
        if depth > 12 {
            return; // deeply nested aggregates: cut off defensively
        }
        let ir = self.ir;
        let Some(ty) = self.locs.ty(loc).cloned() else {
            // Untyped summaries (heap, strlit) act as their own leaf.
            if self.locs.is_heap(loc) {
                out.push(loc);
            }
            return;
        };
        match ty {
            Type::Pointer(_) | Type::Func(_) => out.push(loc),
            Type::Struct(sid) => {
                let fields = ir.structs.def(sid).fields.clone();
                for f in fields {
                    if !f.ty.carries_pointers(&ir.structs) {
                        continue;
                    }
                    if let Some(l) = self.locs.project(loc, Proj::Field(f.name.clone()), ir) {
                        self.ptr_leaves_into(l, out, depth + 1);
                    }
                }
            }
            Type::Array(elem, _) if elem.carries_pointers(&ir.structs) => {
                if let Some(h) = self.locs.project(loc, Proj::Head, ir) {
                    self.ptr_leaves_into(h, out, depth + 1);
                }
                if let Some(t) = self.locs.project(loc, Proj::Tail, ir) {
                    self.ptr_leaves_into(t, out, depth + 1);
                }
            }
            _ => {}
        }
    }

    /// Adds `(leaf, null, D)` for every pointer leaf of every variable of
    /// `func`. When `include_params` is false, parameters are skipped
    /// (they receive their values from the map process).
    pub(crate) fn null_init_function_vars(
        &mut self,
        func: FuncId,
        set: &mut PtSet,
        include_params: bool,
    ) {
        let ir = self.ir;
        let null = self.locs.null();
        let f = ir.function(func);
        for (i, v) in f.vars.iter().enumerate() {
            if !include_params && i < f.n_params {
                continue;
            }
            if !v.ty.carries_pointers(&ir.structs) {
                continue;
            }
            let root = self.locs.var(ir, func, pta_simple::IrVarId(i as u32));
            for leaf in self.ptr_leaves(root) {
                set.insert(leaf, null, Def::D);
            }
        }
    }

    /// The static type of a variable reference, if derivable.
    pub(crate) fn ref_ty(&self, func: FuncId, r: &pta_simple::VarRef) -> Option<Type> {
        use pta_simple::{IrProj, VarBase, VarRef};
        let path_ty = |path: &pta_simple::VarPath| -> Option<Type> {
            let mut ty = match path.base {
                VarBase::Global(g) => self.ir.global(g).ty.clone(),
                VarBase::Var(v) => self.ir.function(func).var(v).ty.clone(),
            };
            for p in &path.projs {
                ty = match p {
                    IrProj::Field(f) => match ty {
                        Type::Struct(sid) => self.ir.structs.def(sid).field(f)?.ty.clone(),
                        _ => return None,
                    },
                    IrProj::Index(_) => ty.elem()?.clone(),
                };
            }
            Some(ty)
        };
        match r {
            VarRef::Path(p) => path_ty(p),
            VarRef::Deref { path, after, .. } => {
                let pt = path_ty(path)?;
                let mut ty = match pt.decay() {
                    Type::Pointer(inner) => *inner,
                    _ => return None,
                };
                for p in after {
                    ty = match p {
                        IrProj::Field(f) => match ty {
                            Type::Struct(sid) => self.ir.structs.def(sid).field(f)?.ty.clone(),
                            _ => return None,
                        },
                        IrProj::Index(_) => ty.elem()?.clone(),
                    };
                }
                Some(ty)
            }
        }
    }

    /// True if assignments into this reference transfer points-to
    /// information.
    pub(crate) fn is_pointer_assignment(&self, func: FuncId, lhs: &pta_simple::VarRef) -> bool {
        match self.ref_ty(func, lhs) {
            Some(ty) => matches!(ty.decay(), Type::Pointer(_)),
            // Unknown type (e.g. a reference through the heap summary):
            // treat as a pointer assignment for safety.
            None => true,
        }
    }
}
