//! Dense, `LocId`-indexed containers and a fast non-cryptographic hash.
//!
//! The hot paths of the analysis (interning, map/unmap translation,
//! worklists) key everything by [`LocId`](crate::location::LocId), which
//! is a dense index into the location table. These containers exploit
//! that: [`LocMap`] is a flat `Vec<u32>` with a sentinel instead of a
//! tree, [`LocSet`] is a bitset, and [`FxBuildHasher`] is the
//! multiply-xor hash used by rustc (no SipHash overhead) for the few
//! places that still hash structural keys.

use crate::location::LocId;
use std::hash::{BuildHasherDefault, Hasher};

/// The rustc/Firefox `FxHash` mixing function: one multiply and a
/// rotate per word. Not DoS-resistant — fine for interning keys that
/// come from the program under analysis, not from an adversary.
#[derive(Default)]
pub struct FxHasher {
    hash: u64,
}

const FX_SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(FX_SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            self.add_to_hash(u64::from_le_bytes(
                c.try_into().expect("chunks_exact(8) yields 8-byte slices"),
            ));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut word = [0u8; 8];
            word[..rest.len()].copy_from_slice(rest);
            self.add_to_hash(u64::from_le_bytes(word));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

/// `BuildHasher` for [`FxHasher`]; plug into `HashMap::with_hasher`.
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A `HashMap` keyed with [`FxHasher`].
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, FxBuildHasher>;

/// Hashes one value with [`FxHasher`] (for hand-rolled intern buckets).
pub fn fx_hash_one<T: std::hash::Hash>(value: &T) -> u64 {
    let mut h = FxHasher::default();
    value.hash(&mut h);
    h.finish()
}

const NONE: u32 = u32::MAX;

/// A dense `LocId → LocId` map: a flat vector indexed by the key's id,
/// with `u32::MAX` as the "absent" sentinel. Grows on demand, so it is
/// safe to insert ids interned after the map was created.
#[derive(Debug, Clone, Default)]
pub struct LocMap {
    slots: Vec<u32>,
}

impl LocMap {
    /// An empty map.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty map pre-sized for ids below `capacity`.
    pub fn with_capacity(capacity: usize) -> Self {
        LocMap {
            slots: vec![NONE; capacity],
        }
    }

    /// The value stored under `key`, if any.
    #[inline]
    pub fn get(&self, key: LocId) -> Option<LocId> {
        match self.slots.get(key.0 as usize) {
            Some(&v) if v != NONE => Some(LocId(v)),
            _ => None,
        }
    }

    /// True if `key` has a value.
    #[inline]
    pub fn contains_key(&self, key: LocId) -> bool {
        self.get(key).is_some()
    }

    /// Inserts (or overwrites) `key → value`.
    #[inline]
    pub fn insert(&mut self, key: LocId, value: LocId) {
        let i = key.0 as usize;
        if i >= self.slots.len() {
            self.slots.resize(i + 1, NONE);
        }
        self.slots[i] = value.0;
    }
}

/// A dense set of `LocId`s stored as a bitset. Iteration is in
/// ascending id order, so consumers that previously walked a
/// `BTreeSet<LocId>` see the same sequence.
#[derive(Debug, Clone, Default)]
pub struct LocSet {
    bits: Vec<u64>,
    len: usize,
}

impl LocSet {
    /// An empty set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of ids in the set.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if the set is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// True if `id` is in the set.
    #[inline]
    pub fn contains(&self, id: LocId) -> bool {
        let (w, b) = (id.0 as usize / 64, id.0 as usize % 64);
        self.bits.get(w).is_some_and(|word| word & (1 << b) != 0)
    }

    /// Adds `id`; returns true if it was newly added.
    #[inline]
    pub fn insert(&mut self, id: LocId) -> bool {
        let (w, b) = (id.0 as usize / 64, id.0 as usize % 64);
        if w >= self.bits.len() {
            self.bits.resize(w + 1, 0);
        }
        let fresh = self.bits[w] & (1 << b) == 0;
        self.bits[w] |= 1 << b;
        self.len += fresh as usize;
        fresh
    }

    /// Iterates the ids in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = LocId> + '_ {
        self.bits.iter().enumerate().flat_map(|(w, &word)| {
            let mut rest = word;
            std::iter::from_fn(move || {
                if rest == 0 {
                    return None;
                }
                let b = rest.trailing_zeros();
                rest &= rest - 1;
                Some(LocId((w * 64) as u32 + b))
            })
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn locmap_insert_get_grow() {
        let mut m = LocMap::with_capacity(2);
        assert_eq!(m.get(LocId(0)), None);
        m.insert(LocId(0), LocId(7));
        m.insert(LocId(100), LocId(3)); // beyond initial capacity
        assert_eq!(m.get(LocId(0)), Some(LocId(7)));
        assert_eq!(m.get(LocId(100)), Some(LocId(3)));
        assert_eq!(m.get(LocId(50)), None);
        assert!(m.contains_key(LocId(100)));
        m.insert(LocId(0), LocId(9)); // overwrite
        assert_eq!(m.get(LocId(0)), Some(LocId(9)));
    }

    #[test]
    fn locset_insert_iter_ascending() {
        let mut s = LocSet::new();
        for &i in &[130u32, 2, 64, 2, 63] {
            s.insert(LocId(i));
        }
        assert_eq!(s.len(), 4);
        assert!(s.contains(LocId(64)));
        assert!(!s.contains(LocId(65)));
        let ids: Vec<u32> = s.iter().map(|l| l.0).collect();
        assert_eq!(ids, vec![2, 63, 64, 130]);
    }

    #[test]
    fn locset_first_insert_reports_fresh() {
        let mut s = LocSet::new();
        assert!(s.insert(LocId(5)));
        assert!(!s.insert(LocId(5)));
        assert!(!s.is_empty());
    }

    #[test]
    fn fx_hash_is_deterministic_and_spreads() {
        let a = fx_hash_one(&("alpha", 1u32));
        let b = fx_hash_one(&("alpha", 1u32));
        let c = fx_hash_one(&("alpha", 2u32));
        assert_eq!(a, b);
        assert_ne!(a, c);
    }
}
