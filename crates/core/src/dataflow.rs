//! A generic interprocedural dataflow framework over the SIMPLE CFG.
//!
//! The points-to engine walks the structured statement tree
//! compositionally (Figure 1); clients that want classical dataflow —
//! liveness, reaching definitions — need an explicit control-flow
//! graph. This module provides:
//!
//! - a [`Cfg`] lowered from the structured [`Stmt`] tree (one node per
//!   basic statement plus test nodes for control-statement conditions,
//!   honoring `pre_cond` re-evaluation, `for`-`continue`-to-step, and
//!   `switch` fall-through);
//! - a direction-parametric worklist solver ([`solve`]) over any join
//!   semilattice, with a visit budget so pathological inputs degrade
//!   gracefully instead of spinning;
//! - **syntactic variable liveness** ([`var_liveness`]) used by the
//!   engine's opt-in `--prune-liveness` mode: points-to pairs sourced
//!   at a dead, never-address-taken local cannot influence any later
//!   resolution, map/unmap, or memo lookup, so the engine may drop
//!   them during propagation (see `docs/DESIGN.md`);
//! - **location-level liveness and may/must-initialization**
//!   ([`ProgramDataflow`]) with indirect defs/uses resolved through the
//!   points-to facts ([`FactQuery`]) and call effects resolved through
//!   the invocation graph — the substrate for the `uninit-read`,
//!   `dead-store`, and `heap-leak` lint checks.
//!
//! Both concrete analyses are *uses-conservative*: anything the
//! framework cannot prove dead or uninitialized is treated as live /
//! initialized, so clients only act on facts that hold under the same
//! resolution rules the engine itself uses.

use crate::dense::FxHashMap;
use crate::location::{LocBase, LocId, Proj};
use crate::points_to_set::{Def, PtSet};
use crate::query::FactQuery;
use pta_cfront::ast::FuncId;
use pta_simple::{
    BasicStmt, CallTarget, IdxClass, IrFunction, IrProgram, IrProj, IrVarId, Operand, Stmt, StmtId,
    VarBase, VarKind, VarPath, VarRef,
};
use std::collections::BTreeMap;

// ---------------------------------------------------------------------------
// Bit sets
// ---------------------------------------------------------------------------

/// A fixed-capacity bit set over a dense `0..n` domain — the fact
/// representation both concrete analyses use.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct BitSet {
    words: Vec<u64>,
}

impl BitSet {
    /// An empty set with capacity for `n` bits.
    pub fn new(n: usize) -> Self {
        BitSet {
            words: vec![0; n.div_ceil(64)],
        }
    }

    /// A set with capacity `n` and every bit set.
    pub fn full(n: usize) -> Self {
        let mut s = BitSet::new(n);
        for i in 0..n {
            s.insert(i);
        }
        s
    }

    /// Sets bit `i`; returns true if it was newly set.
    pub fn insert(&mut self, i: usize) -> bool {
        let (w, b) = (i / 64, i % 64);
        if w >= self.words.len() {
            self.words.resize(w + 1, 0);
        }
        let had = self.words[w] & (1 << b) != 0;
        self.words[w] |= 1 << b;
        !had
    }

    /// Clears bit `i`.
    pub fn remove(&mut self, i: usize) {
        let (w, b) = (i / 64, i % 64);
        if w < self.words.len() {
            self.words[w] &= !(1 << b);
        }
    }

    /// True if bit `i` is set.
    pub fn contains(&self, i: usize) -> bool {
        let (w, b) = (i / 64, i % 64);
        w < self.words.len() && self.words[w] & (1 << b) != 0
    }

    /// True if no bit is set.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|w| *w == 0)
    }

    /// Number of set bits.
    pub fn count(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// `self |= other`; returns true if `self` changed.
    pub fn union_with(&mut self, other: &BitSet) -> bool {
        if other.words.len() > self.words.len() {
            self.words.resize(other.words.len(), 0);
        }
        let mut changed = false;
        for (a, b) in self.words.iter_mut().zip(other.words.iter()) {
            let nv = *a | *b;
            changed |= nv != *a;
            *a = nv;
        }
        changed
    }

    /// `self &= other`; returns true if `self` changed.
    pub fn intersect_with(&mut self, other: &BitSet) -> bool {
        let mut changed = false;
        for (i, a) in self.words.iter_mut().enumerate() {
            let b = other.words.get(i).copied().unwrap_or(0);
            let nv = *a & b;
            changed |= nv != *a;
            *a = nv;
        }
        changed
    }

    /// Iterates the set bit indices in increasing order.
    pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, w)| {
            let w = *w;
            (0..64).filter_map(move |b| (w & (1 << b) != 0).then_some(wi * 64 + b))
        })
    }
}

// ---------------------------------------------------------------------------
// CFG construction from the structured statement tree
// ---------------------------------------------------------------------------

/// What one CFG node represents.
#[derive(Debug, Clone)]
pub enum NodeKind<'a> {
    /// The unique function entry.
    Entry,
    /// The unique function exit (normal completion and every `return`).
    Exit,
    /// A no-op anchor introduced by the lowering (loop heads, arm
    /// entries, merge points). Transfer functions treat it as identity.
    Join,
    /// One basic statement at its program point.
    Basic(&'a BasicStmt, StmtId),
    /// The condition evaluation of a control statement, carrying the
    /// operands the test reads and the control statement's program
    /// point (`if`/`while`/`do`/`for` conditions, `switch` scrutinee).
    Test(Vec<&'a Operand>, StmtId),
}

/// A control-flow graph for one function body, borrowing the IR.
#[derive(Debug)]
pub struct Cfg<'a> {
    /// Node payloads; indices are node ids.
    pub nodes: Vec<NodeKind<'a>>,
    /// Successor edges in program order.
    pub succs: Vec<Vec<usize>>,
    /// Predecessor edges (the reverse of `succs`).
    pub preds: Vec<Vec<usize>>,
    /// The entry node id.
    pub entry: usize,
    /// The exit node id.
    pub exit: usize,
}

struct CfgBuilder<'a> {
    nodes: Vec<NodeKind<'a>>,
    succs: Vec<Vec<usize>>,
    exit: usize,
    /// Innermost-last `break` targets (loops and switches).
    breaks: Vec<usize>,
    /// Innermost-last `continue` targets (loops only).
    continues: Vec<usize>,
}

impl<'a> CfgBuilder<'a> {
    fn node(&mut self, kind: NodeKind<'a>) -> usize {
        self.nodes.push(kind);
        self.succs.push(Vec::new());
        self.nodes.len() - 1
    }

    fn edge(&mut self, from: usize, to: usize) {
        if !self.succs[from].contains(&to) {
            self.succs[from].push(to);
        }
    }

    /// Lowers `stmt` with `cur` as the incoming frontier; returns the
    /// outgoing fall-through frontier. After a jump (`break`,
    /// `continue`, `return`) the returned frontier is a fresh node with
    /// no predecessors, so syntactically-dead code still chains forward
    /// (backward analyses see its uses; forward analyses see it as
    /// unreachable).
    fn lower(&mut self, stmt: &'a Stmt, cur: usize) -> usize {
        match stmt {
            Stmt::Basic(b, id) => {
                let n = self.node(NodeKind::Basic(b, *id));
                self.edge(cur, n);
                if matches!(b, BasicStmt::Return(_)) {
                    let exit = self.exit;
                    self.edge(n, exit);
                    self.node(NodeKind::Join) // unreachable continuation
                } else {
                    n
                }
            }
            Stmt::Seq(stmts) => {
                let mut cur = cur;
                for s in stmts {
                    cur = self.lower(s, cur);
                }
                cur
            }
            Stmt::If {
                cond,
                then_s,
                else_s,
                id,
            } => {
                let t = self.node(NodeKind::Test(cond.operands(), *id));
                self.edge(cur, t);
                let join = self.node(NodeKind::Join);
                let t_end = self.lower(then_s, t);
                self.edge(t_end, join);
                match else_s {
                    Some(e) => {
                        let e_end = self.lower(e, t);
                        self.edge(e_end, join);
                    }
                    None => self.edge(t, join),
                }
                join
            }
            Stmt::While {
                pre_cond,
                cond,
                body,
                id,
            } => {
                let head = self.node(NodeKind::Join); // continue target
                self.edge(cur, head);
                let p_end = self.lower(pre_cond, head);
                let test = self.node(NodeKind::Test(cond.operands(), *id));
                self.edge(p_end, test);
                let exit = self.node(NodeKind::Join);
                self.edge(test, exit);
                self.breaks.push(exit);
                self.continues.push(head);
                let b_end = self.lower(body, test);
                self.breaks.pop();
                self.continues.pop();
                self.edge(b_end, head);
                exit
            }
            Stmt::DoWhile {
                body,
                pre_cond,
                cond,
                id,
            } => {
                let entry = self.node(NodeKind::Join);
                self.edge(cur, entry);
                let head = self.node(NodeKind::Join); // continue target
                let exit = self.node(NodeKind::Join);
                self.breaks.push(exit);
                self.continues.push(head);
                let b_end = self.lower(body, entry);
                self.breaks.pop();
                self.continues.pop();
                self.edge(b_end, head);
                let p_end = self.lower(pre_cond, head);
                let test = self.node(NodeKind::Test(cond.operands(), *id));
                self.edge(p_end, test);
                self.edge(test, entry); // back edge
                self.edge(test, exit);
                exit
            }
            Stmt::For {
                init,
                pre_cond,
                cond,
                step,
                body,
                id,
            } => {
                let i_end = self.lower(init, cur);
                let head = self.node(NodeKind::Join);
                self.edge(i_end, head);
                let p_end = self.lower(pre_cond, head);
                let test = self.node(NodeKind::Test(cond.operands(), *id));
                self.edge(p_end, test);
                let step_in = self.node(NodeKind::Join); // continue target
                let exit = self.node(NodeKind::Join);
                self.edge(test, exit);
                self.breaks.push(exit);
                self.continues.push(step_in);
                let b_end = self.lower(body, test);
                self.breaks.pop();
                self.continues.pop();
                self.edge(b_end, step_in);
                let s_end = self.lower(step, step_in);
                self.edge(s_end, head);
                exit
            }
            Stmt::Switch {
                scrutinee,
                arms,
                has_default,
                id,
            } => {
                let test = self.node(NodeKind::Test(vec![scrutinee], *id));
                self.edge(cur, test);
                let exit = self.node(NodeKind::Join);
                self.breaks.push(exit);
                let mut fall: Option<usize> = None;
                for arm in arms {
                    let entry = self.node(NodeKind::Join);
                    self.edge(test, entry);
                    if let Some(f) = fall {
                        self.edge(f, entry);
                    }
                    fall = Some(self.lower(&arm.body, entry));
                }
                self.breaks.pop();
                if let Some(f) = fall {
                    self.edge(f, exit);
                }
                if !*has_default {
                    self.edge(test, exit);
                }
                exit
            }
            Stmt::Break(_) => {
                let target = self.breaks.last().copied().unwrap_or(self.exit);
                self.edge(cur, target);
                self.node(NodeKind::Join) // unreachable continuation
            }
            Stmt::Continue(_) => {
                let target = self.continues.last().copied().unwrap_or(self.exit);
                self.edge(cur, target);
                self.node(NodeKind::Join) // unreachable continuation
            }
        }
    }
}

impl<'a> Cfg<'a> {
    /// Builds the CFG of one function body.
    pub fn build(body: &'a Stmt) -> Cfg<'a> {
        let mut b = CfgBuilder {
            nodes: vec![NodeKind::Entry, NodeKind::Exit],
            succs: vec![Vec::new(), Vec::new()],
            exit: 1,
            breaks: Vec::new(),
            continues: Vec::new(),
        };
        let end = b.lower(body, 0);
        b.edge(end, 1);
        let mut preds = vec![Vec::new(); b.nodes.len()];
        for (n, ss) in b.succs.iter().enumerate() {
            for &s in ss {
                preds[s].push(n);
            }
        }
        Cfg {
            nodes: b.nodes,
            succs: b.succs,
            preds,
            entry: 0,
            exit: 1,
        }
    }

    /// The program point of a node, when it has one.
    pub fn stmt_of(&self, n: usize) -> Option<StmtId> {
        match &self.nodes[n] {
            NodeKind::Basic(_, id) | NodeKind::Test(_, id) => Some(*id),
            _ => None,
        }
    }
}

// ---------------------------------------------------------------------------
// Generic worklist solver
// ---------------------------------------------------------------------------

/// Which way facts flow.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// Facts flow entry → exit (e.g. reaching definitions).
    Forward,
    /// Facts flow exit → entry (e.g. liveness).
    Backward,
}

/// One dataflow problem: a join semilattice of facts plus a transfer
/// function per CFG node. Transfers must be monotone for the solver to
/// reach its fixed point within the visit budget.
pub trait Transfer<'a> {
    /// The lattice element.
    type Fact: Clone + PartialEq;

    /// Flow direction.
    fn direction(&self) -> Direction;

    /// The fact at the boundary: function entry for forward problems,
    /// function exit for backward ones.
    fn boundary(&self) -> Self::Fact;

    /// `into ⊔= from`; returns true if `into` changed.
    fn join(&self, into: &mut Self::Fact, from: &Self::Fact) -> bool;

    /// Applies node `ix`'s effect to `fact` in the flow direction.
    fn transfer(&mut self, ix: usize, node: &NodeKind<'a>, fact: &mut Self::Fact);
}

/// Where the solver stopped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SolveStats {
    /// CFG node count.
    pub nodes: usize,
    /// Total node visits until the fixed point (or the budget).
    pub visits: usize,
    /// False if the visit budget ran out before convergence — the
    /// partial facts are unsound and callers must discard them.
    pub converged: bool,
}

/// Solved facts in *program order*: `before[n]` holds immediately
/// before node `n` executes, `after[n]` immediately after. `None`
/// means the solver never reached the node (unreachable in the flow
/// direction).
#[derive(Debug)]
pub struct Solution<F> {
    /// Fact at each node's entry, program order.
    pub before: Vec<Option<F>>,
    /// Fact at each node's exit, program order.
    pub after: Vec<Option<F>>,
    /// Convergence metadata.
    pub stats: SolveStats,
}

/// Runs the worklist algorithm for `t` over `cfg`, visiting at most
/// `max_visits` nodes (a budget in the spirit of the engine's
/// statement budget: blowups degrade, they don't hang).
pub fn solve<'a, T: Transfer<'a>>(
    cfg: &Cfg<'a>,
    t: &mut T,
    max_visits: usize,
) -> Solution<T::Fact> {
    let n = cfg.nodes.len();
    let dir = t.direction();
    let before: Vec<Option<T::Fact>> = vec![None; n];
    let after: Vec<Option<T::Fact>> = vec![None; n];
    // In flow orientation: `inputs` is the joined fact entering a node,
    // `outputs` the transferred fact leaving it.
    let (start, mut inputs, mut outputs) = match dir {
        Direction::Forward => (cfg.entry, before, after),
        Direction::Backward => (cfg.exit, after, before),
    };
    inputs[start] = Some(t.boundary());
    let mut work: Vec<usize> = vec![start];
    let mut queued = vec![false; n];
    queued[start] = true;
    let mut visits = 0usize;
    let mut converged = true;
    while let Some(node) = work.pop() {
        queued[node] = false;
        visits += 1;
        if visits > max_visits {
            converged = false;
            break;
        }
        // Join the upstream outputs into this node's input.
        let ups: &[usize] = match dir {
            Direction::Forward => &cfg.preds[node],
            Direction::Backward => &cfg.succs[node],
        };
        for &u in ups {
            let Some(fact) = outputs[u].clone() else {
                continue;
            };
            match &mut inputs[node] {
                Some(cur) => {
                    t.join(cur, &fact);
                }
                slot @ None => *slot = Some(fact),
            }
        }
        let Some(mut out) = inputs[node].clone() else {
            continue;
        };
        t.transfer(node, &cfg.nodes[node], &mut out);
        if outputs[node].as_ref() == Some(&out) {
            continue;
        }
        outputs[node] = Some(out);
        let downs: &[usize] = match dir {
            Direction::Forward => &cfg.succs[node],
            Direction::Backward => &cfg.preds[node],
        };
        for &d in downs {
            if !queued[d] {
                queued[d] = true;
                work.push(d);
            }
        }
    }
    let (before, after) = match dir {
        Direction::Forward => (inputs, outputs),
        Direction::Backward => (outputs, inputs),
    };
    Solution {
        before,
        after,
        stats: SolveStats {
            nodes: n,
            visits,
            converged,
        },
    }
}

/// Default visit budget for a CFG: generous for real programs, tight
/// enough that adversarial inputs stop quickly.
pub fn default_visit_budget(nodes: usize) -> usize {
    nodes.saturating_mul(64).saturating_add(256)
}

// ---------------------------------------------------------------------------
// Syntactic statement helpers
// ---------------------------------------------------------------------------

/// Adds the root variable of every reference that `op` *reads* to
/// `out`. Taking an address (`&x`) reads nothing; dereferencing
/// (`*p`, `&p->f`) reads the pointer.
fn op_use_roots(op: &Operand, out: &mut impl FnMut(IrVarId)) {
    match op {
        Operand::Ref(r) => ref_use_roots(r, true, out),
        Operand::AddrOf(r) => ref_use_roots(r, false, out),
        Operand::Func(_) | Operand::Const(_) | Operand::Str(_) => {}
    }
}

fn ref_use_roots(r: &VarRef, read_value: bool, out: &mut impl FnMut(IrVarId)) {
    match r {
        VarRef::Path(p) => {
            if read_value {
                if let VarBase::Var(v) = p.base {
                    out(v);
                }
            }
        }
        VarRef::Deref { path, .. } => {
            // The pointer itself is always read, whether the reference
            // is a value read or an address computation.
            if let VarBase::Var(v) = path.base {
                out(v);
            }
        }
    }
}

/// The variable roots a basic statement reads (its lhs write path
/// counts only when it dereferences a pointer).
fn basic_use_roots(b: &BasicStmt, out: &mut impl FnMut(IrVarId)) {
    if let Some(lhs) = basic_lhs(b) {
        ref_use_roots(lhs, false, out); // a deref write reads the pointer
    }
    match b {
        BasicStmt::Copy { rhs, .. } | BasicStmt::Unary { rhs, .. } => op_use_roots(rhs, out),
        BasicStmt::Binary { a, b, .. } => {
            op_use_roots(a, out);
            op_use_roots(b, out);
        }
        BasicStmt::PtrArith { ptr, .. } => ref_use_roots(ptr, true, out),
        BasicStmt::Alloc { size, .. } => op_use_roots(size, out),
        BasicStmt::Call { target, args, .. } => {
            if let CallTarget::Indirect(r) = target {
                ref_use_roots(r, true, out);
            }
            for a in args {
                op_use_roots(a, out);
            }
        }
        BasicStmt::Return(v) => {
            if let Some(v) = v {
                op_use_roots(v, out);
            }
        }
    }
}

fn basic_lhs(b: &BasicStmt) -> Option<&VarRef> {
    match b {
        BasicStmt::Copy { lhs, .. }
        | BasicStmt::Unary { lhs, .. }
        | BasicStmt::Binary { lhs, .. }
        | BasicStmt::PtrArith { lhs, .. }
        | BasicStmt::Alloc { lhs, .. } => Some(lhs),
        BasicStmt::Call { lhs, .. } => lhs.as_ref(),
        BasicStmt::Return(_) => None,
    }
}

fn for_each_operand<'b>(b: &'b BasicStmt, f: &mut impl FnMut(&'b Operand)) {
    match b {
        BasicStmt::Copy { rhs, .. } | BasicStmt::Unary { rhs, .. } => f(rhs),
        BasicStmt::Binary { a, b, .. } => {
            f(a);
            f(b);
        }
        BasicStmt::PtrArith { .. } => {}
        BasicStmt::Alloc { size, .. } => f(size),
        BasicStmt::Call { args, .. } => args.iter().for_each(f),
        BasicStmt::Return(Some(v)) => f(v),
        BasicStmt::Return(None) => {}
    }
}

// ---------------------------------------------------------------------------
// Syntactic variable liveness (the engine's pruning substrate)
// ---------------------------------------------------------------------------

/// Backward, uses-only liveness at *variable* granularity, computed
/// purely syntactically (it runs inside the engine, before any
/// points-to facts exist).
///
/// A variable is live at a point if some path from the point reads it —
/// appears as the root of a reference that is evaluated. There are no
/// kills: redefinition does not end liveness, which costs precision but
/// keeps the analysis trivially sound against the engine's
/// field-granularity strong/weak kill rules.
struct VarLiveness {
    n_vars: usize,
    /// Pre-computed use set per CFG node.
    uses: Vec<BitSet>,
}

impl<'a> Transfer<'a> for VarLiveness {
    type Fact = BitSet;

    fn direction(&self) -> Direction {
        Direction::Backward
    }

    fn boundary(&self) -> BitSet {
        // Locals die with the frame. Escaping *targets* are tracked by
        // the engine's unmap process, not by variable liveness.
        BitSet::new(self.n_vars)
    }

    fn join(&self, into: &mut BitSet, from: &BitSet) -> bool {
        into.union_with(from)
    }

    fn transfer(&mut self, ix: usize, _node: &NodeKind<'a>, fact: &mut BitSet) {
        fact.union_with(&self.uses[ix]); // uses-only: no kills
    }
}

/// The result of [`var_liveness`]: per-statement live-out variable
/// sets plus convergence metadata.
#[derive(Debug)]
pub struct VarLivenessResult {
    /// Live-out variables per program point (basic statements only).
    pub live_out: BTreeMap<StmtId, BitSet>,
    /// Solver metadata.
    pub stats: SolveStats,
}

/// Computes syntactic uses-only liveness for one function body.
pub fn var_liveness(f: &IrFunction) -> Option<VarLivenessResult> {
    let body = f.body.as_ref()?;
    let cfg = Cfg::build(body);
    let n_vars = f.vars.len();
    let uses: Vec<BitSet> = cfg
        .nodes
        .iter()
        .map(|node| {
            let mut u = BitSet::new(n_vars);
            match node {
                NodeKind::Basic(b, _) => basic_use_roots(b, &mut |v| {
                    u.insert(v.0 as usize);
                }),
                NodeKind::Test(ops, _) => {
                    for op in ops {
                        op_use_roots(op, &mut |v| {
                            u.insert(v.0 as usize);
                        });
                    }
                }
                _ => {}
            }
            u
        })
        .collect();
    let mut problem = VarLiveness { n_vars, uses };
    let sol = solve(&cfg, &mut problem, default_visit_budget(cfg.nodes.len()));
    let mut live_out = BTreeMap::new();
    for (i, node) in cfg.nodes.iter().enumerate() {
        if let NodeKind::Basic(_, id) = node {
            live_out.insert(*id, sol.after[i].clone().unwrap_or(BitSet::new(n_vars)));
        }
    }
    Some(VarLivenessResult {
        live_out,
        stats: sol.stats,
    })
}

/// The variables of `f` whose points-to pairs the engine may prune
/// when dead: pointer-carrying locals and temporaries whose address is
/// never taken. Such a variable can never be a points-to *target*, so
/// its pairs are invisible to the map/unmap processes, to memo
/// contexts, and to every resolution that does not read the variable
/// itself. Parameters are excluded: their pairs participate in unmap.
pub fn prunable_vars(ir: &IrProgram, f: &IrFunction) -> BitSet {
    let mut prunable = BitSet::new(f.vars.len());
    for (i, v) in f.vars.iter().enumerate() {
        if matches!(v.kind, VarKind::Local | VarKind::Temp) && v.ty.carries_pointers(&ir.structs) {
            prunable.insert(i);
        }
    }
    // Remove anything address-taken, anywhere in the body.
    if let Some(body) = &f.body {
        body.for_each_basic(&mut |b, _| {
            for_each_operand(b, &mut |op| {
                if let Operand::AddrOf(VarRef::Path(p)) = op {
                    if let VarBase::Var(v) = p.base {
                        prunable.remove(v.0 as usize);
                    }
                }
            });
        });
    }
    prunable
}

/// A per-function mask for the engine's `prune_liveness` mode: which
/// variables are prunable at all, and which are live after each basic
/// statement.
#[derive(Debug)]
pub struct PruneMask {
    /// Never-address-taken pointer-carrying locals/temps.
    pub prunable: BitSet,
    /// Live-out variables per basic statement.
    pub live_out: BTreeMap<StmtId, BitSet>,
    /// CFG nodes (for trace reporting).
    pub nodes: usize,
    /// Solver visits spent (for trace reporting).
    pub visits: usize,
}

/// Builds the pruning mask for one function, or `None` when pruning
/// cannot help (no body, nothing prunable) or cannot be trusted (the
/// liveness solve ran out of visits).
pub fn prune_mask(ir: &IrProgram, f: &IrFunction) -> Option<PruneMask> {
    let prunable = prunable_vars(ir, f);
    if prunable.is_empty() {
        return None;
    }
    let live = var_liveness(f)?;
    if !live.stats.converged {
        return None;
    }
    Some(PruneMask {
        prunable,
        live_out: live.live_out,
        nodes: live.stats.nodes,
        visits: live.stats.visits,
    })
}

// ---------------------------------------------------------------------------
// Call-effect summaries (interprocedural component)
// ---------------------------------------------------------------------------

/// Transitive memory effects per function, resolved over the direct
/// call edges plus the invocation graph's indirect-call targets: may
/// the function (or anything it calls) read or write storage through a
/// pointer? Externals and unresolved indirect calls are conservative
/// (both effects).
#[derive(Debug)]
pub struct CallEffects {
    may_read: Vec<bool>,
    may_write: Vec<bool>,
}

impl CallEffects {
    /// Computes the summaries for every function of the program.
    pub fn compute(q: &FactQuery<'_>) -> CallEffects {
        let ir = q.ir;
        let n = ir.functions.len();
        let mut may_read = vec![false; n];
        let mut may_write = vec![false; n];
        // Direct syntactic effects + call edges.
        let mut callees: Vec<Vec<usize>> = vec![Vec::new(); n];
        for (fid, f) in ir.functions.iter().enumerate() {
            let Some(body) = &f.body else {
                // External: modelled conservatively.
                may_read[fid] = true;
                may_write[fid] = true;
                continue;
            };
            body.for_each_basic(&mut |b, _| {
                if let Some(lhs) = basic_lhs(b) {
                    if lhs.is_indirect() {
                        may_write[fid] = true;
                    }
                }
                for_each_operand(b, &mut |op| {
                    if op.is_indirect() {
                        may_read[fid] = true;
                    }
                });
                if let BasicStmt::Call {
                    target, call_site, ..
                } = b
                {
                    match target {
                        CallTarget::Direct(g) => callees[fid].push(g.0 as usize),
                        CallTarget::Indirect(r) => {
                            if r.is_indirect() {
                                may_read[fid] = true;
                            }
                            let targets = q.call_targets(*call_site);
                            if targets.is_empty() {
                                // Unresolved: conservative.
                                may_read[fid] = true;
                                may_write[fid] = true;
                            }
                            for t in targets {
                                callees[fid].push(t.0 as usize);
                            }
                        }
                    }
                }
            });
        }
        // Propagate to a fixed point over the call edges.
        let mut changed = true;
        while changed {
            changed = false;
            for f in 0..n {
                for &g in &callees[f] {
                    if may_read[g] && !may_read[f] {
                        may_read[f] = true;
                        changed = true;
                    }
                    if may_write[g] && !may_write[f] {
                        may_write[f] = true;
                        changed = true;
                    }
                }
            }
        }
        CallEffects {
            may_read,
            may_write,
        }
    }

    /// May `f` (transitively) read storage through a pointer?
    pub fn may_read(&self, f: FuncId) -> bool {
        self.may_read.get(f.0 as usize).copied().unwrap_or(true)
    }

    /// May `f` (transitively) write storage through a pointer?
    pub fn may_write(&self, f: FuncId) -> bool {
        self.may_write.get(f.0 as usize).copied().unwrap_or(true)
    }
}

// ---------------------------------------------------------------------------
// Location-level facts for lint checks
// ---------------------------------------------------------------------------

/// A location a node reads, with the definiteness of the read
/// (possible for reads through a possibly-pointing pointer or an
/// unknown array index).
pub type LocRead = (LocId, Def);

/// Resolves every storage location a node *reads* under the merged
/// facts `set` at its program point — direct reads, pointer reads of
/// dereferences, and reads through pointers (Table 1 resolution via
/// [`FactQuery`]). Only *interned* locations appear; see [`FnFacts`]
/// for the syntactic path domain the lint checks use.
pub fn node_reads(
    q: &FactQuery<'_>,
    func: FuncId,
    node: &NodeKind<'_>,
    set: &PtSet,
) -> Vec<LocRead> {
    fn push(out: &mut Vec<LocRead>, l: LocId, d: Def) {
        for (el, ed) in out.iter_mut() {
            if *el == l {
                if *ed != d {
                    *ed = Def::P;
                }
                return;
            }
        }
        out.push((l, d));
    }
    fn read_ref(
        out: &mut Vec<LocRead>,
        q: &FactQuery<'_>,
        func: FuncId,
        set: &PtSet,
        r: &VarRef,
        read_value: bool,
    ) {
        match r {
            VarRef::Path(p) => {
                if read_value {
                    for (l, d) in q.path_locs(func, p) {
                        push(out, l, d);
                    }
                }
            }
            VarRef::Deref { path, .. } => {
                for (l, d) in q.path_locs(func, path) {
                    push(out, l, d); // the pointer itself
                }
                if read_value {
                    for (l, d) in q.l_locations(func, set, r) {
                        push(out, l, d); // the pointed-to storage
                    }
                }
            }
        }
    }
    fn read_op(out: &mut Vec<LocRead>, q: &FactQuery<'_>, func: FuncId, set: &PtSet, op: &Operand) {
        match op {
            Operand::Ref(r) => read_ref(out, q, func, set, r, true),
            Operand::AddrOf(r) => read_ref(out, q, func, set, r, false),
            Operand::Func(_) | Operand::Const(_) | Operand::Str(_) => {}
        }
    }
    let mut out: Vec<LocRead> = Vec::new();
    let read_ref = |out: &mut Vec<LocRead>, r: &VarRef, rv: bool| {
        read_ref(out, q, func, set, r, rv);
    };
    let read_op = |out: &mut Vec<LocRead>, op: &Operand| read_op(out, q, func, set, op);
    match node {
        NodeKind::Basic(b, _) => {
            if let Some(lhs) = basic_lhs(b) {
                read_ref(&mut out, lhs, false); // a deref write reads the pointer
            }
            match b {
                BasicStmt::Copy { rhs, .. } | BasicStmt::Unary { rhs, .. } => {
                    read_op(&mut out, rhs)
                }
                BasicStmt::Binary { a, b, .. } => {
                    read_op(&mut out, a);
                    read_op(&mut out, b);
                }
                BasicStmt::PtrArith { ptr, .. } => read_ref(&mut out, ptr, true),
                BasicStmt::Alloc { size, .. } => read_op(&mut out, size),
                BasicStmt::Call { target, args, .. } => {
                    if let CallTarget::Indirect(r) = target {
                        read_ref(&mut out, r, true);
                    }
                    for a in args {
                        read_op(&mut out, a);
                    }
                }
                BasicStmt::Return(v) => {
                    if let Some(v) = v {
                        read_op(&mut out, v);
                    }
                }
            }
        }
        NodeKind::Test(ops, _) => {
            for op in ops {
                read_op(&mut out, op);
            }
        }
        _ => {}
    }
    out
}

/// The interned locations a node writes directly (its lhs), resolved
/// under `set`. `Def::D` on a singleton non-summary location is a
/// *strong* write (the engine would strong-kill there); everything
/// else is weak.
pub fn node_writes(
    q: &FactQuery<'_>,
    func: FuncId,
    node: &NodeKind<'_>,
    set: &PtSet,
) -> Vec<(LocId, Def)> {
    let NodeKind::Basic(b, _) = node else {
        return Vec::new();
    };
    let Some(lhs) = basic_lhs(b) else {
        return Vec::new();
    };
    let mut ls = q.l_locations(func, set, lhs);
    let strong = ls.len() == 1 && ls[0].1 == Def::D && !q.result.locs.is_summary(ls[0].0);
    if !strong {
        for (_, d) in ls.iter_mut() {
            *d = Def::P;
        }
    }
    ls
}

/// Joint may/must initialization fact (forward).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InitFact {
    /// Locations initialized on *some* path.
    pub may: BitSet,
    /// Locations initialized on *every* path.
    pub must: BitSet,
}

/// One storage slot of a function frame at *path* granularity: a
/// variable plus a projection chain (`s`, `s.f`, `buf[0]`, `buf[1..]`).
/// Built from the syntax, so a slot exists even when the engine never
/// interned a location for it (plain scalars that no pointer touches).
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct DomainLoc {
    /// The frame variable the slot is rooted at.
    pub var: IrVarId,
    /// The projection chain below the root.
    pub projs: Vec<Proj>,
}

/// Expands an IR projection chain into concrete location projection
/// chains with the definiteness of the selection (an unknown array
/// index selects both `head` and `tail`, possibly).
fn expand_projs(projs: &[IrProj]) -> Vec<(Vec<Proj>, Def)> {
    let mut cur: Vec<(Vec<Proj>, Def)> = vec![(Vec::new(), Def::D)];
    for p in projs {
        let mut next = Vec::new();
        for (path, d) in &cur {
            let mut with = |pr: Proj, dd: Def| {
                let mut q = path.clone();
                q.push(pr);
                next.push((q, dd));
            };
            match p {
                IrProj::Field(f) => with(Proj::Field(f.clone()), *d),
                IrProj::Index(IdxClass::Zero) => with(Proj::Head, *d),
                IrProj::Index(IdxClass::Positive) => with(Proj::Tail, *d),
                IrProj::Index(IdxClass::Unknown) => {
                    with(Proj::Head, Def::P);
                    with(Proj::Tail, Def::P);
                }
            }
        }
        cur = next;
    }
    cur
}

/// Per-node effect table shared by the location-level problems.
struct NodeEffects {
    /// Reads resolved to domain indices.
    reads: Vec<Vec<(usize, Def)>>,
    /// Direct writes resolved to domain indices (strong iff `Def::D`).
    writes: Vec<Vec<(usize, Def)>>,
    /// Domain slots handed to a callee by address (`f(&x)`).
    out_args: Vec<Vec<usize>>,
    /// Node is a call that may (transitively) read through pointers.
    call_reads_mem: Vec<bool>,
    /// Node is a call that may (transitively) write through pointers.
    call_writes_mem: Vec<bool>,
}

/// Maps syntax and interned locations onto the domain indices.
struct Resolver<'x, 'a> {
    q: &'x FactQuery<'a>,
    fid: FuncId,
    index: &'x FxHashMap<DomainLoc, usize>,
    loc_index: &'x FxHashMap<LocId, usize>,
}

impl Resolver<'_, '_> {
    /// Domain indices of a dereference-free path (empty for globals —
    /// they are outside the frame domain).
    fn path_ixes(&self, path: &VarPath) -> Vec<(usize, Def)> {
        let VarBase::Var(v) = path.base else {
            return Vec::new();
        };
        expand_projs(&path.projs)
            .into_iter()
            .filter_map(|(projs, d)| {
                self.index
                    .get(&DomainLoc { var: v, projs })
                    .map(|i| (*i, d))
            })
            .collect()
    }

    /// Domain indices of interned locations (frame-local only).
    fn loc_ixes(&self, ls: &[(LocId, Def)]) -> Vec<(usize, Def)> {
        ls.iter()
            .filter_map(|(l, d)| self.loc_index.get(l).map(|i| (*i, *d)))
            .collect()
    }

    /// Accumulates the domain slots a reference *reads*.
    fn read_ref(&self, set: &PtSet, r: &VarRef, read_value: bool, acc: &mut Vec<(usize, Def)>) {
        match r {
            VarRef::Path(p) => {
                if read_value {
                    push_ixes(acc, self.path_ixes(p));
                }
            }
            VarRef::Deref { path, .. } => {
                push_ixes(acc, self.path_ixes(path)); // the pointer itself
                if read_value {
                    let ls = self.q.l_locations(self.fid, set, r);
                    push_ixes(acc, self.loc_ixes(&ls)); // the pointed-to storage
                }
            }
        }
    }

    fn read_op(&self, set: &PtSet, op: &Operand, acc: &mut Vec<(usize, Def)>) {
        match op {
            Operand::Ref(r) => self.read_ref(set, r, true, acc),
            Operand::AddrOf(r) => self.read_ref(set, r, false, acc),
            Operand::Func(_) | Operand::Const(_) | Operand::Str(_) => {}
        }
    }

    /// The domain slots a write through `lhs` touches; `Def::D` iff the
    /// write is strong (single definite non-summary slot — the engine's
    /// strong-kill condition).
    fn write_lhs(&self, set: &PtSet, lhs: &VarRef) -> Vec<(usize, Def)> {
        match lhs {
            VarRef::Path(p) => {
                let mut rs = self.path_ixes(p);
                let strong = rs.len() == 1
                    && rs[0].1 == Def::D
                    && !expand_projs(&p.projs)
                        .first()
                        .is_some_and(|(projs, _)| projs.contains(&Proj::Tail));
                if !strong {
                    for (_, d) in rs.iter_mut() {
                        *d = Def::P;
                    }
                }
                rs
            }
            VarRef::Deref { .. } => {
                let ls = self.q.l_locations(self.fid, set, lhs);
                let strong =
                    ls.len() == 1 && ls[0].1 == Def::D && !self.q.result.locs.is_summary(ls[0].0);
                let mut rs = self.loc_ixes(&ls);
                if !strong {
                    for (_, d) in rs.iter_mut() {
                        *d = Def::P;
                    }
                }
                rs
            }
        }
    }
}

fn push_ixes(acc: &mut Vec<(usize, Def)>, add: Vec<(usize, Def)>) {
    for (i, d) in add {
        let mut found = false;
        for (ei, ed) in acc.iter_mut() {
            if *ei == i {
                if *ed != d {
                    *ed = Def::P;
                }
                found = true;
                break;
            }
        }
        if !found {
            acc.push((i, d));
        }
    }
}

/// Backward location liveness: `live_in = uses ∪ (live_out \ strong
/// kills)`. A read of a slot keeps every overlapping slot alive (a
/// whole-struct read covers the fields and vice versa); a strong write
/// kills the slot and its extensions; calls that may read memory keep
/// all address-taken storage alive.
struct LocLiveness<'e> {
    fx: &'e NodeEffects,
    addr_taken: &'e BitSet,
    overlap: &'e [Vec<usize>],
    extensions: &'e [Vec<usize>],
}

impl<'a> Transfer<'a> for LocLiveness<'_> {
    type Fact = BitSet;

    fn direction(&self) -> Direction {
        Direction::Backward
    }

    fn boundary(&self) -> BitSet {
        // Address-taken storage is live at exit: reads through saved
        // pointers can outlive the last direct read.
        self.addr_taken.clone()
    }

    fn join(&self, into: &mut BitSet, from: &BitSet) -> bool {
        into.union_with(from)
    }

    fn transfer(&mut self, ix: usize, _node: &NodeKind<'a>, fact: &mut BitSet) {
        for (i, d) in &self.fx.writes[ix] {
            if *d == Def::D {
                for &e in &self.extensions[*i] {
                    fact.remove(e); // strong kill ends liveness
                }
            }
        }
        for (i, _) in &self.fx.reads[ix] {
            for &o in &self.overlap[*i] {
                fact.insert(o);
            }
        }
        for i in &self.fx.out_args[ix] {
            for &o in &self.overlap[*i] {
                fact.insert(o);
            }
        }
        if self.fx.call_reads_mem[ix] {
            fact.union_with(self.addr_taken);
        }
    }
}

/// Forward may/must initialization: strong writes initialize on every
/// path, weak writes and callee side effects only on some. A write to
/// a slot also initializes its extensions (whole-variable stores cover
/// the fields).
struct InitProblem<'e> {
    fx: &'e NodeEffects,
    addr_taken: &'e BitSet,
    extensions: &'e [Vec<usize>],
    boundary: InitFact,
}

impl<'a> Transfer<'a> for InitProblem<'_> {
    type Fact = InitFact;

    fn direction(&self) -> Direction {
        Direction::Forward
    }

    fn boundary(&self) -> InitFact {
        self.boundary.clone()
    }

    fn join(&self, into: &mut InitFact, from: &InitFact) -> bool {
        let a = into.may.union_with(&from.may);
        let b = into.must.intersect_with(&from.must);
        a || b
    }

    fn transfer(&mut self, ix: usize, _node: &NodeKind<'a>, fact: &mut InitFact) {
        for (i, d) in &self.fx.writes[ix] {
            for &e in &self.extensions[*i] {
                fact.may.insert(e);
                if *d == Def::D {
                    fact.must.insert(e);
                }
            }
        }
        for i in &self.fx.out_args[ix] {
            for &e in &self.extensions[*i] {
                fact.may.insert(e);
            }
        }
        if self.fx.call_writes_mem[ix] {
            fact.may.union_with(self.addr_taken);
        }
    }
}

/// Per-function dataflow facts for the lint checks, indexed by CFG
/// node. The slot domain covers the function's frame at path
/// granularity; globals, symbolics, and heap are outside the domain
/// and treated as always-live / always-initialized.
pub struct FnFacts<'a> {
    /// The function's CFG.
    pub cfg: Cfg<'a>,
    /// The slot domain, sorted; indices are the bit positions.
    pub domain: Vec<DomainLoc>,
    /// Slots whose root variable is address-taken somewhere in the body.
    pub addr_taken: BitSet,
    /// Slots each node reads (with read definiteness), per CFG node.
    pub reads: Vec<Vec<(usize, Def)>>,
    /// Slots each node writes (`Def::D` iff strong), per CFG node.
    pub writes: Vec<Vec<(usize, Def)>>,
    /// Live slots *after* each node (backward liveness).
    pub live_out: Vec<BitSet>,
    /// Initialization facts *before* each node (forward).
    pub init_in: Vec<InitFact>,
    /// Storage-overlap closure per slot: the slot, its prefixes, and
    /// its extensions (same root, prefix-related projection chains).
    pub overlap: Vec<Vec<usize>>,
    /// Extension closure per slot: the slot plus every slot below it.
    pub extensions: Vec<Vec<usize>>,
    /// False if either solve ran out of visits; checks must then skip
    /// the function.
    pub converged: bool,
    /// Combined solver visits (liveness + initialization).
    pub visits: usize,
}

impl FnFacts<'_> {
    /// Domain index of a slot.
    pub fn ix(&self, var: IrVarId, projs: &[Proj]) -> Option<usize> {
        self.domain
            .binary_search_by(|d| (d.var, d.projs.as_slice()).cmp(&(var, projs)))
            .ok()
    }

    /// Renders a slot the way the engine names locations (`s.f`,
    /// `buf[0]`, `buf[1..]`).
    pub fn render(&self, f: &IrFunction, ix: usize) -> String {
        let d = &self.domain[ix];
        let mut s = f.var(d.var).name.clone();
        for p in &d.projs {
            match p {
                Proj::Field(name) => {
                    s.push('.');
                    s.push_str(name);
                }
                Proj::Head => s.push_str("[0]"),
                Proj::Tail => s.push_str("[1..]"),
            }
        }
        s
    }
}

/// Lint-facing dataflow facts for every reachable, defined function.
pub struct ProgramDataflow<'a> {
    /// Facts per function.
    pub funcs: BTreeMap<FuncId, FnFacts<'a>>,
    /// Transitive call-effect summaries used by the transfers.
    pub effects: CallEffects,
}

impl<'a> ProgramDataflow<'a> {
    /// Computes liveness and initialization facts for every function
    /// the analysis reached. Facts resolve indirect defs/uses through
    /// `q`'s points-to facts, and call effects through the invocation
    /// graph.
    pub fn compute(q: &FactQuery<'a>) -> ProgramDataflow<'a> {
        let effects = CallEffects::compute(q);
        let reachable = q.reachable_functions();
        let mut funcs = BTreeMap::new();
        for (fid, f) in q.ir.defined_functions() {
            if !reachable.contains(&fid) {
                continue;
            }
            let Some(body) = &f.body else { continue };
            funcs.insert(fid, compute_fn_facts(q, &effects, fid, f, body));
        }
        ProgramDataflow { funcs, effects }
    }
}

fn compute_fn_facts<'a>(
    q: &FactQuery<'a>,
    effects: &CallEffects,
    fid: FuncId,
    f: &'a IrFunction,
    body: &'a Stmt,
) -> FnFacts<'a> {
    let cfg = Cfg::build(body);

    // --- Domain: every frame slot named by the syntax or interned by
    // the engine, plus all prefixes.
    let mut slots: std::collections::BTreeSet<DomainLoc> = std::collections::BTreeSet::new();
    for (i, _) in f.vars.iter().enumerate() {
        slots.insert(DomainLoc {
            var: IrVarId(i as u32),
            projs: Vec::new(),
        });
    }
    let add_path = |slots: &mut std::collections::BTreeSet<DomainLoc>, path: &VarPath| {
        let VarBase::Var(v) = path.base else { return };
        for (projs, _) in expand_projs(&path.projs) {
            for j in 0..=projs.len() {
                slots.insert(DomainLoc {
                    var: v,
                    projs: projs[..j].to_vec(),
                });
            }
        }
    };
    {
        let on_ref = |slots: &mut std::collections::BTreeSet<DomainLoc>, r: &VarRef| match r {
            VarRef::Path(p) => add_path(slots, p),
            VarRef::Deref { path, .. } => add_path(slots, path),
        };
        body.for_each_basic(&mut |b, _| {
            if let Some(lhs) = basic_lhs(b) {
                on_ref(&mut slots, lhs);
            }
            for_each_operand(b, &mut |op| match op {
                Operand::Ref(r) | Operand::AddrOf(r) => on_ref(&mut slots, r),
                _ => {}
            });
            if let BasicStmt::Call {
                target: CallTarget::Indirect(r),
                ..
            } = b
            {
                on_ref(&mut slots, r);
            }
        });
    }
    let mut taken_vars = BitSet::new(f.vars.len());
    body.for_each_basic(&mut |b, _| {
        for_each_operand(b, &mut |op| {
            if let Operand::AddrOf(VarRef::Path(p)) = op {
                if let VarBase::Var(v) = p.base {
                    taken_vars.insert(v.0 as usize);
                }
            }
        });
    });
    // Interned frame locations (targets of pointers into this frame).
    for l in q.result.locs.ids() {
        if let LocBase::Var(g, v) = &q.result.locs.get(l).base {
            if *g == fid {
                let projs = q.result.locs.get(l).projs.clone();
                for j in 0..=projs.len() {
                    slots.insert(DomainLoc {
                        var: *v,
                        projs: projs[..j].to_vec(),
                    });
                }
            }
        }
    }
    let domain: Vec<DomainLoc> = slots.into_iter().collect();
    let nd = domain.len();
    let mut index: FxHashMap<DomainLoc, usize> = FxHashMap::default();
    for (i, d) in domain.iter().enumerate() {
        index.insert(d.clone(), i);
    }
    let mut loc_index: FxHashMap<LocId, usize> = FxHashMap::default();
    for l in q.result.locs.ids() {
        let d = q.result.locs.get(l);
        if let LocBase::Var(g, v) = &d.base {
            if *g == fid {
                if let Some(i) = index.get(&DomainLoc {
                    var: *v,
                    projs: d.projs.clone(),
                }) {
                    loc_index.insert(l, *i);
                }
            }
        }
    }
    let mut addr_taken = BitSet::new(nd);
    for (i, d) in domain.iter().enumerate() {
        if taken_vars.contains(d.var.0 as usize) {
            addr_taken.insert(i);
        }
    }
    // Prefix-closure tables.
    let prefix_of = |a: &DomainLoc, b: &DomainLoc| {
        a.var == b.var && b.projs.len() >= a.projs.len() && b.projs[..a.projs.len()] == a.projs[..]
    };
    let mut extensions: Vec<Vec<usize>> = vec![Vec::new(); nd];
    let mut overlap: Vec<Vec<usize>> = vec![Vec::new(); nd];
    for i in 0..nd {
        for j in 0..nd {
            if prefix_of(&domain[i], &domain[j]) {
                extensions[i].push(j);
                overlap[i].push(j);
            } else if prefix_of(&domain[j], &domain[i]) {
                overlap[i].push(j);
            }
        }
    }

    // --- Per-node effects, resolved against the merged facts at each
    // node's program point.
    let n = cfg.nodes.len();
    let rsv = Resolver {
        q,
        fid,
        index: &index,
        loc_index: &loc_index,
    };
    let mut fx = NodeEffects {
        reads: vec![Vec::new(); n],
        writes: vec![Vec::new(); n],
        out_args: vec![Vec::new(); n],
        call_reads_mem: vec![false; n],
        call_writes_mem: vec![false; n],
    };
    for (i, node) in cfg.nodes.iter().enumerate() {
        let Some(id) = cfg.stmt_of(i) else { continue };
        let set = q.at(id);
        match node {
            NodeKind::Basic(b, _) => {
                if let Some(lhs) = basic_lhs(b) {
                    rsv.read_ref(&set, lhs, false, &mut fx.reads[i]);
                    if !matches!(b, BasicStmt::Return(_)) {
                        fx.writes[i] = rsv.write_lhs(&set, lhs);
                    }
                }
                match b {
                    BasicStmt::Copy { rhs, .. } | BasicStmt::Unary { rhs, .. } => {
                        rsv.read_op(&set, rhs, &mut fx.reads[i]);
                    }
                    BasicStmt::Binary { a, b, .. } => {
                        rsv.read_op(&set, a, &mut fx.reads[i]);
                        rsv.read_op(&set, b, &mut fx.reads[i]);
                    }
                    BasicStmt::PtrArith { ptr, .. } => {
                        rsv.read_ref(&set, ptr, true, &mut fx.reads[i]);
                    }
                    BasicStmt::Alloc { size, .. } => {
                        rsv.read_op(&set, size, &mut fx.reads[i]);
                    }
                    BasicStmt::Call {
                        target,
                        args,
                        call_site,
                        ..
                    } => {
                        if let CallTarget::Indirect(r) = target {
                            rsv.read_ref(&set, r, true, &mut fx.reads[i]);
                        }
                        for a in args {
                            rsv.read_op(&set, a, &mut fx.reads[i]);
                        }
                        let targets: Vec<FuncId> = match target {
                            CallTarget::Direct(g) => vec![*g],
                            CallTarget::Indirect(_) => {
                                let ts: Vec<FuncId> =
                                    q.call_targets(*call_site).into_iter().collect();
                                if ts.is_empty() {
                                    fx.call_reads_mem[i] = true;
                                    fx.call_writes_mem[i] = true;
                                }
                                ts
                            }
                        };
                        for t in targets {
                            fx.call_reads_mem[i] |= effects.may_read(t);
                            fx.call_writes_mem[i] |= effects.may_write(t);
                        }
                        // `f(&x)` lets the callee initialize/read `x`.
                        for a in args {
                            if let Operand::AddrOf(r) = a {
                                let ixes = match r {
                                    VarRef::Path(p) => rsv.path_ixes(p),
                                    VarRef::Deref { .. } => {
                                        let ls = q.l_locations(fid, &set, r);
                                        rsv.loc_ixes(&ls)
                                    }
                                };
                                for (ix, _) in ixes {
                                    if !fx.out_args[i].contains(&ix) {
                                        fx.out_args[i].push(ix);
                                    }
                                }
                            }
                        }
                    }
                    BasicStmt::Return(v) => {
                        if let Some(v) = v {
                            rsv.read_op(&set, v, &mut fx.reads[i]);
                        }
                    }
                }
            }
            NodeKind::Test(ops, _) => {
                for op in ops {
                    rsv.read_op(&set, op, &mut fx.reads[i]);
                }
            }
            _ => {}
        }
    }

    let budget = default_visit_budget(n);

    // --- Backward liveness.
    let mut live_problem = LocLiveness {
        fx: &fx,
        addr_taken: &addr_taken,
        overlap: &overlap,
        extensions: &extensions,
    };
    let live_sol = solve(&cfg, &mut live_problem, budget);
    let live_out: Vec<BitSet> = live_sol
        .after
        .iter()
        .map(|o| o.clone().unwrap_or(BitSet::new(nd)))
        .collect();

    // --- Forward initialization. Parameters (and everything under
    // them) start initialized.
    let mut boundary = InitFact {
        may: BitSet::new(nd),
        must: BitSet::new(nd),
    };
    for (i, d) in domain.iter().enumerate() {
        if matches!(f.var(d.var).kind, VarKind::Param(_)) {
            boundary.may.insert(i);
            boundary.must.insert(i);
        }
    }
    let mut init_problem = InitProblem {
        fx: &fx,
        addr_taken: &addr_taken,
        extensions: &extensions,
        boundary,
    };
    let init_sol = solve(&cfg, &mut init_problem, budget.saturating_mul(2));
    // Unreached nodes keep a pessimistic "everything may be
    // initialized" fact so checks stay silent there.
    let pessimistic = InitFact {
        may: BitSet::full(nd),
        must: BitSet::full(nd),
    };
    let init_in: Vec<InitFact> = init_sol
        .before
        .iter()
        .map(|o| o.clone().unwrap_or_else(|| pessimistic.clone()))
        .collect();

    FnFacts {
        cfg,
        domain,
        addr_taken,
        reads: fx.reads,
        writes: fx.writes,
        live_out,
        init_in,
        overlap,
        extensions,
        converged: live_sol.stats.converged && init_sol.stats.converged,
        visits: live_sol.stats.visits + init_sol.stats.visits,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg_of(src: &str, func: &str) -> (pta_simple::IrProgram, FuncId) {
        let ir = pta_simple::compile(src).expect("compiles");
        let (fid, _) = ir.function_by_name(func).unwrap();
        (ir, fid)
    }

    #[test]
    fn cfg_counts_every_basic_stmt_once() {
        let (ir, fid) = cfg_of(
            "int main(void) {
                 int i; int s; s = 0;
                 for (i = 0; i < 4; i = i + 1) { if (i > 2) { continue; } s = s + i; }
                 while (s > 0) { s = s - 1; if (s == 3) { break; } }
                 switch (s) { case 0: s = 1; case 1: s = 2; break; default: s = 9; }
                 do { s = s - 1; } while (s > 0);
                 return s;
             }",
            "main",
        );
        let f = ir.function(fid);
        let body = f.body.as_ref().unwrap();
        let cfg = Cfg::build(body);
        let in_cfg = cfg
            .nodes
            .iter()
            .filter(|n| matches!(n, NodeKind::Basic(..)))
            .count();
        assert_eq!(in_cfg, body.count_basic());
        // Predecessors are the exact reverse of successors.
        for (n, ss) in cfg.succs.iter().enumerate() {
            for &s in ss {
                assert!(cfg.preds[s].contains(&n));
            }
        }
    }

    #[test]
    fn var_liveness_sees_loop_back_edges() {
        let (ir, fid) = cfg_of(
            "int main(void) {
                 int i; int s; s = 0;
                 for (i = 0; i < 4; i = i + 1) { s = s + i; }
                 return s;
             }",
            "main",
        );
        let f = ir.function(fid);
        let live = var_liveness(f).expect("has body");
        assert!(live.stats.converged);
        let i_var = f.vars.iter().position(|v| v.name == "i").unwrap();
        let s_var = f.vars.iter().position(|v| v.name == "s").unwrap();
        // After `s = s + i` (inside the loop), both i (next test/step)
        // and s (next iteration + return) are live.
        let mut body_store = None;
        f.body.as_ref().unwrap().for_each_basic(&mut |b, id| {
            if let BasicStmt::Binary { a, .. } = b {
                if matches!(a, Operand::Ref(VarRef::Path(p))
                    if p.base == VarBase::Var(IrVarId(s_var as u32)))
                {
                    body_store = Some(id);
                }
            }
        });
        let id = body_store.expect("s = s + i present");
        let out = &live.live_out[&id];
        assert!(out.contains(i_var), "i live across the back edge");
        assert!(out.contains(s_var), "s live into the next iteration");
    }

    #[test]
    fn prunable_excludes_params_and_address_taken() {
        let (ir, fid) = cfg_of(
            "int g;
             void take(int **pp) { *pp = &g; }
             int main(void) { int *a; int *b; int *c; take(&b); a = &g; c = a; return *c; }",
            "main",
        );
        let f = ir.function(fid);
        let p = prunable_vars(&ir, f);
        let pos = |n: &str| f.vars.iter().position(|v| v.name == n).unwrap();
        assert!(p.contains(pos("a")), "plain local pointer is prunable");
        assert!(!p.contains(pos("b")), "address-taken local is not");
        assert!(p.contains(pos("c")));
        let (_, take) = ir.function_by_name("take").unwrap();
        let tp = prunable_vars(&ir, take);
        assert!(!tp.contains(0), "parameters are never prunable");
    }

    #[test]
    fn bitset_ops() {
        let mut a = BitSet::new(130);
        assert!(a.insert(0));
        assert!(a.insert(129));
        assert!(!a.insert(129));
        let mut b = BitSet::new(130);
        b.insert(64);
        assert!(a.union_with(&b));
        assert!(!a.union_with(&b));
        assert_eq!(a.count(), 3);
        assert_eq!(a.iter().collect::<Vec<_>>(), vec![0, 64, 129]);
        a.remove(64);
        assert!(!a.contains(64));
        let mut c = BitSet::full(10);
        assert!(c.intersect_with(&a));
        assert_eq!(c.iter().collect::<Vec<_>>(), vec![0]);
    }

    #[test]
    fn program_dataflow_tracks_initialization() {
        let pta = crate::run_source(
            "int g;
             int main(void) {
                 int x; int y; int c;
                 c = 0;
                 if (c) { x = 1; }
                 y = x + 1;
                 return y;
             }",
        )
        .expect("analyses");
        let q = FactQuery::new(&pta.ir, &pta.result);
        let df = ProgramDataflow::compute(&q);
        let (main, f) = pta.ir.function_by_name("main").unwrap();
        let facts = df.funcs.get(&main).expect("main analysed");
        assert!(facts.converged);
        let vi = f.vars.iter().position(|v| v.name == "x").unwrap();
        let xi = facts.ix(IrVarId(vi as u32), &[]).expect("x in domain");
        // At `y = x + 1`, x is may-but-not-must initialized, and the
        // node reads it.
        let mut checked = false;
        for (i, node) in facts.cfg.nodes.iter().enumerate() {
            if let NodeKind::Basic(BasicStmt::Binary { .. }, _) = node {
                if facts.reads[i].iter().any(|(ix, _)| *ix == xi) {
                    let init = &facts.init_in[i];
                    assert!(init.may.contains(xi), "x assigned on the then-path");
                    assert!(!init.must.contains(xi), "x unassigned on the else-path");
                    checked = true;
                }
            }
        }
        assert!(checked, "the read of x was resolved");
    }

    #[test]
    fn dataflow_sees_dead_stores() {
        let pta = crate::run_source(
            "int main(void) {
                 int a; int b;
                 a = 1;
                 a = 2;
                 b = a;
                 return b;
             }",
        )
        .expect("analyses");
        let q = FactQuery::new(&pta.ir, &pta.result);
        let df = ProgramDataflow::compute(&q);
        let (main, f) = pta.ir.function_by_name("main").unwrap();
        let facts = df.funcs.get(&main).expect("main analysed");
        let vi = f.vars.iter().position(|v| v.name == "a").unwrap();
        let ai = facts.ix(IrVarId(vi as u32), &[]).expect("a in domain");
        // `a = 1` writes a dead slot; `a = 2` writes a live one.
        let mut dead = 0;
        let mut live = 0;
        for (i, _) in facts.cfg.nodes.iter().enumerate() {
            let strong_a = facts.writes[i]
                .iter()
                .any(|(ix, d)| *ix == ai && *d == Def::D);
            if !strong_a {
                continue;
            }
            if facts.live_out[i].contains(ai) {
                live += 1;
            } else {
                dead += 1;
            }
        }
        assert_eq!(dead, 1, "exactly one dead store to a");
        assert_eq!(live, 1, "exactly one live store to a");
    }

    #[test]
    fn call_effects_are_transitive() {
        let pta = crate::run_source(
            "int g;
             void leaf(int *p) { *p = 1; }
             void mid(int *p) { leaf(p); }
             int pure_add(int a, int b) { return a + b; }
             int main(void) { int x; mid(&x); return pure_add(x, 1); }",
        )
        .expect("analyses");
        let q = FactQuery::new(&pta.ir, &pta.result);
        let fx = CallEffects::compute(&q);
        let id = |n: &str| pta.ir.function_by_name(n).unwrap().0;
        assert!(fx.may_write(id("leaf")));
        assert!(fx.may_write(id("mid")), "effects propagate to callers");
        assert!(!fx.may_write(id("pure_add")));
        assert!(!fx.may_read(id("pure_add")));
    }

    #[test]
    fn out_arg_initializes_through_call() {
        let pta = crate::run_source(
            "void fill(int *p) { *p = 7; }
             int main(void) {
                 int x;
                 fill(&x);
                 return x;
             }",
        )
        .expect("analyses");
        let q = FactQuery::new(&pta.ir, &pta.result);
        let df = ProgramDataflow::compute(&q);
        let (main, f) = pta.ir.function_by_name("main").unwrap();
        let facts = df.funcs.get(&main).expect("main analysed");
        let vi = f.vars.iter().position(|v| v.name == "x").unwrap();
        let xi = facts.ix(IrVarId(vi as u32), &[]).expect("x in domain");
        // At `return x`, x may be initialized (by the callee).
        for (i, node) in facts.cfg.nodes.iter().enumerate() {
            if let NodeKind::Basic(BasicStmt::Return(Some(_)), _) = node {
                assert!(facts.init_in[i].may.contains(xi), "callee initialized x");
            }
        }
    }
}
