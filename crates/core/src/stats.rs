//! The measurements behind the paper's evaluation (§6): Tables 2–6.
//!
//! All counters follow the paper's definitions:
//! - statistics are computed over the *simplified* program;
//! - pairs whose target is `null` are excluded ("points-to relationships
//!   contributed by \[NULL initialization\] are not counted");
//! - indirect references are split into the scalar style (`*x`,
//!   `(*x).y.z`) and the array style (`x[i][j]` with `x` a pointer to an
//!   array) — the two sub-columns of Table 3.

use crate::analysis::AnalysisResult;
use crate::location::{LocBase, LocId};
use crate::lvalue::RefEnv;
use crate::points_to_set::{Def, PtSet};
use pta_cfront::ast::FuncId;
use pta_simple::{BasicStmt, CallTarget, CondExpr, IrProgram, Operand, Stmt, StmtId, VarRef};

/// Table 2: benchmark characteristics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Table2Row {
    /// Benchmark name.
    pub name: String,
    /// Source lines (including comments).
    pub lines: usize,
    /// Basic statements in SIMPLE form.
    pub simple_stmts: usize,
    /// Minimum abstract-stack size over defined functions.
    pub min_vars: usize,
    /// Maximum abstract-stack size over defined functions.
    pub max_vars: usize,
}

/// Table 3: points-to characteristics of indirect references. Each
/// `(scalar, array)` pair mirrors the two sub-columns of the paper.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Table3Row {
    /// Benchmark name.
    pub name: String,
    /// Dereferenced pointer definitely points to a single location.
    pub one_d: (usize, usize),
    /// Possibly points to a single location (the other being NULL).
    pub one_p: (usize, usize),
    /// Two possible target locations.
    pub two_p: (usize, usize),
    /// Three possible target locations.
    pub three_p: (usize, usize),
    /// Four or more possible target locations.
    pub four_p: (usize, usize),
    /// Indirect references whose pointer has no non-NULL target (dead
    /// or always-NULL dereference; not a paper column, kept for
    /// accounting).
    pub zero: usize,
    /// Total indirect references.
    pub ind_refs: usize,
    /// Indirect references replaceable by a direct reference.
    pub scalar_rep: usize,
    /// Points-to pairs used, target on the stack.
    pub to_stack: usize,
    /// Points-to pairs used, target in the heap.
    pub to_heap: usize,
}

impl Table3Row {
    /// Total pairs used by indirect references.
    pub fn tot(&self) -> usize {
        self.to_stack + self.to_heap
    }

    /// Average pairs per indirect reference (the paper's `Avg`).
    pub fn avg(&self) -> f64 {
        if self.ind_refs == 0 {
            0.0
        } else {
            self.tot() as f64 / self.ind_refs as f64
        }
    }
}

/// Table 4: categorization of the `to_stack` pairs of Table 3 by the
/// kind of their source and target locations.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Table4Row {
    /// Benchmark name.
    pub name: String,
    /// Sources: locals (incl. temporaries), globals, formal parameters,
    /// symbolic names.
    pub from: KindCounts,
    /// Targets, same classification.
    pub to: KindCounts,
}

/// Location-kind counters (lo/gl/fp/sy of Table 4).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct KindCounts {
    /// Local variables and temporaries.
    pub lo: usize,
    /// Globals (including string-literal storage).
    pub gl: usize,
    /// Formal parameters.
    pub fp: usize,
    /// Symbolic names.
    pub sy: usize,
}

/// Table 5: general points-to statistics, summed over all program
/// points.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Table5Row {
    /// Benchmark name.
    pub name: String,
    /// Pairs with stack source and stack target.
    pub stack_to_stack: usize,
    /// Pairs with stack source and heap target.
    pub stack_to_heap: usize,
    /// Pairs with heap source and heap target.
    pub heap_to_heap: usize,
    /// Pairs with heap source and stack target (the paper reports 0
    /// everywhere — the basis for decoupling heap analysis).
    pub heap_to_stack: usize,
    /// Number of program points with recorded information.
    pub points: usize,
    /// Maximum pairs at a single point.
    pub max_per_stmt: usize,
}

impl Table5Row {
    /// Total pairs summed over statements.
    pub fn total(&self) -> usize {
        self.stack_to_stack + self.stack_to_heap + self.heap_to_heap + self.heap_to_stack
    }

    /// Average pairs per statement.
    pub fn avg(&self) -> f64 {
        if self.points == 0 {
            0.0
        } else {
            self.total() as f64 / self.points as f64
        }
    }
}

/// Table 6: invocation-graph statistics.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Table6Row {
    /// Benchmark name.
    pub name: String,
    /// Invocation-graph nodes.
    pub ig_nodes: usize,
    /// Call sites in the program.
    pub call_sites: usize,
    /// Distinct functions actually invoked.
    pub functions: usize,
    /// Recursive nodes.
    pub recursive: usize,
    /// Approximate nodes.
    pub approximate: usize,
}

impl Table6Row {
    /// Average non-root nodes per call site (`Avgc`).
    pub fn avg_per_call_site(&self) -> f64 {
        if self.call_sites == 0 {
            0.0
        } else {
            (self.ig_nodes.saturating_sub(1)) as f64 / self.call_sites as f64
        }
    }

    /// Average nodes per invoked function (`Avgf`).
    pub fn avg_per_function(&self) -> f64 {
        if self.functions == 0 {
            0.0
        } else {
            self.ig_nodes as f64 / self.functions as f64
        }
    }
}

/// All tables for one benchmark.
#[derive(Debug, Clone)]
pub struct BenchmarkStats {
    /// Table 2 row.
    pub t2: Table2Row,
    /// Table 3 row.
    pub t3: Table3Row,
    /// Table 4 row.
    pub t4: Table4Row,
    /// Table 5 row.
    pub t5: Table5Row,
    /// Table 6 row.
    pub t6: Table6Row,
}

/// Computes every table for one analysed benchmark. `source` is used
/// only for the line count of Table 2.
pub fn compute(
    name: &str,
    source: &str,
    ir: &IrProgram,
    result: &mut AnalysisResult,
) -> BenchmarkStats {
    BenchmarkStats {
        t2: table2(name, source, ir, result),
        t3: table3(name, ir, result),
        t4: table4(name, ir, result),
        t5: table5(name, ir, result),
        t6: table6(name, ir, result),
    }
}

/// Table 2: program characteristics.
pub fn table2(name: &str, source: &str, ir: &IrProgram, result: &AnalysisResult) -> Table2Row {
    let lines = source.lines().count();
    let simple_stmts = ir.total_basic_stmts();
    // Abstract-stack size per function: globals visible everywhere +
    // the function's own variables + symbolic names owned by it,
    // counting pointer-relevant leaf locations.
    let global_locs = result
        .locs
        .ids()
        .filter(|l| {
            matches!(
                result.locs.get(*l).base,
                LocBase::Global(_) | LocBase::StrLit
            )
        })
        .count()
        + 1; // heap
    let mut min_vars = usize::MAX;
    let mut max_vars = 0usize;
    for (fid, _) in ir.defined_functions() {
        let own = result
            .locs
            .ids()
            .filter(|l| match result.locs.get(*l).base {
                LocBase::Var(g, _) | LocBase::Symbolic(g, _) => g == fid,
                _ => false,
            })
            .count();
        let n = own + global_locs;
        min_vars = min_vars.min(n);
        max_vars = max_vars.max(n);
    }
    if min_vars == usize::MAX {
        min_vars = 0;
    }
    Table2Row {
        name: name.to_owned(),
        lines,
        simple_stmts,
        min_vars,
        max_vars,
    }
}

/// One indirect-reference occurrence: the program point and the
/// reference itself.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IndirectRef {
    /// Containing function.
    pub func: FuncId,
    /// Program point the reference executes at.
    pub stmt: StmtId,
    /// The reference.
    pub r: VarRef,
}

/// Collects every indirect-reference occurrence in the program (from
/// basic statements, call targets, and condition operands).
pub fn collect_indirect_refs(ir: &IrProgram) -> Vec<IndirectRef> {
    let mut out = Vec::new();
    for (fid, f) in ir.defined_functions() {
        let Some(body) = &f.body else { continue };
        collect_stmt(fid, body, &mut out);
    }
    out
}

fn push_ref(func: FuncId, stmt: StmtId, r: &VarRef, out: &mut Vec<IndirectRef>) {
    if r.is_indirect() {
        out.push(IndirectRef {
            func,
            stmt,
            r: r.clone(),
        });
    }
}

fn push_op(func: FuncId, stmt: StmtId, op: &Operand, out: &mut Vec<IndirectRef>) {
    match op {
        Operand::Ref(r) | Operand::AddrOf(r) => push_ref(func, stmt, r, out),
        _ => {}
    }
}

fn collect_basic(func: FuncId, b: &BasicStmt, id: StmtId, out: &mut Vec<IndirectRef>) {
    match b {
        BasicStmt::Copy { lhs, rhs } => {
            push_ref(func, id, lhs, out);
            push_op(func, id, rhs, out);
        }
        BasicStmt::Unary { lhs, rhs, .. } => {
            push_ref(func, id, lhs, out);
            push_op(func, id, rhs, out);
        }
        BasicStmt::Binary { lhs, a, b, .. } => {
            push_ref(func, id, lhs, out);
            push_op(func, id, a, out);
            push_op(func, id, b, out);
        }
        BasicStmt::PtrArith { lhs, ptr, .. } => {
            push_ref(func, id, lhs, out);
            push_ref(func, id, ptr, out);
        }
        BasicStmt::Alloc { lhs, size } => {
            push_ref(func, id, lhs, out);
            push_op(func, id, size, out);
        }
        BasicStmt::Call {
            lhs, target, args, ..
        } => {
            if let Some(l) = lhs {
                push_ref(func, id, l, out);
            }
            if let CallTarget::Indirect(r) = target {
                push_ref(func, id, r, out);
            }
            for a in args {
                push_op(func, id, a, out);
            }
        }
        BasicStmt::Return(v) => {
            if let Some(v) = v {
                push_op(func, id, v, out);
            }
        }
    }
}

fn collect_cond(func: FuncId, c: &CondExpr, id: StmtId, out: &mut Vec<IndirectRef>) {
    for op in c.operands() {
        push_op(func, id, op, out);
    }
}

fn collect_stmt(func: FuncId, s: &Stmt, out: &mut Vec<IndirectRef>) {
    match s {
        Stmt::Basic(b, id) => collect_basic(func, b, *id, out),
        Stmt::Seq(v) => v.iter().for_each(|s| collect_stmt(func, s, out)),
        Stmt::If {
            cond,
            then_s,
            else_s,
            id,
        } => {
            collect_cond(func, cond, *id, out);
            collect_stmt(func, then_s, out);
            if let Some(e) = else_s {
                collect_stmt(func, e, out);
            }
        }
        Stmt::While {
            pre_cond,
            cond,
            body,
            id,
        } => {
            collect_stmt(func, pre_cond, out);
            collect_cond(func, cond, *id, out);
            collect_stmt(func, body, out);
        }
        Stmt::DoWhile {
            body,
            pre_cond,
            cond,
            id,
        } => {
            collect_stmt(func, body, out);
            collect_stmt(func, pre_cond, out);
            collect_cond(func, cond, *id, out);
        }
        Stmt::For {
            init,
            pre_cond,
            cond,
            step,
            body,
            id,
        } => {
            collect_stmt(func, init, out);
            collect_stmt(func, pre_cond, out);
            collect_cond(func, cond, *id, out);
            collect_stmt(func, step, out);
            collect_stmt(func, body, out);
        }
        Stmt::Switch {
            scrutinee,
            arms,
            id,
            ..
        } => {
            push_op(func, *id, scrutinee, out);
            for a in arms {
                collect_stmt(func, &a.body, out);
            }
        }
        Stmt::Break(_) | Stmt::Continue(_) => {}
    }
}

/// The points-to pairs a single indirect reference *uses*: the non-NULL
/// targets of its dereferenced pointer at its program point.
fn pairs_used(
    ir: &IrProgram,
    result: &mut AnalysisResult,
    occ: &IndirectRef,
    set: &PtSet,
) -> Vec<(LocId, LocId, Def)> {
    let VarRef::Deref { path, .. } = &occ.r else {
        return Vec::new();
    };
    let ptr_locs = {
        let mut env = RefEnv {
            ir,
            func: occ.func,
            locs: &mut result.locs,
        };
        env.path_locs(path)
    };
    let mut out = Vec::new();
    for (pl, _) in ptr_locs {
        for (t, d) in set.targets(pl) {
            if result.locs.is_null(t) {
                continue;
            }
            if !out.iter().any(|(a, b, _)| *a == pl && *b == t) {
                out.push((pl, t, d));
            }
        }
    }
    out
}

/// Table 3.
pub fn table3(name: &str, ir: &IrProgram, result: &mut AnalysisResult) -> Table3Row {
    let mut row = Table3Row {
        name: name.to_owned(),
        ..Default::default()
    };
    for occ in collect_indirect_refs(ir) {
        let set = result.at(occ.stmt);
        let pairs = pairs_used(ir, result, &occ, &set);
        row.ind_refs += 1;
        let array = occ.r.is_array_style();
        let bump = |slot: &mut (usize, usize)| {
            if array {
                slot.1 += 1;
            } else {
                slot.0 += 1;
            }
        };
        match pairs.len() {
            0 => row.zero += 1,
            1 => {
                if pairs[0].2 == Def::D {
                    bump(&mut row.one_d);
                    // Scalar replacement: definite single target that is
                    // nameable at the reference (not symbolic/summary).
                    let t = pairs[0].1;
                    if !result.locs.is_symbolic(t)
                        && !result.locs.is_heap(t)
                        && !result.locs.is_summary(t)
                        && !array
                    {
                        row.scalar_rep += 1;
                    }
                } else {
                    bump(&mut row.one_p);
                }
            }
            2 => bump(&mut row.two_p),
            3 => bump(&mut row.three_p),
            _ => bump(&mut row.four_p),
        }
        for (_, t, _) in &pairs {
            if result.locs.is_heap(*t) {
                row.to_heap += 1;
            } else {
                row.to_stack += 1;
            }
        }
    }
    row
}

fn loc_kind(
    result: &AnalysisResult,
    ir: &IrProgram,
    l: LocId,
) -> Option<fn(&mut KindCounts) -> &mut usize> {
    match result.locs.get(l).base {
        LocBase::Var(f, v) => {
            if (v.0 as usize) < ir.function(f).n_params {
                Some(|k| &mut k.fp)
            } else {
                Some(|k| &mut k.lo)
            }
        }
        LocBase::Global(_) | LocBase::StrLit => Some(|k| &mut k.gl),
        LocBase::Symbolic(..) => Some(|k| &mut k.sy),
        _ => None,
    }
}

/// Table 4.
pub fn table4(name: &str, ir: &IrProgram, result: &mut AnalysisResult) -> Table4Row {
    let mut row = Table4Row {
        name: name.to_owned(),
        ..Default::default()
    };
    for occ in collect_indirect_refs(ir) {
        let set = result.at(occ.stmt);
        let pairs = pairs_used(ir, result, &occ, &set);
        for (src, tgt, _) in pairs {
            if result.locs.is_heap(tgt) {
                continue; // Table 4 categorizes the To-Stack pairs
            }
            if let Some(sel) = loc_kind(result, ir, src) {
                *sel(&mut row.from) += 1;
            }
            if let Some(sel) = loc_kind(result, ir, tgt) {
                *sel(&mut row.to) += 1;
            }
        }
    }
    row
}

/// Table 5.
pub fn table5(name: &str, _ir: &IrProgram, result: &AnalysisResult) -> Table5Row {
    let mut row = Table5Row {
        name: name.to_owned(),
        ..Default::default()
    };
    for set in result.per_stmt.values() {
        row.points += 1;
        let mut here = 0usize;
        for (s, t, _) in set.iter() {
            if result.locs.is_null(t) {
                continue;
            }
            here += 1;
            match (result.locs.is_heap(s), result.locs.is_heap(t)) {
                (false, false) => row.stack_to_stack += 1,
                (false, true) => row.stack_to_heap += 1,
                (true, true) => row.heap_to_heap += 1,
                (true, false) => row.heap_to_stack += 1,
            }
        }
        row.max_per_stmt = row.max_per_stmt.max(here);
    }
    row
}

/// Table 6.
pub fn table6(name: &str, ir: &IrProgram, result: &AnalysisResult) -> Table6Row {
    let s = result.ig.stats();
    let mut called: Vec<FuncId> = result
        .ig
        .iter()
        .filter(|(_, n)| n.parent.is_some())
        .map(|(_, n)| n.func)
        .collect();
    called.sort_unstable();
    called.dedup();
    Table6Row {
        name: name.to_owned(),
        ig_nodes: s.nodes,
        call_sites: ir.call_sites.len(),
        functions: called.len(),
        recursive: s.recursive,
        approximate: s.approximate,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn analysed(src: &str) -> (IrProgram, AnalysisResult) {
        let ir = pta_simple::compile(src).expect("compile ok");
        let r = crate::analyze(&ir).expect("analysis ok");
        (ir, r)
    }

    #[test]
    fn table2_counts_lines_and_stmts() {
        let src = "int x;\nint main(void){ int *p; p = &x; return *p; }\n";
        let (ir, r) = analysed(src);
        let t2 = table2("t", src, &ir, &r);
        assert_eq!(t2.lines, 2);
        assert!(t2.simple_stmts >= 2);
        assert!(t2.max_vars >= t2.min_vars);
        assert!(t2.min_vars > 0);
    }

    #[test]
    fn table3_classifies_definite_single_target() {
        let (ir, mut r) = analysed("int x; int main(void){ int *p; p = &x; return *p; }");
        let t3 = table3("t", &ir, &mut r);
        assert_eq!(t3.ind_refs, 1);
        assert_eq!(t3.one_d, (1, 0));
        assert_eq!(t3.scalar_rep, 1);
        assert_eq!(t3.to_stack, 1);
        assert_eq!(t3.to_heap, 0);
        assert!((t3.avg() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn table3_classifies_two_possible_targets() {
        let (ir, mut r) = analysed(
            "int x, y, c; int main(void){ int *p; if (c) p = &x; else p = &y; return *p; }",
        );
        let t3 = table3("t", &ir, &mut r);
        assert_eq!(t3.two_p, (1, 0));
        assert_eq!(t3.scalar_rep, 0);
        assert_eq!(t3.tot(), 2);
    }

    #[test]
    fn table3_counts_heap_targets() {
        let (ir, mut r) = analysed("int main(void){ int *p; p = (int*) malloc(4); return *p; }");
        let t3 = table3("t", &ir, &mut r);
        assert_eq!(t3.to_heap, 1);
        assert_eq!(t3.one_p, (1, 0)); // single possible target (heap)
    }

    #[test]
    fn table3_null_single_target_is_possible() {
        let (ir, mut r) = analysed("int x, c; int main(void){ int *p; if (c) p = &x; return *p; }");
        let t3 = table3("t", &ir, &mut r);
        // p → {x possibly, null possibly} — counted as "1 P".
        assert_eq!(t3.one_p, (1, 0));
    }

    #[test]
    fn table4_classifies_sources_and_targets() {
        let (ir, mut r) = analysed(
            "int g;
             int f(int *p) { return *p; }
             int main(void){ return f(&g); }",
        );
        let t4 = table4("t", &ir, &mut r);
        // The deref of the formal p uses pair (p → g): from fp, to gl.
        assert_eq!(t4.from.fp, 1);
        assert_eq!(t4.to.gl, 1);
    }

    #[test]
    fn table4_symbolic_targets() {
        let (ir, mut r) = analysed(
            "void f(int **pp) { int *t; t = *pp; }
             int main(void){ int x; int *q; q = &x; f(&q); return 0; }",
        );
        let t4 = table4("t", &ir, &mut r);
        assert!(t4.to.sy >= 1, "expected symbolic targets, got {t4:?}");
    }

    #[test]
    fn table5_sums_pairs_over_points() {
        let (ir, r) = analysed("int x; int main(void){ int *p; p = &x; return *p; }");
        let t5 = table5("t", &ir, &r);
        assert!(t5.points >= 2);
        assert!(t5.stack_to_stack >= 1);
        assert_eq!(t5.heap_to_stack, 0);
        assert!(t5.max_per_stmt >= 1);
    }

    #[test]
    fn table6_matches_ig() {
        let (ir, r) = analysed(
            "int f(void){ return 1; }
             int g(void){ return f(); }
             int main(void){ g(); g(); return 0; }",
        );
        let t6 = table6("t", &ir, &r);
        assert_eq!(t6.ig_nodes, 5);
        // Call sites: g() twice in main, f() once in g.
        assert_eq!(t6.call_sites, 3);
        assert_eq!(t6.functions, 2);
        assert!((t6.avg_per_call_site() - 4.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn compute_produces_all_tables() {
        let src = "int x; int main(void){ int *p; p = &x; return *p; }";
        let (ir, mut r) = analysed(src);
        let all = compute("tiny", src, &ir, &mut r);
        assert_eq!(all.t2.name, "tiny");
        assert_eq!(all.t3.ind_refs, 1);
        assert_eq!(all.t6.ig_nodes, 1);
    }
}
