//! Round-trip tests for the location interner and property tests that
//! the packed, `LocId`-indexed points-to set operations agree with a
//! structural reference model of the paper's semantics (Definition 3.3
//! merge, kill/change/gen, subset ordering).

use pta_core::{Def, LocBase, LocId, LocationTable, Proj, PtSet};
use std::collections::BTreeMap;

fn ir() -> pta_simple::IrProgram {
    pta_simple::compile(
        "struct inner { int *ip; int ia[4]; };
         struct outer { struct inner in; int *op; struct inner arr[3]; };
         struct outer go;
         int garr[8];
         int *gp;
         int f1(int *p) { return *p; }
         int main(void) { int x; int *q; q = &x; return f1(q); }",
    )
    .expect("test program compiles")
}

fn func(ir: &pta_simple::IrProgram, name: &str) -> pta_cfront::ast::FuncId {
    ir.function_by_name(name).expect("function exists").0
}

// ---------------------------------------------------------------------
// Interner round trips: every location shape maps to one dense id, and
// the id maps back to exactly the data that created it.
// ---------------------------------------------------------------------

#[test]
fn round_trips_roots() {
    let ir = ir();
    let mut t = LocationTable::new();
    let main = func(&ir, "main");
    let f1 = func(&ir, "f1");

    let shapes = [
        t.global(&ir, pta_cfront::ast::GlobalId(0)),
        t.global(&ir, pta_cfront::ast::GlobalId(1)),
        t.global(&ir, pta_cfront::ast::GlobalId(2)),
        t.var(&ir, main, pta_simple::IrVarId(0)),
        t.var(&ir, f1, pta_simple::IrVarId(0)),
        t.heap(),
        t.heap_site(7),
        t.null(),
        t.strlit(),
        t.function(&ir, f1),
        t.ret(&ir, f1),
    ];
    // Dense, distinct, and stable under re-interning.
    for (i, &id) in shapes.iter().enumerate() {
        assert_eq!(id, LocId(i as u32), "ids assigned densely in intern order");
        let d = t.get(id).clone();
        assert_eq!(
            t.lookup(&d.base, &d.projs),
            Some(id),
            "lookup({}) round-trips",
            t.name(id)
        );
    }
    assert_eq!(t.len(), shapes.len());
    // Re-interning every shape is a no-op.
    assert_eq!(t.global(&ir, pta_cfront::ast::GlobalId(0)), shapes[0]);
    assert_eq!(t.heap_site(7), shapes[6]);
    assert_eq!(t.ret(&ir, f1), shapes[10]);
    assert_eq!(t.len(), shapes.len());
}

#[test]
fn round_trips_field_chains() {
    let ir = ir();
    let mut t = LocationTable::new();
    let go = t.global(&ir, pta_cfront::ast::GlobalId(0));

    // go.in.ip — a two-level field chain.
    let inner = t.project(go, Proj::Field("in".into()), &ir).expect("go.in");
    let ip = t
        .project(inner, Proj::Field("ip".into()), &ir)
        .expect("go.in.ip");
    assert_eq!(t.name(ip), "go.in.ip");
    let d = t.get(ip).clone();
    assert_eq!(
        d.projs,
        vec![Proj::Field("in".into()), Proj::Field("ip".into())]
    );
    assert_eq!(t.lookup(&d.base, &d.projs), Some(ip));
    // The same chain re-projected hits the same id.
    let inner2 = t.project(go, Proj::Field("in".into()), &ir).unwrap();
    assert_eq!(t.project(inner2, Proj::Field("ip".into()), &ir), Some(ip));
}

#[test]
fn round_trips_head_tail_and_mixed_chains() {
    let ir = ir();
    let mut t = LocationTable::new();
    let go = t.global(&ir, pta_cfront::ast::GlobalId(0));
    let garr = t.global(&ir, pta_cfront::ast::GlobalId(1));

    let head = t.project(garr, Proj::Head, &ir).expect("garr[0]");
    let tail = t.project(garr, Proj::Tail, &ir).expect("garr[1..]");
    assert_ne!(head, tail);
    assert!(!t.is_summary(head));
    assert!(t.is_summary(tail), "array tails are summaries");

    // go.arr[1..].ia[0] — field → tail → field → head.
    let arr = t.project(go, Proj::Field("arr".into()), &ir).unwrap();
    let at = t.project(arr, Proj::Tail, &ir).unwrap();
    let ia = t.project(at, Proj::Field("ia".into()), &ir).unwrap();
    let iah = t.project(ia, Proj::Head, &ir).unwrap();
    assert_eq!(t.name(iah), "go.arr[1..].ia[0]");
    assert!(t.is_summary(iah), "anything under a tail stays a summary");
    let d = t.get(iah).clone();
    assert_eq!(
        d.projs,
        vec![
            Proj::Field("arr".into()),
            Proj::Tail,
            Proj::Field("ia".into()),
            Proj::Head,
        ]
    );
    assert_eq!(t.lookup(&d.base, &d.projs), Some(iah));
}

#[test]
fn round_trips_symbolic_names_and_k_limited_chains() {
    let ir = ir();
    let mut t = LocationTable::new();
    let main = func(&ir, "main");
    let f1 = func(&ir, "f1");
    let int_ty = Some(pta_cfront::types::Type::Int);

    // The k-limited chain of symbolic names the map process creates:
    // 1_x, 2_x, 3_x — one per indirection depth.
    let mut chain = Vec::new();
    for depth in 1..=3u32 {
        let name = format!("{depth}_x");
        let s = t.symbolic(f1, &name, depth, int_ty.clone());
        assert_eq!(
            t.symbolic(f1, &name, depth, int_ty.clone()),
            s,
            "symbolic interning idempotent"
        );
        let sd = t.symbolic_data(s).expect("symbolic metadata");
        assert_eq!(sd.depth, depth);
        assert_eq!(sd.name, name);
        assert_eq!(sd.func, f1);
        assert!(t.is_symbolic(s));
        assert!(t.is_scoped_to(s, f1));
        assert!(!t.is_scoped_to(s, main));
        chain.push(s);
    }
    assert_eq!(chain.len(), 3);
    assert!(chain[0] != chain[1] && chain[1] != chain[2]);

    // Same printable name in a different scope is a different location.
    let other = t.symbolic(main, "1_x", 1, int_ty);
    assert_ne!(other, chain[0]);

    // Each symbolic id round-trips through lookup on its interned base.
    for &s in &chain {
        let d = t.get(s).clone();
        assert!(matches!(d.base, LocBase::Symbolic(fid, _) if fid == f1));
        assert_eq!(t.lookup(&d.base, &d.projs), Some(s));
    }
}

#[test]
fn classification_flags_match_shapes() {
    let ir = ir();
    let mut t = LocationTable::new();
    let f1 = func(&ir, "f1");
    let h = t.heap();
    let hs = t.heap_site(0);
    let n = t.null();
    let sl = t.strlit();
    let fl = t.function(&ir, f1);
    assert!(t.is_heap(h) && t.is_summary(h));
    assert!(t.is_heap(hs) && t.is_summary(hs));
    assert!(t.is_null(n) && !t.is_summary(n));
    assert!(t.is_summary(sl) && !t.is_heap(sl));
    assert!(t.is_function(fl) && t.as_function(fl) == Some(f1));
}

#[test]
fn prop_random_intern_sequences_are_consistent() {
    // Interleave interning of a fixed pool of shapes in random orders;
    // a structural reference map must always agree with the table.
    let ir = ir();
    pta_prop::check("interner agrees with a structural map", 64, |g| {
        let mut t = LocationTable::new();
        let go = t.global(&ir, pta_cfront::ast::GlobalId(0));
        let garr = t.global(&ir, pta_cfront::ast::GlobalId(1));
        let mut model: BTreeMap<(LocBase, Vec<Proj>), LocId> = BTreeMap::new();
        for root in [go, garr] {
            let d = t.get(root).clone();
            model.insert((d.base, d.projs), root);
        }
        let fields = ["in", "op", "arr", "ip", "ia"];
        for _ in 0..g.usize(5..60) {
            // Pick a random known location and try a random projection.
            let &start = g.pick(&model.values().copied().collect::<Vec<_>>());
            let proj = match g.usize(0..3) {
                0 => Proj::Field((*g.pick(&fields)).to_owned()),
                1 => Proj::Head,
                _ => Proj::Tail,
            };
            if let Some(id) = t.project(start, proj, &ir) {
                let d = t.get(id).clone();
                let prev = model.insert((d.base.clone(), d.projs.clone()), id);
                if let Some(p) = prev {
                    assert_eq!(p, id, "re-interning {:?} changed its id", d.name);
                }
                assert_eq!(t.lookup(&d.base, &d.projs), Some(id));
            }
        }
        // Table size equals the number of structurally-distinct shapes.
        assert_eq!(t.len(), model.len());
    });
}

// ---------------------------------------------------------------------
// Packed PtSet vs a structural reference model.
// ---------------------------------------------------------------------

/// The reference model: the old structural representation — a sorted map
/// keyed by `(src, tgt)` holding the definiteness.
type Model = BTreeMap<(u32, u32), Def>;

fn model_insert(m: &mut Model, s: u32, t: u32, d: Def) {
    let e = m.entry((s, t)).or_insert(d);
    if d == Def::D {
        *e = Def::D;
    }
}

fn model_insert_weak(m: &mut Model, s: u32, t: u32, d: Def) {
    match m.get_mut(&(s, t)) {
        Some(e) if *e != d => *e = Def::P,
        Some(_) => {}
        None => {
            m.insert((s, t), d);
        }
    }
}

fn model_kill(m: &mut Model, s: u32) {
    m.retain(|&(src, _), _| src != s);
}

fn model_demote(m: &mut Model, s: u32) {
    for (&(src, _), d) in m.iter_mut() {
        if src == s {
            *d = Def::P;
        }
    }
}

/// Definition 3.3: D ∧ D = D; a pair on one side only, or P on either,
/// is P.
fn model_merge(a: &Model, b: &Model) -> Model {
    let mut out = Model::new();
    for (&k, &da) in a {
        let d = match b.get(&k) {
            Some(&Def::D) if da == Def::D => Def::D,
            _ => Def::P,
        };
        out.insert(k, d);
    }
    for &k in b.keys() {
        out.entry(k).or_insert(Def::P);
    }
    out
}

/// `a ⊑ b`: every pair of `a` appears in `b`, and `b` may not claim D
/// where `a` only has P (P generalizes D, not the other way around).
fn model_subset(a: &Model, b: &Model) -> bool {
    a.iter().all(|(k, &da)| match b.get(k) {
        Some(&db) => !(da == Def::P && db == Def::D),
        None => false,
    })
}

fn to_model(s: &PtSet) -> Model {
    s.iter().map(|(a, b, d)| ((a.0, b.0), d)).collect()
}

fn random_set(g: &mut pta_prop::Rng, n_ops: usize, ids: u32) -> (PtSet, Model) {
    let mut s = PtSet::new();
    let mut m = Model::new();
    for _ in 0..n_ops {
        let a = g.u32(0..ids);
        let b = g.u32(0..ids);
        let d = if g.ratio(1, 2) { Def::D } else { Def::P };
        if g.ratio(1, 2) {
            s.insert(LocId(a), LocId(b), d);
            model_insert(&mut m, a, b, d);
        } else {
            s.insert_weak(LocId(a), LocId(b), d);
            model_insert_weak(&mut m, a, b, d);
        }
    }
    (s, m)
}

#[test]
fn prop_gen_kill_demote_agree_with_structural_model() {
    pta_prop::check("gen/kill/demote agree with the model", 256, |g| {
        let ids = g.u32(2..10);
        let mut s = PtSet::new();
        let mut m = Model::new();
        for _ in 0..g.usize(1..80) {
            let a = g.u32(0..ids);
            let b = g.u32(0..ids);
            let d = if g.ratio(1, 2) { Def::D } else { Def::P };
            match g.usize(0..5) {
                0 => {
                    s.insert(LocId(a), LocId(b), d);
                    model_insert(&mut m, a, b, d);
                }
                1 => {
                    s.insert_weak(LocId(a), LocId(b), d);
                    model_insert_weak(&mut m, a, b, d);
                }
                2 => {
                    s.kill_from(LocId(a));
                    model_kill(&mut m, a);
                }
                3 => {
                    s.demote_from(LocId(a));
                    model_demote(&mut m, a);
                }
                _ => {
                    s.remove(LocId(a), LocId(b));
                    m.remove(&(a, b));
                }
            }
            assert_eq!(to_model(&s), m);
            assert_eq!(s.len(), m.len());
        }
    });
}

#[test]
fn prop_merge_agrees_with_definition_3_3() {
    pta_prop::check("merge agrees with Definition 3.3", 256, |g| {
        let ids = g.u32(2..10);
        let (na, nb) = (g.usize(0..40), g.usize(0..40));
        let (a, ma) = random_set(g, na, ids);
        let (b, mb) = random_set(g, nb, ids);
        let merged = a.merge(&b);
        assert_eq!(to_model(&merged), model_merge(&ma, &mb));
        // Merge is symmetric and an upper bound of both inputs.
        assert_eq!(merged, b.merge(&a));
        assert!(a.subset_of(&merged), "a ⊑ a∨b");
        assert!(b.subset_of(&merged), "b ⊑ a∨b");
    });
}

#[test]
fn prop_subset_agrees_with_structural_model() {
    pta_prop::check("subset_of agrees with the model", 256, |g| {
        let ids = g.u32(2..8);
        let (na, nb) = (g.usize(0..25), g.usize(0..25));
        let (a, ma) = random_set(g, na, ids);
        let (b, mb) = random_set(g, nb, ids);
        assert_eq!(a.subset_of(&b), model_subset(&ma, &mb));
        assert!(a.subset_of(&a), "reflexive");
    });
}

#[test]
fn prop_demote_models_unmap_definiteness_degradation() {
    // The unmap process weakens facts through multi-representative
    // symbolic names via demote: keys never change, definiteness only
    // ever goes down, and the result is generalized by the original.
    pta_prop::check("demote degrades definiteness monotonically", 256, |g| {
        let ids = g.u32(2..10);
        let n = g.usize(1..40);
        let (mut s, m) = random_set(g, n, ids);
        let before = to_model(&s);
        assert_eq!(before, m);
        let victim = g.u32(0..ids);
        s.demote_from(LocId(victim));
        let after = to_model(&s);
        assert_eq!(
            before.len(),
            after.len(),
            "demote never changes the key set"
        );
        for (k, d_after) in &after {
            let d_before = before[k];
            if k.0 == victim {
                assert_eq!(*d_after, Def::P);
            } else {
                assert_eq!(*d_after, d_before);
            }
        }
        // Degraded facts are generalized by the originals: old ⊑ new.
        let orig: PtSet = before
            .iter()
            .map(|(&(a, b), &d)| (LocId(a), LocId(b), d))
            .collect();
        assert!(orig.subset_of(&s));
    });
}
