//! End-to-end tests of the context-sensitive points-to analysis:
//! C source in, points-to facts out.

use pta_core::{run_source, Def};

fn pta(src: &str) -> pta_core::Pta {
    run_source(src).expect("analysis ok")
}

fn d(name: &str) -> (String, Def) {
    (name.to_owned(), Def::D)
}

fn p(name: &str) -> (String, Def) {
    (name.to_owned(), Def::P)
}

// ---------------------------------------------------------------------
// Basic statement rules (Figure 1)
// ---------------------------------------------------------------------

#[test]
fn address_of_creates_definite_pair() {
    let t = pta("int x; int main(void){ int *p; p = &x; return *p; }");
    assert_eq!(t.exit_targets_of("main", "p"), vec![d("x")]);
}

#[test]
fn reassignment_kills_previous_target() {
    let t = pta("int x, y; int main(void){ int *p; p = &x; p = &y; return *p; }");
    assert_eq!(t.exit_targets_of("main", "p"), vec![d("y")]);
}

#[test]
fn copy_propagates_targets() {
    let t = pta("int x; int main(void){ int *p; int *q; p = &x; q = p; return *q; }");
    assert_eq!(t.exit_targets_of("main", "q"), vec![d("x")]);
}

#[test]
fn if_merge_makes_targets_possible() {
    let t = pta("int x, y, c;
         int main(void){ int *p; if (c) p = &x; else p = &y; return *p; }");
    assert_eq!(t.exit_targets_of("main", "p"), vec![p("x"), p("y")]);
}

#[test]
fn if_without_else_keeps_old_target_possible() {
    let t = pta("int x, y, c; int main(void){ int *p; p = &x; if (c) p = &y; return *p; }");
    assert_eq!(t.exit_targets_of("main", "p"), vec![p("x"), p("y")]);
}

#[test]
fn same_assignment_on_both_branches_stays_definite() {
    let t = pta("int x, c; int main(void){ int *p; if (c) p = &x; else p = &x; return *p; }");
    assert_eq!(t.exit_targets_of("main", "p"), vec![d("x")]);
}

#[test]
fn indirect_assignment_with_definite_pointer_strongly_updates() {
    // *pp = &y with pp definitely pointing to p kills p's old target.
    let t = pta("int x, y;
         int main(void){ int *p; int **pp; p = &x; pp = &p; *pp = &y; return *p; }");
    assert_eq!(t.exit_targets_of("main", "p"), vec![d("y")]);
}

#[test]
fn indirect_assignment_with_possible_pointer_weakly_updates() {
    let t = pta("int x, y, z, c;
         int main(void){ int *p; int *q; int **pp; p = &x; q = &y;
           if (c) pp = &p; else pp = &q;
           *pp = &z; return *p; }");
    // p may still point to x, or may have been updated to z.
    assert_eq!(t.exit_targets_of("main", "p"), vec![p("x"), p("z")]);
    assert_eq!(t.exit_targets_of("main", "q"), vec![p("y"), p("z")]);
}

#[test]
fn two_hop_read_composes_definiteness() {
    let t = pta("int x;
         int main(void){ int *p; int **pp; int *r; p = &x; pp = &p; r = *pp; return *r; }");
    assert_eq!(t.exit_targets_of("main", "r"), vec![d("x")]);
}

#[test]
fn while_loop_reaches_fixed_point() {
    let t = pta("int x, y, n;
         int main(void){ int *p; p = &x; while (n) { p = &y; } return *p; }");
    assert_eq!(t.exit_targets_of("main", "p"), vec![p("x"), p("y")]);
}

#[test]
fn loop_invariant_assignment_stays_definite_after_loop() {
    let t = pta("int x, n; int main(void){ int *p; p = &x; while (n) { n--; } return *p; }");
    assert_eq!(t.exit_targets_of("main", "p"), vec![d("x")]);
}

#[test]
fn for_loop_pointer_walk() {
    let t = pta(
        "int a[10];
         int main(void){ int *p; int i; for (i = 0, p = a; i < 10; i++) { p = p + 1; } return *p; }",
    );
    let targets = t.exit_targets_of("main", "p");
    assert!(targets.contains(&p("a[0]")), "got {targets:?}");
    assert!(targets.contains(&p("a[1..]")), "got {targets:?}");
}

#[test]
fn do_while_executes_body_at_least_once() {
    let t = pta("int x; int main(void){ int *p; do { p = &x; } while (0); return *p; }");
    assert_eq!(t.exit_targets_of("main", "p"), vec![d("x")]);
}

#[test]
fn switch_merges_all_arms() {
    let t = pta("int x, y, z, c;
         int main(void){ int *p;
           switch (c) { case 1: p = &x; break; case 2: p = &y; break; default: p = &z; }
           return *p; }");
    assert_eq!(t.exit_targets_of("main", "p"), vec![p("x"), p("y"), p("z")]);
}

#[test]
fn switch_without_default_keeps_input_path() {
    let t = pta("int x, y, c;
         int main(void){ int *p; p = &x;
           switch (c) { case 1: p = &y; break; }
           return *p; }");
    assert_eq!(t.exit_targets_of("main", "p"), vec![p("x"), p("y")]);
}

#[test]
fn switch_fallthrough_chains_arms() {
    let t = pta("int x, y, c;
         int main(void){ int *p; int *q;
           switch (c) { case 1: p = &x; case 2: q = p; break; default: q = &y; }
           return 0; }");
    // q can get p's value (x after arm 1 falls through, or null) or &y.
    let targets = t.exit_targets_of("main", "q");
    assert!(targets.contains(&p("x")), "got {targets:?}");
    assert!(targets.contains(&p("y")), "got {targets:?}");
}

#[test]
fn break_merges_loop_exit_state() {
    let t = pta("int x, y, n;
         int main(void){ int *p; p = &x;
           while (1) { if (n) { p = &y; break; } n++; }
           return *p; }");
    assert_eq!(t.exit_targets_of("main", "p"), vec![p("x"), p("y")]);
}

#[test]
fn continue_merges_into_loop_head() {
    let t = pta("int x, y, n;
         int main(void){ int *p; int i; p = &x;
           for (i = 0; i < n; i++) { if (i == 2) { p = &y; continue; } p = &x; }
           return *p; }");
    assert_eq!(t.exit_targets_of("main", "p"), vec![p("x"), p("y")]);
}

// ---------------------------------------------------------------------
// Arrays and the head/tail abstraction
// ---------------------------------------------------------------------

#[test]
fn array_head_and_tail_are_distinguished() {
    let t = pta("int a[10];
         int main(void){ int *p; int *q; p = &a[0]; q = &a[5]; return *p + *q; }");
    assert_eq!(t.exit_targets_of("main", "p"), vec![d("a[0]")]);
    assert_eq!(t.exit_targets_of("main", "q"), vec![d("a[1..]")]);
}

#[test]
fn unknown_index_yields_both_possibly() {
    let t = pta("int a[10], i; int main(void){ int *p; p = &a[i]; return *p; }");
    assert_eq!(t.exit_targets_of("main", "p"), vec![p("a[0]"), p("a[1..]")]);
}

#[test]
fn array_tail_updates_are_weak() {
    // Storing into a[1] then a[2] must keep both pointers (a_tail is a
    // summary location).
    let t = pta("int x, y; int *a[8];
         int main(void){ a[1] = &x; a[2] = &y; return 0; }");
    let tail_targets = t.exit_targets_of("main", "a[1..]");
    assert!(tail_targets.contains(&p("x")), "got {tail_targets:?}");
    assert!(tail_targets.contains(&p("y")), "got {tail_targets:?}");
}

#[test]
fn array_head_update_is_strong() {
    let t = pta("int x, y; int *a[8]; int main(void){ a[0] = &x; a[0] = &y; return 0; }");
    assert_eq!(t.exit_targets_of("main", "a[0]"), vec![d("y")]);
}

#[test]
fn pointer_increment_moves_head_to_tail() {
    let t = pta("int a[10]; int main(void){ int *p; p = a; p++; return *p; }");
    assert_eq!(t.exit_targets_of("main", "p"), vec![d("a[1..]")]);
}

// ---------------------------------------------------------------------
// Structs
// ---------------------------------------------------------------------

#[test]
fn struct_fields_are_separate_locations() {
    let t = pta("struct pair { int *a; int *b; };
         int x, y;
         int main(void){ struct pair s; s.a = &x; s.b = &y; return *s.a; }");
    assert_eq!(t.exit_targets_of("main", "s.a"), vec![d("x")]);
    assert_eq!(t.exit_targets_of("main", "s.b"), vec![d("y")]);
}

#[test]
fn struct_copy_transfers_fields() {
    let t = pta("struct pair { int *a; int *b; };
         int x, y;
         int main(void){ struct pair s; struct pair t; s.a = &x; s.b = &y; t = s; return *t.a; }");
    assert_eq!(t.exit_targets_of("main", "t.a"), vec![d("x")]);
    assert_eq!(t.exit_targets_of("main", "t.b"), vec![d("y")]);
}

#[test]
fn field_write_through_pointer() {
    let t = pta("struct node { int v; struct node *next; };
         int main(void){ struct node a; struct node b; struct node *p;
           p = &a; p->next = &b; return 0; }");
    assert_eq!(t.exit_targets_of("main", "a.next"), vec![d("b")]);
}

// ---------------------------------------------------------------------
// Heap
// ---------------------------------------------------------------------

#[test]
fn malloc_points_to_heap_possibly() {
    let t = pta("int main(void){ int *q; q = (int*) malloc(4); return *q; }");
    assert_eq!(t.exit_targets_of("main", "q"), vec![p("heap")]);
}

#[test]
fn heap_to_heap_links() {
    let t = pta("struct node { struct node *next; };
         int main(void){ struct node *a; struct node *b;
           a = (struct node*) malloc(8); b = (struct node*) malloc(8);
           a->next = b; return 0; }");
    // heap points to heap (weak).
    let heap_targets = t.exit_targets_of("main", "heap");
    assert_eq!(heap_targets, vec![p("heap")]);
}

#[test]
fn heap_updates_are_always_weak() {
    let t = pta("int x, y;
         int main(void){ int **h; h = (int**) malloc(8); *h = &x; *h = &y; return 0; }");
    let heap_targets = t.exit_targets_of("main", "heap");
    assert!(heap_targets.contains(&p("x")), "got {heap_targets:?}");
    assert!(heap_targets.contains(&p("y")), "got {heap_targets:?}");
}

// ---------------------------------------------------------------------
// Interprocedural: map/unmap, invisible variables
// ---------------------------------------------------------------------

#[test]
fn callee_effect_through_parameter_returns_to_caller() {
    let t = pta("int x;
         void set(int **p) { *p = &x; }
         int main(void){ int *q; set(&q); return *q; }");
    assert_eq!(t.exit_targets_of("main", "q"), vec![d("x")]);
}

#[test]
fn two_call_sites_stay_separate() {
    // The classic context-sensitivity test: information from one call
    // site must not pollute the other.
    let t = pta("int x, y;
         void set(int **p, int *v) { *p = v; }
         int main(void){ int *a; int *b; set(&a, &x); set(&b, &y); return *a + *b; }");
    assert_eq!(t.exit_targets_of("main", "a"), vec![d("x")]);
    assert_eq!(t.exit_targets_of("main", "b"), vec![d("y")]);
}

#[test]
fn globals_updated_by_callee() {
    let t = pta("int x; int *g;
         void setg(void) { g = &x; }
         int main(void){ setg(); return *g; }");
    assert_eq!(t.exit_targets_of("main", "g"), vec![d("x")]);
}

#[test]
fn global_pointer_to_local_becomes_symbolic_in_callee() {
    let t = pta("int *g; int x;
         void reader(void) { int *t; t = g; }
         int main(void){ int y; g = &y; reader(); g = &x; return 0; }");
    assert_eq!(t.exit_targets_of("main", "g"), vec![d("x")]);
}

#[test]
fn return_value_pointer() {
    let t = pta("int x;
         int *give(void) { return &x; }
         int main(void){ int *p; p = give(); return *p; }");
    assert_eq!(t.exit_targets_of("main", "p"), vec![d("x")]);
}

#[test]
fn return_value_conditional_is_possible() {
    let t = pta("int x, y, c;
         int *pick(void) { if (c) return &x; return &y; }
         int main(void){ int *p; p = pick(); return *p; }");
    assert_eq!(t.exit_targets_of("main", "p"), vec![p("x"), p("y")]);
}

#[test]
fn struct_return_transfers_fields() {
    let t = pta("struct pair { int *a; int *b; };
         int x, y;
         struct pair make(void) { struct pair s; s.a = &x; s.b = &y; return s; }
         int main(void){ struct pair t; t = make(); return *t.a; }");
    assert_eq!(t.exit_targets_of("main", "t.a"), vec![d("x")]);
    assert_eq!(t.exit_targets_of("main", "t.b"), vec![d("y")]);
}

#[test]
fn multi_level_mapping_through_two_calls() {
    let t = pta("int x;
         void inner(int **pp) { *pp = &x; }
         void outer(int **pp) { inner(pp); }
         int main(void){ int *q; outer(&q); return *q; }");
    assert_eq!(t.exit_targets_of("main", "q"), vec![d("x")]);
}

#[test]
fn three_level_pointers_across_call() {
    let t = pta("int x;
         void deep(int ***ppp) { **ppp = &x; }
         int main(void){ int *q; int **qq; qq = &q; deep(&qq); return *q; }");
    assert_eq!(t.exit_targets_of("main", "q"), vec![d("x")]);
}

#[test]
fn callee_cannot_change_actual_itself() {
    // Pass-by-value: assigning the formal does not change the actual.
    let t = pta("int x, y;
         void f(int *p) { p = &y; }
         int main(void){ int *q; q = &x; f(q); return *q; }");
    assert_eq!(t.exit_targets_of("main", "q"), vec![d("x")]);
}

#[test]
fn local_address_escaping_is_dropped_with_warning() {
    let t = pta("int *bad(void) { int local; return &local; }
         int main(void){ int *p; p = bad(); return 0; }");
    assert_eq!(t.exit_targets_of("main", "p"), vec![]);
    assert!(t.result.warnings.iter().any(|w| w.contains("escapes")));
}

#[test]
fn unreachable_code_after_exit() {
    let t = pta("int x, y;
         int main(void){ int *p; p = &x; exit(1); p = &y; return *p; }");
    // The exit set is bottom → empty.
    assert!(t.result.exit_set.is_empty());
}

#[test]
fn strcpy_returns_first_argument() {
    let t = pta("int main(void){ char buf[64]; char *r; r = strcpy(buf, \"hi\"); return 0; }");
    assert_eq!(t.exit_targets_of("main", "r"), vec![d("buf[0]")]);
}

// ---------------------------------------------------------------------
// Recursion (Figure 4)
// ---------------------------------------------------------------------

#[test]
fn simple_recursion_terminates_and_is_sound() {
    let t = pta("int x, y;
         void walk(int **pp, int n) { if (n) { *pp = &y; walk(pp, n - 1); } }
         int main(void){ int *p; p = &x; walk(&p, 3); return *p; }");
    let targets = t.exit_targets_of("main", "p");
    assert!(targets.contains(&p("x")) || targets.contains(&d("x")) || !targets.is_empty());
    assert!(targets.iter().any(|(n, _)| n == "y"), "got {targets:?}");
    let s = t.result.ig.stats();
    assert_eq!(s.recursive, 1);
    assert_eq!(s.approximate, 1);
}

#[test]
fn mutual_recursion_converges() {
    let t = pta("int x, y;
         void b(int **pp, int n);
         void a(int **pp, int n) { *pp = &x; if (n) b(pp, n - 1); }
         void b(int **pp, int n) { *pp = &y; if (n) a(pp, n - 1); }
         int main(void){ int *p; a(&p, 5); return *p; }");
    let targets = t.exit_targets_of("main", "p");
    assert!(targets.iter().any(|(n, _)| n == "x"), "got {targets:?}");
    assert!(targets.iter().any(|(n, _)| n == "y"), "got {targets:?}");
    let s = t.result.ig.stats();
    assert!(s.recursive >= 1);
    assert!(s.approximate >= 1);
}

#[test]
fn recursive_list_walk_over_heap() {
    let t = pta("struct node { struct node *next; int v; };
         struct node *find(struct node *l, int k) {
            if (l == 0) return 0;
            if (l->v == k) return l;
            return find(l->next, k);
         }
         int main(void){ struct node *head; struct node *r;
            head = (struct node*) malloc(16);
            head->next = (struct node*) malloc(16);
            r = find(head, 3);
            return 0; }");
    assert_eq!(t.exit_targets_of("main", "r"), vec![p("heap")]);
}

// ---------------------------------------------------------------------
// Function pointers (§5, Figures 5–7)
// ---------------------------------------------------------------------

#[test]
fn simple_function_pointer_call() {
    let t = pta("int x; int *gp;
         void set(void) { gp = &x; }
         int main(void){ void (*fp)(void); fp = set; fp(); return *gp; }");
    assert_eq!(t.exit_targets_of("main", "gp"), vec![d("x")]);
}

#[test]
fn function_pointer_targets_tracked() {
    let t = pta("int f1(void){ return 1; }
         int f2(void){ return 2; }
         int c;
         int main(void){ int (*fp)(void); if (c) fp = f1; else fp = f2; return fp(); }");
    assert_eq!(t.exit_targets_of("main", "fp"), vec![p("f1"), p("f2")]);
}

#[test]
fn figure6_example_reproduced() {
    // The exact program of Figure 6 of the paper.
    let t = pta("int a,b,c;
         int *pa,*pb,*pc;
         int (*fp)();
         int cond;
         int bar();
         int foo() {
           pa = &a;
           if (cond)
             fp();
           /* Point C */
           return 0;
         }
         int bar() {
           pb = &b;
           /* Point D */
           return 0;
         }
         int main() {
           pc = &c;
           if (cond)
             fp = foo;
           else
             fp = bar;
           /* Point A */
           fp();
           /* Point B */
           return 0;
         }");
    // Point A: state before the indirect call in main.
    let call = t
        .find_stmt("main", "(*fp)", 0)
        .expect("indirect call found");
    let at_a = t.pairs_at(call);
    assert!(
        at_a.contains(&("fp".into(), "foo".into(), Def::P)),
        "A: {at_a:?}"
    );
    assert!(
        at_a.contains(&("fp".into(), "bar".into(), Def::P)),
        "A: {at_a:?}"
    );
    assert!(
        at_a.contains(&("pc".into(), "c".into(), Def::D)),
        "A: {at_a:?}"
    );
    // Point B: after the call (exit of main).
    let b_pairs: Vec<(String, Def)> = t.exit_targets_of("main", "pa");
    assert_eq!(b_pairs, vec![p("a")]);
    assert_eq!(t.exit_targets_of("main", "pb"), vec![p("b")]);
    assert_eq!(t.exit_targets_of("main", "pc"), vec![d("c")]);
    assert_eq!(t.exit_targets_of("main", "fp"), vec![p("bar"), p("foo")]);
    // Point C: inside foo, fp definitely points to foo and pa to a.
    let point_c = t.find_stmt("foo", "return", 0).expect("return in foo");
    let at_c = t.pairs_at(point_c);
    assert!(
        at_c.contains(&("fp".into(), "foo".into(), Def::D)),
        "C: {at_c:?}"
    );
    assert!(
        at_c.contains(&("pa".into(), "a".into(), Def::D)),
        "C: {at_c:?}"
    );
    assert!(
        at_c.contains(&("pc".into(), "c".into(), Def::D)),
        "C: {at_c:?}"
    );
    // Point D: inside bar.
    let point_d = t.find_stmt("bar", "return", 0).expect("return in bar");
    let at_d = t.pairs_at(point_d);
    assert!(
        at_d.contains(&("fp".into(), "bar".into(), Def::D)),
        "D: {at_d:?}"
    );
    assert!(
        at_d.contains(&("pb".into(), "b".into(), Def::D)),
        "D: {at_d:?}"
    );
    // The indirect call inside foo makes the chain main→foo→foo
    // recursive (Figure 7(c)).
    let s = t.result.ig.stats();
    assert!(s.recursive >= 1, "ig: {s:?}");
    assert!(s.approximate >= 1, "ig: {s:?}");
}

#[test]
fn function_pointer_array_dispatch() {
    let t = pta("int x1, x2; int *g;
         void h1(void){ g = &x1; }
         void h2(void){ g = &x2; }
         void (*table[2])(void) = { h1, h2 };
         int i;
         int main(void){ void (*fp)(void); fp = table[i]; fp(); return 0; }");
    let targets = t.exit_targets_of("main", "g");
    assert_eq!(targets, vec![p("x1"), p("x2")]);
}

#[test]
fn function_pointer_in_struct_field() {
    let t = pta("int x; int *g;
         void setx(void){ g = &x; }
         struct ops { void (*run)(void); };
         int main(void){ struct ops o; o.run = setx; o.run(); return *g; }");
    assert_eq!(t.exit_targets_of("main", "g"), vec![d("x")]);
}

#[test]
fn function_pointer_passed_as_argument() {
    let t = pta("int x; int *g;
         void setx(void){ g = &x; }
         void apply(void (*f)(void)) { f(); }
         int main(void){ apply(setx); return *g; }");
    assert_eq!(t.exit_targets_of("main", "g"), vec![d("x")]);
}

#[test]
fn multi_level_function_pointer() {
    let t = pta("int x; int *g;
         void setx(void){ g = &x; }
         int main(void){ void (*fp)(void); void (**fpp)(void);
            fp = setx; fpp = &fp; (*fpp)(); return *g; }");
    assert_eq!(t.exit_targets_of("main", "g"), vec![d("x")]);
}

// ---------------------------------------------------------------------
// Invocation graph structure
// ---------------------------------------------------------------------

#[test]
fn invocation_graph_statistics_reported() {
    let t = pta("int f(void){ return 1; }
         int g(void){ return f(); }
         int main(void){ g(); g(); return 0; }");
    let s = t.result.ig.stats();
    assert_eq!(s.nodes, 5);
    assert_eq!(s.functions, 3);
}

#[test]
fn memoization_reuses_summaries() {
    // Both calls of g have the same (empty-ish) input: the second one
    // must reuse the memoized output rather than re-analyzing.
    let t = pta("int x; int *gl;
         void g(void){ gl = &x; }
         int main(void){ g(); g(); return 0; }");
    assert_eq!(t.exit_targets_of("main", "gl"), vec![d("x")]);
}

// ---------------------------------------------------------------------
// NULL handling
// ---------------------------------------------------------------------

#[test]
fn null_assignment_tracks_null() {
    let t = pta("int x, c; int main(void){ int *p; if (c) p = &x; else p = 0; return 0; }");
    // Named targets exclude null; p possibly points to x.
    assert_eq!(t.exit_targets_of("main", "p"), vec![p("x")]);
    // But the raw set has the null pair.
    let lp = t.loc_of("main", "p").unwrap();
    let has_null = t
        .result
        .exit_set
        .targets(lp)
        .any(|(tg, _)| t.result.locs.is_null(tg));
    assert!(has_null);
}

#[test]
fn uninitialized_pointer_is_null() {
    let t = pta("int main(void){ int *p; return 0; }");
    let lp = t.loc_of("main", "p").unwrap();
    let targets: Vec<_> = t.result.exit_set.targets(lp).collect();
    assert_eq!(targets.len(), 1);
    assert!(t.result.locs.is_null(targets[0].0));
    assert_eq!(targets[0].1, Def::D);
}

// ---------------------------------------------------------------------
// Warnings and edge cases
// ---------------------------------------------------------------------

#[test]
fn no_main_is_an_error() {
    let ir = pta_simple::compile("int f(void){ return 1; }").unwrap();
    let err = pta_core::analyze(&ir).unwrap_err();
    assert_eq!(err, pta_core::AnalysisError::NoEntry);
}

#[test]
fn unknown_extern_warns_by_default() {
    let t = pta("int main(void){ mystery(); return 0; }");
    assert!(t.result.warnings.iter().any(|w| w.contains("mystery")));
}

#[test]
fn unknown_extern_errors_in_strict_mode() {
    let ir = pta_simple::compile("int main(void){ mystery(); return 0; }").unwrap();
    let cfg = pta_core::AnalysisConfig {
        strict_externs: true,
        ..Default::default()
    };
    let err = pta_core::analyze_with(&ir, cfg).unwrap_err();
    assert!(matches!(err, pta_core::AnalysisError::Unsupported(_)));
}

#[test]
fn per_stmt_info_is_recorded() {
    let t = pta("int x; int main(void){ int *p; p = &x; return *p; }");
    assert!(!t.result.per_stmt.is_empty());
    let ret = t.find_stmt("main", "return", 0).unwrap();
    let pairs = t.pairs_at(ret);
    assert!(
        pairs.contains(&("p".into(), "x".into(), Def::D)),
        "got {pairs:?}"
    );
}
