//! Tests of the allocation-site heap extension (DESIGN.md: a refinement
//! of the paper's single-`heap` abstraction).

use pta_core::{run_source_with, AnalysisConfig, Def};

fn pta_sites(src: &str) -> pta_core::Pta {
    let cfg = AnalysisConfig {
        heap_sites: true,
        ..Default::default()
    };
    run_source_with(src, cfg).expect("analysis ok")
}

#[test]
fn two_allocation_sites_are_distinguished() {
    let t = pta_sites(
        "int main(void){ int *p; int *q; p = (int*) malloc(4); q = (int*) malloc(4); return 0; }",
    );
    let pt = t.exit_targets_of("main", "p");
    let qt = t.exit_targets_of("main", "q");
    assert_eq!(pt.len(), 1);
    assert_eq!(qt.len(), 1);
    assert!(pt[0].0.starts_with("heap@"), "{pt:?}");
    assert!(qt[0].0.starts_with("heap@"), "{qt:?}");
    assert_ne!(pt[0].0, qt[0].0, "sites must be distinct: {pt:?} vs {qt:?}");
}

#[test]
fn single_heap_mode_conflates_sites() {
    let t = pta_core::run_source(
        "int main(void){ int *p; int *q; p = (int*) malloc(4); q = (int*) malloc(4); return 0; }",
    )
    .expect("analysis ok");
    assert_eq!(
        t.exit_targets_of("main", "p"),
        vec![("heap".to_string(), Def::P)]
    );
    assert_eq!(
        t.exit_targets_of("main", "q"),
        vec![("heap".to_string(), Def::P)]
    );
}

#[test]
fn site_contents_stay_separate() {
    // Writing &x through p must not make q's cell point to x.
    let t = pta_sites(
        "int x, y;
         int main(void){
            int **p; int **q;
            p = (int**) malloc(8);
            q = (int**) malloc(8);
            *p = &x;
            *q = &y;
            return 0; }",
    );
    let p_site = t.exit_targets_of("main", "p")[0].0.clone();
    let q_site = t.exit_targets_of("main", "q")[0].0.clone();
    let pt = t.exit_targets_of("main", &p_site);
    let qt = t.exit_targets_of("main", &q_site);
    assert_eq!(pt, vec![("x".to_string(), Def::P)], "{p_site}: {pt:?}");
    assert_eq!(qt, vec![("y".to_string(), Def::P)], "{q_site}: {qt:?}");
}

#[test]
fn sites_survive_calls() {
    let t = pta_sites(
        "int x;
         void fill(int **h) { *h = &x; }
         int main(void){ int **p; p = (int**) malloc(8); fill(p); return 0; }",
    );
    let site = t.exit_targets_of("main", "p")[0].0.clone();
    assert!(site.starts_with("heap@"));
    assert_eq!(
        t.exit_targets_of("main", &site),
        vec![("x".to_string(), Def::P)]
    );
}

#[test]
fn loop_allocation_is_still_a_summary() {
    // One textual site allocated repeatedly is one (weak) location.
    let t = pta_sites(
        "int x, y, n;
         struct node { int *v; };
         int main(void){
            struct node *m;
            int i;
            for (i = 0; i < n; i++) {
                m = (struct node*) malloc(8);
                if (i == 0) m->v = &x; else m->v = &y;
            }
            return 0; }",
    );
    let site = t.exit_targets_of("main", "m")[0].0.clone();
    let contents = t.exit_targets_of("main", &site);
    assert!(
        contents.contains(&("x".to_string(), Def::P))
            && contents.contains(&("y".to_string(), Def::P)),
        "weak summary lost a target: {contents:?}"
    );
}

#[test]
fn linked_list_sites_chain() {
    let t = pta_sites(
        "struct node { struct node *next; };
         int main(void){
            struct node *a; struct node *b;
            a = (struct node*) malloc(8);
            b = (struct node*) malloc(8);
            a->next = b;
            return 0; }",
    );
    let a_site = t.exit_targets_of("main", "a")[0].0.clone();
    let b_site = t.exit_targets_of("main", "b")[0].0.clone();
    let links = t.exit_targets_of("main", &a_site);
    assert_eq!(links, vec![(b_site, Def::P)]);
}
