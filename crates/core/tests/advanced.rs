//! Advanced scenarios: k-limiting, memoization under changing inputs,
//! higher-order function pointers, struct-valued parameters, budget
//! guards, and configuration knobs.

use pta_core::{run_source, run_source_with, AnalysisConfig, Def};

fn pta(src: &str) -> pta_core::Pta {
    run_source(src).expect("analysis ok")
}

fn p(name: &str) -> (String, Def) {
    (name.to_owned(), Def::P)
}

fn d(name: &str) -> (String, Def) {
    (name.to_owned(), Def::D)
}

// ---------------------------------------------------------------------
// Symbolic names and k-limiting
// ---------------------------------------------------------------------

#[test]
fn deep_pointer_chain_beyond_k_limit_terminates() {
    // A 7-level pointer chain passed into a callee exceeds the default
    // symbolic depth of 5; the analysis must terminate and stay sound.
    let src = "
        int x;
        void sink(int *******pp) { int t; t = 0; }
        int main(void) {
            int *p1; int **p2; int ***p3; int ****p4;
            int *****p5; int ******p6; int *******p7;
            p1 = &x; p2 = &p1; p3 = &p2; p4 = &p3;
            p5 = &p4; p6 = &p5; p7 = &p6;
            sink(&p7);
            return *p1;
        }";
    let t = pta(src);
    // Beyond the k-limit the chain collapses into a multi-representative
    // symbol: precision is lost (weak updates, spurious pairs) but the
    // true target x must survive.
    let targets = t.exit_targets_of("main", "p1");
    assert!(targets.iter().any(|(n, _)| n == "x"), "lost x: {targets:?}");
}

#[test]
fn k_limit_is_configurable() {
    let src = "
        int x;
        void sink(int ***ppp) { **ppp = &x; }
        int main(void) {
            int *p; int **pp; pp = &p;
            sink(&pp);
            return *p;
        }";
    let cfg = AnalysisConfig {
        max_sym_depth: 1,
        ..Default::default()
    }; // tight but safe
    let t = run_source_with(src, cfg).expect("analysis ok");
    let targets = t.exit_targets_of("main", "p");
    // With the tight limit the write may be blurred, but x (or a
    // conservative superset) must appear.
    assert!(
        targets.iter().any(|(n, _)| n == "x") || !targets.is_empty(),
        "k-limited result lost the write entirely: {targets:?}"
    );
}

#[test]
fn symbolic_names_follow_paper_conventions() {
    // Inside the callee, main's q appears as 1_pp and its pointee as
    // 2_pp (one symbolic name per indirection level, §4.1).
    let t = pta("void look(int **pp) { int *t; t = *pp; }
         int main(void){ int x; int *q; q = &x; look(&q); return 0; }");
    let inside = t.find_stmt("look", "t = *pp", 0).unwrap();
    let pairs = t.pairs_at(inside);
    assert!(
        pairs.iter().any(|(s, _, _)| s == "1_pp"),
        "expected symbolic 1_pp among {pairs:?}"
    );
    assert!(
        pairs.iter().any(|(_, t2, _)| t2 == "2_pp"),
        "expected symbolic 2_pp among {pairs:?}"
    );
}

// ---------------------------------------------------------------------
// Memoization behaviour
// ---------------------------------------------------------------------

#[test]
fn memo_is_input_sensitive() {
    // The same chain main→use is analysed with two different global
    // states; the second call must NOT reuse the first summary.
    let t = pta("int x, y; int *g; int *out1; int *out2;
         void capture1(void) { out1 = g; }
         void capture2(void) { out2 = g; }
         int main(void){
            g = &x; capture1();
            g = &y; capture2();
            return 0; }");
    assert_eq!(t.exit_targets_of("main", "out1"), vec![d("x")]);
    assert_eq!(t.exit_targets_of("main", "out2"), vec![d("y")]);
}

#[test]
fn same_function_two_states_two_nodes() {
    let t = pta("int x, y; int *g; int *seen;
         void capture(void) { seen = g; }
         int main(void){
            g = &x; capture();
            g = &y; capture();
            return 0; }");
    // Both states flow through separate IG nodes; the final `seen` is
    // the second call's result.
    assert_eq!(t.exit_targets_of("main", "seen"), vec![d("y")]);
    assert_eq!(t.result.ig.len(), 3); // main + 2 × capture
}

// ---------------------------------------------------------------------
// Function pointers, higher order
// ---------------------------------------------------------------------

#[test]
fn function_returning_function_pointer() {
    let t = pta("int x; int *g;
         void setx(void){ g = &x; }
         void (*pick(void))(void) { return setx; }
         int main(void){ void (*fp)(void); fp = pick(); fp(); return 0; }");
    assert_eq!(t.exit_targets_of("main", "fp"), vec![d("setx")]);
    assert_eq!(t.exit_targets_of("main", "g"), vec![d("x")]);
}

#[test]
fn struct_with_function_pointer_array() {
    let t = pta("int x1, x2; int *g;
         void h1(void){ g = &x1; }
         void h2(void){ g = &x2; }
         struct vtbl { void (*ops[2])(void); };
         int k;
         int main(void){
            struct vtbl v;
            v.ops[0] = h1;
            v.ops[1] = h2;
            v.ops[k]();
            return 0; }");
    let targets = t.exit_targets_of("main", "g");
    assert_eq!(targets, vec![p("x1"), p("x2")]);
}

#[test]
fn function_pointer_recursion_through_table() {
    // A self-referential dispatch: the table entry calls back through
    // the table — the IG must close the loop with an approximate node.
    let t = pta("int n; int (*table[1])(void);
         int step(void) { if (n) { n = n - 1; return table[0](); } return 0; }
         int main(void){ table[0] = step; return table[0](); }");
    let s = t.result.ig.stats();
    assert!(s.recursive >= 1, "{s:?}");
    assert!(s.approximate >= 1, "{s:?}");
}

#[test]
fn callback_with_data_pointer() {
    // The classic qsort-style pattern: a callback receives a pointer
    // the caller chose.
    let t = pta("int total;
         void add(int *v) { total = total + *v; }
         void each(int *base, int n, void (*f)(int *)) {
            int i;
            for (i = 0; i < n; i++) f(&base[i]);
         }
         int data[8];
         int main(void){ each(data, 8, add); return total; }");
    // Inside `add`, v points into the data array (symbolically).
    let inside = t.find_stmt("add", "total", 0).unwrap();
    let pairs = t.pairs_at(inside);
    assert!(
        pairs.iter().any(|(s, _, _)| s == "v"),
        "v resolved inside callback: {pairs:?}"
    );
}

// ---------------------------------------------------------------------
// Struct-valued parameters and returns
// ---------------------------------------------------------------------

#[test]
fn struct_passed_by_value_maps_fields() {
    let t = pta("struct box { int *a; int *b; };
         int x, y; int *got_a; int *got_b;
         void open(struct box bx) { got_a = bx.a; got_b = bx.b; }
         int main(void){
            struct box s; s.a = &x; s.b = &y;
            open(s);
            return 0; }");
    assert_eq!(t.exit_targets_of("main", "got_a"), vec![d("x")]);
    assert_eq!(t.exit_targets_of("main", "got_b"), vec![d("y")]);
}

#[test]
fn mutation_of_by_value_struct_does_not_leak_back() {
    let t = pta("struct box { int *a; };
         int x, y;
         void clobber(struct box bx) { bx.a = &y; }
         int main(void){ struct box s; s.a = &x; clobber(s); return *s.a; }");
    assert_eq!(t.exit_targets_of("main", "s.a"), vec![d("x")]);
}

#[test]
fn pointer_to_struct_field_across_calls() {
    let t = pta("struct rec { int *link; int v; };
         int x;
         void fill(struct rec *r) { r->link = &x; }
         int main(void){ struct rec a; fill(&a); return *a.link; }");
    assert_eq!(t.exit_targets_of("main", "a.link"), vec![d("x")]);
}

// ---------------------------------------------------------------------
// Budgets and configuration
// ---------------------------------------------------------------------

#[test]
fn ig_budget_error_is_reported() {
    let src = "
        int f(void){ return 1; }
        int g(void){ f(); f(); f(); f(); return 0; }
        int h(void){ g(); g(); g(); g(); return 0; }
        int main(void){ h(); h(); h(); h(); return 0; }";
    let ir = pta_simple::compile(src).unwrap();
    let cfg = AnalysisConfig {
        max_ig_nodes: 5,
        ..Default::default()
    };
    let err = pta_core::analyze_with(&ir, cfg).unwrap_err();
    assert!(matches!(
        err,
        pta_core::AnalysisError::IgBudget { limit: 5, .. }
    ));
}

#[test]
fn step_budget_error_is_reported() {
    let src = "int main(void){ int i; for (i = 0; i < 10; i++) { i = i; } return 0; }";
    let ir = pta_simple::compile(src).unwrap();
    let cfg = AnalysisConfig {
        max_steps: 2,
        ..Default::default()
    };
    let err = pta_core::analyze_with(&ir, cfg).unwrap_err();
    assert!(matches!(
        err,
        pta_core::AnalysisError::StepBudget { limit: 2, .. }
    ));
}

#[test]
fn stats_recording_can_be_disabled() {
    let src = "int x; int main(void){ int *p; p = &x; return *p; }";
    let ir = pta_simple::compile(src).unwrap();
    let cfg = AnalysisConfig {
        record_stats: false,
        ..Default::default()
    };
    let r = pta_core::analyze_with(&ir, cfg).unwrap();
    assert!(r.per_stmt.is_empty());
    assert!(!r.exit_set.is_empty());
}

// ---------------------------------------------------------------------
// Misc semantics
// ---------------------------------------------------------------------

#[test]
fn string_literals_share_one_location() {
    let t = pta("int main(void){ char *a; char *b; a = \"x\"; b = \"y\"; return a == b; }");
    assert_eq!(t.exit_targets_of("main", "a"), vec![p("strlit")]);
    assert_eq!(t.exit_targets_of("main", "b"), vec![p("strlit")]);
}

#[test]
fn global_array_of_pointers_initializer() {
    let t = pta("int x, y, z;
         int *table[3] = { &x, &y, &z };
         int main(void){ return *table[0]; }");
    assert_eq!(t.exit_targets_of("main", "table[0]"), vec![d("x")]);
    let tail = t.exit_targets_of("main", "table[1..]");
    assert!(tail.contains(&p("y")) && tail.contains(&p("z")), "{tail:?}");
}

#[test]
fn address_of_field_of_deref_target() {
    let t = pta("struct s { int v; };
         int main(void){
            struct s t; struct s *p; int *q;
            p = &t; q = &p->v;
            return *q; }");
    assert_eq!(t.exit_targets_of("main", "q"), vec![d("t.v")]);
}

#[test]
fn do_while_with_call_in_condition() {
    let t = pta("int n; int x; int *g;
         int step(void){ g = &x; n = n - 1; return n; }
         int main(void){ do { } while (step()); return *g; }");
    assert_eq!(t.exit_targets_of("main", "g"), vec![d("x")]);
}

#[test]
fn exit_branch_prunes_flow() {
    let t = pta("int x, y, c;
         int main(void){
            int *p;
            p = &x;
            if (c) { p = &y; exit(1); }
            return *p; }");
    // The exit() path never reaches the return: p is definitely &x.
    assert_eq!(t.exit_targets_of("main", "p"), vec![d("x")]);
}

#[test]
fn warnings_deduplicate() {
    let t = pta("int main(void){ mystery(); mystery(); mystery(); return 0; }");
    let count = t
        .result
        .warnings
        .iter()
        .filter(|w| w.contains("mystery"))
        .count();
    assert_eq!(count, 1);
}
