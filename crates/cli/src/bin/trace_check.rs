//! `trace-check` — validates a JSONL trace stream against the event
//! schema, and optionally checks that the schema reference
//! (`docs/TRACING.md`) documents every event kind the engine can emit.
//!
//! ```text
//! trace-check <trace.jsonl> [--docs docs/TRACING.md]
//! trace-check --docs docs/TRACING.md        # docs coverage only
//! ```
//!
//! Stream validation enforces, per line: a leading `"ev"` tag naming a
//! known event kind, the common `ts_us` field, and every kind-specific
//! field in the documented order (field order is part of the schema —
//! consumers may scan rather than parse). Exits 0 when everything
//! checks out, 1 on a validation failure, 2 on usage errors.

use pta_core::EVENT_SPECS;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut stream: Option<String> = None;
    let mut docs: Option<String> = None;
    let mut argv = std::env::args().skip(1);
    while let Some(a) = argv.next() {
        match a.as_str() {
            "--docs" => match argv.next() {
                Some(p) => docs = Some(p),
                None => return usage("--docs needs a value"),
            },
            "--help" | "-h" => return usage(""),
            f if !f.starts_with('-') => {
                if stream.is_some() {
                    return usage("only one stream file is supported");
                }
                stream = Some(f.to_owned());
            }
            other => return usage(&format!("unknown flag `{other}`")),
        }
    }
    if stream.is_none() && docs.is_none() {
        return usage("nothing to check");
    }

    let mut failures = 0usize;
    if let Some(path) = &stream {
        match std::fs::read_to_string(path) {
            Ok(text) => failures += check_stream(path, &text),
            Err(e) => {
                eprintln!("trace-check: cannot read `{path}`: {e}");
                return ExitCode::from(2);
            }
        }
    }
    if let Some(path) = &docs {
        match std::fs::read_to_string(path) {
            Ok(text) => failures += check_docs(path, &text),
            Err(e) => {
                eprintln!("trace-check: cannot read `{path}`: {e}");
                return ExitCode::from(2);
            }
        }
    }
    if failures > 0 {
        eprintln!(
            "trace-check: {failures} failure{}",
            if failures == 1 { "" } else { "s" }
        );
        return ExitCode::FAILURE;
    }
    println!("trace-check: ok");
    ExitCode::SUCCESS
}

fn usage(msg: &str) -> ExitCode {
    if !msg.is_empty() {
        eprintln!("trace-check: {msg}");
    }
    eprintln!("usage: trace-check [<trace.jsonl>] [--docs docs/TRACING.md]");
    ExitCode::from(2)
}

/// Validates every line of a JSONL stream; returns the failure count.
fn check_stream(path: &str, text: &str) -> usize {
    let mut failures = 0;
    let mut events = 0usize;
    for (i, line) in text.lines().enumerate() {
        if line.is_empty() {
            continue;
        }
        events += 1;
        if let Err(msg) = check_line(line) {
            eprintln!("trace-check: {path}:{}: {msg}", i + 1);
            failures += 1;
        }
    }
    if events == 0 {
        eprintln!("trace-check: {path}: stream is empty");
        failures += 1;
    }
    failures
}

fn check_line(line: &str) -> Result<(), String> {
    let Some(rest) = line.strip_prefix("{\"ev\":\"") else {
        return Err(format!("line does not start with an `ev` tag: {line}"));
    };
    if !line.ends_with('}') {
        return Err(format!("line is not a closed JSON object: {line}"));
    }
    let Some(kind) = rest.split('"').next() else {
        return Err(format!("unterminated `ev` tag: {line}"));
    };
    let Some(spec) = EVENT_SPECS.iter().find(|s| s.kind == kind) else {
        return Err(format!("unknown event kind `{kind}`"));
    };
    // Common field, then the kind's fields — in schema order.
    let mut pos = 0usize;
    for field in std::iter::once(&"ts_us").chain(spec.fields) {
        let needle = format!("\"{field}\":");
        match line[pos..].find(&needle) {
            Some(at) => pos += at + needle.len(),
            None if line.find(&needle).is_some() => {
                return Err(format!(
                    "`{kind}`: field `{field}` out of schema order: {line}"
                ));
            }
            None => {
                return Err(format!("`{kind}`: missing field `{field}`: {line}"));
            }
        }
    }
    Ok(())
}

/// Checks that the schema reference documents every event kind (a
/// ``### `kind` `` heading) and mentions each of its fields; returns
/// the failure count.
fn check_docs(path: &str, text: &str) -> usize {
    let mut failures = 0;
    for spec in EVENT_SPECS {
        let heading = format!("### `{}`", spec.kind);
        let Some(start) = text.find(&heading) else {
            eprintln!(
                "trace-check: {path}: event kind `{}` has no `{heading}` section",
                spec.kind
            );
            failures += 1;
            continue;
        };
        let body = &text[start + heading.len()..];
        let section = &body[..body.find("\n### ").unwrap_or(body.len())];
        for field in spec.fields {
            if !section.contains(&format!("`{field}`")) {
                eprintln!(
                    "trace-check: {path}: `{}` section does not document field `{field}`",
                    spec.kind
                );
                failures += 1;
            }
        }
    }
    failures
}
