//! `pta` — command-line driver for the points-to analysis.
//!
//! ```text
//! pta <file.c> [--simple] [--points-to] [--ig] [--call-graph]
//!              [--aliases] [--replace] [--tables] [--warnings]
//!              [--deadline MS] [--budget N]
//! pta lint <file.c>... [--json] [--allow ID] [--deny ID] [--jobs N]
//!              [--deadline MS] [--budget N]
//! pta trace <file.c> [--trace-out PATH] [--chrome-out PATH]
//!              [--metrics] [--scrub-timings] [--deadline MS] [--budget N]
//! pta serve <file.c>... [--store PATH | --store-dir DIR] [--listen ADDR]
//!              [--cache N] [--query-deadline MS] [--metrics]
//!              [--deadline MS] [--budget N] [--max-conns N]
//!              [--io-timeout-ms MS] [--max-line-bytes N]
//! pta store verify <snapshot.ptas>...
//! ```
//!
//! With no flags, prints a short summary. `--points-to` dumps the
//! merged points-to set at every program point. `--deadline` and
//! `--budget` bound the analysis; when a bound trips, the run degrades
//! to a cheaper engine and the summary reports the fidelity.
//!
//! `pta lint` runs the diagnostics passes (see the `pta-lint` crate)
//! and exits 0 when clean, 1 when any error-severity finding or file
//! failure occurred, and 2 on usage errors. Note the fidelity cap: when
//! a budget forces the analysis onto a degraded engine, that file's
//! findings are capped at warning severity — even for checks escalated
//! with `--deny` — so a degraded run never exits 1 via findings alone.
//!
//! `pta serve` analyses each file once — warmed from its snapshot
//! (`--store` / `--store-dir`) when one is usable, falling back to a
//! cold run on any store problem — then answers JSONL queries
//! (`points-to`, `aliases?`, `call-targets`, `lint`) on stdin/stdout
//! until EOF, or over concurrent socket connections with `--listen`.
//! With several files, requests pick their program by file stem; an
//! LRU cache (`--cache`) bounds resident tenants and snapshots reload
//! in place when their files change on disk. Responses are
//! byte-deterministic; per-query metrics go to stderr. See
//! `docs/SERVING.md`.
//!
//! `pta trace` runs the analysis with the observability layer attached
//! (see `docs/TRACING.md`): the JSONL event stream goes to stdout or
//! `--trace-out`, `--chrome-out` writes a Chrome `trace_events` file
//! for `chrome://tracing`/Perfetto, `--metrics` prints the aggregated
//! per-function profile, and `--scrub-timings` zeroes every timing
//! field for byte-identical golden streams.

use pta_apps::{alias_pairs_at, call_graph, null_derefs, replaceable_refs};
use pta_core::{stats, AnalysisConfig};
use std::process::ExitCode;
use std::time::Duration;

struct Options {
    file: Option<String>,
    simple: bool,
    points_to: bool,
    ig: bool,
    callgraph: bool,
    aliases: bool,
    replace: bool,
    tables: bool,
    warnings: bool,
    dot: bool,
    null: bool,
    config: AnalysisConfig,
}

fn parse_args() -> Result<Options, String> {
    let mut o = Options {
        file: None,
        simple: false,
        points_to: false,
        ig: false,
        callgraph: false,
        aliases: false,
        replace: false,
        tables: false,
        warnings: false,
        dot: false,
        null: false,
        config: AnalysisConfig::default(),
    };
    let mut argv = std::env::args().skip(1);
    while let Some(a) = argv.next() {
        match a.as_str() {
            "--simple" => o.simple = true,
            "--points-to" => o.points_to = true,
            "--ig" => o.ig = true,
            "--call-graph" => o.callgraph = true,
            "--aliases" => o.aliases = true,
            "--replace" => o.replace = true,
            "--tables" => o.tables = true,
            "--warnings" => o.warnings = true,
            "--dot" => o.dot = true,
            "--null" => o.null = true,
            "--deadline" => {
                let ms: u64 = parse_value(&mut argv, "--deadline")?;
                o.config.deadline = Some(Duration::from_millis(ms));
            }
            "--budget" => {
                let n: u64 = parse_value(&mut argv, "--budget")?;
                if n == 0 {
                    return Err("--budget must be positive".to_owned());
                }
                o.config.max_steps = n;
            }
            "--help" | "-h" => return Err(usage()),
            f if !f.starts_with('-') => {
                if o.file.is_some() {
                    return Err("only one input file is supported".to_owned());
                }
                o.file = Some(f.to_owned());
            }
            other => return Err(format!("unknown flag `{other}`\n{}", usage())),
        }
    }
    if o.file.is_none() {
        return Err(usage());
    }
    Ok(o)
}

fn parse_value<T: std::str::FromStr>(
    argv: &mut impl Iterator<Item = String>,
    flag: &str,
) -> Result<T, String> {
    let raw = argv.next().ok_or_else(|| format!("{flag} needs a value"))?;
    raw.parse()
        .map_err(|_| format!("{flag}: invalid value `{raw}`"))
}

fn usage() -> String {
    "usage: pta <file.c> [--simple] [--points-to] [--ig] [--call-graph] \
     [--aliases] [--replace] [--tables] [--warnings] [--dot] [--null] \
     [--deadline MS] [--budget N]"
        .to_owned()
}

struct LintCliOptions {
    files: Vec<String>,
    json: bool,
    jobs: usize,
    lint: pta_lint::LintOptions,
    config: AnalysisConfig,
}

fn lint_usage() -> String {
    let checks: Vec<String> = pta_lint::all_checks()
        .iter()
        .map(|c| format!("  {:<15} {}", c.id(), c.description()))
        .collect();
    format!(
        "usage: pta lint <file.c>... [--json] [--allow ID] [--deny ID] \
         [--jobs N] [--deadline MS] [--budget N] [--prune-liveness]\nchecks:\n{}\n\
         exit codes: 0 clean, 1 error-severity findings or file failures, \
         2 usage errors.\nfidelity cap: findings from a budget-degraded \
         analysis are capped at warning severity (overrides --deny), so \
         they never cause exit 1 on their own.",
        checks.join("\n")
    )
}

fn parse_lint_args(args: impl Iterator<Item = String>) -> Result<LintCliOptions, String> {
    let mut o = LintCliOptions {
        files: Vec::new(),
        json: false,
        jobs: 1,
        lint: pta_lint::LintOptions::default(),
        config: AnalysisConfig::default(),
    };
    let mut argv = args.peekable();
    while let Some(a) = argv.next() {
        match a.as_str() {
            "--json" => o.json = true,
            "--allow" => o.lint.allow.push(parse_value(&mut argv, "--allow")?),
            "--deny" => o.lint.deny.push(parse_value(&mut argv, "--deny")?),
            "--jobs" => {
                o.jobs = parse_value(&mut argv, "--jobs")?;
                if o.jobs == 0 {
                    return Err("--jobs must be positive".to_owned());
                }
            }
            "--deadline" => {
                let ms: u64 = parse_value(&mut argv, "--deadline")?;
                o.config.deadline = Some(Duration::from_millis(ms));
            }
            "--budget" => {
                let n: u64 = parse_value(&mut argv, "--budget")?;
                if n == 0 {
                    return Err("--budget must be positive".to_owned());
                }
                o.config.max_steps = n;
            }
            "--prune-liveness" => o.config.prune_liveness = true,
            "--help" | "-h" => return Err(lint_usage()),
            f if !f.starts_with('-') => o.files.push(f.to_owned()),
            other => return Err(format!("unknown flag `{other}`\n{}", lint_usage())),
        }
    }
    if o.files.is_empty() {
        return Err(lint_usage());
    }
    let unknown = o.lint.unknown_ids();
    if !unknown.is_empty() {
        return Err(format!(
            "unknown check id{}: {}\n{}",
            if unknown.len() == 1 { "" } else { "s" },
            unknown.join(", "),
            lint_usage()
        ));
    }
    Ok(o)
}

fn run_lint(args: impl Iterator<Item = String>) -> ExitCode {
    let opts = match parse_lint_args(args) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::from(2);
        }
    };
    let mut inputs = Vec::new();
    for path in &opts.files {
        match std::fs::read_to_string(path) {
            Ok(source) => inputs.push(pta_lint::FileInput {
                path: path.clone(),
                source,
            }),
            Err(e) => {
                eprintln!("pta lint: cannot read `{path}`: {e}");
                return ExitCode::from(2);
            }
        }
    }
    let reports = pta_lint::lint_files(&inputs, &opts.config, &opts.lint, opts.jobs);
    if opts.json {
        print!("{}", pta_lint::render_json(&reports));
    } else {
        print!("{}", pta_lint::render_text(&reports));
    }
    let failed = reports.iter().any(|r| r.error.is_some());
    let errors = reports
        .iter()
        .flat_map(|r| r.diagnostics.iter())
        .any(|d| d.severity == pta_lint::Severity::Error);
    if failed || errors {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

struct TraceCliOptions {
    file: Option<String>,
    trace_out: Option<String>,
    chrome_out: Option<String>,
    metrics: bool,
    scrub: bool,
    config: AnalysisConfig,
}

fn trace_usage() -> String {
    "usage: pta trace <file.c> [--trace-out PATH] [--chrome-out PATH] \
     [--metrics] [--scrub-timings] [--deadline MS] [--budget N]\n\
     JSONL events go to stdout unless --trace-out is given; the schema \
     is documented in docs/TRACING.md"
        .to_owned()
}

fn parse_trace_args(args: impl Iterator<Item = String>) -> Result<TraceCliOptions, String> {
    let mut o = TraceCliOptions {
        file: None,
        trace_out: None,
        chrome_out: None,
        metrics: false,
        scrub: false,
        config: AnalysisConfig::default(),
    };
    let mut argv = args.peekable();
    while let Some(a) = argv.next() {
        match a.as_str() {
            "--trace-out" => o.trace_out = Some(parse_value(&mut argv, "--trace-out")?),
            "--chrome-out" => o.chrome_out = Some(parse_value(&mut argv, "--chrome-out")?),
            "--metrics" => o.metrics = true,
            "--scrub-timings" => o.scrub = true,
            "--deadline" => {
                let ms: u64 = parse_value(&mut argv, "--deadline")?;
                o.config.deadline = Some(Duration::from_millis(ms));
            }
            "--budget" => {
                let n: u64 = parse_value(&mut argv, "--budget")?;
                if n == 0 {
                    return Err("--budget must be positive".to_owned());
                }
                o.config.max_steps = n;
            }
            "--help" | "-h" => return Err(trace_usage()),
            f if !f.starts_with('-') => {
                if o.file.is_some() {
                    return Err("only one input file is supported".to_owned());
                }
                o.file = Some(f.to_owned());
            }
            other => return Err(format!("unknown flag `{other}`\n{}", trace_usage())),
        }
    }
    if o.file.is_none() {
        return Err(trace_usage());
    }
    Ok(o)
}

fn run_trace(args: impl Iterator<Item = String>) -> ExitCode {
    let opts = match parse_trace_args(args) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::from(2);
        }
    };
    let file = opts.file.as_deref().expect("checked in parse_trace_args");
    let source = match std::fs::read_to_string(file) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("pta trace: cannot read `{file}`: {e}");
            return ExitCode::from(2);
        }
    };
    let mut jsonl = if opts.scrub {
        pta_core::JsonlSink::scrubbed()
    } else {
        pta_core::JsonlSink::new()
    };
    let mut chrome = if opts.scrub {
        pta_core::ChromeTraceSink::scrubbed()
    } else {
        pta_core::ChromeTraceSink::new()
    };
    let mut metrics = pta_core::TraceMetrics::new();
    let want_chrome = opts.chrome_out.is_some();
    let (pta, fidelity, degradations) = {
        let mut tee = pta_core::TeeSink::new();
        tee.push(&mut jsonl);
        if want_chrome {
            tee.push(&mut chrome);
        }
        tee.push(&mut metrics);
        match pta_core::run_source_traced(&source, opts.config.clone(), &mut tee) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("pta trace: {e}");
                return ExitCode::FAILURE;
            }
        }
    };
    for (rung, why) in &degradations {
        eprintln!("pta trace: {rung} analysis exceeded its budget ({why}); falling back");
    }
    match &opts.trace_out {
        Some(path) => {
            if let Err(e) = std::fs::write(path, jsonl.as_str()) {
                eprintln!("pta trace: cannot write `{path}`: {e}");
                return ExitCode::FAILURE;
            }
        }
        None => print!("{}", jsonl.as_str()),
    }
    if let Some(path) = &opts.chrome_out {
        if let Err(e) = std::fs::write(path, chrome.finish()) {
            eprintln!("pta trace: cannot write `{path}`: {e}");
            return ExitCode::FAILURE;
        }
    }
    if opts.metrics {
        print!("{}", metrics.render_text());
    }
    eprintln!(
        "pta trace: {file}: {} events, {} ig nodes, fidelity {}",
        metrics.events,
        pta.result.ig.stats().nodes,
        fidelity
    );
    ExitCode::SUCCESS
}

struct ServeCliOptions {
    files: Vec<String>,
    store: Option<String>,
    store_dir: Option<String>,
    listen: Option<String>,
    cache: Option<usize>,
    metrics: bool,
    query_deadline: Option<Duration>,
    config: AnalysisConfig,
    max_conns: usize,
    io_timeout: Option<Duration>,
    max_line_bytes: usize,
}

fn serve_usage() -> String {
    "usage: pta serve <file.c>... [--store PATH | --store-dir DIR] \
     [--listen ADDR] [--cache N] [--query-deadline MS] [--metrics] \
     [--deadline MS] [--budget N] [--max-conns N] [--io-timeout-ms MS] \
     [--max-line-bytes N]\n\
     JSONL request/response daemon (see docs/SERVING.md). Requests: \
     {\"id\":…,\"op\":\"points-to\"|\"aliases?\"|\"call-targets\"|\"lint\",…}, \
     or a JSON array of them (a batch). With several files, each \
     request selects its tenant with \"program\": \"<file stem>\". \
     --listen unix:PATH | tcp:HOST:PORT | HOST:PORT serves concurrent \
     socket connections instead of stdin/stdout. --store (one file) or \
     --store-dir names the snapshots to warm from and rewrite; any \
     store problem degrades to a cold run. --cache caps resident \
     tenants (LRU). --query-deadline bounds each request; --metrics \
     emits per-query serve-query events on stderr (responses stay \
     byte-deterministic on both transports). Socket hardening (see \
     docs/ROBUSTNESS.md): --max-conns sheds connections past N in-band \
     (default 256, 0 = unlimited), --io-timeout-ms bounds each \
     incomplete request line and each write (default 10000, 0 = off), \
     --max-line-bytes answers over-long request lines in-band (default \
     1048576, 0 = unlimited)."
        .to_owned()
}

fn parse_serve_args(args: impl Iterator<Item = String>) -> Result<ServeCliOptions, String> {
    let mut o = ServeCliOptions {
        files: Vec::new(),
        store: None,
        store_dir: None,
        listen: None,
        cache: None,
        metrics: false,
        query_deadline: None,
        config: AnalysisConfig::default(),
        max_conns: pta_store::ServeOptions::default().max_conns,
        io_timeout: pta_store::ServeOptions::default().io_timeout,
        max_line_bytes: pta_store::ServeOptions::default().max_line_bytes,
    };
    let mut argv = args.peekable();
    while let Some(a) = argv.next() {
        match a.as_str() {
            "--store" => o.store = Some(parse_value(&mut argv, "--store")?),
            "--store-dir" => o.store_dir = Some(parse_value(&mut argv, "--store-dir")?),
            "--listen" => o.listen = Some(parse_value(&mut argv, "--listen")?),
            "--cache" => {
                o.cache = Some(parse_value(&mut argv, "--cache")?);
                if o.cache == Some(0) {
                    return Err("--cache must be positive".to_owned());
                }
            }
            "--metrics" => o.metrics = true,
            "--query-deadline" => {
                let ms: u64 = parse_value(&mut argv, "--query-deadline")?;
                o.query_deadline = Some(Duration::from_millis(ms));
            }
            "--deadline" => {
                let ms: u64 = parse_value(&mut argv, "--deadline")?;
                o.config.deadline = Some(Duration::from_millis(ms));
            }
            "--budget" => {
                let n: u64 = parse_value(&mut argv, "--budget")?;
                if n == 0 {
                    return Err("--budget must be positive".to_owned());
                }
                o.config.max_steps = n;
            }
            "--max-conns" => o.max_conns = parse_value(&mut argv, "--max-conns")?,
            "--io-timeout-ms" => {
                let ms: u64 = parse_value(&mut argv, "--io-timeout-ms")?;
                o.io_timeout = (ms > 0).then(|| Duration::from_millis(ms));
            }
            "--max-line-bytes" => o.max_line_bytes = parse_value(&mut argv, "--max-line-bytes")?,
            "--help" | "-h" => return Err(serve_usage()),
            f if !f.starts_with('-') => o.files.push(f.to_owned()),
            other => return Err(format!("unknown flag `{other}`\n{}", serve_usage())),
        }
    }
    if o.files.is_empty() {
        return Err(serve_usage());
    }
    if o.store.is_some() && (o.files.len() > 1 || o.store_dir.is_some()) {
        return Err("--store names one snapshot; use --store-dir with several files".to_owned());
    }
    Ok(o)
}

fn run_serve(args: impl Iterator<Item = String>) -> ExitCode {
    let opts = match parse_serve_args(args) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::from(2);
        }
    };
    // One file on stdio keeps the original eager single-engine daemon
    // (same stderr lines, no snapshot write unless --store). Several
    // files, --store-dir, or --listen go through the tenant cache.
    if opts.files.len() == 1 && opts.listen.is_none() && opts.store_dir.is_none() {
        run_serve_single(&opts)
    } else {
        run_serve_tenants(&opts)
    }
}

/// The single-snapshot stdin/stdout daemon.
fn run_serve_single(opts: &ServeCliOptions) -> ExitCode {
    let file = opts.files.first().expect("checked in parse_serve_args");
    let source = match std::fs::read_to_string(file) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("pta serve: cannot read `{file}`: {e}");
            return ExitCode::from(2);
        }
    };
    let ir = match pta_simple::compile(&source) {
        Ok(ir) => ir,
        Err(e) => {
            eprintln!("pta serve: {e}");
            return ExitCode::FAILURE;
        }
    };
    let snap =
        opts.store
            .as_deref()
            .and_then(|path| match pta_store::load(std::path::Path::new(path)) {
                Ok(s) => Some(s),
                Err(e) => {
                    eprintln!("pta serve: snapshot unusable ({e}); running cold");
                    None
                }
            });
    let inc = match pta_store::analyze_incremental(&ir, &opts.config, snap.as_ref()) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("pta serve: {e}");
            return ExitCode::FAILURE;
        }
    };
    match &inc.mode {
        pta_store::WarmMode::Warm {
            seed_hits, dirty, ..
        } => eprintln!(
            "pta serve: warm start ({seed_hits} replayed pairs, {} dirty functions)",
            dirty.len()
        ),
        pta_store::WarmMode::Cold(r) => eprintln!("pta serve: cold start ({r:?})"),
    }
    let lint = pta_lint::lint_ir(
        &ir,
        &inc.run.result,
        pta_core::Fidelity::ContextSensitive,
        &pta_lint::LintOptions::default(),
    );
    if let Some(path) = opts.store.as_deref() {
        let snap = pta_store::Snapshot::build(&ir, &opts.config, &inc.run, &lint);
        if let Err(e) = pta_store::save(std::path::Path::new(path), &snap) {
            eprintln!("pta serve: cannot write snapshot: {e}");
        }
    }
    let engine = pta_store::ServeEngine::new(
        pta_core::Pta {
            ir,
            result: inc.run.result,
        },
        lint,
    )
    .with_budget(opts.query_deadline);
    eprintln!("pta serve: ready");
    serve_stdio(&engine, opts.metrics)
}

/// The multi-tenant daemon: an LRU snapshot cache behind either stdio
/// or a socket listener.
fn run_serve_tenants(opts: &ServeCliOptions) -> ExitCode {
    use std::path::{Path, PathBuf};
    // Snapshots always have a home here: an explicit --store/--store-dir
    // or a per-process scratch directory (the cache rewrites snapshots
    // after each build).
    let store_dir = opts
        .store_dir
        .clone()
        .map(PathBuf::from)
        .unwrap_or_else(|| std::env::temp_dir().join(format!("pta-serve-{}", std::process::id())));
    if let Err(e) = std::fs::create_dir_all(&store_dir) {
        eprintln!("pta serve: cannot create `{}`: {e}", store_dir.display());
        return ExitCode::from(2);
    }
    let mut specs = Vec::new();
    for file in &opts.files {
        let mut spec = pta_store::TenantSpec::from_source(Path::new(file), &store_dir);
        if let Some(store) = opts.store.as_deref() {
            spec.store = PathBuf::from(store);
        }
        if specs
            .iter()
            .any(|s: &pta_store::TenantSpec| s.name == spec.name)
        {
            eprintln!("pta serve: duplicate program name `{}`", spec.name);
            return ExitCode::from(2);
        }
        specs.push(spec);
    }
    let names: Vec<String> = specs.iter().map(|s| s.name.clone()).collect();
    let capacity = opts.cache.unwrap_or(specs.len());
    let cache =
        pta_store::TenantCache::new(specs, capacity, opts.config.clone(), opts.query_deadline);
    // Eager preload (up to the cache capacity, in argument order) so
    // "ready" means warmed, not "will analyse on first query".
    for name in names.iter().take(capacity) {
        match cache.resolve(Some(name)) {
            Ok(t) => eprintln!("pta serve: {}: {}", name, t.mode),
            Err(e) => {
                eprintln!("pta serve: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    let router = pta_store::Router::new(cache);
    let Some(listen) = opts.listen.as_deref() else {
        eprintln!("pta serve: ready");
        return serve_stdio(&router, opts.metrics);
    };
    let addr = match pta_store::parse_listen(listen) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("pta serve: {e}");
            return ExitCode::from(2);
        }
    };
    let listener = match pta_store::Listener::bind(&addr) {
        Ok(l) => l,
        Err(e) => {
            eprintln!("pta serve: cannot listen on `{addr}`: {e}");
            return ExitCode::from(2);
        }
    };
    eprintln!("pta serve: listening on {}", listener.local_addr());
    eprintln!("pta serve: ready");
    let stop = std::sync::atomic::AtomicBool::new(false);
    let serve_opts = pta_store::ServeOptions {
        metrics: opts.metrics,
        max_conns: opts.max_conns,
        io_timeout: opts.io_timeout,
        max_line_bytes: opts.max_line_bytes,
    };
    match pta_store::server::serve_with(&listener, &router, &stop, &serve_opts) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("pta serve: {e}");
            ExitCode::FAILURE
        }
    }
}

/// The stdin/stdout request loop, shared by both daemons. Per-request
/// errors — malformed JSON, invalid UTF-8 — are answered in-band and
/// never terminate the loop; only EOF and real I/O conditions end it
/// (cleanly).
fn serve_stdio(handler: &impl pta_store::LineHandler, metrics: bool) -> ExitCode {
    use std::io::{BufRead, Write};
    let stdin = std::io::stdin();
    let stdout = std::io::stdout();
    let mut input = stdin.lock();
    let mut out = stdout.lock();
    let mut buf = Vec::new();
    loop {
        buf.clear();
        match input.read_until(b'\n', &mut buf) {
            Ok(0) => return ExitCode::SUCCESS,
            Ok(_) => {}
            Err(e) => {
                eprintln!("pta serve: stdin: {e}");
                return ExitCode::SUCCESS;
            }
        }
        let (response, batch) = match std::str::from_utf8(&buf) {
            Ok(text) if text.trim().is_empty() => continue,
            Ok(text) => handler.handle_text(text),
            Err(_) => {
                let (r, m) = handler.handle_invalid("bad request: invalid UTF-8");
                (r, vec![m])
            }
        };
        if writeln!(out, "{response}")
            .and_then(|()| out.flush())
            .is_err()
        {
            // Client went away; a clean shutdown, not an error.
            return ExitCode::SUCCESS;
        }
        if metrics {
            for m in &batch {
                eprintln!("{}", m.render());
            }
        }
    }
}

/// `pta store verify <snapshot>...` — deep-verifies snapshot files
/// (checksum, structural parse, location/invocation-graph replay).
/// Exit 0 when every file verifies, 1 otherwise. This is what CI's
/// crash-recovery checks call after interrupting a save: an atomic
/// store must always leave a verifiable old-or-new snapshot behind.
fn run_store(args: impl Iterator<Item = String>) -> ExitCode {
    const USAGE: &str = "usage: pta store verify <snapshot.ptas>...";
    let mut argv = args;
    match argv.next().as_deref() {
        Some("verify") => {}
        Some("--help") | Some("-h") => {
            println!("{USAGE}");
            return ExitCode::SUCCESS;
        }
        _ => {
            eprintln!("{USAGE}");
            return ExitCode::from(2);
        }
    }
    let files: Vec<String> = argv.filter(|a| a != "--help" && a != "-h").collect();
    if files.is_empty() {
        eprintln!("{USAGE}");
        return ExitCode::from(2);
    }
    let mut failed = false;
    for file in &files {
        let text = match std::fs::read_to_string(file) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("pta store verify: {file}: {e}");
                failed = true;
                continue;
            }
        };
        match pta_store::verify(&text) {
            Ok(s) => println!(
                "{file}: ok — {} functions, {} locations, {} nodes, {} pairs, {} lint findings",
                s.functions, s.locations, s.nodes, s.pairs, s.lint
            ),
            Err(e) => {
                eprintln!("pta store verify: {file}: {e}");
                failed = true;
            }
        }
    }
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

fn main() -> ExitCode {
    {
        let mut argv = std::env::args().skip(1);
        match argv.next().as_deref() {
            Some("lint") => return run_lint(argv),
            Some("trace") => return run_trace(argv),
            Some("serve") => return run_serve(argv),
            Some("store") => return run_store(argv),
            _ => {}
        }
    }
    let opts = match parse_args() {
        Ok(o) => o,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    let file = opts.file.as_deref().expect("checked in parse_args");
    let source = match std::fs::read_to_string(file) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("pta: cannot read `{file}`: {e}");
            return ExitCode::FAILURE;
        }
    };
    let (mut pta, fidelity, degradations) =
        match pta_core::run_source_resilient(&source, opts.config.clone()) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("pta: {e}");
                return ExitCode::FAILURE;
            }
        };
    for (rung, why) in &degradations {
        eprintln!("pta: {rung} analysis exceeded its budget ({why}); falling back");
    }

    if opts.simple {
        println!("== SIMPLE form ==");
        println!("{}", pta_simple::printer::print_program(&pta.ir));
    }
    if opts.ig {
        println!("== Invocation graph ==");
        print!("{}", pta.result.ig.render(&pta.ir));
        let s = pta.result.ig.stats();
        println!(
            "({} nodes, {} recursive, {} approximate)\n",
            s.nodes, s.recursive, s.approximate
        );
    }
    if opts.callgraph {
        println!("== Call graph ==");
        print!("{}", call_graph(&pta.ir, &pta.result).render());
        println!();
    }
    if opts.points_to {
        println!("== Points-to sets per program point (NULL targets omitted) ==");
        let ids: Vec<pta_simple::StmtId> = pta.result.per_stmt.keys().copied().collect();
        for id in ids {
            let pairs = pta.pairs_at(id);
            if pairs.is_empty() {
                continue;
            }
            let rendered: Vec<String> = pairs
                .iter()
                .map(|(a, b, d)| format!("({a},{b},{d})"))
                .collect();
            println!("{id}: {}", rendered.join(" "));
        }
        println!();
    }
    if opts.aliases {
        println!("== Alias pairs at exit of main ==");
        if let Some(ret) = pta.find_stmt("main", "return", 0) {
            for p in alias_pairs_at(&pta.result, ret, 3) {
                println!("{p}");
            }
        }
        println!();
    }
    if opts.replace {
        println!("== Replaceable indirect references ==");
        let ir = pta.ir.clone();
        for r in replaceable_refs(&ir, &mut pta.result) {
            println!("{r}");
        }
        println!();
    }
    if opts.tables {
        let ir = pta.ir.clone();
        let all = stats::compute(file, &source, &ir, &mut pta.result);
        println!("== Statistics ==");
        println!(
            "lines {} | SIMPLE stmts {} | abstract stack {}..{}",
            all.t2.lines, all.t2.simple_stmts, all.t2.min_vars, all.t2.max_vars
        );
        println!(
            "indirect refs {} | 1D {:?} | 1P {:?} | 2P {:?} | avg {:.2} | replaceable {}",
            all.t3.ind_refs,
            all.t3.one_d,
            all.t3.one_p,
            all.t3.two_p,
            all.t3.avg(),
            all.t3.scalar_rep
        );
        println!(
            "ig nodes {} | call sites {} | functions {} | R {} | A {}",
            all.t6.ig_nodes,
            all.t6.call_sites,
            all.t6.functions,
            all.t6.recursive,
            all.t6.approximate
        );
        println!();
    }
    if opts.null {
        println!("== NULL dereference findings ==");
        let ir = pta.ir.clone();
        let findings = null_derefs(&ir, &mut pta.result);
        if findings.is_empty() {
            println!("(none)");
        }
        for f in findings {
            println!("{f}");
        }
        println!();
    }
    if opts.dot {
        println!("// invocation graph");
        print!("{}", pta.result.ig.to_dot(&pta.ir));
        println!("// call graph");
        print!("{}", call_graph(&pta.ir, &pta.result).to_dot());
    }
    if opts.warnings {
        println!("== Warnings ==");
        for w in &pta.result.warnings {
            println!("warning: {w}");
        }
        println!();
    }

    // Default summary.
    let s = pta.result.ig.stats();
    let fidelity_note = if fidelity.is_full() {
        String::new()
    } else {
        format!(" [fidelity: {fidelity}]")
    };
    println!(
        "{}: {} functions, {} SIMPLE statements, {} invocation-graph nodes, {} points-to pairs at exit, {} warnings{}",
        file,
        pta.ir.defined_functions().count(),
        pta.ir.total_basic_stmts(),
        s.nodes,
        pta.result.exit_set.len(),
        pta.result.warnings.len(),
        fidelity_note
    );
    ExitCode::SUCCESS
}
