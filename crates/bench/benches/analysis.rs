//! E2–E5: full context-sensitive analysis time per benchmark — the cost
//! of producing Tables 3–6 for the suite.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_analysis(c: &mut Criterion) {
    let mut g = c.benchmark_group("context_sensitive_analysis");
    for b in pta_benchsuite::SUITE {
        let ir = pta_simple::compile(b.source).expect("benchmark compiles");
        g.bench_function(b.name, |bench| {
            bench.iter(|| {
                let r = pta_core::analyze(black_box(&ir)).expect("analysis ok");
                black_box(r.exit_set.len())
            })
        });
    }
    g.finish();
}

fn bench_stats_tables(c: &mut Criterion) {
    // Table generation on one analysed benchmark (stanford: the largest).
    let b = pta_benchsuite::benchmark("stanford").unwrap();
    let ir = pta_simple::compile(b.source).unwrap();
    c.bench_function("tables_2_to_6/stanford", |bench| {
        bench.iter(|| {
            let mut r = pta_core::analyze(&ir).expect("analysis ok");
            let s = pta_core::stats::compute(b.name, b.source, &ir, &mut r);
            black_box((s.t3.ind_refs, s.t6.ig_nodes))
        })
    });
}

criterion_group!(benches, bench_analysis, bench_stats_tables);
criterion_main!(benches);
