//! E6: the `livc` function-pointer study — analysis time and
//! invocation-graph construction under the three resolution strategies
//! (§5 of the paper: points-to driven vs all-functions vs
//! address-taken).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pta_core::baseline::{build_ig_with_strategy, CallGraphStrategy};
use std::hint::black_box;

fn bench_livc(c: &mut Criterion) {
    let b = pta_benchsuite::LIVC;
    let ir = pta_simple::compile(b.source).expect("livc compiles");

    let mut g = c.benchmark_group("livc_invocation_graph");
    g.bench_function("points_to_driven", |bench| {
        bench.iter(|| {
            let r = pta_core::analyze(black_box(&ir)).expect("analysis ok");
            black_box(r.ig.len())
        })
    });
    g.bench_function("all_functions", |bench| {
        bench.iter(|| {
            let g2 =
                build_ig_with_strategy(black_box(&ir), CallGraphStrategy::AllFunctions, 2_000_000)
                    .expect("builds");
            black_box(g2.len())
        })
    });
    g.bench_function("address_taken", |bench| {
        bench.iter(|| {
            let g2 =
                build_ig_with_strategy(black_box(&ir), CallGraphStrategy::AddressTaken, 2_000_000)
                    .expect("builds");
            black_box(g2.len())
        })
    });
    g.finish();
}

fn bench_dispatch_scaling(c: &mut Criterion) {
    // How analysis time scales with the number of function-pointer
    // targets at one indirect site.
    let mut g = c.benchmark_group("dispatch_targets_scaling");
    for n in [4usize, 8, 16, 32] {
        let src = pta_bench::dispatch_program(n);
        let ir = pta_simple::compile(&src).expect("compiles");
        g.bench_with_input(BenchmarkId::from_parameter(n), &ir, |bench, ir| {
            bench.iter(|| {
                let r = pta_core::analyze(black_box(ir)).expect("analysis ok");
                black_box(r.ig.len())
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_livc, bench_dispatch_scaling);
criterion_main!(benches);
