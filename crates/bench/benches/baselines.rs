//! E11: analysis-time comparison of the context-sensitive analysis
//! against the baselines (context-insensitive, Andersen, Steensgaard)
//! on representative benchmarks.

use criterion::{criterion_group, criterion_main, Criterion};
use pta_core::baseline::{andersen, insensitive, steensgaard};
use std::hint::black_box;

fn bench_baselines(c: &mut Criterion) {
    for name in ["hash", "stanford", "config", "lws"] {
        let b = pta_benchsuite::benchmark(name).unwrap();
        let ir = pta_simple::compile(b.source).expect("compiles");
        let mut g = c.benchmark_group(format!("baselines/{name}"));
        g.bench_function("context_sensitive", |bench| {
            bench.iter(|| black_box(pta_core::analyze(black_box(&ir)).unwrap().exit_set.len()))
        });
        g.bench_function("context_insensitive", |bench| {
            bench.iter(|| black_box(insensitive(black_box(&ir)).unwrap().exit_set.len()))
        });
        g.bench_function("andersen", |bench| {
            bench.iter(|| black_box(andersen(black_box(&ir)).unwrap().solution.len()))
        });
        g.bench_function("steensgaard", |bench| {
            bench.iter(|| black_box(steensgaard(black_box(&ir)).unwrap().class_count()))
        });
        g.finish();
    }
}

criterion_group!(benches, bench_baselines);
criterion_main!(benches);
