//! E1: front-end + simplifier cost per benchmark (the artifacts of
//! Table 2: SIMPLE statement counts come out of this stage).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_frontend(c: &mut Criterion) {
    let mut g = c.benchmark_group("frontend");
    for b in pta_benchsuite::SUITE {
        g.bench_function(b.name, |bench| {
            bench.iter(|| {
                let ast = pta_cfront::frontend(black_box(b.source)).expect("parses");
                black_box(ast.functions.len())
            })
        });
    }
    g.finish();
}

fn bench_simplifier(c: &mut Criterion) {
    let mut g = c.benchmark_group("simplifier");
    for b in pta_benchsuite::SUITE {
        let ast = pta_cfront::frontend(b.source).expect("parses");
        g.bench_function(b.name, |bench| {
            bench.iter(|| {
                let ir = pta_simple::lower(black_box(&ast)).expect("lowers");
                black_box(ir.total_basic_stmts())
            })
        });
    }
    g.finish();
}

fn bench_full_pipeline(c: &mut Criterion) {
    let mut g = c.benchmark_group("pipeline_source_to_analysis");
    for name in ["hash", "stanford", "lws"] {
        let b = pta_benchsuite::benchmark(name).unwrap();
        g.bench_function(name, |bench| {
            bench.iter(|| {
                let p = pta_core::run_source(black_box(b.source)).expect("pipeline ok");
                black_box(p.result.exit_set.len())
            })
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_frontend,
    bench_simplifier,
    bench_full_pipeline
);
criterion_main!(benches);
