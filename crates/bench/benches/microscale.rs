//! Micro-benchmarks and scaling curves for the core machinery: call
//! depth (map/unmap chains), call-site fan-out (memoization), and
//! points-to set merges.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pta_core::points_to_set::{Def, PtSet};
use pta_core::LocId;
use std::hint::black_box;

fn bench_call_depth(c: &mut Criterion) {
    let mut g = c.benchmark_group("call_chain_depth");
    for n in [4usize, 16, 64] {
        let src = pta_bench::chain_program(n);
        let ir = pta_simple::compile(&src).expect("compiles");
        g.bench_with_input(BenchmarkId::from_parameter(n), &ir, |bench, ir| {
            bench.iter(|| black_box(pta_core::analyze(black_box(ir)).unwrap().exit_set.len()))
        });
    }
    g.finish();
}

fn bench_fanout(c: &mut Criterion) {
    let mut g = c.benchmark_group("call_site_fanout");
    for n in [4usize, 16, 64] {
        let src = pta_bench::fanout_program(n);
        let ir = pta_simple::compile(&src).expect("compiles");
        g.bench_with_input(BenchmarkId::from_parameter(n), &ir, |bench, ir| {
            bench.iter(|| black_box(pta_core::analyze(black_box(ir)).unwrap().exit_set.len()))
        });
    }
    g.finish();
}

fn synth_set(n: u32, seed: u32) -> PtSet {
    let mut s = PtSet::new();
    for i in 0..n {
        let src = (i * 7 + seed) % 50;
        let tgt = (i * 13 + seed * 3) % 50;
        let d = if i % 3 == 0 { Def::D } else { Def::P };
        s.insert_weak(LocId(src), LocId(tgt), d);
    }
    s
}

fn bench_ptset_ops(c: &mut Criterion) {
    let mut g = c.benchmark_group("ptset");
    for n in [32u32, 256, 2048] {
        let a = synth_set(n, 1);
        let b = synth_set(n, 17);
        g.bench_with_input(
            BenchmarkId::new("merge", n),
            &(a.clone(), b.clone()),
            |bench, (a, b)| bench.iter(|| black_box(a.merge(black_box(b)))),
        );
        g.bench_with_input(BenchmarkId::new("subset", n), &(a, b), |bench, (a, b)| {
            bench.iter(|| black_box(a.subset_of(black_box(b))))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_call_depth, bench_fanout, bench_ptset_ops);
criterion_main!(benches);
