//! Helper utilities shared by the criterion benchmarks.

/// Synthesizes a chain-of-calls C program with `n` functions, each
/// passing a pointer one level down (stresses map/unmap).
pub fn chain_program(n: usize) -> String {
    let mut out = String::from("int x;\n");
    out.push_str("void f0(int **pp) { *pp = &x; }\n");
    for i in 1..n {
        out.push_str(&format!("void f{i}(int **pp) {{ f{}(pp); }}\n", i - 1));
    }
    out.push_str(&format!(
        "int main(void) {{ int *q; f{}(&q); return *q; }}\n",
        n.saturating_sub(1)
    ));
    out
}

/// Synthesizes a program with `n` call sites of one shared helper
/// (stresses memoization and invocation-graph growth).
pub fn fanout_program(n: usize) -> String {
    let mut out =
        String::from("int x;\nvoid set(int **p, int *v) { *p = v; }\n int main(void) {\n");
    for i in 0..n {
        out.push_str(&format!("    int *p{i};\n"));
    }
    for i in 0..n {
        out.push_str(&format!("    set(&p{i}, &x);\n"));
    }
    out.push_str("    return 0;\n}\n");
    out
}

/// Synthesizes a function-pointer dispatch program with `n` targets.
pub fn dispatch_program(n: usize) -> String {
    let mut out = String::from("int *g; int x;\n");
    for i in 0..n {
        out.push_str(&format!("void h{i}(void) {{ g = &x; }}\n"));
    }
    out.push_str(&format!("void (*table[{n}])(void) = {{"));
    for i in 0..n {
        if i > 0 {
            out.push_str(", ");
        }
        out.push_str(&format!("h{i}"));
    }
    out.push_str(
        "};\nint k;\nint main(void) { void (*fp)(void); fp = table[k]; fp(); return 0; }\n",
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generated_programs_analyze() {
        for src in [chain_program(5), fanout_program(5), dispatch_program(5)] {
            pta_core::run_source(&src).expect("generated program analyses");
        }
    }
}
