//! # pta-apps — client analyses and transformations
//!
//! The paper argues (§6.1) that points-to analysis is a *building
//! block*; this crate implements the clients it describes:
//!
//! - [`alias_pairs`] — generating traditional alias pairs from points-to
//!   sets by transitive closure (the §7.1 comparison with Landi/Ryder,
//!   Figures 8 and 9);
//! - [`pointer_replace`] — the pointer-replacement transformation
//!   (`x = *q` → `x = y` when `(q, y, D)`);
//! - [`rw_sets`] — per-statement and per-function read/write sets (the
//!   basis for the ALPHA IR construction and dependence testing);
//! - [`mod@call_graph`] — the function-level call multigraph extracted from
//!   the invocation graph (with resolved function-pointer targets).

pub mod alias_pairs;
pub mod call_graph;
pub mod null_check;
pub mod pointer_replace;
pub mod rw_sets;

pub use alias_pairs::{alias_pairs_at, AliasPair};
pub use call_graph::{call_graph, CallGraph};
pub use null_check::{null_derefs, NullDeref, NullSeverity};
pub use pointer_replace::{replaceable_refs, Replacement};
pub use rw_sets::{function_rw_sets, modref_summaries, stmt_rw_sets, RwSets};
