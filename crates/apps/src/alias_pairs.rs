//! Alias-pair generation (§7.1, Figures 8 and 9).
//!
//! Traditional alias analyses report pairs like `(*p, x)` or
//! `(**a, *b)`. Points-to sets imply these pairs by transitive closure:
//! `p → x` yields `(*p, x)`; `p → x, x → y` yields `(**p, *x)` and
//! `(**p, y)`, and two pointers with a common target are mutually
//! aliased (`(*p, *q)`).

use pta_core::{AnalysisResult, Def, LocId, PtSet};
use pta_simple::StmtId;

/// A derived alias pair between two reference expressions, rendered with
/// location names and `*` prefixes, plus its definiteness.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct AliasPair {
    /// Left reference, e.g. `*p`.
    pub lhs: String,
    /// Right reference, e.g. `x` or `*q`.
    pub rhs: String,
    /// Definite (must) or possible (may) alias.
    pub def: Def,
}

impl std::fmt::Display for AliasPair {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "({}, {}) {}", self.lhs, self.rhs, self.def)
    }
}

fn stars(n: usize, name: &str) -> String {
    format!("{}{}", "*".repeat(n), name)
}

/// Derives the alias pairs implied by the points-to set at a program
/// point, up to `max_depth` levels of dereference. NULL targets are
/// ignored.
pub fn alias_pairs_at(result: &AnalysisResult, stmt: StmtId, max_depth: usize) -> Vec<AliasPair> {
    let set = result.at(stmt);
    alias_pairs_of(result, &set, max_depth)
}

/// Derives alias pairs from an explicit points-to set.
pub fn alias_pairs_of(result: &AnalysisResult, set: &PtSet, max_depth: usize) -> Vec<AliasPair> {
    let locs = &result.locs;
    // reach[k] holds (pointer, target, def) pairs k+1 dereferences deep.
    let base: Vec<(LocId, LocId, Def)> = set
        .iter()
        .filter(|(_, t, _)| !locs.is_null(*t) && !locs.is_function(*t))
        .collect();
    let mut levels: Vec<Vec<(LocId, LocId, Def)>> = vec![base];
    for _ in 1..max_depth {
        let prev = levels.last().expect("at least one level");
        let mut next = Vec::new();
        for (p, mid, d1) in prev {
            for (t, d2) in set.targets(*mid) {
                if locs.is_null(t) || locs.is_function(t) {
                    continue;
                }
                let entry = (*p, t, d1.and(d2));
                if !next.contains(&entry) {
                    next.push(entry);
                }
            }
        }
        if next.is_empty() {
            break;
        }
        levels.push(next);
    }

    let mut out = Vec::new();
    // (1) Deref-to-location pairs: p → x gives (*p, x); p →→ y gives (**p, y).
    for (k, level) in levels.iter().enumerate() {
        for (p, t, d) in level {
            out.push(AliasPair {
                lhs: stars(k + 1, locs.name(*p)),
                rhs: locs.name(*t).to_owned(),
                def: *d,
            });
        }
    }
    // (2) Deref-to-deref pairs: common targets at the same depth, and
    // p → x gives (**p, *x) style pairs one level up.
    for (k, level) in levels.iter().enumerate() {
        for (i, (p, t, d1)) in level.iter().enumerate() {
            // (*^{k+2} p, *^{1} t) chains: *p aliases x, so **p aliases *x.
            if k + 2 <= max_depth {
                out.push(AliasPair {
                    lhs: stars(k + 2, locs.name(*p)),
                    rhs: stars(1, locs.name(*t)),
                    def: *d1,
                });
            }
            for (q, u, d2) in level.iter().skip(i + 1) {
                if t == u && p != q {
                    out.push(AliasPair {
                        lhs: stars(k + 1, locs.name(*p)),
                        rhs: stars(k + 1, locs.name(*q)),
                        def: d1.and(*d2),
                    });
                }
            }
        }
    }
    out.sort();
    out.dedup();
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn last_point(t: &pta_core::Pta, func: &str) -> StmtId {
        t.find_stmt(func, "return", 0).expect("return stmt")
    }

    #[test]
    fn figure8_no_spurious_pair() {
        // Figure 8: after S1 x=&y, S2 y=&z, S3 y=&w the Landi/Ryder
        // alias pairs include the spurious (**x, z); the points-to
        // closure does not.
        let t = pta_core::run_source(
            "int main(void){ int **x; int *y; int z; int w;
               x = &y; y = &z; y = &w; return 0; }",
        )
        .unwrap();
        let ret = last_point(&t, "main");
        let pairs = alias_pairs_at(&t.result, ret, 3);
        let has = |l: &str, r: &str| pairs.iter().any(|p| p.lhs == l && p.rhs == r);
        assert!(has("*x", "y"), "pairs: {pairs:?}");
        assert!(has("*y", "w"), "pairs: {pairs:?}");
        assert!(has("**x", "w"), "pairs: {pairs:?}");
        assert!(has("**x", "*y"), "pairs: {pairs:?}");
        // The spurious pair of Figure 8(b) is absent.
        assert!(!has("**x", "z"), "spurious pair generated: {pairs:?}");
    }

    #[test]
    fn figure9_closure_generates_spurious_pair() {
        // Figure 9: the transitive closure *does* generate the spurious
        // (**a, c) (the price of the compact abstraction) — assert the
        // documented behaviour.
        let t = pta_core::run_source(
            "int c0;
             int main(void){ int **a; int *b; int c;
               if (c0) a = &b; else b = &c;
               return 0; }",
        )
        .unwrap();
        let ret = last_point(&t, "main");
        let pairs = alias_pairs_at(&t.result, ret, 3);
        let has = |l: &str, r: &str| pairs.iter().any(|p| p.lhs == l && p.rhs == r);
        assert!(has("*a", "b"), "pairs: {pairs:?}");
        assert!(has("*b", "c"), "pairs: {pairs:?}");
        assert!(has("**a", "c"), "pairs: {pairs:?}");
    }

    #[test]
    fn definiteness_composes_through_closure() {
        let t = pta_core::run_source(
            "int main(void){ int **x; int *y; int z; x = &y; y = &z; return 0; }",
        )
        .unwrap();
        let ret = last_point(&t, "main");
        let pairs = alias_pairs_at(&t.result, ret, 3);
        let pair = pairs
            .iter()
            .find(|p| p.lhs == "**x" && p.rhs == "z")
            .unwrap();
        assert_eq!(pair.def, Def::D);
    }

    #[test]
    fn mutual_alias_from_common_target() {
        let t = pta_core::run_source(
            "int x; int main(void){ int *p; int *q; p = &x; q = &x; return 0; }",
        )
        .unwrap();
        let ret = last_point(&t, "main");
        let pairs = alias_pairs_at(&t.result, ret, 2);
        assert!(
            pairs.iter().any(|p| p.lhs == "*p" && p.rhs == "*q"),
            "pairs: {pairs:?}"
        );
    }

    #[test]
    fn depth_limit_respected() {
        let t = pta_core::run_source(
            "int main(void){ int **x; int *y; int z; x = &y; y = &z; return 0; }",
        )
        .unwrap();
        let ret = last_point(&t, "main");
        let pairs = alias_pairs_at(&t.result, ret, 1);
        assert!(pairs.iter().all(|p| !p.lhs.starts_with("**")));
    }
}
