//! Function-level call graph extraction (§6.1: the invocation graph and
//! map information are deposited for later interprocedural analyses —
//! after points-to analysis "one does not need to worry about function
//! pointers" anymore).

use pta_core::AnalysisResult;
use pta_simple::{CallSiteId, IrProgram};
use std::collections::{BTreeMap, BTreeSet};

/// A function-level call multigraph with resolved indirect calls.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CallGraph {
    /// `caller → callees` (deduplicated, sorted).
    pub edges: BTreeMap<String, BTreeSet<String>>,
    /// `call site → resolved targets` (indirect sites may have many).
    pub site_targets: BTreeMap<CallSiteId, BTreeSet<String>>,
}

impl CallGraph {
    /// Callees of a function.
    pub fn callees(&self, func: &str) -> Vec<&str> {
        self.edges
            .get(func)
            .map(|s| s.iter().map(String::as_str).collect())
            .unwrap_or_default()
    }

    /// Total number of edges.
    pub fn edge_count(&self) -> usize {
        self.edges.values().map(|s| s.len()).sum()
    }

    /// Renders in Graphviz DOT format.
    pub fn to_dot(&self) -> String {
        let mut out = String::from("digraph call_graph {\n  node [shape=box];\n");
        for (caller, callees) in &self.edges {
            for callee in callees {
                out.push_str(&format!("  \"{caller}\" -> \"{callee}\";\n"));
            }
        }
        out.push_str("}\n");
        out
    }

    /// Renders as `caller -> callee` lines.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for (caller, callees) in &self.edges {
            for callee in callees {
                out.push_str(caller);
                out.push_str(" -> ");
                out.push_str(callee);
                out.push('\n');
            }
        }
        out
    }
}

/// Extracts the resolved call graph from an analysed program's
/// invocation graph.
pub fn call_graph(ir: &IrProgram, result: &AnalysisResult) -> CallGraph {
    let mut g = CallGraph::default();
    for (_, node) in result.ig.iter() {
        let caller = ir.function(node.func).name.clone();
        for (cs, callee) in node.children.keys() {
            let callee_name = ir.function(*callee).name.clone();
            g.edges
                .entry(caller.clone())
                .or_default()
                .insert(callee_name.clone());
            g.site_targets.entry(*cs).or_default().insert(callee_name);
        }
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn direct_calls_appear() {
        let t = pta_core::run_source(
            "int f(void){ return 1; }
             int main(void){ return f(); }",
        )
        .unwrap();
        let g = call_graph(&t.ir, &t.result);
        assert_eq!(g.callees("main"), vec!["f"]);
        assert_eq!(g.edge_count(), 1);
    }

    #[test]
    fn indirect_calls_resolved_by_points_to() {
        let t = pta_core::run_source(
            "int a(void){ return 1; }
             int b(void){ return 2; }
             int unused_target(void){ return 3; }
             int c;
             int main(void){ int (*fp)(void); if (c) fp = a; else fp = b; return fp(); }",
        )
        .unwrap();
        let g = call_graph(&t.ir, &t.result);
        let callees = g.callees("main");
        assert_eq!(callees, vec!["a", "b"]);
        // The never-assigned function is NOT a target (unlike the naive
        // strategies of §5).
        assert!(!callees.contains(&"unused_target"));
        // The single indirect site has two targets.
        let site = g
            .site_targets
            .values()
            .find(|s| s.len() == 2)
            .expect("indirect site");
        assert_eq!(site.len(), 2);
    }

    #[test]
    fn render_is_stable() {
        let t = pta_core::run_source(
            "int f(void){ return 1; }
             int g(void){ return f(); }
             int main(void){ return g(); }",
        )
        .unwrap();
        let g = call_graph(&t.ir, &t.result);
        assert_eq!(g.render(), "g -> f\nmain -> g\n");
    }
}
