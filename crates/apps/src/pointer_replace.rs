//! The pointer-replacement transformation (§1, §6.1 of the paper).
//!
//! When the dereferenced pointer of an indirect reference *definitely*
//! points to a single, directly nameable location, the indirect
//! reference can be replaced by a direct one (`x = *q` → `x = y`),
//! reducing loads/stores downstream. Replacement is impossible when the
//! target is an invisible variable (symbolic name), the heap, or a
//! summary location.

use pta_core::stats::{collect_indirect_refs, IndirectRef};
use pta_core::{AnalysisResult, Def, LocId};
use pta_simple::{IrProgram, StmtId, VarRef};

/// One applicable replacement.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Replacement {
    /// The containing function's name.
    pub function: String,
    /// The program point.
    pub stmt: StmtId,
    /// The indirect reference (rendered).
    pub indirect: String,
    /// The direct location name that can replace it.
    pub direct: String,
    /// The location replaced with.
    pub target: LocId,
}

impl std::fmt::Display for Replacement {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}@{}: {} -> {}",
            self.function, self.stmt, self.indirect, self.direct
        )
    }
}

/// Finds every indirect reference replaceable by a direct reference
/// under the definite points-to information.
pub fn replaceable_refs(ir: &IrProgram, result: &mut AnalysisResult) -> Vec<Replacement> {
    let mut out = Vec::new();
    for occ in collect_indirect_refs(ir) {
        if let Some(rep) = replacement_for(ir, result, &occ) {
            out.push(rep);
        }
    }
    out
}

fn replacement_for(
    ir: &IrProgram,
    result: &mut AnalysisResult,
    occ: &IndirectRef,
) -> Option<Replacement> {
    let VarRef::Deref { path, shift, after } = &occ.r else {
        return None;
    };
    // Only plain `*p` / `(*p).f` shapes replace cleanly.
    if *shift != pta_simple::IdxClass::Zero {
        return None;
    }
    let set = result.at(occ.stmt);
    let ptr_locs = {
        let mut env = pta_core::lvalue::RefEnv {
            ir,
            func: occ.func,
            locs: &mut result.locs,
        };
        env.path_locs(path)
    };
    // The pointer itself must be a single definite location.
    if ptr_locs.len() != 1 || ptr_locs[0].1 != Def::D {
        return None;
    }
    let targets: Vec<(LocId, Def)> = set
        .targets(ptr_locs[0].0)
        .filter(|(t, _)| !result.locs.is_null(*t))
        .collect();
    let [(t, Def::D)] = targets[..] else {
        return None;
    };
    if result.locs.is_symbolic(t) || result.locs.is_heap(t) || result.locs.is_summary(t) {
        return None;
    }
    // Apply the post-deref projections to name the replacement.
    let mut tgt = t;
    for p in after {
        let proj = match p {
            pta_simple::IrProj::Field(f) => pta_core::Proj::Field(f.clone()),
            pta_simple::IrProj::Index(pta_simple::IdxClass::Zero) => pta_core::Proj::Head,
            pta_simple::IrProj::Index(_) => return None,
        };
        tgt = result.locs.project(tgt, proj, ir)?;
    }
    let func_name = ir.function(occ.func).name.clone();
    let f = ir.function(occ.func);
    let indirect = pta_simple::printer::ref_str(ir, f, &occ.r);
    Some(Replacement {
        function: func_name,
        stmt: occ.stmt,
        indirect,
        direct: result.locs.name(tgt).to_owned(),
        target: tgt,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(src: &str) -> Vec<Replacement> {
        let mut t = pta_core::run_source(src).expect("analysis ok");
        replaceable_refs(&t.ir.clone(), &mut t.result)
    }

    #[test]
    fn definite_single_target_is_replaceable() {
        let reps = run("int x; int main(void){ int *p; int v; p = &x; v = *p; return v; }");
        assert!(
            reps.iter().any(|r| r.indirect == "*p" && r.direct == "x"),
            "{reps:?}"
        );
    }

    #[test]
    fn possible_target_is_not_replaceable() {
        let reps = run("int x, y, c;
             int main(void){ int *p; int v; if (c) p = &x; else p = &y; v = *p; return v; }");
        assert!(reps.is_empty(), "{reps:?}");
    }

    #[test]
    fn heap_target_is_not_replaceable() {
        let reps = run("int main(void){ int *p; int v; p = (int*) malloc(4); v = *p; return v; }");
        assert!(reps.is_empty(), "{reps:?}");
    }

    #[test]
    fn invisible_target_is_not_replaceable() {
        // Inside f, p definitely points to the invisible variable 1_p —
        // the paper's footnote: replacement cannot be done for
        // invisibles.
        let reps = run("int f(int *p){ return *p; }
             int main(void){ int x; return f(&x); }");
        assert!(
            !reps.iter().any(|r| r.function == "f"),
            "invisible replaced: {reps:?}"
        );
    }

    #[test]
    fn field_replacement_through_definite_pointer() {
        let reps = run("struct s { int v; int w; };
             int main(void){ struct s t; struct s *p; int a; p = &t; a = p->v; return a; }");
        assert!(
            reps.iter().any(|r| r.direct == "t.v"),
            "expected t.v replacement: {reps:?}"
        );
    }
}
