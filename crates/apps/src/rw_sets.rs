//! Read/write set computation (§6.1: the basis for ALPHA IR
//! construction and dependence testing).
//!
//! For every basic statement, the locations it may/must read and write,
//! resolved through the points-to information (so `*p = x` writes p's
//! targets, not `p`).

use pta_core::points_to_set::Def;
use pta_core::{AnalysisResult, LocId};
use pta_simple::{BasicStmt, CallTarget, IrProgram, Operand, StmtId, VarRef};
use std::collections::{BTreeMap, BTreeSet};

/// Read and write sets of one statement (or one function).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RwSets {
    /// Locations possibly read.
    pub reads: BTreeSet<LocId>,
    /// Locations possibly written.
    pub writes: BTreeSet<LocId>,
    /// Locations definitely written (single definite L-location).
    pub must_writes: BTreeSet<LocId>,
}

impl RwSets {
    /// Union with another set.
    pub fn absorb(&mut self, other: &RwSets) {
        self.reads.extend(other.reads.iter().copied());
        self.writes.extend(other.writes.iter().copied());
        self.must_writes.extend(other.must_writes.iter().copied());
    }

    /// True if this statement may conflict (RW/WR/WW) with another.
    pub fn conflicts_with(&self, other: &RwSets) -> bool {
        let hit = |a: &BTreeSet<LocId>, b: &BTreeSet<LocId>| a.intersection(b).next().is_some();
        hit(&self.writes, &other.writes)
            || hit(&self.writes, &other.reads)
            || hit(&self.reads, &other.writes)
    }
}

/// Computes read/write sets for every basic statement of the program.
pub fn stmt_rw_sets(ir: &IrProgram, result: &mut AnalysisResult) -> BTreeMap<StmtId, RwSets> {
    let mut out = BTreeMap::new();
    for (fid, f) in ir.defined_functions() {
        let Some(body) = &f.body else { continue };
        body.for_each_basic(&mut |b, id| {
            let rw = basic_rw(ir, result, fid, b, id);
            out.insert(id, rw);
        });
    }
    out
}

/// Aggregates statement sets per function (direct effects only; callee
/// effects are visible through the per-statement sets of the callee).
pub fn function_rw_sets(ir: &IrProgram, result: &mut AnalysisResult) -> BTreeMap<String, RwSets> {
    let per_stmt = stmt_rw_sets(ir, result);
    let mut out: BTreeMap<String, RwSets> = BTreeMap::new();
    for (_, f) in ir.defined_functions() {
        let Some(body) = &f.body else { continue };
        let entry = out.entry(f.name.clone()).or_default();
        body.for_each_basic(&mut |_, id| {
            if let Some(rw) = per_stmt.get(&id) {
                entry.absorb(rw);
            }
        });
    }
    out
}

fn basic_rw(
    ir: &IrProgram,
    result: &mut AnalysisResult,
    func: pta_cfront::ast::FuncId,
    b: &BasicStmt,
    id: StmtId,
) -> RwSets {
    let set = result.at(id);
    let mut rw = RwSets::default();
    let write = |result: &mut AnalysisResult, rw: &mut RwSets, r: &VarRef| {
        let ls = {
            let mut env = pta_core::lvalue::RefEnv {
                ir,
                func,
                locs: &mut result.locs,
            };
            env.l_locations(&set, r)
        };
        if let [(l, Def::D)] = ls[..] {
            rw.must_writes.insert(l);
        }
        for (l, _) in ls {
            rw.writes.insert(l);
        }
    };
    let read_ref = |result: &mut AnalysisResult, rw: &mut RwSets, r: &VarRef| {
        // Reading a reference reads its L-locations (the cells named),
        // and reading through a pointer also reads the pointer itself.
        if let VarRef::Deref { path, .. } = r {
            let pl = {
                let mut env = pta_core::lvalue::RefEnv {
                    ir,
                    func,
                    locs: &mut result.locs,
                };
                env.path_locs(path)
            };
            for (l, _) in pl {
                rw.reads.insert(l);
            }
        }
        let ls = {
            let mut env = pta_core::lvalue::RefEnv {
                ir,
                func,
                locs: &mut result.locs,
            };
            env.l_locations(&set, r)
        };
        for (l, _) in ls {
            rw.reads.insert(l);
        }
    };
    let read_op = |result: &mut AnalysisResult, rw: &mut RwSets, op: &Operand| {
        match op {
            Operand::Ref(r) => read_ref(result, rw, r),
            // &x reads nothing (it only forms an address), but a deref
            // inside still reads the pointer.
            Operand::AddrOf(VarRef::Deref { path, .. }) => {
                let pl = {
                    let mut env = pta_core::lvalue::RefEnv {
                        ir,
                        func,
                        locs: &mut result.locs,
                    };
                    env.path_locs(path)
                };
                for (l, _) in pl {
                    rw.reads.insert(l);
                }
            }
            _ => {}
        }
    };
    match b {
        BasicStmt::Copy { lhs, rhs } => {
            read_op(result, &mut rw, rhs);
            write(result, &mut rw, lhs);
        }
        BasicStmt::Unary { lhs, rhs, .. } => {
            read_op(result, &mut rw, rhs);
            write(result, &mut rw, lhs);
        }
        BasicStmt::Binary { lhs, a, b, .. } => {
            read_op(result, &mut rw, a);
            read_op(result, &mut rw, b);
            write(result, &mut rw, lhs);
        }
        BasicStmt::PtrArith { lhs, ptr, .. } => {
            read_ref(result, &mut rw, ptr);
            write(result, &mut rw, lhs);
        }
        BasicStmt::Alloc { lhs, size } => {
            read_op(result, &mut rw, size);
            write(result, &mut rw, lhs);
        }
        BasicStmt::Call {
            lhs, target, args, ..
        } => {
            if let CallTarget::Indirect(r) = target {
                read_ref(result, &mut rw, r);
            }
            for a in args {
                read_op(result, &mut rw, a);
            }
            if let Some(l) = lhs {
                write(result, &mut rw, l);
            }
        }
        BasicStmt::Return(v) => {
            if let Some(v) = v {
                read_op(result, &mut rw, v);
            }
        }
    }
    rw
}

/// Transitive interprocedural MOD/REF summaries: each function's sets
/// include the effects of everything it (transitively) calls, with
/// callee-scoped locations (locals, temporaries, symbolic names)
/// filtered out at the boundary — the caller-visible side effects.
pub fn modref_summaries(ir: &IrProgram, result: &mut AnalysisResult) -> BTreeMap<String, RwSets> {
    let direct = function_rw_sets(ir, result);
    let cg = crate::call_graph::call_graph(ir, result);
    // Iterate to a fixed point over the (possibly cyclic) call graph.
    let mut summaries: BTreeMap<String, RwSets> = direct
        .iter()
        .map(|(name, rw)| {
            let fid = ir.function_by_name(name).map(|(id, _)| id);
            (name.clone(), visible_part(result, fid, rw))
        })
        .collect();
    loop {
        let mut changed = false;
        let names: Vec<String> = summaries.keys().cloned().collect();
        for name in &names {
            let mut acc = summaries[name].clone();
            for callee in cg.callees(name) {
                if let Some(cs) = summaries.get(callee) {
                    let fid = ir.function_by_name(name).map(|(id, _)| id);
                    let filtered = visible_part(result, fid, cs);
                    acc.absorb(&filtered);
                }
            }
            // Transitive must-writes are not preserved across calls
            // (a callee's must-write may be conditional at this level);
            // keep only the direct ones.
            acc.must_writes = summaries[name].must_writes.clone();
            if acc != summaries[name] {
                summaries.insert(name.clone(), acc);
                changed = true;
            }
        }
        if !changed {
            return summaries;
        }
    }
}

/// Drops locations scoped to any function other than `keep` (locals and
/// symbolics of other scopes are meaningless outside them).
fn visible_part(
    result: &AnalysisResult,
    keep: Option<pta_cfront::ast::FuncId>,
    rw: &RwSets,
) -> RwSets {
    let visible = |l: &LocId| match result.locs.get(*l).base {
        pta_core::LocBase::Var(f, _)
        | pta_core::LocBase::Symbolic(f, _)
        | pta_core::LocBase::Ret(f) => Some(f) == keep,
        _ => true,
    };
    RwSets {
        reads: rw.reads.iter().copied().filter(visible).collect(),
        writes: rw.writes.iter().copied().filter(visible).collect(),
        must_writes: rw.must_writes.iter().copied().filter(visible).collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(src: &str) -> (pta_core::Pta, BTreeMap<StmtId, RwSets>) {
        let mut t = pta_core::run_source(src).expect("analysis ok");
        let ir = t.ir.clone();
        let sets = stmt_rw_sets(&ir, &mut t.result);
        (t, sets)
    }

    fn names(t: &pta_core::Pta, s: &BTreeSet<LocId>) -> Vec<String> {
        s.iter()
            .map(|l| t.result.locs.name(*l).to_owned())
            .collect()
    }

    #[test]
    fn indirect_write_targets_pointee() {
        let (t, sets) = run("int x; int main(void){ int *p; p = &x; *p = 3; return 0; }");
        let store = t.find_stmt("main", "*p = 3", 0).unwrap();
        let rw = &sets[&store];
        assert_eq!(names(&t, &rw.writes), vec!["x"]);
        assert_eq!(names(&t, &rw.must_writes), vec!["x"]);
        // The pointer itself is not written by *p = 3.
        assert!(!names(&t, &rw.writes).contains(&"p".to_string()));
    }

    #[test]
    fn indirect_read_reads_pointer_and_target() {
        let (t, sets) = run("int x; int main(void){ int *p; int v; p = &x; v = *p; return v; }");
        let load = t.find_stmt("main", "v = *p", 0).unwrap();
        let rw = &sets[&load];
        let reads = names(&t, &rw.reads);
        assert!(reads.contains(&"p".to_string()), "{reads:?}");
        assert!(reads.contains(&"x".to_string()), "{reads:?}");
        assert_eq!(names(&t, &rw.writes), vec!["v"]);
    }

    #[test]
    fn possible_targets_are_may_writes_only() {
        let (t, sets) = run("int x, y, c;
             int main(void){ int *p; if (c) p = &x; else p = &y; *p = 1; return 0; }");
        let store = t.find_stmt("main", "*p = 1", 0).unwrap();
        let rw = &sets[&store];
        let w = names(&t, &rw.writes);
        assert!(
            w.contains(&"x".to_string()) && w.contains(&"y".to_string()),
            "{w:?}"
        );
        assert!(rw.must_writes.is_empty());
    }

    #[test]
    fn conflict_detection() {
        let (t, sets) =
            run("int x; int main(void){ int *p; int v; p = &x; *p = 1; v = x; return v; }");
        let store = t.find_stmt("main", "*p = 1", 0).unwrap();
        let load = t.find_stmt("main", "v = x", 0).unwrap();
        assert!(sets[&store].conflicts_with(&sets[&load]));
    }

    #[test]
    fn function_aggregation() {
        let src = "int g; void w(void){ g = 1; } int main(void){ w(); return 0; }";
        let mut t = pta_core::run_source(src).unwrap();
        let ir = t.ir.clone();
        let per_fn = function_rw_sets(&ir, &mut t.result);
        let w = &per_fn["w"];
        assert!(names_set(&t, &w.writes).contains(&"g".to_string()));
    }

    fn names_set(t: &pta_core::Pta, s: &BTreeSet<LocId>) -> Vec<String> {
        s.iter()
            .map(|l| t.result.locs.name(*l).to_owned())
            .collect()
    }

    #[test]
    fn modref_is_transitive() {
        let src = "int g; int h;
             void leaf(void){ g = 1; }
             void mid(void){ h = 2; leaf(); }
             int main(void){ mid(); return g + h; }";
        let mut t = pta_core::run_source(src).unwrap();
        let ir = t.ir.clone();
        let sums = modref_summaries(&ir, &mut t.result);
        let mid_w = names_set(&t, &sums["mid"].writes);
        assert!(
            mid_w.contains(&"g".to_string()),
            "mid writes g transitively: {mid_w:?}"
        );
        assert!(mid_w.contains(&"h".to_string()), "{mid_w:?}");
        let main_w = names_set(&t, &sums["main"].writes);
        assert!(main_w.contains(&"g".to_string()) && main_w.contains(&"h".to_string()));
    }

    #[test]
    fn modref_filters_callee_locals() {
        let src = "int g;
             void leaf(void){ int local; local = 1; g = local; }
             int main(void){ leaf(); return g; }";
        let mut t = pta_core::run_source(src).unwrap();
        let ir = t.ir.clone();
        let sums = modref_summaries(&ir, &mut t.result);
        let main_w = names_set(&t, &sums["main"].writes);
        assert!(main_w.contains(&"g".to_string()), "{main_w:?}");
        assert!(
            !main_w.contains(&"local".to_string()),
            "callee local leaked: {main_w:?}"
        );
    }

    #[test]
    fn modref_converges_on_recursion() {
        let src = "int g;
             void f(int n){ g = n; if (n) f(n - 1); }
             int main(void){ f(3); return g; }";
        let mut t = pta_core::run_source(src).unwrap();
        let ir = t.ir.clone();
        let sums = modref_summaries(&ir, &mut t.result);
        assert!(names_set(&t, &sums["main"].writes).contains(&"g".to_string()));
    }
}
