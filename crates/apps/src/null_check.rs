//! NULL-dereference detection — a client the points-to abstraction
//! enables directly, since every pointer is initialized to the `null`
//! pseudo-location (§6 of the paper) and kills remove it precisely.

use pta_core::stats::collect_indirect_refs;
use pta_core::AnalysisResult;
use pta_simple::{IrProgram, StmtId, VarRef};

/// Severity of a NULL-dereference finding.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum NullSeverity {
    /// The dereferenced pointer *may* be NULL on some path.
    Possible,
    /// The dereferenced pointer can *only* be NULL here.
    Definite,
}

/// One NULL-dereference finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NullDeref {
    /// Containing function.
    pub function: String,
    /// Program point.
    pub stmt: StmtId,
    /// The indirect reference (rendered).
    pub reference: String,
    /// Severity.
    pub severity: NullSeverity,
}

impl std::fmt::Display for NullDeref {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let kind = match self.severity {
            NullSeverity::Definite => "definite",
            NullSeverity::Possible => "possible",
        };
        write!(
            f,
            "{} NULL dereference of {} in `{}` at {}",
            kind, self.reference, self.function, self.stmt
        )
    }
}

/// Scans every indirect reference for NULL among the targets of its
/// dereferenced pointer. References in unreached code are skipped.
pub fn null_derefs(ir: &IrProgram, result: &mut AnalysisResult) -> Vec<NullDeref> {
    let mut out = Vec::new();
    for occ in collect_indirect_refs(ir) {
        let VarRef::Deref { path, .. } = &occ.r else {
            continue;
        };
        let set = result.at(occ.stmt);
        if set.is_empty() && !result.per_stmt.contains_key(&occ.stmt) {
            continue; // unreached program point
        }
        let ptr_locs = {
            let mut env = pta_core::lvalue::RefEnv {
                ir,
                func: occ.func,
                locs: &mut result.locs,
            };
            env.path_locs(path)
        };
        let mut any_null = false;
        let mut any_non_null = false;
        let mut any_target = false;
        for (pl, _) in &ptr_locs {
            for (t, _) in set.targets(*pl) {
                any_target = true;
                if result.locs.is_null(t) {
                    any_null = true;
                } else {
                    any_non_null = true;
                }
            }
        }
        if !any_target || !any_null {
            continue;
        }
        let f = ir.function(occ.func);
        out.push(NullDeref {
            function: f.name.clone(),
            stmt: occ.stmt,
            reference: pta_simple::printer::ref_str(ir, f, &occ.r),
            severity: if any_non_null {
                NullSeverity::Possible
            } else {
                NullSeverity::Definite
            },
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(src: &str) -> Vec<NullDeref> {
        let mut t = pta_core::run_source(src).expect("analysis ok");
        let ir = t.ir.clone();
        null_derefs(&ir, &mut t.result)
    }

    #[test]
    fn uninitialized_deref_is_definite() {
        let findings = run("int main(void){ int *p; return *p; }");
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].severity, NullSeverity::Definite);
        assert_eq!(findings[0].reference, "*p");
    }

    #[test]
    fn conditional_assignment_is_possible() {
        let findings = run("int x, c; int main(void){ int *p; if (c) p = &x; return *p; }");
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].severity, NullSeverity::Possible);
    }

    #[test]
    fn definitely_assigned_pointer_is_clean() {
        let findings = run("int x; int main(void){ int *p; p = &x; return *p; }");
        assert!(findings.is_empty(), "{findings:?}");
    }

    #[test]
    fn malloc_without_check_is_possible_null_free_model() {
        // Our model makes malloc return (heap, P): the pointer has a
        // non-null target and the null pair was killed by the strong
        // assignment, so no finding.
        let findings = run("int main(void){ int *p; p = (int*) malloc(4); return *p; }");
        assert!(findings.is_empty(), "{findings:?}");
    }

    #[test]
    fn explicit_null_assignment_is_definite() {
        let findings = run("int main(void){ int *p; p = 0; return *p; }");
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].severity, NullSeverity::Definite);
    }

    #[test]
    fn interprocedural_null_return() {
        let findings = run("int x, c;
             int *maybe(void) { if (c) return &x; return 0; }
             int main(void){ int *p; p = maybe(); return *p; }");
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].severity, NullSeverity::Possible);
        assert_eq!(findings[0].function, "main");
    }

    #[test]
    fn display_is_informative() {
        let findings = run("int main(void){ int *p; return *p; }");
        let s = findings[0].to_string();
        assert!(s.contains("definite NULL dereference"));
        assert!(s.contains("*p"));
        assert!(s.contains("main"));
    }
}
