//! # pta-lint — pointer diagnostics on top of the points-to facts
//!
//! A client analysis (DESIGN.md §6): it runs *after* the points-to
//! analysis and turns the computed facts into user-facing diagnostics,
//! graded by the paper's definitely/possibly lattice — a *definite* bad
//! fact is an error, a merely *possible* one is a warning.
//!
//! Eight checks ship in the default registry ([`all_checks`]);
//! see `docs/LINTS.md` for the full catalogue:
//!
//! | id              | reports                                           |
//! |-----------------|---------------------------------------------------|
//! | `null-deref`    | dereference of a NULL/uninitialized pointer        |
//! | `dangling-stack`| address of a callee local escaping its lifetime    |
//! | `indirect-call` | fn-pointer calls with no / mismatched targets      |
//! | `unreachable-fn`| functions on no invocation-graph path from `main`  |
//! | `heap-escape`   | heap reachable only from dead locals at scope exit |
//! | `uninit-read`   | read of a variable no path has initialized         |
//! | `dead-store`    | store to a local whose value is never read         |
//! | `heap-leak`     | overwrite of the last pointer to heap storage      |
//!
//! Diagnostics respect the degradation ladder: results produced by a
//! fallback engine (anything but the full context-sensitive analysis)
//! carry their [`Fidelity`] tag and are *capped at warning severity* —
//! a degraded run has imprecise facts, so nothing it reports can be
//! called definite. The cap is applied after `--deny` escalation, so it
//! cannot be overridden.
//!
//! ```
//! let run = pta_lint::lint_source(
//!     "int main(void) { int *p; return *p; }",
//!     pta_core::AnalysisConfig::default(),
//!     &pta_lint::LintOptions::default(),
//! )?;
//! assert_eq!(run.diagnostics[0].check_id, "null-deref");
//! assert_eq!(run.diagnostics[0].severity, pta_lint::Severity::Error);
//! # Ok::<(), pta_core::PtaError>(())
//! ```

pub mod checks;
pub mod render;
pub mod runner;

pub use checks::all_checks;
pub use render::{render_json, render_text, LINT_SCHEMA};
pub use runner::{lint_files, FileInput, FileReport};

use pta_cfront::span::Span;
use pta_core::query::FactQuery;
use pta_core::{AnalysisConfig, AnalysisResult, Fidelity, PtaError};
use pta_simple::{IrProgram, StmtId};
use std::fmt;

/// How bad a finding is, following the D/P lattice: definite facts are
/// errors, possible facts are warnings.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// The bad state is possible on some path (P).
    Warning,
    /// The bad state holds on every path (D).
    Error,
}

impl Severity {
    /// Machine-readable tag (used in JSON output).
    pub fn tag(self) -> &'static str {
        match self {
            Severity::Warning => "warning",
            Severity::Error => "error",
        }
    }
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.tag())
    }
}

/// One finding of one check.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// The reporting check (stable id, e.g. `null-deref`).
    pub check_id: &'static str,
    /// Error for definite findings, warning for possible ones. Always
    /// [`Severity::Warning`] when `fidelity` is degraded.
    pub severity: Severity,
    /// The engine that produced the underlying facts.
    pub fidelity: Fidelity,
    /// The function the finding is in.
    pub function: String,
    /// The program point, when the finding is tied to a statement.
    pub stmt: Option<StmtId>,
    /// Source location (dummy for programs built without source).
    pub span: Span,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {}[{}]: {}",
            self.span, self.severity, self.check_id, self.message
        )?;
        if !self.fidelity.is_full() {
            write!(f, " (degraded: {})", self.fidelity)?;
        }
        Ok(())
    }
}

/// Everything a [`Check`] may look at, read-only.
pub struct LintContext<'a> {
    /// The program in SIMPLE form.
    pub ir: &'a IrProgram,
    /// The analysis results.
    pub result: &'a AnalysisResult,
    /// Which engine produced `result`.
    pub fidelity: Fidelity,
    /// Read-only fact queries over `ir` + `result`.
    pub query: FactQuery<'a>,
    /// Liveness and initialization facts per function (the substrate
    /// for `uninit-read`, `dead-store`, and `heap-leak`). `None` on
    /// degraded runs: the dataflow transfers resolve indirect defs/uses
    /// through the per-point facts, which only the full
    /// context-sensitive engine records faithfully — so the three
    /// dataflow checks are *silent* (not merely warning-capped) under
    /// degradation.
    pub dataflow: Option<pta_core::dataflow::ProgramDataflow<'a>>,
}

/// One diagnostics pass. Implementations must be deterministic: same
/// program and facts, same findings in the same order.
pub trait Check {
    /// Stable kebab-case id (used by `--allow` / `--deny`).
    fn id(&self) -> &'static str;
    /// One-line description for `--help`-style listings.
    fn description(&self) -> &'static str;
    /// Appends this check's findings to `out`.
    fn run(&self, cx: &LintContext<'_>, out: &mut Vec<Diagnostic>);
}

/// Which checks run and how findings are graded.
#[derive(Debug, Clone, Default)]
pub struct LintOptions {
    /// Check ids to skip entirely.
    pub allow: Vec<String>,
    /// Check ids whose findings escalate to errors (still capped at
    /// warning on degraded runs).
    pub deny: Vec<String>,
}

impl LintOptions {
    fn allowed(&self, id: &str) -> bool {
        self.allow.iter().any(|a| a == id)
    }

    fn denied(&self, id: &str) -> bool {
        self.deny.iter().any(|d| d == id)
    }

    /// The ids that neither [`all_checks`] nor anything else knows —
    /// catching typos in `--allow foo`.
    pub fn unknown_ids(&self) -> Vec<String> {
        let known: Vec<&str> = all_checks().iter().map(|c| c.id()).collect();
        self.allow
            .iter()
            .chain(self.deny.iter())
            .filter(|id| !known.contains(&id.as_str()))
            .cloned()
            .collect()
    }
}

/// Error and warning counts of one diagnostics run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DiagnosticCounts {
    /// Number of error-severity findings.
    pub errors: usize,
    /// Number of warning-severity findings.
    pub warnings: usize,
}

impl DiagnosticCounts {
    /// Tallies a slice of diagnostics.
    pub fn of(diags: &[Diagnostic]) -> Self {
        let errors = diags
            .iter()
            .filter(|d| d.severity == Severity::Error)
            .count();
        DiagnosticCounts {
            errors,
            warnings: diags.len() - errors,
        }
    }

    /// Total findings.
    pub fn total(&self) -> usize {
        self.errors + self.warnings
    }
}

/// Runs the registered checks over one analysed program.
///
/// Findings are sorted by source position (then check id and message)
/// and deduplicated. Grading order: the check's own D/P-derived
/// severity, then `--deny` escalation, then — unconditionally last —
/// the fidelity cap: a degraded run never yields an error.
pub fn lint_ir(
    ir: &IrProgram,
    result: &AnalysisResult,
    fidelity: Fidelity,
    opts: &LintOptions,
) -> Vec<Diagnostic> {
    let query = FactQuery::new(ir, result);
    let dataflow = if fidelity.is_full() {
        Some(pta_core::dataflow::ProgramDataflow::compute(&query))
    } else {
        None
    };
    let cx = LintContext {
        ir,
        result,
        fidelity,
        query,
        dataflow,
    };
    let mut out = Vec::new();
    for check in all_checks() {
        if opts.allowed(check.id()) {
            continue;
        }
        check.run(&cx, &mut out);
    }
    for d in &mut out {
        if opts.denied(d.check_id) {
            d.severity = Severity::Error;
        }
        if !fidelity.is_full() {
            d.severity = Severity::Warning;
        }
    }
    out.sort_by(|a, b| {
        (a.span.line, a.span.col, a.stmt, a.check_id, &a.message).cmp(&(
            b.span.line,
            b.span.col,
            b.stmt,
            b.check_id,
            &b.message,
        ))
    });
    out.dedup();
    out
}

/// A linted compilation: the findings plus the fidelity of the facts
/// they were derived from.
#[derive(Debug)]
pub struct LintRun {
    /// The sorted findings.
    pub diagnostics: Vec<Diagnostic>,
    /// Which engine produced the facts.
    pub fidelity: Fidelity,
}

/// Compiles, analyses (through the degradation ladder), and lints one
/// C source.
///
/// # Errors
///
/// Returns a [`PtaError`] for front-end failures or an exhausted
/// ladder; analysis budget errors degrade instead of failing.
pub fn lint_source(
    source: &str,
    config: AnalysisConfig,
    opts: &LintOptions,
) -> Result<LintRun, PtaError> {
    let (pta, fidelity, _) = pta_core::run_source_resilient(source, config)?;
    let diagnostics = lint_ir(&pta.ir, &pta.result, fidelity, opts);
    Ok(LintRun {
        diagnostics,
        fidelity,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lint(src: &str) -> Vec<Diagnostic> {
        lint_source(src, AnalysisConfig::default(), &LintOptions::default())
            .expect("lints")
            .diagnostics
    }

    #[test]
    fn clean_program_has_no_findings() {
        let d = lint(
            "int x;
             int main(void) { int *p; p = &x; *p = 1; return *p; }",
        );
        assert!(d.is_empty(), "unexpected: {d:?}");
    }

    #[test]
    fn registry_ids_are_unique_and_kebab() {
        let mut ids: Vec<&str> = all_checks().iter().map(|c| c.id()).collect();
        let n = ids.len();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), n);
        assert!(ids
            .iter()
            .all(|id| id.chars().all(|c| c.is_ascii_lowercase() || c == '-')));
        assert_eq!(n, 8);
    }

    #[test]
    fn allow_drops_a_check() {
        let src = "int main(void) { int *p; return *p; }";
        let opts = LintOptions {
            allow: vec!["null-deref".into()],
            ..Default::default()
        };
        let run = lint_source(src, AnalysisConfig::default(), &opts).expect("lints");
        assert!(run.diagnostics.iter().all(|d| d.check_id != "null-deref"));
    }

    #[test]
    fn deny_escalates_on_full_fidelity_runs() {
        // A *possible* null deref: warning by default, error under deny.
        let src = "int x;
                   int c;
                   int main(void) { int *p; if (c) { p = &x; } return *p; }";
        let base = lint(src);
        let warn = base
            .iter()
            .find(|d| d.check_id == "null-deref")
            .expect("possible null deref found");
        assert_eq!(warn.severity, Severity::Warning);
        let opts = LintOptions {
            deny: vec!["null-deref".into()],
            ..Default::default()
        };
        let run = lint_source(src, AnalysisConfig::default(), &opts).expect("lints");
        let esc = run
            .diagnostics
            .iter()
            .find(|d| d.check_id == "null-deref")
            .expect("still found");
        assert_eq!(esc.severity, Severity::Error);
    }

    #[test]
    fn degraded_runs_never_emit_errors_even_under_deny() {
        // A call so the step budget actually trips, plus an
        // uninitialized deref that is a definite error at full fidelity.
        let src = "int x;
                   void set(int **p, int *v) { *p = v; }
                   int main(void) { int *q; int *r; set(&q, &x); return *r; }";
        // Starve the full analysis so the ladder degrades.
        let config = AnalysisConfig {
            max_steps: 1,
            ..Default::default()
        };
        let opts = LintOptions {
            deny: vec![
                "null-deref".into(),
                "dangling-stack".into(),
                "indirect-call".into(),
                "unreachable-fn".into(),
                "heap-escape".into(),
                "uninit-read".into(),
                "dead-store".into(),
                "heap-leak".into(),
            ],
            ..Default::default()
        };
        let run = lint_source(src, config, &opts).expect("lints");
        assert!(!run.fidelity.is_full(), "run degraded");
        assert!(
            run.diagnostics
                .iter()
                .all(|d| d.severity == Severity::Warning),
            "no error escapes a degraded run: {:?}",
            run.diagnostics
        );
        assert!(run.diagnostics.iter().all(|d| !d.fidelity.is_full()));
    }

    #[test]
    fn unknown_ids_are_reported() {
        let opts = LintOptions {
            allow: vec!["null-deref".into(), "no-such-check".into()],
            deny: vec!["also-bogus".into()],
        };
        assert_eq!(opts.unknown_ids(), vec!["no-such-check", "also-bogus"]);
    }
}
