//! Lints many files with worker threads, deterministically.
//!
//! Results come back in input order no matter how many workers ran or
//! how they interleaved, and each file's pipeline is wrapped in
//! `catch_unwind`, so one pathological input cannot take down the run
//! (mirroring the benchmark suite's fault isolation).

use crate::{lint_source, Diagnostic, LintOptions};
use pta_core::{AnalysisConfig, Fidelity};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// One file to lint.
#[derive(Debug, Clone)]
pub struct FileInput {
    /// Display path (used in rendered output).
    pub path: String,
    /// The C source.
    pub source: String,
}

/// What linting one file produced.
#[derive(Debug)]
pub struct FileReport {
    /// Display path, copied from the input.
    pub path: String,
    /// Fidelity of the analysis run (`None` if the file failed).
    pub fidelity: Option<Fidelity>,
    /// Sorted findings (empty if the file failed).
    pub diagnostics: Vec<Diagnostic>,
    /// Front-end/analysis failure or panic, rendered.
    pub error: Option<String>,
}

/// Lints `inputs` with up to `jobs` workers. The output vector is
/// index-aligned with `inputs`.
pub fn lint_files(
    inputs: &[FileInput],
    config: &AnalysisConfig,
    opts: &LintOptions,
    jobs: usize,
) -> Vec<FileReport> {
    let jobs = jobs.max(1).min(inputs.len().max(1));
    let slots: Mutex<Vec<Option<FileReport>>> =
        Mutex::new((0..inputs.len()).map(|_| None).collect());
    let next = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..jobs {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                let Some(input) = inputs.get(i) else { break };
                let report = lint_one(input, config, opts);
                slots.lock().expect("no poisoned slot lock")[i] = Some(report);
            });
        }
    });
    slots
        .into_inner()
        .expect("workers joined")
        .into_iter()
        .map(|r| r.expect("every slot filled"))
        .collect()
}

fn lint_one(input: &FileInput, config: &AnalysisConfig, opts: &LintOptions) -> FileReport {
    let outcome = catch_unwind(AssertUnwindSafe(|| {
        lint_source(&input.source, config.clone(), opts)
    }));
    match outcome {
        Ok(Ok(run)) => FileReport {
            path: input.path.clone(),
            fidelity: Some(run.fidelity),
            diagnostics: run.diagnostics,
            error: None,
        },
        Ok(Err(e)) => FileReport {
            path: input.path.clone(),
            fidelity: None,
            diagnostics: Vec::new(),
            error: Some(e.to_string()),
        },
        Err(payload) => {
            let msg = payload
                .downcast_ref::<&str>()
                .map(|s| (*s).to_owned())
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "panic".to_owned());
            FileReport {
                path: input.path.clone(),
                fidelity: None,
                diagnostics: Vec::new(),
                error: Some(format!("panicked: {msg}")),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn output_order_matches_input_order_across_job_counts() {
        let inputs: Vec<FileInput> = (0..6)
            .map(|i| FileInput {
                path: format!("f{i}.c"),
                source: "int main(void) { int *p; return *p; }".into(),
            })
            .collect();
        let config = AnalysisConfig::default();
        let opts = LintOptions::default();
        let base: Vec<String> = lint_files(&inputs, &config, &opts, 1)
            .iter()
            .map(|r| format!("{}:{:?}", r.path, r.diagnostics))
            .collect();
        for jobs in 2..=8 {
            let run: Vec<String> = lint_files(&inputs, &config, &opts, jobs)
                .iter()
                .map(|r| format!("{}:{:?}", r.path, r.diagnostics))
                .collect();
            assert_eq!(base, run, "jobs={jobs} diverged");
        }
    }

    #[test]
    fn a_failing_file_does_not_poison_its_neighbours() {
        let inputs = vec![
            FileInput {
                path: "bad.c".into(),
                source: "this is not C".into(),
            },
            FileInput {
                path: "good.c".into(),
                source: "int x; int main(void) { int *p; p = &x; return *p; }".into(),
            },
        ];
        let out = lint_files(
            &inputs,
            &AnalysisConfig::default(),
            &LintOptions::default(),
            2,
        );
        assert!(out[0].error.is_some());
        assert!(out[1].error.is_none());
        assert!(out[1].diagnostics.is_empty());
    }
}
