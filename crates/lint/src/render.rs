//! Text and JSON rendering of diagnostics.
//!
//! JSON is hand-rolled (the build environment is offline, so no serde);
//! the shape matches the benchmark suite's reports: stable key order,
//! one object per diagnostic.
//!
//! Severity in the rendered output is post-grading: `--deny`
//! escalations are applied first, then the fidelity cap — a file whose
//! analysis degraded to a cheaper engine reports at most warning
//! severity, even for denied checks, and therefore never drives the
//! exit-1-on-errors path by itself (the per-file `fidelity`/`degraded`
//! JSON keys say when the cap was in effect). README "Linting" and
//! DESIGN.md §6 state the same contract.

use crate::runner::FileReport;
use crate::{Diagnostic, DiagnosticCounts};
use std::fmt::Write as _;

/// Renders file reports the way compilers do:
/// `path:line:col: severity[check-id]: message`, with a trailing
/// per-severity summary line.
pub fn render_text(reports: &[FileReport]) -> String {
    let mut out = String::new();
    let mut counts = DiagnosticCounts::default();
    for r in reports {
        if let Some(err) = &r.error {
            let _ = writeln!(out, "{}: failed: {}", r.path, err);
            continue;
        }
        for d in &r.diagnostics {
            let _ = writeln!(out, "{}:{}", r.path, d);
        }
        let c = DiagnosticCounts::of(&r.diagnostics);
        counts.errors += c.errors;
        counts.warnings += c.warnings;
    }
    let _ = writeln!(
        out,
        "{} error{}, {} warning{}",
        counts.errors,
        if counts.errors == 1 { "" } else { "s" },
        counts.warnings,
        if counts.warnings == 1 { "" } else { "s" },
    );
    out
}

/// The versioned schema tag on `pta lint --json` output. Bumped on any
/// incompatible shape change (like the store's `pta.v1` and the load
/// generator's `pta.load.v1`).
pub const LINT_SCHEMA: &str = "pta.lint.v1";

/// Renders file reports as one JSON document, tagged
/// `"schema": "pta.lint.v1"`, with per-check finding counts over the
/// whole run (every registered check appears, zero or not — consumers
/// can diff coverage without knowing the registry).
pub fn render_json(reports: &[FileReport]) -> String {
    let mut out = format!("{{\n  \"schema\": \"{LINT_SCHEMA}\",\n  \"files\": [\n");
    let mut counts = DiagnosticCounts::default();
    let mut per_check: Vec<(&'static str, usize)> = crate::all_checks()
        .iter()
        .map(|c| (c.id(), 0usize))
        .collect();
    for (i, r) in reports.iter().enumerate() {
        let sep = if i + 1 == reports.len() { "" } else { "," };
        out.push_str("    {\"path\": \"");
        out.push_str(&json_escape(&r.path));
        out.push('"');
        if let Some(err) = &r.error {
            let _ = write!(out, ", \"error\": \"{}\"", json_escape(err));
            let _ = writeln!(out, "}}{sep}");
            continue;
        }
        if let Some(fid) = r.fidelity {
            let _ = write!(
                out,
                ", \"fidelity\": \"{}\", \"degraded\": {}",
                fid.tag(),
                !fid.is_full()
            );
        }
        out.push_str(", \"diagnostics\": [");
        for (j, d) in r.diagnostics.iter().enumerate() {
            if j > 0 {
                out.push_str(", ");
            }
            out.push_str(&diagnostic_json(d));
        }
        let c = DiagnosticCounts::of(&r.diagnostics);
        counts.errors += c.errors;
        counts.warnings += c.warnings;
        for d in &r.diagnostics {
            if let Some(e) = per_check.iter_mut().find(|(id, _)| *id == d.check_id) {
                e.1 += 1;
            }
        }
        let _ = writeln!(out, "]}}{sep}");
    }
    out.push_str("  ],\n  \"counts\": {");
    for (i, (id, n)) in per_check.iter().enumerate() {
        let _ = write!(out, "{}\"{id}\": {n}", if i > 0 { ", " } else { "" });
    }
    let _ = write!(
        out,
        "}},\n  \"errors\": {}, \"warnings\": {}\n}}\n",
        counts.errors, counts.warnings
    );
    out
}

fn diagnostic_json(d: &Diagnostic) -> String {
    format!(
        "{{\"check\": \"{}\", \"severity\": \"{}\", \"fidelity\": \"{}\", \
         \"function\": \"{}\", \"line\": {}, \"col\": {}, \"message\": \"{}\"}}",
        d.check_id,
        d.severity.tag(),
        d.fidelity.tag(),
        json_escape(&d.function),
        d.span.line,
        d.span.col,
        json_escape(&d.message),
    )
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use pta_core::AnalysisConfig;

    fn report(src: &str) -> FileReport {
        crate::runner::lint_files(
            &[crate::runner::FileInput {
                path: "t.c".into(),
                source: src.into(),
            }],
            &AnalysisConfig::default(),
            &crate::LintOptions::default(),
            1,
        )
        .remove(0)
    }

    #[test]
    fn text_lists_path_line_and_summary() {
        let r = report("int main(void) { int *p; return *p; }");
        let txt = render_text(&[r]);
        assert!(txt.contains("t.c:"), "{txt}");
        assert!(txt.contains("error[null-deref]"), "{txt}");
        assert!(txt.lines().last().unwrap().contains("error"), "{txt}");
    }

    #[test]
    fn json_is_balanced_and_tagged() {
        let r = report("int main(void) { int *p; return *p; }");
        let js = render_json(&[r]);
        assert_eq!(
            js.matches('{').count(),
            js.matches('}').count(),
            "balanced braces: {js}"
        );
        assert!(js.contains("\"fidelity\": \"context-sensitive\""), "{js}");
        assert!(js.contains("\"check\": \"null-deref\""), "{js}");
    }

    #[test]
    fn json_is_schema_tagged_with_per_check_counts() {
        let r = report("int main(void) { int *p; return *p; }");
        let js = render_json(&[r]);
        assert!(js.contains("\"schema\": \"pta.lint.v1\""), "{js}");
        // Every registered check appears in the counts object, found
        // or not.
        for c in crate::all_checks() {
            assert!(
                js.contains(&format!("\"{}\":", c.id())),
                "counts lack `{}`: {js}",
                c.id()
            );
        }
        assert!(js.contains("\"null-deref\": 1"), "{js}");
        assert!(js.contains("\"dangling-stack\": 0"), "{js}");
    }

    #[test]
    fn frontend_failures_render_as_errors_not_panics() {
        let r = report("int main( {");
        assert!(r.error.is_some());
        let txt = render_text(std::slice::from_ref(&r));
        assert!(txt.contains("failed"), "{txt}");
        let js = render_json(&[r]);
        assert!(js.contains("\"error\""), "{js}");
    }
}
