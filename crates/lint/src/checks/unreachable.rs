//! `unreachable-fn`: defined functions the program can never invoke.
//!
//! The invocation graph enumerates every function the analysis could
//! reach from `main`, indirect calls included (Figure 5 grows the graph
//! as function-pointer targets are discovered). The graph is a sound
//! over-approximation, so a defined function absent from it is
//! *definitely* never invoked. Fallback results have no invocation
//! graph; [`pta_core::FactQuery::reachable_functions`] then widens to
//! the direct call graph plus address-taken functions, and the
//! fidelity cap turns the findings into warnings.

use crate::{Check, Diagnostic, LintContext, Severity};

/// See the module docs.
pub struct UnreachableFn;

impl Check for UnreachableFn {
    fn id(&self) -> &'static str {
        "unreachable-fn"
    }

    fn description(&self) -> &'static str {
        "functions on no invocation path from the entry"
    }

    fn run(&self, cx: &LintContext<'_>, out: &mut Vec<Diagnostic>) {
        let Some(entry) = cx.ir.entry else { return };
        let reach = cx.query.reachable_functions();
        for (fid, f) in cx.ir.defined_functions() {
            if fid == entry || reach.contains(&fid) {
                continue;
            }
            out.push(Diagnostic {
                check_id: self.id(),
                severity: Severity::Error,
                fidelity: cx.fidelity,
                function: f.name.clone(),
                stmt: None,
                span: f.span,
                message: format!(
                    "function `{}` is defined but on no invocation path from `main`",
                    f.name
                ),
            });
        }
    }
}
