//! `dangling-stack`: the address of a callee local escaping the call.
//!
//! The unmap process (§4.1) drops points-to pairs whose target is a
//! local of the returning callee — the storage is dead. The engine
//! records each such drop as an [`pta_core::EscapeEvent`]; this check
//! turns them into diagnostics at the responsible call site. A pair
//! that was definite in the callee's output dangles on every path
//! through the call: error. Fallback engines don't model scopes and
//! record no events, so degraded runs report nothing here.

use crate::{Check, Diagnostic, LintContext, Severity};
use pta_core::{Def, EscapeVia};

/// See the module docs.
pub struct DanglingStack;

impl Check for DanglingStack {
    fn id(&self) -> &'static str {
        "dangling-stack"
    }

    fn description(&self) -> &'static str {
        "address of a stack local outliving its frame"
    }

    fn run(&self, cx: &LintContext<'_>, out: &mut Vec<Diagnostic>) {
        for ev in &cx.result.escapes {
            let site = &cx.ir.call_sites[ev.call_site.0 as usize];
            let caller = cx.ir.function(site.caller);
            let callee = cx.ir.function(ev.callee);
            let via = match ev.via {
                EscapeVia::Unmap => "a location visible to the caller",
                EscapeVia::Return => "its return value",
            };
            out.push(Diagnostic {
                check_id: self.id(),
                severity: if ev.def == Def::D {
                    Severity::Error
                } else {
                    Severity::Warning
                },
                fidelity: cx.fidelity,
                function: caller.name.clone(),
                stmt: Some(site.stmt),
                span: cx.query.span_of(site.stmt),
                message: format!(
                    "call to `{}` leaks the address of its local `{}` through {}; \
                     the pointer dangles once `{}` returns",
                    callee.name, ev.local, via, callee.name
                ),
            });
        }
    }
}
