//! `null-deref`: dereferences whose pointer has NULL among its targets.
//!
//! The paper initializes every pointer to `(p, null, D)` (§6), so an
//! uninitialized pointer dereference shows up as a NULL-only target set
//! — a *definite* error. A pointer that is NULL on only some paths
//! keeps NULL as one possible target — a warning.

use crate::{Check, Diagnostic, LintContext, Severity};
use pta_core::stats::collect_indirect_refs;
use pta_simple::printer;

/// See the module docs.
pub struct NullDeref;

impl Check for NullDeref {
    fn id(&self) -> &'static str {
        "null-deref"
    }

    fn description(&self) -> &'static str {
        "dereference of a pointer that is NULL or uninitialized"
    }

    fn run(&self, cx: &LintContext<'_>, out: &mut Vec<Diagnostic>) {
        for occ in collect_indirect_refs(cx.ir) {
            if !cx.query.reached(occ.stmt) {
                continue; // dead code: no facts, nothing to report
            }
            let set = cx.query.at(occ.stmt);
            let tgts = cx.query.deref_base_targets(occ.func, &set, &occ.r);
            let any_null = tgts.iter().any(|(t, _)| cx.result.locs.is_null(*t));
            if !any_null {
                continue;
            }
            let only_null = tgts.iter().all(|(t, _)| cx.result.locs.is_null(*t));
            let f = cx.ir.function(occ.func);
            let txt = printer::ref_str(cx.ir, f, &occ.r);
            let (severity, why) = if only_null {
                (
                    Severity::Error,
                    "is NULL or uninitialized on every path to this point",
                )
            } else {
                (Severity::Warning, "may be NULL at this point")
            };
            out.push(Diagnostic {
                check_id: self.id(),
                severity,
                fidelity: cx.fidelity,
                function: f.name.clone(),
                stmt: Some(occ.stmt),
                span: cx.query.span_of(occ.stmt),
                message: format!(
                    "`{}` in `{}`: the dereferenced pointer {}",
                    txt, f.name, why
                ),
            });
        }
    }
}
