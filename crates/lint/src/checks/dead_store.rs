//! `dead-store`: stores whose value no path ever reads.
//!
//! Built on the backward location-liveness analysis
//! ([`pta_core::dataflow`]): a *strong* direct store to a local or
//! parameter whose storage (the slot and everything under it) is dead
//! afterwards computed a value nobody uses. Always a warning — the
//! store is wasted work and usually a logic slip, but never undefined
//! behavior.
//!
//! Only plain-path stores are considered (a dereferencing store depends
//! on where the pointer points — aliasing makes "never read" too bold a
//! claim), and only never-address-taken roots (reads through saved
//! pointers don't appear as syntactic uses; liveness already keeps all
//! address-taken storage alive, so such stores never look dead anyway).
//! Calls and allocations are excluded: an unused call result doesn't
//! make the call dead, and an unused allocation is `heap-leak`'s
//! finding, not a wasted arithmetic value.

use crate::{Check, Diagnostic, LintContext, Severity};
use pta_core::Def;
use pta_simple::{BasicStmt, VarKind};

/// See the module docs.
pub struct DeadStore;

impl Check for DeadStore {
    fn id(&self) -> &'static str {
        "dead-store"
    }

    fn description(&self) -> &'static str {
        "store to a local whose value is never read"
    }

    fn run(&self, cx: &LintContext<'_>, out: &mut Vec<Diagnostic>) {
        let Some(df) = &cx.dataflow else { return };
        for (&fid, facts) in &df.funcs {
            if !facts.converged {
                continue;
            }
            let f = cx.ir.function(fid);
            for (n, node) in facts.cfg.nodes.iter().enumerate() {
                let pta_core::NodeKind::Basic(b, stmt) = node else {
                    continue;
                };
                if !matches!(
                    b,
                    BasicStmt::Copy { .. }
                        | BasicStmt::Unary { .. }
                        | BasicStmt::Binary { .. }
                        | BasicStmt::PtrArith { .. }
                ) {
                    continue;
                }
                if !cx.query.reached(*stmt) {
                    continue;
                }
                for &(ix, d) in &facts.writes[n] {
                    if d != Def::D {
                        continue; // weak writes may feed another slot
                    }
                    let var = facts.domain[ix].var;
                    if !matches!(f.var(var).kind, VarKind::Local | VarKind::Param(_)) {
                        continue; // lowering temps are single-use by construction
                    }
                    if facts.addr_taken.contains(ix) {
                        continue;
                    }
                    if facts.extensions[ix]
                        .iter()
                        .any(|&e| facts.live_out[n].contains(e))
                    {
                        continue; // something under the slot is still read
                    }
                    out.push(Diagnostic {
                        check_id: self.id(),
                        severity: Severity::Warning,
                        fidelity: cx.fidelity,
                        function: f.name.clone(),
                        stmt: Some(*stmt),
                        span: cx.query.span_of(*stmt),
                        message: format!(
                            "value stored to `{}` in `{}` is never read",
                            facts.render(f, ix),
                            f.name
                        ),
                    });
                }
            }
        }
    }
}
