//! `indirect-call`: function-pointer calls that cannot work.
//!
//! The engine resolves indirect callees from the pointer's R-location
//! set (Figure 5); this check re-derives that set read-only and
//! reports:
//!
//! - no function among the targets (NULL-only, or data locations from
//!   cast abuse) — the engine treats the call as a no-op, so this is a
//!   definite error;
//! - NULL among the targets next to real functions — possibly NULL at
//!   the call, a warning;
//! - an arity mismatch between the call and a resolved target —
//!   definite when the mismatching function is the unique, definite
//!   target, possible otherwise.

use crate::{Check, Diagnostic, LintContext, Severity};
use pta_cfront::ast::FuncId;
use pta_core::Def;
use pta_simple::{printer, BasicStmt, CallTarget, Operand, StmtId, VarRef};

/// See the module docs.
pub struct IndirectCall;

impl Check for IndirectCall {
    fn id(&self) -> &'static str {
        "indirect-call"
    }

    fn description(&self) -> &'static str {
        "indirect calls with no or incompatible function targets"
    }

    fn run(&self, cx: &LintContext<'_>, out: &mut Vec<Diagnostic>) {
        for (fid, f) in cx.ir.defined_functions() {
            let Some(body) = &f.body else { continue };
            let mut sites: Vec<(StmtId, &VarRef, usize)> = Vec::new();
            body.for_each_basic(&mut |b, id| {
                if let BasicStmt::Call {
                    target: CallTarget::Indirect(r),
                    args,
                    ..
                } = b
                {
                    sites.push((id, r, args.len()));
                }
            });
            for (stmt, fnptr, n_args) in sites {
                if !cx.query.reached(stmt) {
                    continue;
                }
                let set = cx.query.at(stmt);
                let vals = cx
                    .query
                    .operand_r_locations(fid, &set, &Operand::Ref(fnptr.clone()));
                if vals.is_empty() {
                    continue; // nothing materialized: dead path
                }
                let txt = printer::ref_str(cx.ir, f, fnptr);
                let span = cx.query.span_of(stmt);
                let fns: Vec<(FuncId, Def)> = vals
                    .iter()
                    .filter_map(|(t, d)| cx.result.locs.as_function(*t).map(|g| (g, *d)))
                    .collect();
                if fns.is_empty() {
                    out.push(Diagnostic {
                        check_id: self.id(),
                        severity: Severity::Error,
                        fidelity: cx.fidelity,
                        function: f.name.clone(),
                        stmt: Some(stmt),
                        span,
                        message: format!(
                            "indirect call through `{}` in `{}` has no function targets \
                             on any path; the call can never succeed",
                            txt, f.name
                        ),
                    });
                    continue;
                }
                if vals.iter().any(|(t, _)| cx.result.locs.is_null(*t)) {
                    out.push(Diagnostic {
                        check_id: self.id(),
                        severity: Severity::Warning,
                        fidelity: cx.fidelity,
                        function: f.name.clone(),
                        stmt: Some(stmt),
                        span,
                        message: format!(
                            "indirect call through `{}` in `{}`: the pointer may be NULL \
                             at the call",
                            txt, f.name
                        ),
                    });
                }
                for (g, d) in &fns {
                    let callee = cx.ir.function(*g);
                    let ok =
                        n_args == callee.n_params || (callee.variadic && n_args >= callee.n_params);
                    if ok {
                        continue;
                    }
                    let definite = fns.len() == 1 && *d == Def::D;
                    out.push(Diagnostic {
                        check_id: self.id(),
                        severity: if definite {
                            Severity::Error
                        } else {
                            Severity::Warning
                        },
                        fidelity: cx.fidelity,
                        function: f.name.clone(),
                        stmt: Some(stmt),
                        span,
                        message: format!(
                            "indirect call through `{}` in `{}` passes {} argument{} to \
                             `{}`, which takes {}",
                            txt,
                            f.name,
                            n_args,
                            if n_args == 1 { "" } else { "s" },
                            callee.name,
                            callee.n_params
                        ),
                    });
                }
            }
        }
    }
}
