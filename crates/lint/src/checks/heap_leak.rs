//! `heap-leak`: the last pointer to heap storage is overwritten.
//!
//! `heap-escape` (PR 3) catches heap that dies with a returning frame;
//! this check catches the *mid-function* loss: a strong store into the
//! only remaining holder of a heap location makes that allocation
//! unreachable on the spot. At each strong pointer overwrite the facts
//! *before* the statement name the old heap targets; if the overwritten
//! slot was their only holder and the incoming value does not retain
//! them, they leak here.
//!
//! Always a warning: the heap model is a summary location (one per
//! allocation site under `--heap-sites`, a single `heap` otherwise), so
//! another live allocation can share the abstract location — and with
//! the single-summary model a self-assignment through fresh heap keeps
//! the summary "reachable". The check is therefore markedly more
//! precise under `--heap-sites`. Lowering temporaries (`_tN`,
//! dead by construction after their expression) do not count as
//! holders, or chained allocation statements would mask every loss.

use crate::{Check, Diagnostic, LintContext, Severity};
use pta_core::location::LocBase;
use pta_simple::{BasicStmt, Operand, VarKind, VarRef};

/// See the module docs.
pub struct HeapLeak;

impl Check for HeapLeak {
    fn id(&self) -> &'static str {
        "heap-leak"
    }

    fn description(&self) -> &'static str {
        "overwrite of the last pointer to heap storage"
    }

    fn run(&self, cx: &LintContext<'_>, out: &mut Vec<Diagnostic>) {
        if cx.dataflow.is_none() {
            return; // degraded run: per-point facts too weak to accuse
        }
        for (fid, f) in cx.ir.defined_functions() {
            let Some(body) = &f.body else { continue };
            let mut sites: Vec<(pta_simple::StmtId, &VarRef, Option<&Operand>)> = Vec::new();
            body.for_each_basic(&mut |b, id| match b {
                BasicStmt::Copy { lhs, rhs } => sites.push((id, lhs, Some(rhs))),
                BasicStmt::Alloc { lhs, .. } => sites.push((id, lhs, None)),
                _ => {}
            });
            for (stmt, lhs, rhs) in sites {
                if !cx.query.reached(stmt) {
                    continue;
                }
                let set = cx.query.at(stmt);
                let ls = cx.query.l_locations(fid, &set, lhs);
                // Only strong overwrites lose the old value for sure.
                if ls.len() != 1
                    || ls[0].1 != pta_core::Def::D
                    || cx.result.locs.is_summary(ls[0].0)
                {
                    continue;
                }
                let l = ls[0].0;
                let old_heap: Vec<_> = set
                    .targets(l)
                    .filter(|(t, _)| cx.result.locs.is_heap(*t))
                    .map(|(t, _)| t)
                    .collect();
                if old_heap.is_empty() {
                    continue;
                }
                // What the slot holds afterwards still reaches these.
                let kept: Vec<_> = match rhs {
                    Some(op) => cx
                        .query
                        .operand_r_locations(fid, &set, op)
                        .into_iter()
                        .map(|(t, _)| t)
                        .collect(),
                    None => Vec::new(), // fresh allocation: old targets lost
                };
                for t in old_heap {
                    if kept.contains(&t) {
                        continue;
                    }
                    // Any other holder — another local, a global, the
                    // caller's memory (symbolic), a return slot — keeps
                    // the storage reachable. Lowering temps don't count.
                    let held_elsewhere = set.iter().any(|(s, t2, _)| {
                        t2 == t
                            && s != l
                            && !matches!(&cx.result.locs.get(s).base,
                                LocBase::Var(g, v)
                                    if matches!(cx.ir.function(*g).var(*v).kind, VarKind::Temp))
                    });
                    if held_elsewhere {
                        continue;
                    }
                    out.push(Diagnostic {
                        check_id: self.id(),
                        severity: Severity::Warning,
                        fidelity: cx.fidelity,
                        function: f.name.clone(),
                        stmt: Some(stmt),
                        span: cx.query.span_of(stmt),
                        message: format!(
                            "overwriting `{}` in `{}` loses the last pointer to `{}` \
                             (possible leak)",
                            cx.result.locs.name(l),
                            f.name,
                            cx.result.locs.name(t)
                        ),
                    });
                }
            }
        }
    }
}
