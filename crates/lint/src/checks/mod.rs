//! The built-in checks and their registry.

mod dangling;
mod heap_escape;
mod indirect_call;
mod null_deref;
mod unreachable;

pub use dangling::DanglingStack;
pub use heap_escape::HeapEscape;
pub use indirect_call::IndirectCall;
pub use null_deref::NullDeref;
pub use unreachable::UnreachableFn;

use crate::Check;

/// The default registry, in reporting-stable order.
pub fn all_checks() -> Vec<Box<dyn Check>> {
    vec![
        Box::new(NullDeref),
        Box::new(DanglingStack),
        Box::new(IndirectCall),
        Box::new(UnreachableFn),
        Box::new(HeapEscape),
    ]
}
