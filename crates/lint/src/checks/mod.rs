//! The built-in checks and their registry.

mod dangling;
mod dead_store;
mod heap_escape;
mod heap_leak;
mod indirect_call;
mod null_deref;
mod uninit_read;
mod unreachable;

pub use dangling::DanglingStack;
pub use dead_store::DeadStore;
pub use heap_escape::HeapEscape;
pub use heap_leak::HeapLeak;
pub use indirect_call::IndirectCall;
pub use null_deref::NullDeref;
pub use uninit_read::UninitRead;
pub use unreachable::UnreachableFn;

use crate::Check;

/// The default registry, in reporting-stable order.
pub fn all_checks() -> Vec<Box<dyn Check>> {
    vec![
        Box::new(NullDeref),
        Box::new(DanglingStack),
        Box::new(IndirectCall),
        Box::new(UnreachableFn),
        Box::new(HeapEscape),
        Box::new(UninitRead),
        Box::new(DeadStore),
        Box::new(HeapLeak),
    ]
}
