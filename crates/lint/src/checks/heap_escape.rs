//! `heap-escape`: heap storage about to become unreachable.
//!
//! At each `return` of a function, heap locations whose every holder is
//! one of the function's own (dying) locals are about to leak: nothing
//! that survives the frame — a global, the caller's memory (symbolic
//! invisible variables), or the returned value — can still reach them.
//! The heap model is a summary location, so this is always a *possible*
//! finding (a warning): two allocations share the abstract `heap`, and
//! one surviving reference keeps the summary alive.
//!
//! Reachability is computed over storage roots (location bases), so a
//! pointer stored in a field of a live struct keeps its target alive.

use crate::{Check, Diagnostic, LintContext, Severity};
use pta_core::location::LocBase;
use pta_simple::{BasicStmt, Operand, StmtId};
use std::collections::BTreeSet;

/// See the module docs.
pub struct HeapEscape;

/// True for the simplifier's generated temporaries (`_t1`, `_t2`, …).
fn is_simplifier_temp(name: &str) -> bool {
    name.strip_prefix("_t")
        .is_some_and(|rest| !rest.is_empty() && rest.bytes().all(|b| b.is_ascii_digit()))
}

impl Check for HeapEscape {
    fn id(&self) -> &'static str {
        "heap-escape"
    }

    fn description(&self) -> &'static str {
        "heap reachable only from dead locals at scope exit"
    }

    fn run(&self, cx: &LintContext<'_>, out: &mut Vec<Diagnostic>) {
        for (fid, f) in cx.ir.defined_functions() {
            let Some(body) = &f.body else { continue };
            let mut returns: Vec<(StmtId, Option<Operand>)> = Vec::new();
            body.for_each_basic(&mut |b, id| {
                if let BasicStmt::Return(v) = b {
                    returns.push((id, v.clone()));
                }
            });
            for (stmt, ret) in returns {
                if !cx.query.reached(stmt) {
                    continue;
                }
                let set = cx.query.at(stmt);
                // Bases that survive the frame: globals, string storage,
                // the caller's memory behind symbolic names, and
                // whatever the return value hands back.
                let mut alive: BTreeSet<LocBase> = BTreeSet::new();
                for (s, t, _) in set.iter() {
                    for l in [s, t] {
                        if let b @ (LocBase::Global(_) | LocBase::StrLit | LocBase::Symbolic(..)) =
                            cx.result.locs.get(l).base.clone()
                        {
                            alive.insert(b);
                        }
                    }
                }
                if let Some(op) = &ret {
                    for (t, _) in cx.query.operand_r_locations(fid, &set, op) {
                        alive.insert(cx.result.locs.get(t).base.clone());
                    }
                }
                // Pointers stored in surviving storage keep their
                // targets alive, transitively.
                loop {
                    let mut grew = false;
                    for (s, t, _) in set.iter() {
                        if alive.contains(&cx.result.locs.get(s).base) {
                            grew |= alive.insert(cx.result.locs.get(t).base.clone());
                        }
                    }
                    if !grew {
                        break;
                    }
                }
                // Heap held only by this function's locals → leak.
                let mut holders: Vec<String> = Vec::new();
                for (s, t, _) in set.iter() {
                    if !cx.result.locs.is_heap(t) || alive.contains(&cx.result.locs.get(t).base) {
                        continue;
                    }
                    if matches!(cx.result.locs.get(s).base, LocBase::Var(g, _) if g == fid) {
                        let name = cx.result.locs.name(s).to_owned();
                        if !holders.contains(&name) {
                            holders.push(name);
                        }
                    }
                }
                if holders.is_empty() {
                    continue;
                }
                // Simplifier temporaries (`_tN`) also hold the heap
                // pointer but mean nothing to the user; hide them
                // whenever a user-named holder exists.
                let named: Vec<String> = holders
                    .iter()
                    .filter(|h| !is_simplifier_temp(h))
                    .cloned()
                    .collect();
                let holders = if named.is_empty() { holders } else { named };
                out.push(Diagnostic {
                    check_id: self.id(),
                    severity: Severity::Warning,
                    fidelity: cx.fidelity,
                    function: f.name.clone(),
                    stmt: Some(stmt),
                    span: cx.query.span_of(stmt),
                    message: format!(
                        "heap storage is reachable only from {} of `{}` when it returns \
                         (possible leak: {})",
                        if holders.len() == 1 {
                            "the dying local"
                        } else {
                            "the dying locals"
                        },
                        f.name,
                        holders.join(", ")
                    ),
                });
            }
        }
    }
}
