//! `uninit-read`: reads of storage no path has initialized.
//!
//! Built on the forward may/must-initialization analysis
//! ([`pta_core::dataflow`]): each CFG node's reads — including pointer
//! reads of dereferences and reads *through* pointers, resolved by the
//! points-to facts — are compared against the initialization fact
//! before the node. A read with no initialized overlapping storage on
//! *any* path is definite (error); one that is uninitialized only on
//! *some* path is possible (warning).
//!
//! Parameters (and everything under them) count as initialized at
//! entry; storage handed to a callee by address (`f(&x)`) counts as
//! possibly initialized afterwards; calls that may write memory count
//! as possibly initializing all address-taken storage. The
//! possible-grade finding is suppressed for address-taken variables —
//! writes through saved pointers make the *must* side too weak to
//! accuse them.

use crate::{Check, Diagnostic, LintContext, Severity};
use pta_core::Def;
use pta_simple::VarKind;

/// See the module docs.
pub struct UninitRead;

impl Check for UninitRead {
    fn id(&self) -> &'static str {
        "uninit-read"
    }

    fn description(&self) -> &'static str {
        "read of a variable no path has initialized"
    }

    fn run(&self, cx: &LintContext<'_>, out: &mut Vec<Diagnostic>) {
        let Some(df) = &cx.dataflow else { return };
        for (&fid, facts) in &df.funcs {
            if !facts.converged {
                continue; // ran out of solver visits: facts unusable
            }
            let f = cx.ir.function(fid);
            for (n, _) in facts.cfg.nodes.iter().enumerate() {
                let Some(stmt) = facts.cfg.stmt_of(n) else {
                    continue;
                };
                if !cx.query.reached(stmt) {
                    continue; // dead code: no facts, nothing to report
                }
                let init = &facts.init_in[n];
                for &(ix, d) in &facts.reads[n] {
                    let rel = &facts.overlap[ix];
                    let var = facts.domain[ix].var;
                    if matches!(f.var(var).kind, VarKind::Temp) {
                        continue; // lowering temps are def-before-use
                    }
                    let may_any = rel.iter().any(|&r| init.may.contains(r));
                    let must_any = rel.iter().any(|&r| init.must.contains(r));
                    let (severity, why) = if !may_any {
                        (
                            if d == Def::D {
                                Severity::Error
                            } else {
                                Severity::Warning
                            },
                            "is read before initialization",
                        )
                    } else if !must_any && !facts.addr_taken.contains(ix) {
                        (
                            Severity::Warning,
                            "may be read before initialization on some path",
                        )
                    } else {
                        continue;
                    };
                    out.push(Diagnostic {
                        check_id: self.id(),
                        severity,
                        fidelity: cx.fidelity,
                        function: f.name.clone(),
                        stmt: Some(stmt),
                        span: cx.query.span_of(stmt),
                        message: format!("`{}` in `{}` {}", facts.render(f, ix), f.name, why),
                    });
                }
            }
        }
    }
}
