//! End-to-end tests of the simplifier: C source in, SIMPLE invariants
//! and shapes out.

use pta_simple::printer::print_function;
use pta_simple::{compile, BasicStmt, CallTarget, IdxClass, IrProgram, Operand, Stmt, VarRef};

fn body_text(ir: &IrProgram, name: &str) -> String {
    let (_, f) = ir.function_by_name(name).expect("function exists");
    print_function(ir, f)
}

fn basics(ir: &IrProgram, name: &str) -> Vec<BasicStmt> {
    let (_, f) = ir.function_by_name(name).expect("function exists");
    let mut v = Vec::new();
    f.body
        .as_ref()
        .unwrap()
        .for_each_basic(&mut |b, _| v.push(b.clone()));
    v
}

#[test]
fn simple_assignment_chain() {
    let ir = compile("int g; int main(void){ int *p; p = &g; *p = 3; return g; }").unwrap();
    let t = body_text(&ir, "main");
    assert!(t.contains("p = &g;"), "got:\n{t}");
    assert!(t.contains("*p = 3;"), "got:\n{t}");
}

#[test]
fn double_indirection_introduces_temp() {
    let ir = compile(
        "int main(void){ int x; int *p; int **pp; pp = &p; **pp = 1; x = **pp; return x; }",
    )
    .unwrap();
    let t = body_text(&ir, "main");
    // **pp must be split: t = *pp; *t = 1;
    assert!(t.contains("_t"), "expected a temp, got:\n{t}");
    assert!(t.contains("= *pp;"), "got:\n{t}");
    // No reference has two levels of indirection (printer would show `**`).
    assert!(!t.contains("**"), "got:\n{t}");
}

#[test]
fn triple_indirection_splits_twice() {
    let ir = compile(
        "int main(void){ int x; int *p; int **pp; int ***ppp; ppp = &pp; pp = &p; p = &x; ***ppp = 7; return x; }",
    )
    .unwrap();
    let t = body_text(&ir, "main");
    assert!(!t.contains("**"), "got:\n{t}");
}

#[test]
fn arrow_becomes_single_deref_with_field() {
    let ir = compile(
        "struct node { int val; struct node *next; };
         int main(void){ struct node n; struct node *p; p = &n; p->val = 4; p->next = p; return 0; }",
    )
    .unwrap();
    let t = body_text(&ir, "main");
    assert!(t.contains("(*p).val = 4;"), "got:\n{t}");
    assert!(t.contains("(*p).next = p;"), "got:\n{t}");
}

#[test]
fn chained_arrows_split() {
    let ir = compile(
        "struct node { int val; struct node *next; };
         int f(struct node *p){ return p->next->val; }",
    )
    .unwrap();
    let t = body_text(&ir, "f");
    // p->next->val must introduce a temp for p->next.
    assert!(t.contains("= (*p).next;"), "got:\n{t}");
}

#[test]
fn array_head_tail_classification() {
    let ir = compile(
        "int a[10]; int main(void){ int i; i = 1; a[0] = 1; a[5] = 2; a[i] = 3; return 0; }",
    )
    .unwrap();
    let t = body_text(&ir, "main");
    assert!(t.contains("a[0] = 1;"), "got:\n{t}");
    assert!(t.contains("a[+] = 2;"), "got:\n{t}");
    assert!(t.contains("a[?] = 3;"), "got:\n{t}");
}

#[test]
fn array_rvalue_decays_to_addr_of_head() {
    let ir = compile("int a[10]; int main(void){ int *p; p = a; return *p; }").unwrap();
    let t = body_text(&ir, "main");
    assert!(t.contains("p = &a[0];"), "got:\n{t}");
}

#[test]
fn pointer_subscript_is_shifted_deref() {
    let ir = compile("int f(int *p, int i){ p[0] = 1; p[2] = 2; p[i] = 3; return 0; }").unwrap();
    let t = body_text(&ir, "f");
    assert!(t.contains("*p = 1;"), "got:\n{t}");
    assert!(t.contains("*(p + k) = 2;"), "got:\n{t}");
    assert!(t.contains("*(p + ?) = 3;"), "got:\n{t}");
}

#[test]
fn pointer_to_array_double_subscript() {
    // x[i][j] where x is a pointer to an array — stays one dereference.
    let ir = compile("double f(double (*x)[8], int i, int j){ return x[i][j]; }").unwrap();
    let t = body_text(&ir, "f");
    assert!(t.contains("(*(x + ?))[?]"), "got:\n{t}");
    assert!(!t.contains("**"), "got:\n{t}");
}

#[test]
fn array_of_pointers_double_subscript_stays_single_deref() {
    // q[i][j] where q is an array of pointers: q[i] selects an element
    // (no dereference), then [j] dereferences it — one deref, no split.
    let ir = compile("int *q[4]; int main(void){ int v; v = q[1][2]; return v; }").unwrap();
    let t = body_text(&ir, "main");
    assert!(t.contains("v = *(q[+] + k);"), "got:\n{t}");
}

#[test]
fn malloc_becomes_alloc() {
    let ir = compile("int main(void){ int *p; p = (int*) malloc(4 * 10); return 0; }").unwrap();
    let bs = basics(&ir, "main");
    assert!(
        bs.iter().any(|b| matches!(b, BasicStmt::Alloc { .. })),
        "expected Alloc, got {bs:?}"
    );
    // No call site registered for malloc.
    assert!(ir.call_sites.is_empty());
}

#[test]
fn calloc_and_realloc_become_alloc() {
    let ir = compile(
        "int main(void){ int *p; int *q; p = (int*) calloc(10, 4); q = (int*) realloc(p, 80); return 0; }",
    )
    .unwrap();
    let bs = basics(&ir, "main");
    assert_eq!(
        bs.iter()
            .filter(|b| matches!(b, BasicStmt::Alloc { .. }))
            .count(),
        2
    );
}

#[test]
fn direct_and_indirect_calls() {
    let ir = compile(
        "int foo(void){ return 1; }
         int main(void){ int (*fp)(void); int x; fp = foo; x = fp(); x = foo(); return x; }",
    )
    .unwrap();
    let bs = basics(&ir, "main");
    let calls: Vec<_> = bs
        .iter()
        .filter_map(|b| match b {
            BasicStmt::Call { target, .. } => Some(target.clone()),
            _ => None,
        })
        .collect();
    assert_eq!(calls.len(), 2);
    assert!(matches!(calls[0], CallTarget::Indirect(_)));
    assert!(matches!(calls[1], CallTarget::Direct(_)));
    assert_eq!(ir.call_sites.len(), 2);
    assert!(ir.call_sites[0].indirect);
    assert!(!ir.call_sites[1].indirect);
}

#[test]
fn explicit_deref_call_syntax() {
    let ir = compile(
        "int foo(void){ return 1; }
         int main(void){ int (*fp)(void); fp = &foo; return (*fp)(); }",
    )
    .unwrap();
    let bs = basics(&ir, "main");
    let indirects = bs
        .iter()
        .filter(|b| {
            matches!(
                b,
                BasicStmt::Call {
                    target: CallTarget::Indirect(_),
                    ..
                }
            )
        })
        .count();
    assert_eq!(indirects, 1);
}

#[test]
fn call_through_function_pointer_array() {
    let ir = compile(
        "int f1(void){ return 1; }
         int f2(void){ return 2; }
         int (*table[2])(void);
         int main(void){ table[0] = f1; table[1] = f2; return table[1](); }",
    )
    .unwrap();
    let t = body_text(&ir, "main");
    assert!(t.contains("table[0] = f1;"), "got:\n{t}");
    assert!(t.contains("table[+] = f2;"), "got:\n{t}");
    let bs = basics(&ir, "main");
    assert!(bs.iter().any(|b| matches!(
        b,
        BasicStmt::Call {
            target: CallTarget::Indirect(VarRef::Path(_)),
            ..
        }
    )));
}

#[test]
fn struct_assignment_expands_to_fields() {
    let ir = compile(
        "struct pair { int *a; int *b; };
         int main(void){ struct pair x; struct pair y; int v; x.a = &v; y = x; return 0; }",
    )
    .unwrap();
    let t = body_text(&ir, "main");
    assert!(t.contains("y.a = x.a;"), "got:\n{t}");
    assert!(t.contains("y.b = x.b;"), "got:\n{t}");
}

#[test]
fn nested_struct_assignment_expands_recursively() {
    let ir = compile(
        "struct inner { int *p; };
         struct outer { struct inner i; int *q; };
         int main(void){ struct outer a; struct outer b; b = a; return 0; }",
    )
    .unwrap();
    let t = body_text(&ir, "main");
    assert!(t.contains("b.i.p = a.i.p;"), "got:\n{t}");
    assert!(t.contains("b.q = a.q;"), "got:\n{t}");
}

#[test]
fn global_initializers_hoisted_into_main() {
    let ir = compile(
        "int x; int *p = &x; int t[3] = {1,2,3};
         int main(void){ return *p; }",
    )
    .unwrap();
    let t = body_text(&ir, "main");
    assert!(t.contains("p = &x;"), "got:\n{t}");
    assert!(t.contains("t[0] = 1;"), "got:\n{t}");
    assert!(t.contains("t[+] = 2;"), "got:\n{t}");
}

#[test]
fn function_pointer_array_initializer() {
    let ir = compile(
        "int f1(void){return 1;} int f2(void){return 2;} int f3(void){return 3;}
         int (*table[3])(void) = { f1, f2, f3 };
         int main(void){ return table[0](); }",
    )
    .unwrap();
    let t = body_text(&ir, "main");
    assert!(t.contains("table[0] = f1;"), "got:\n{t}");
    assert!(t.contains("table[+] = f2;"), "got:\n{t}");
    assert!(t.contains("table[+] = f3;"), "got:\n{t}");
}

#[test]
fn local_initializers_become_statements() {
    let ir = compile("int main(void){ int x = 5; int *p = &x; return *p; }").unwrap();
    let t = body_text(&ir, "main");
    assert!(t.contains("x = 5;"), "got:\n{t}");
    assert!(t.contains("p = &x;"), "got:\n{t}");
}

#[test]
fn logical_operators_become_control_flow() {
    let ir = compile("int f(int a, int b){ return a && b; }").unwrap();
    let (_, f) = ir.function_by_name("f").unwrap();
    let has_if = {
        let mut found = false;
        fn walk(s: &Stmt, found: &mut bool) {
            match s {
                Stmt::If { .. } => *found = true,
                Stmt::Seq(v) => v.iter().for_each(|s| walk(s, found)),
                _ => {}
            }
        }
        walk(f.body.as_ref().unwrap(), &mut found);
        found
    };
    assert!(has_if, "&& should lower to an if");
}

#[test]
fn ternary_becomes_if() {
    let ir = compile("int f(int c, int *p, int *q){ int *r; r = c ? p : q; return *r; }").unwrap();
    let t = body_text(&ir, "f");
    assert!(t.contains("if ("), "got:\n{t}");
}

#[test]
fn complex_while_condition_hoisted_as_precondition() {
    let ir = compile(
        "int g(int x){ return x; }
         int main(void){ int i; i = 0; while (g(i) < 10) { i = i + 1; } return i; }",
    )
    .unwrap();
    let t = body_text(&ir, "main");
    assert!(t.contains("/* cond eval */"), "got:\n{t}");
    assert!(t.contains("= g(i)"), "got:\n{t}");
}

#[test]
fn for_loop_structure_preserved() {
    let ir = compile("int main(void){ int i; int s; s = 0; for (i=0;i<3;i++) s += i; return s; }")
        .unwrap();
    let (_, f) = ir.function_by_name("main").unwrap();
    let mut has_for = false;
    fn walk(s: &Stmt, found: &mut bool) {
        match s {
            Stmt::For { .. } => *found = true,
            Stmt::Seq(v) => v.iter().for_each(|s| walk(s, found)),
            _ => {}
        }
    }
    walk(f.body.as_ref().unwrap(), &mut has_for);
    assert!(has_for);
}

#[test]
fn switch_arms_lowered() {
    let ir = compile(
        "int main(void){ int x; x = 2; switch(x){ case 1: x = 10; break; case 2: x = 20; default: x = 30; } return x; }",
    )
    .unwrap();
    let (_, f) = ir.function_by_name("main").unwrap();
    let mut arms = 0;
    fn walk(s: &Stmt, arms: &mut usize) {
        match s {
            Stmt::Switch { arms: a, .. } => *arms = a.len(),
            Stmt::Seq(v) => v.iter().for_each(|s| walk(s, arms)),
            _ => {}
        }
    }
    walk(f.body.as_ref().unwrap(), &mut arms);
    assert_eq!(arms, 3);
}

#[test]
fn pointer_arithmetic_becomes_ptr_arith() {
    let ir = compile("int f(int *p){ int *q; q = p + 1; q = p + 0; q++; return 0; }").unwrap();
    let bs = basics(&ir, "f");
    let shifts: Vec<IdxClass> = bs
        .iter()
        .filter_map(|b| match b {
            BasicStmt::PtrArith { shift, .. } => Some(*shift),
            _ => None,
        })
        .collect();
    assert_eq!(shifts, vec![IdxClass::Positive, IdxClass::Positive]);
    // p + 0 folds to a plain copy.
    assert!(bs.iter().any(|b| matches!(
        b,
        BasicStmt::Copy {
            rhs: Operand::Ref(_),
            ..
        }
    )));
}

#[test]
fn addr_of_array_element_plus_constant_folds() {
    let ir = compile("int a[10]; int main(void){ int *p; p = a + 3; p = &a[2] + 1; return 0; }")
        .unwrap();
    let t = body_text(&ir, "main");
    assert!(t.contains("p = &a[+];"), "got:\n{t}");
}

#[test]
fn string_literal_operand() {
    let ir =
        compile("int main(void){ char *s; s = \"hello\"; printf(\"%s\", s); return 0; }").unwrap();
    let bs = basics(&ir, "main");
    assert!(bs.iter().any(|b| matches!(
        b,
        BasicStmt::Copy {
            rhs: Operand::Str(_),
            ..
        }
    )));
}

#[test]
fn sizeof_folds_to_constant() {
    let ir = compile("int main(void){ int n; int *p; n = sizeof(int); n = sizeof *p; return n; }")
        .unwrap();
    let t = body_text(&ir, "main");
    assert!(t.contains("n = 4;"), "got:\n{t}");
}

#[test]
fn return_value_simplified() {
    let ir = compile("int f(int a, int b){ return a * b + 1; }").unwrap();
    let bs = basics(&ir, "f");
    assert!(matches!(
        bs.last(),
        Some(BasicStmt::Return(Some(Operand::Ref(_))))
    ));
}

#[test]
fn stmt_ids_unique_and_counted() {
    let ir =
        compile("int f(int x){ if (x) { x = 1; } else { x = 2; } while (x) { x--; } return x; }")
            .unwrap();
    // validate() already ran inside compile(); recheck the counter.
    assert!(ir.n_stmts > 0);
    assert!(ir.total_basic_stmts() > 0);
}

#[test]
fn post_increment_in_value_position_uses_temp() {
    let ir = compile("int f(int *p){ int x; x = *p++; return x; }").unwrap();
    let t = body_text(&ir, "f");
    // *p++ is *(p++): read old p, deref it, then shift p.
    assert!(t.contains("p + k"), "got:\n{t}");
}

#[test]
fn comma_expression_sequences_effects() {
    let ir = compile("int f(int a, int b){ int x; x = (a = 1, b = 2, a + b); return x; }").unwrap();
    let t = body_text(&ir, "f");
    assert!(t.contains("a = 1;"), "got:\n{t}");
    assert!(t.contains("b = 2;"), "got:\n{t}");
}
