//! Tests of the SIMPLE invariant validator (it guards the contract the
//! points-to analysis relies on) and of IR-level helpers.

use pta_cfront::ast::FuncId;
use pta_simple::{
    validate, BasicStmt, CallSiteId, IrProgram, IrVarId, Operand, Stmt, StmtId, VarPath, VarRef,
};

fn valid_program() -> IrProgram {
    pta_simple::compile("int x; int main(void){ int *p; p = &x; return *p; }").unwrap()
}

#[test]
fn compiled_programs_validate() {
    assert!(validate(&valid_program()).is_ok());
}

#[test]
fn duplicate_statement_ids_rejected() {
    let mut ir = valid_program();
    // Clone a statement so an id appears twice.
    let (_, f) = ir.function_by_name("main").unwrap();
    let body = f.body.clone().unwrap();
    let mut first: Option<Stmt> = None;
    body.for_each_basic(&mut |b, id| {
        if first.is_none() {
            first = Some(Stmt::Basic(b.clone(), id));
        }
    });
    let dup = first.unwrap();
    let fid = ir.function_by_name("main").unwrap().0;
    let f = &mut ir.functions[fid.0 as usize];
    f.body = Some(Stmt::Seq(vec![f.body.take().unwrap(), dup]));
    let err = validate(&ir).unwrap_err();
    assert!(err.to_string().contains("duplicate statement id"), "{err}");
}

#[test]
fn out_of_range_variable_rejected() {
    let mut ir = valid_program();
    let fid = ir.function_by_name("main").unwrap().0;
    let bogus = Stmt::Basic(
        BasicStmt::Copy {
            lhs: VarRef::Path(VarPath::var(IrVarId(999))),
            rhs: Operand::int(0),
        },
        StmtId(ir.n_stmts - 1), // reuse the last id slot
    );
    let f = &mut ir.functions[fid.0 as usize];
    f.body = Some(bogus);
    let err = validate(&ir).unwrap_err();
    assert!(err.to_string().contains("out of range"), "{err}");
}

#[test]
fn out_of_range_callee_rejected() {
    let mut ir = valid_program();
    let fid = ir.function_by_name("main").unwrap().0;
    let bogus = Stmt::Basic(
        BasicStmt::Call {
            lhs: None,
            target: pta_simple::CallTarget::Direct(FuncId(9999)),
            args: vec![],
            call_site: CallSiteId(0),
        },
        StmtId(0),
    );
    ir.call_sites.push(pta_simple::CallSiteInfo {
        caller: fid,
        stmt: StmtId(0),
        indirect: false,
    });
    let f = &mut ir.functions[fid.0 as usize];
    f.body = Some(bogus);
    let err = validate(&ir).unwrap_err();
    assert!(err.to_string().contains("out of range"), "{err}");
}

#[test]
fn statement_id_beyond_counter_rejected() {
    let mut ir = valid_program();
    let fid = ir.function_by_name("main").unwrap().0;
    let bogus = Stmt::Basic(BasicStmt::Return(None), StmtId(ir.n_stmts + 100));
    let f = &mut ir.functions[fid.0 as usize];
    f.body = Some(bogus);
    let err = validate(&ir).unwrap_err();
    assert!(err.to_string().contains("out of range"), "{err}");
}

#[test]
fn program_helpers() {
    let ir = valid_program();
    assert!(ir.entry.is_some());
    assert!(ir.total_basic_stmts() >= 2);
    assert!(ir.function_by_name("main").is_some());
    assert!(ir.function_by_name("nonexistent").is_none());
    assert_eq!(ir.defined_functions().count(), 1);
    // Externals are present but undefined.
    assert!(ir.functions.len() > 1);
}

#[test]
fn printer_covers_all_statement_kinds() {
    let ir = pta_simple::compile(
        "int x; int a[4];
         int callee(int *p){ return *p; }
         int main(void){
            int *p; int i; int r;
            p = &x;
            p = p + 1;
            p = (int*) malloc(4);
            r = callee(p);
            for (i = 0; i < 3; i++) { if (i == 1) continue; a[i] = i; }
            while (i > 0) { i--; if (i == 1) break; }
            do { i++; } while (i < 2);
            switch (i) { case 0: r = 1; break; default: r = 2; }
            return r; }",
    )
    .unwrap();
    let text = pta_simple::printer::print_program(&ir);
    for needle in [
        "p = &x;",
        "malloc(",
        "callee(",
        "for",
        "while",
        "do {",
        "switch",
        "break;",
        "continue;",
        "return r;",
        "+ k",
    ] {
        assert!(text.contains(needle), "missing {needle:?} in:\n{text}");
    }
}
