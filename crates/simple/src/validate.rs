//! Validates the SIMPLE invariants the points-to analysis relies on.
//!
//! - every variable reference has at most one level of indirection (by
//!   construction of [`crate::ir::VarRef`], so here we check ids);
//! - every [`StmtId`] is unique;
//! - every variable id is in range for its function;
//! - call sites are registered exactly once;
//! - conditions are side-effect free (no statements hidden in them).

use crate::ir::*;
use std::collections::BTreeSet;

/// A violated SIMPLE invariant.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ValidationError {
    /// Name of the offending function.
    pub function: String,
    /// Description of the violation.
    pub message: String,
}

impl std::fmt::Display for ValidationError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "SIMPLE invariant violated in `{}`: {}",
            self.function, self.message
        )
    }
}

impl std::error::Error for ValidationError {}

/// Checks all invariants over a lowered program.
///
/// # Errors
///
/// Returns the first violation found.
pub fn validate(p: &IrProgram) -> Result<(), ValidationError> {
    let mut seen_ids = BTreeSet::new();
    let mut seen_calls = BTreeSet::new();
    for f in &p.functions {
        let Some(body) = &f.body else { continue };
        let mut v = Validator {
            p,
            f,
            seen_ids: &mut seen_ids,
            seen_calls: &mut seen_calls,
        };
        v.stmt(body)?;
    }
    Ok(())
}

struct Validator<'a> {
    p: &'a IrProgram,
    f: &'a IrFunction,
    seen_ids: &'a mut BTreeSet<StmtId>,
    seen_calls: &'a mut BTreeSet<CallSiteId>,
}

impl Validator<'_> {
    fn err(&self, message: impl Into<String>) -> ValidationError {
        ValidationError {
            function: self.f.name.clone(),
            message: message.into(),
        }
    }

    fn id(&mut self, id: StmtId) -> Result<(), ValidationError> {
        if id.0 >= self.p.n_stmts {
            return Err(self.err(format!("{id} out of range")));
        }
        if !self.seen_ids.insert(id) {
            return Err(self.err(format!("duplicate statement id {id}")));
        }
        Ok(())
    }

    fn path(&self, path: &VarPath) -> Result<(), ValidationError> {
        match path.base {
            VarBase::Var(id) => {
                if id.0 as usize >= self.f.vars.len() {
                    return Err(self.err(format!("variable v{} out of range", id.0)));
                }
            }
            VarBase::Global(id) => {
                if id.0 as usize >= self.p.globals.len() {
                    return Err(self.err(format!("global g{} out of range", id.0)));
                }
            }
        }
        Ok(())
    }

    fn varref(&self, r: &VarRef) -> Result<(), ValidationError> {
        match r {
            VarRef::Path(p) => self.path(p),
            VarRef::Deref { path, .. } => self.path(path),
        }
    }

    fn operand(&self, op: &Operand) -> Result<(), ValidationError> {
        match op {
            Operand::Ref(r) | Operand::AddrOf(r) => self.varref(r),
            Operand::Func(id) => {
                if id.0 as usize >= self.p.functions.len() {
                    return Err(self.err(format!("function f{} out of range", id.0)));
                }
                Ok(())
            }
            Operand::Const(_) | Operand::Str(_) => Ok(()),
        }
    }

    fn basic(&mut self, b: &BasicStmt) -> Result<(), ValidationError> {
        match b {
            BasicStmt::Copy { lhs, rhs } => {
                self.varref(lhs)?;
                self.operand(rhs)
            }
            BasicStmt::Unary { lhs, rhs, .. } => {
                self.varref(lhs)?;
                self.operand(rhs)
            }
            BasicStmt::Binary { lhs, a, b, .. } => {
                self.varref(lhs)?;
                self.operand(a)?;
                self.operand(b)
            }
            BasicStmt::PtrArith { lhs, ptr, .. } => {
                self.varref(lhs)?;
                self.varref(ptr)
            }
            BasicStmt::Alloc { lhs, size } => {
                self.varref(lhs)?;
                self.operand(size)
            }
            BasicStmt::Call {
                lhs,
                target,
                args,
                call_site,
            } => {
                if !self.seen_calls.insert(*call_site) {
                    return Err(self.err(format!("duplicate call site {call_site}")));
                }
                if call_site.0 as usize >= self.p.call_sites.len() {
                    return Err(self.err(format!("call site {call_site} unregistered")));
                }
                if let Some(l) = lhs {
                    self.varref(l)?;
                }
                match target {
                    CallTarget::Direct(id) => {
                        if id.0 as usize >= self.p.functions.len() {
                            return Err(self.err(format!("callee f{} out of range", id.0)));
                        }
                    }
                    CallTarget::Indirect(r) => self.varref(r)?,
                }
                for a in args {
                    self.operand(a)?;
                }
                Ok(())
            }
            BasicStmt::Return(v) => match v {
                Some(v) => self.operand(v),
                None => Ok(()),
            },
        }
    }

    fn cond(&self, c: &CondExpr) -> Result<(), ValidationError> {
        for op in c.operands() {
            self.operand(op)?;
        }
        Ok(())
    }

    fn stmt(&mut self, s: &Stmt) -> Result<(), ValidationError> {
        match s {
            Stmt::Basic(b, id) => {
                self.id(*id)?;
                self.basic(b)
            }
            Stmt::Seq(stmts) => {
                for s in stmts {
                    self.stmt(s)?;
                }
                Ok(())
            }
            Stmt::If {
                cond,
                then_s,
                else_s,
                id,
            } => {
                self.id(*id)?;
                self.cond(cond)?;
                self.stmt(then_s)?;
                if let Some(e) = else_s {
                    self.stmt(e)?;
                }
                Ok(())
            }
            Stmt::While {
                pre_cond,
                cond,
                body,
                id,
            } => {
                self.id(*id)?;
                self.stmt(pre_cond)?;
                self.cond(cond)?;
                self.stmt(body)
            }
            Stmt::DoWhile {
                body,
                pre_cond,
                cond,
                id,
            } => {
                self.id(*id)?;
                self.stmt(body)?;
                self.stmt(pre_cond)?;
                self.cond(cond)
            }
            Stmt::For {
                init,
                pre_cond,
                cond,
                step,
                body,
                id,
            } => {
                self.id(*id)?;
                self.stmt(init)?;
                self.stmt(pre_cond)?;
                self.cond(cond)?;
                self.stmt(step)?;
                self.stmt(body)
            }
            Stmt::Switch {
                scrutinee,
                arms,
                id,
                ..
            } => {
                self.id(*id)?;
                self.operand(scrutinee)?;
                for a in arms {
                    self.stmt(&a.body)?;
                }
                Ok(())
            }
            Stmt::Break(id) | Stmt::Continue(id) => self.id(*id),
        }
    }
}
