//! The SIMPLE intermediate representation.
//!
//! SIMPLE (from the McCAT compiler) is a *structured* IR: a small set of
//! basic statements plus compositional control statements (`if`,
//! `while`, `do`, `for`, `switch`, `break`, `continue`, `return`).
//! Every variable reference contains **at most one level of pointer
//! indirection** — the simplifier introduces temporaries to enforce
//! this, which is what lets the points-to rules of Table 1 of the paper
//! cover every reference shape.

use pta_cfront::ast::{BinaryOp, FuncId, GlobalId, UnaryOp};
use pta_cfront::span::Span;
use pta_cfront::types::{StructTable, Type};
use std::fmt;

/// Index of a variable in [`IrFunction::vars`] (parameters, locals, and
/// compiler temporaries).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct IrVarId(pub u32);

/// A stable, program-wide id for each basic statement and each control
/// statement (a *program point* for the analysis and the statistics).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct StmtId(pub u32);

/// A stable, program-wide id for each call site.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct CallSiteId(pub u32);

impl fmt::Display for StmtId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "s{}", self.0)
    }
}

impl fmt::Display for CallSiteId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cs{}", self.0)
    }
}

/// How a variable entered the IR.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum VarKind {
    /// The `n`-th parameter of the function.
    Param(u32),
    /// A user-declared local.
    Local,
    /// A compiler-introduced temporary.
    Temp,
}

/// A variable of an [`IrFunction`].
#[derive(Debug, Clone, PartialEq)]
pub struct IrVar {
    /// Unique name within the function.
    pub name: String,
    /// Its type.
    pub ty: Type,
    /// Origin.
    pub kind: VarKind,
}

/// A global variable of an [`IrProgram`].
#[derive(Debug, Clone, PartialEq)]
pub struct IrGlobal {
    /// Name.
    pub name: String,
    /// Type.
    pub ty: Type,
}

/// The storage root of a variable path.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum VarBase {
    /// A global variable.
    Global(GlobalId),
    /// A parameter, local, or temporary of the enclosing function.
    Var(IrVarId),
}

/// Classification of an array subscript, following Table 1 of the paper:
/// `a[0]`, `a[i]` with `i > 0` known, and `a[i]` with unknown sign.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum IdxClass {
    /// Constant index 0 — resolves to the `head` location.
    Zero,
    /// Constant index > 0 — resolves to the `tail` location.
    Positive,
    /// Statically unknown index (`i >= 0`) — both `head` and `tail`.
    Unknown,
}

impl IdxClass {
    /// Classifies a constant index value.
    pub fn of_const(v: i64) -> IdxClass {
        if v == 0 {
            IdxClass::Zero
        } else {
            IdxClass::Positive
        }
    }
}

/// One projection step applied to a storage location: selecting a struct
/// field or subscripting an array.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum IrProj {
    /// `.field`
    Field(String),
    /// `[i]` on an array-typed object.
    Index(IdxClass),
}

/// A dereference-free access path: a base variable plus projections.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct VarPath {
    /// The root variable.
    pub base: VarBase,
    /// Field/index projections, outermost first.
    pub projs: Vec<IrProj>,
}

impl VarPath {
    /// A bare variable path.
    pub fn var(id: IrVarId) -> Self {
        VarPath {
            base: VarBase::Var(id),
            projs: Vec::new(),
        }
    }

    /// A bare global path.
    pub fn global(id: GlobalId) -> Self {
        VarPath {
            base: VarBase::Global(id),
            projs: Vec::new(),
        }
    }

    /// Returns this path extended with one more projection.
    pub fn project(mut self, p: IrProj) -> Self {
        self.projs.push(p);
        self
    }
}

/// A variable reference as allowed in SIMPLE: a plain path, or a path
/// dereferenced exactly once (optionally shifted by pointer arithmetic
/// and followed by projections into the pointed-to object).
///
/// Examples (with the concrete syntax they come from):
/// - `a`, `a.f`, `a[i]`, `a[i].f` — [`VarRef::Path`]
/// - `*p` — `Deref { path: p, shift: Zero, after: [] }`
/// - `p[i]` (for pointer `p`) — `Deref { path: p, shift: i, after: [] }`
/// - `(*p).f` / `p->f` — `Deref { path: p, shift: Zero, after: [.f] }`
/// - `x[i][j]` (for `x` pointer-to-array) — `Deref { path: x, shift: i,
///   after: [[j]] }`
/// - `(*a)[j]` (for `a` array of pointers appears as `Deref { path:
///   a[[0]], … }`)
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum VarRef {
    /// No dereference.
    Path(VarPath),
    /// Exactly one dereference.
    Deref {
        /// The pointer being dereferenced.
        path: VarPath,
        /// Pointer-arithmetic shift applied before the dereference.
        shift: IdxClass,
        /// Projections applied to the pointed-to object.
        after: Vec<IrProj>,
    },
}

impl VarRef {
    /// True if this reference goes through a pointer (an *indirect
    /// reference* in the paper's terminology).
    pub fn is_indirect(&self) -> bool {
        matches!(self, VarRef::Deref { .. })
    }

    /// For an indirect reference, whether it is of the array style
    /// `x[i][j]` (pointer to an array, counted separately in Table 3) as
    /// opposed to the scalar style `*x` / `(*x).f`.
    pub fn is_array_style(&self) -> bool {
        match self {
            VarRef::Path(_) => false,
            VarRef::Deref { shift, after, .. } => {
                !matches!(shift, IdxClass::Zero)
                    || after.iter().any(|p| matches!(p, IrProj::Index(_)))
            }
        }
    }
}

/// A literal constant.
#[derive(Debug, Clone, PartialEq)]
pub enum Const {
    /// Integer (also used for char literals).
    Int(i64),
    /// Floating point.
    Float(f64),
}

/// A *simple value*: what may appear as an operand of a basic statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Operand {
    /// Read a variable reference.
    Ref(VarRef),
    /// A literal constant.
    Const(Const),
    /// `&ref` — the address of a variable reference.
    AddrOf(VarRef),
    /// A function designator (`f` or `&f`) — a function pointer value.
    Func(FuncId),
    /// A string literal (a pointer into static storage).
    Str(String),
}

impl Operand {
    /// Integer constant shorthand.
    pub fn int(v: i64) -> Operand {
        Operand::Const(Const::Int(v))
    }

    /// True if this operand contains an indirect reference.
    pub fn is_indirect(&self) -> bool {
        match self {
            Operand::Ref(r) | Operand::AddrOf(r) => r.is_indirect(),
            _ => false,
        }
    }
}

/// Who a call targets.
#[derive(Debug, Clone, PartialEq)]
pub enum CallTarget {
    /// A named function.
    Direct(FuncId),
    /// A call through a function pointer (the reference reads the
    /// pointer value).
    Indirect(VarRef),
}

/// The basic (straight-line) statements of SIMPLE.
#[derive(Debug, Clone, PartialEq)]
pub enum BasicStmt {
    /// `lhs = rhs`
    Copy {
        /// Destination.
        lhs: VarRef,
        /// Source value.
        rhs: Operand,
    },
    /// `lhs = op rhs` (arithmetic only; `&`/`*` are reference shapes).
    Unary {
        /// Destination.
        lhs: VarRef,
        /// Operator.
        op: UnaryOp,
        /// Operand.
        rhs: Operand,
    },
    /// `lhs = a op b`
    Binary {
        /// Destination.
        lhs: VarRef,
        /// Operator.
        op: BinaryOp,
        /// Left operand.
        a: Operand,
        /// Right operand.
        b: Operand,
    },
    /// `lhs = ptr ± k` — pointer arithmetic; the target set of `lhs`
    /// is the (possibly shifted) target set of `ptr`.
    PtrArith {
        /// Destination (pointer-typed).
        lhs: VarRef,
        /// Source pointer.
        ptr: VarRef,
        /// Shift class of the adjustment.
        shift: IdxClass,
    },
    /// `lhs = malloc(size)` (or `calloc`/`realloc`) — heap allocation.
    Alloc {
        /// Destination (pointer-typed).
        lhs: VarRef,
        /// Size operand (ignored by the analysis).
        size: Operand,
    },
    /// `[lhs =] target(args)`
    Call {
        /// Optional destination for the return value.
        lhs: Option<VarRef>,
        /// Direct or indirect callee.
        target: CallTarget,
        /// Simplified arguments (constants or variable references).
        args: Vec<Operand>,
        /// The call site id (one per textual call).
        call_site: CallSiteId,
    },
    /// `return [value]`
    Return(Option<Operand>),
}

impl BasicStmt {
    /// The call-site id if this is a call.
    pub fn call_site(&self) -> Option<CallSiteId> {
        match self {
            BasicStmt::Call { call_site, .. } => Some(*call_site),
            _ => None,
        }
    }
}

/// A side-effect-free condition of a control statement.
#[derive(Debug, Clone, PartialEq)]
pub enum CondExpr {
    /// `a op b` with a comparison operator.
    Rel(BinaryOp, Operand, Operand),
    /// Truthiness test of an operand.
    Test(Operand),
    /// `!operand`
    Not(Operand),
    /// Constant true (used when lowering complex loop conditions).
    ConstTrue,
}

impl CondExpr {
    /// Operands of the condition.
    pub fn operands(&self) -> Vec<&Operand> {
        match self {
            CondExpr::Rel(_, a, b) => vec![a, b],
            CondExpr::Test(a) | CondExpr::Not(a) => vec![a],
            CondExpr::ConstTrue => vec![],
        }
    }
}

/// One arm of a SIMPLE `switch`.
#[derive(Debug, Clone, PartialEq)]
pub struct IrSwitchArm {
    /// `case` values; `None` is `default`.
    pub labels: Vec<Option<i64>>,
    /// The arm body; control falls through to the next arm when the body
    /// completes normally.
    pub body: Stmt,
}

/// A SIMPLE statement: basic statements composed with the structured
/// control constructs.
#[derive(Debug, Clone, PartialEq)]
pub enum Stmt {
    /// A basic statement, tagged with its program point.
    Basic(BasicStmt, StmtId),
    /// Statement sequence.
    Seq(Vec<Stmt>),
    /// `if (cond) then else?` — the id is the program point of the test.
    If {
        /// Condition.
        cond: CondExpr,
        /// Then branch.
        then_s: Box<Stmt>,
        /// Optional else branch.
        else_s: Option<Box<Stmt>>,
        /// Program point of the test.
        id: StmtId,
    },
    /// `while (cond) body`.
    ///
    /// `pre_cond` holds statements the simplifier hoisted out of a
    /// complex condition; they run before *every* evaluation of the
    /// test (including after `continue`), preserving C semantics.
    While {
        /// Statements evaluating the condition's subexpressions.
        pre_cond: Box<Stmt>,
        /// Condition.
        cond: CondExpr,
        /// Loop body.
        body: Box<Stmt>,
        /// Program point of the test.
        id: StmtId,
    },
    /// `do body while (cond)`; `pre_cond` as for [`Stmt::While`] — it
    /// runs after the body (and after `continue`) before each test.
    DoWhile {
        /// Loop body.
        body: Box<Stmt>,
        /// Statements evaluating the condition's subexpressions.
        pre_cond: Box<Stmt>,
        /// Condition.
        cond: CondExpr,
        /// Program point of the test.
        id: StmtId,
    },
    /// `for (init; cond; step) body` — `continue` transfers to `step`.
    For {
        /// Initialization (runs once).
        init: Box<Stmt>,
        /// Statements evaluating the condition's subexpressions.
        pre_cond: Box<Stmt>,
        /// Condition.
        cond: CondExpr,
        /// Step (runs after the body and after `continue`).
        step: Box<Stmt>,
        /// Loop body.
        body: Box<Stmt>,
        /// Program point of the test.
        id: StmtId,
    },
    /// `switch (scrutinee) { arms }` with C fall-through semantics.
    Switch {
        /// Value switched on.
        scrutinee: Operand,
        /// Arms in source order.
        arms: Vec<IrSwitchArm>,
        /// True if some arm is `default`.
        has_default: bool,
        /// Program point of the dispatch.
        id: StmtId,
    },
    /// `break`
    Break(StmtId),
    /// `continue`
    Continue(StmtId),
}

impl Stmt {
    /// An empty statement.
    pub fn empty() -> Stmt {
        Stmt::Seq(Vec::new())
    }

    /// Visits every basic statement (with its id), in syntactic order.
    pub fn for_each_basic<'a>(&'a self, f: &mut impl FnMut(&'a BasicStmt, StmtId)) {
        match self {
            Stmt::Basic(b, id) => f(b, *id),
            Stmt::Seq(stmts) => {
                for s in stmts {
                    s.for_each_basic(f);
                }
            }
            Stmt::If { then_s, else_s, .. } => {
                then_s.for_each_basic(f);
                if let Some(e) = else_s {
                    e.for_each_basic(f);
                }
            }
            Stmt::While { pre_cond, body, .. } | Stmt::DoWhile { body, pre_cond, .. } => {
                pre_cond.for_each_basic(f);
                body.for_each_basic(f);
            }
            Stmt::For {
                init,
                pre_cond,
                step,
                body,
                ..
            } => {
                init.for_each_basic(f);
                pre_cond.for_each_basic(f);
                step.for_each_basic(f);
                body.for_each_basic(f);
            }
            Stmt::Switch { arms, .. } => {
                for a in arms {
                    a.body.for_each_basic(f);
                }
            }
            Stmt::Break(_) | Stmt::Continue(_) => {}
        }
    }

    /// Counts the basic statements in this tree.
    pub fn count_basic(&self) -> usize {
        let mut n = 0;
        self.for_each_basic(&mut |_, _| n += 1);
        n
    }
}

/// A function in SIMPLE form.
#[derive(Debug, Clone, PartialEq)]
pub struct IrFunction {
    /// Function name.
    pub name: String,
    /// Return type.
    pub ret: Type,
    /// Number of parameters (they are `vars[0..n_params]`).
    pub n_params: usize,
    /// All variables: parameters first, then locals, then temporaries.
    pub vars: Vec<IrVar>,
    /// The body; `None` for external (modelled) functions.
    pub body: Option<Stmt>,
    /// True if variadic.
    pub variadic: bool,
    /// Source location of the definition (dummy for built programs).
    pub span: Span,
}

impl IrFunction {
    /// The variable ids of the parameters.
    pub fn param_ids(&self) -> impl Iterator<Item = IrVarId> + '_ {
        (0..self.n_params).map(|i| IrVarId(i as u32))
    }

    /// Variable lookup.
    pub fn var(&self, id: IrVarId) -> &IrVar {
        &self.vars[id.0 as usize]
    }

    /// True if defined in the program (has a body).
    pub fn is_defined(&self) -> bool {
        self.body.is_some()
    }
}

/// Descriptor of a call site (used by invocation-graph statistics).
#[derive(Debug, Clone, PartialEq)]
pub struct CallSiteInfo {
    /// The function containing the call.
    pub caller: FuncId,
    /// The program point of the call.
    pub stmt: StmtId,
    /// True for calls through a function pointer.
    pub indirect: bool,
}

/// A whole program in SIMPLE form.
#[derive(Debug, Clone, PartialEq)]
pub struct IrProgram {
    /// Struct/union definitions (shared with the front end).
    pub structs: StructTable,
    /// Global variables.
    pub globals: Vec<IrGlobal>,
    /// Functions, same indexing as the front end's [`FuncId`].
    pub functions: Vec<IrFunction>,
    /// The entry function (`main`), if defined.
    pub entry: Option<FuncId>,
    /// Total number of program points allocated.
    pub n_stmts: u32,
    /// All call sites.
    pub call_sites: Vec<CallSiteInfo>,
    /// Source span of each program point, indexed by [`StmtId`]. Empty
    /// for programs assembled with the builder (spans are then dummy).
    pub spans: Vec<Span>,
}

impl IrProgram {
    /// Function lookup by id.
    pub fn function(&self, id: FuncId) -> &IrFunction {
        &self.functions[id.0 as usize]
    }

    /// Function lookup by name.
    pub fn function_by_name(&self, name: &str) -> Option<(FuncId, &IrFunction)> {
        self.functions
            .iter()
            .enumerate()
            .find(|(_, f)| f.name == name)
            .map(|(i, f)| (FuncId(i as u32), f))
    }

    /// Global lookup.
    pub fn global(&self, id: GlobalId) -> &IrGlobal {
        &self.globals[id.0 as usize]
    }

    /// The source span of a program point (dummy when the program was
    /// built without source, e.g. via the builder).
    pub fn span_of(&self, id: StmtId) -> Span {
        self.spans.get(id.0 as usize).copied().unwrap_or_default()
    }

    /// Iterates over defined functions.
    pub fn defined_functions(&self) -> impl Iterator<Item = (FuncId, &IrFunction)> {
        self.functions
            .iter()
            .enumerate()
            .filter(|(_, f)| f.is_defined())
            .map(|(i, f)| (FuncId(i as u32), f))
    }

    /// Total count of basic statements across all defined functions
    /// (the "# of stmts in SIMPLE" of Table 2).
    pub fn total_basic_stmts(&self) -> usize {
        self.functions
            .iter()
            .filter_map(|f| f.body.as_ref())
            .map(|b| b.count_basic())
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn idx_class_of_const() {
        assert_eq!(IdxClass::of_const(0), IdxClass::Zero);
        assert_eq!(IdxClass::of_const(3), IdxClass::Positive);
    }

    #[test]
    fn varref_indirect_classification() {
        let p = VarRef::Path(VarPath::var(IrVarId(0)));
        assert!(!p.is_indirect());
        let d = VarRef::Deref {
            path: VarPath::var(IrVarId(0)),
            shift: IdxClass::Zero,
            after: vec![],
        };
        assert!(d.is_indirect());
        assert!(!d.is_array_style());
        let arr = VarRef::Deref {
            path: VarPath::var(IrVarId(0)),
            shift: IdxClass::Unknown,
            after: vec![],
        };
        assert!(arr.is_array_style());
        let arr2 = VarRef::Deref {
            path: VarPath::var(IrVarId(0)),
            shift: IdxClass::Zero,
            after: vec![IrProj::Index(IdxClass::Zero)],
        };
        assert!(arr2.is_array_style());
        let fld = VarRef::Deref {
            path: VarPath::var(IrVarId(0)),
            shift: IdxClass::Zero,
            after: vec![IrProj::Field("f".into())],
        };
        assert!(!fld.is_array_style());
    }

    #[test]
    fn stmt_counts_basics() {
        let b = |i| {
            Stmt::Basic(
                BasicStmt::Copy {
                    lhs: VarRef::Path(VarPath::var(IrVarId(0))),
                    rhs: Operand::int(i),
                },
                StmtId(i as u32),
            )
        };
        let s = Stmt::Seq(vec![
            b(0),
            Stmt::If {
                cond: CondExpr::ConstTrue,
                then_s: Box::new(b(1)),
                else_s: Some(Box::new(b(2))),
                id: StmtId(10),
            },
            Stmt::While {
                pre_cond: Box::new(Stmt::empty()),
                cond: CondExpr::ConstTrue,
                body: Box::new(b(3)),
                id: StmtId(11),
            },
        ]);
        assert_eq!(s.count_basic(), 4);
    }

    #[test]
    fn path_projection_builder() {
        let p = VarPath::var(IrVarId(2))
            .project(IrProj::Field("f".into()))
            .project(IrProj::Index(IdxClass::Zero));
        assert_eq!(p.projs.len(), 2);
    }
}
