//! Programmatic construction of SIMPLE programs.
//!
//! Clients embedding the analysis (or testing new rules) can build IR
//! without going through C source. The builder assigns statement ids,
//! registers call sites, and produces a program that passes
//! [`fn@crate::validate`].
//!
//! ```
//! use pta_simple::builder::ProgramBuilder;
//! use pta_cfront::types::Type;
//!
//! let mut b = ProgramBuilder::new();
//! let x = b.global("x", Type::Int);
//! let mut main = b.function("main", Type::Int);
//! let p = main.local("p", Type::Int.ptr_to());
//! main.assign_addr(p, x);          // p = &x;
//! let d = main.deref(p);           // ... *p ...
//! main.ret_ref(d);                 // return *p;
//! let program = main.finish_entry();
//! assert!(pta_simple::validate(&program).is_ok());
//! ```

use crate::ir::*;
use pta_cfront::ast::{FuncId, GlobalId};
use pta_cfront::types::{StructTable, Type};

/// A handle to a variable created by the builder (global or local).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Var {
    /// A global variable.
    Global(GlobalId),
    /// A local of the function under construction.
    Local(IrVarId),
}

impl Var {
    fn path(self) -> VarPath {
        match self {
            Var::Global(g) => VarPath::global(g),
            Var::Local(v) => VarPath::var(v),
        }
    }
}

/// Builds an [`IrProgram`] incrementally.
#[derive(Debug, Default)]
pub struct ProgramBuilder {
    structs: StructTable,
    globals: Vec<IrGlobal>,
    functions: Vec<IrFunction>,
    n_stmts: u32,
    call_sites: Vec<CallSiteInfo>,
}

impl ProgramBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Declares a global variable.
    pub fn global(&mut self, name: &str, ty: Type) -> Var {
        let id = GlobalId(self.globals.len() as u32);
        self.globals.push(IrGlobal {
            name: name.to_owned(),
            ty,
        });
        Var::Global(id)
    }

    /// Starts a function; finish it with
    /// [`FunctionBuilder::finish`] / [`FunctionBuilder::finish_entry`].
    pub fn function(self, name: &str, ret: Type) -> FunctionBuilder {
        FunctionBuilder {
            program: self,
            name: name.to_owned(),
            ret,
            vars: Vec::new(),
            n_params: 0,
            stmts: Vec::new(),
        }
    }
}

/// Builds one function's variables and straight-line body.
#[derive(Debug)]
pub struct FunctionBuilder {
    program: ProgramBuilder,
    name: String,
    ret: Type,
    vars: Vec<IrVar>,
    n_params: usize,
    stmts: Vec<Stmt>,
}

impl FunctionBuilder {
    /// Adds a parameter (must precede any locals).
    ///
    /// # Panics
    ///
    /// Panics if a local was already added.
    pub fn param(&mut self, name: &str, ty: Type) -> Var {
        assert_eq!(
            self.vars.len(),
            self.n_params,
            "parameters must be declared before locals"
        );
        let id = IrVarId(self.vars.len() as u32);
        self.vars.push(IrVar {
            name: name.to_owned(),
            ty,
            kind: VarKind::Param(self.n_params as u32),
        });
        self.n_params += 1;
        Var::Local(id)
    }

    /// Adds a local variable.
    pub fn local(&mut self, name: &str, ty: Type) -> Var {
        let id = IrVarId(self.vars.len() as u32);
        self.vars.push(IrVar {
            name: name.to_owned(),
            ty,
            kind: VarKind::Local,
        });
        Var::Local(id)
    }

    fn fresh_id(&mut self) -> StmtId {
        let id = StmtId(self.program.n_stmts);
        self.program.n_stmts += 1;
        id
    }

    fn emit(&mut self, b: BasicStmt) -> StmtId {
        let id = self.fresh_id();
        self.stmts.push(Stmt::Basic(b, id));
        id
    }

    /// A dereference reference `*v`.
    pub fn deref(&self, v: Var) -> VarRef {
        VarRef::Deref {
            path: v.path(),
            shift: IdxClass::Zero,
            after: vec![],
        }
    }

    /// `lhs = &target;`
    pub fn assign_addr(&mut self, lhs: Var, target: Var) -> StmtId {
        self.emit(BasicStmt::Copy {
            lhs: VarRef::Path(lhs.path()),
            rhs: Operand::AddrOf(VarRef::Path(target.path())),
        })
    }

    /// `lhs = rhs;` (plain variable copy)
    pub fn assign_var(&mut self, lhs: Var, rhs: Var) -> StmtId {
        self.emit(BasicStmt::Copy {
            lhs: VarRef::Path(lhs.path()),
            rhs: Operand::Ref(VarRef::Path(rhs.path())),
        })
    }

    /// An arbitrary copy between references.
    pub fn assign_ref(&mut self, lhs: VarRef, rhs: Operand) -> StmtId {
        self.emit(BasicStmt::Copy { lhs, rhs })
    }

    /// `lhs = malloc(size);`
    pub fn alloc(&mut self, lhs: Var, size: i64) -> StmtId {
        self.emit(BasicStmt::Alloc {
            lhs: VarRef::Path(lhs.path()),
            size: Operand::int(size),
        })
    }

    /// `[lhs =] callee(args);` for an already-built function.
    pub fn call(&mut self, lhs: Option<Var>, callee: FuncId, args: Vec<Operand>) -> StmtId {
        let id = self.fresh_id();
        let cs = CallSiteId(self.program.call_sites.len() as u32);
        self.program.call_sites.push(CallSiteInfo {
            caller: FuncId(self.program.functions.len() as u32),
            stmt: id,
            indirect: false,
        });
        self.stmts.push(Stmt::Basic(
            BasicStmt::Call {
                lhs: lhs.map(|v| VarRef::Path(v.path())),
                target: CallTarget::Direct(callee),
                args,
                call_site: cs,
            },
            id,
        ));
        id
    }

    /// `return v;`
    pub fn ret_var(&mut self, v: Var) -> StmtId {
        self.emit(BasicStmt::Return(Some(Operand::Ref(VarRef::Path(
            v.path(),
        )))))
    }

    /// `return ref;`
    pub fn ret_ref(&mut self, r: VarRef) -> StmtId {
        self.emit(BasicStmt::Return(Some(Operand::Ref(r))))
    }

    /// `if (cond-var) { then } else { else }` over sub-builders' output.
    pub fn if_else(&mut self, cond: Var, then_s: Vec<Stmt>, else_s: Vec<Stmt>) -> StmtId {
        let id = self.fresh_id();
        self.stmts.push(Stmt::If {
            cond: CondExpr::Test(Operand::Ref(VarRef::Path(cond.path()))),
            then_s: Box::new(Stmt::Seq(then_s)),
            else_s: Some(Box::new(Stmt::Seq(else_s))),
            id,
        });
        id
    }

    /// Removes the statements accumulated so far (to build a branch for
    /// [`FunctionBuilder::if_else`]).
    pub fn take_stmts(&mut self) -> Vec<Stmt> {
        std::mem::take(&mut self.stmts)
    }

    /// Completes the function and returns the builder for more
    /// functions.
    pub fn finish(mut self) -> (ProgramBuilder, FuncId) {
        let id = FuncId(self.program.functions.len() as u32);
        self.program.functions.push(IrFunction {
            name: self.name,
            ret: self.ret,
            n_params: self.n_params,
            vars: self.vars,
            body: Some(Stmt::Seq(self.stmts)),
            variadic: false,
            span: pta_cfront::span::Span::dummy(),
        });
        (self.program, id)
    }

    /// Completes the function as `main` and produces the program.
    pub fn finish_entry(self) -> IrProgram {
        let (b, id) = self.finish();
        IrProgram {
            structs: b.structs,
            globals: b.globals,
            functions: b.functions,
            entry: Some(id),
            n_stmts: b.n_stmts,
            call_sites: b.call_sites,
            spans: Vec::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn built_program_validates_and_analyzes() {
        let mut b = ProgramBuilder::new();
        let x = b.global("x", Type::Int);
        let y = b.global("y", Type::Int);
        let c = b.global("c", Type::Int);
        let mut main = b.function("main", Type::Int);
        let p = main.local("p", Type::Int.ptr_to());
        // if (c) p = &x; else p = &y;
        main.assign_addr(p, x);
        let then_s = main.take_stmts();
        main.assign_addr(p, y);
        let else_s = main.take_stmts();
        main.if_else(c, then_s, else_s);
        let d = main.deref(p);
        main.ret_ref(d);
        let program = main.finish_entry();
        crate::validate(&program).expect("valid");
        let r = program.total_basic_stmts();
        assert_eq!(r, 3);
    }

    #[test]
    fn built_call_registers_call_site() {
        let b = ProgramBuilder::new();
        let mut helper = b.function("helper", Type::Int);
        let v = helper.local("v", Type::Int);
        helper.ret_var(v);
        let (b, helper_id) = helper.finish();
        let mut main = b.function("main", Type::Int);
        let r = main.local("r", Type::Int);
        main.call(Some(r), helper_id, vec![]);
        main.ret_var(r);
        let program = main.finish_entry();
        crate::validate(&program).expect("valid");
        assert_eq!(program.call_sites.len(), 1);
        assert!(!program.call_sites[0].indirect);
    }

    #[test]
    fn alloc_statement() {
        let b = ProgramBuilder::new();
        let mut main = b.function("main", Type::Int);
        let p = main.local("p", Type::Int.ptr_to());
        main.alloc(p, 16);
        main.ret_var(p);
        let program = main.finish_entry();
        crate::validate(&program).expect("valid");
    }
}
