//! # pta-simple — the SIMPLE intermediate representation
//!
//! A faithful implementation of the McCAT compiler's SIMPLE IR as
//! described in §2 of the PLDI 1994 points-to paper: a compact set of
//! basic statements composed with structured control statements, where
//! every variable reference has at most one level of pointer
//! indirection. The [`fn@lower`] function is the *simplifier* that turns
//! the typed AST from [`pta_cfront`] into this form.
//!
//! ```
//! let ast = pta_cfront::frontend("int g; int main(void) { int *p; p = &g; *p = 3; return g; }")?;
//! let ir = pta_simple::lower(&ast)?;
//! pta_simple::validate(&ir).unwrap();
//! assert!(ir.entry.is_some());
//! # Ok::<(), pta_cfront::FrontendError>(())
//! ```

pub mod builder;
pub mod ir;
pub mod lower;
pub mod printer;
pub mod validate;

pub use ir::{
    BasicStmt, CallSiteId, CallSiteInfo, CallTarget, CondExpr, Const, IdxClass, IrFunction,
    IrGlobal, IrProgram, IrProj, IrSwitchArm, IrVar, IrVarId, Operand, Stmt, StmtId, VarBase,
    VarKind, VarPath, VarRef,
};
pub use lower::lower;
pub use validate::{validate, ValidationError};

use pta_cfront::error::FrontendError;

/// Runs the whole pipeline from C source to validated SIMPLE form.
///
/// # Errors
///
/// Returns front-end errors from lexing/parsing/sema/lowering.
///
/// # Panics
///
/// Panics if the simplifier produces IR violating its own invariants
/// (a bug, checked by [`fn@validate`]).
pub fn compile(source: &str) -> Result<IrProgram, FrontendError> {
    let ast = pta_cfront::frontend(source)?;
    let ir = lower(&ast)?;
    validate(&ir).expect("simplifier must produce valid SIMPLE");
    Ok(ir)
}
