//! Pretty-printer for SIMPLE form (used by tests, the CLI, and
//! debugging).

use crate::ir::*;
use pta_cfront::ast::{BinaryOp, UnaryOp};
use std::fmt::Write as _;

/// Renders a whole program in SIMPLE form.
pub fn print_program(p: &IrProgram) -> String {
    let mut out = String::new();
    for g in &p.globals {
        let _ = writeln!(out, "global {};", g.name);
    }
    for (id, f) in p.functions.iter().enumerate() {
        if !f.is_defined() {
            continue;
        }
        let _ = writeln!(out, "\nfunction {} (f{}) {{", f.name, id);
        for (i, v) in f.vars.iter().enumerate() {
            let kind = match v.kind {
                VarKind::Param(_) => "param",
                VarKind::Local => "local",
                VarKind::Temp => "temp",
            };
            let _ = writeln!(out, "  {kind} {} (v{i});", v.name);
        }
        if let Some(b) = &f.body {
            print_stmt(&mut out, p, f, b, 1);
        }
        let _ = writeln!(out, "}}");
    }
    out
}

/// Renders one function's body in SIMPLE form.
pub fn print_function(p: &IrProgram, f: &IrFunction) -> String {
    let mut out = String::new();
    if let Some(b) = &f.body {
        print_stmt(&mut out, p, f, b, 0);
    }
    out
}

fn indent(out: &mut String, level: usize) {
    for _ in 0..level {
        out.push_str("  ");
    }
}

fn print_stmt(out: &mut String, p: &IrProgram, f: &IrFunction, s: &Stmt, level: usize) {
    match s {
        Stmt::Basic(b, id) => {
            indent(out, level);
            let _ = writeln!(out, "{}  [{}]", basic_str(p, f, b), id);
        }
        Stmt::Seq(stmts) => {
            for s in stmts {
                print_stmt(out, p, f, s, level);
            }
        }
        Stmt::If {
            cond,
            then_s,
            else_s,
            id,
        } => {
            indent(out, level);
            let _ = writeln!(out, "if ({}) {{  [{}]", cond_str(p, f, cond), id);
            print_stmt(out, p, f, then_s, level + 1);
            if let Some(e) = else_s {
                indent(out, level);
                let _ = writeln!(out, "}} else {{");
                print_stmt(out, p, f, e, level + 1);
            }
            indent(out, level);
            let _ = writeln!(out, "}}");
        }
        Stmt::While {
            pre_cond,
            cond,
            body,
            id,
        } => {
            if pre_cond.count_basic() > 0 {
                indent(out, level);
                let _ = writeln!(out, "/* cond eval */");
                print_stmt(out, p, f, pre_cond, level);
            }
            indent(out, level);
            let _ = writeln!(out, "while ({}) {{  [{}]", cond_str(p, f, cond), id);
            print_stmt(out, p, f, body, level + 1);
            indent(out, level);
            let _ = writeln!(out, "}}");
        }
        Stmt::DoWhile {
            body,
            pre_cond,
            cond,
            id,
        } => {
            indent(out, level);
            let _ = writeln!(out, "do {{  [{}]", id);
            print_stmt(out, p, f, body, level + 1);
            print_stmt(out, p, f, pre_cond, level + 1);
            indent(out, level);
            let _ = writeln!(out, "}} while ({});", cond_str(p, f, cond));
        }
        Stmt::For {
            init,
            pre_cond,
            cond,
            step,
            body,
            id,
        } => {
            indent(out, level);
            let _ = writeln!(out, "for-init:  [{}]", id);
            print_stmt(out, p, f, init, level + 1);
            print_stmt(out, p, f, pre_cond, level + 1);
            indent(out, level);
            let _ = writeln!(out, "for ({}) {{", cond_str(p, f, cond));
            print_stmt(out, p, f, body, level + 1);
            indent(out, level);
            let _ = writeln!(out, "}} step {{");
            print_stmt(out, p, f, step, level + 1);
            indent(out, level);
            let _ = writeln!(out, "}}");
        }
        Stmt::Switch {
            scrutinee,
            arms,
            id,
            ..
        } => {
            indent(out, level);
            let _ = writeln!(
                out,
                "switch ({}) {{  [{}]",
                operand_str(p, f, scrutinee),
                id
            );
            for arm in arms {
                indent(out, level + 1);
                let labels: Vec<String> = arm
                    .labels
                    .iter()
                    .map(|l| match l {
                        Some(v) => format!("case {v}"),
                        None => "default".to_owned(),
                    })
                    .collect();
                let _ = writeln!(out, "{}:", labels.join(", "));
                print_stmt(out, p, f, &arm.body, level + 2);
            }
            indent(out, level);
            let _ = writeln!(out, "}}");
        }
        Stmt::Break(id) => {
            indent(out, level);
            let _ = writeln!(out, "break;  [{}]", id);
        }
        Stmt::Continue(id) => {
            indent(out, level);
            let _ = writeln!(out, "continue;  [{}]", id);
        }
    }
}

/// Renders a variable reference.
pub fn ref_str(p: &IrProgram, f: &IrFunction, r: &VarRef) -> String {
    match r {
        VarRef::Path(path) => path_str(p, f, path),
        VarRef::Deref { path, shift, after } => {
            let base = path_str(p, f, path);
            let mut s = match shift {
                IdxClass::Zero => format!("*{base}"),
                IdxClass::Positive => format!("*({base} + k)"),
                IdxClass::Unknown => format!("*({base} + ?)"),
            };
            for proj in after {
                match proj {
                    IrProj::Field(name) => {
                        s = format!("({s}).{name}");
                    }
                    IrProj::Index(c) => {
                        s = format!("({s}){}", idx_str(*c));
                    }
                }
            }
            s
        }
    }
}

fn idx_str(c: IdxClass) -> &'static str {
    match c {
        IdxClass::Zero => "[0]",
        IdxClass::Positive => "[+]",
        IdxClass::Unknown => "[?]",
    }
}

fn path_str(p: &IrProgram, f: &IrFunction, path: &VarPath) -> String {
    let mut s = match path.base {
        VarBase::Global(id) => p.global(id).name.clone(),
        VarBase::Var(id) => f.var(id).name.clone(),
    };
    for proj in &path.projs {
        match proj {
            IrProj::Field(name) => {
                s.push('.');
                s.push_str(name);
            }
            IrProj::Index(c) => s.push_str(idx_str(*c)),
        }
    }
    s
}

/// Renders an operand.
pub fn operand_str(p: &IrProgram, f: &IrFunction, op: &Operand) -> String {
    match op {
        Operand::Ref(r) => ref_str(p, f, r),
        Operand::Const(Const::Int(v)) => v.to_string(),
        Operand::Const(Const::Float(v)) => format!("{v:?}"),
        Operand::AddrOf(r) => format!("&{}", ref_str(p, f, r)),
        Operand::Func(id) => p.function(*id).name.clone(),
        Operand::Str(s) => format!("{s:?}"),
    }
}

fn unop_str(op: UnaryOp) -> &'static str {
    match op {
        UnaryOp::Neg => "-",
        UnaryOp::Not => "!",
        UnaryOp::BitNot => "~",
        UnaryOp::AddrOf => "&",
        UnaryOp::Deref => "*",
        UnaryOp::PreInc | UnaryOp::PostInc => "++",
        UnaryOp::PreDec | UnaryOp::PostDec => "--",
    }
}

fn binop_str(op: BinaryOp) -> &'static str {
    use BinaryOp::*;
    match op {
        Add => "+",
        Sub => "-",
        Mul => "*",
        Div => "/",
        Rem => "%",
        Shl => "<<",
        Shr => ">>",
        Lt => "<",
        Gt => ">",
        Le => "<=",
        Ge => ">=",
        Eq => "==",
        Ne => "!=",
        BitAnd => "&",
        BitOr => "|",
        BitXor => "^",
        LogAnd => "&&",
        LogOr => "||",
    }
}

fn basic_str(p: &IrProgram, f: &IrFunction, b: &BasicStmt) -> String {
    match b {
        BasicStmt::Copy { lhs, rhs } => {
            format!("{} = {};", ref_str(p, f, lhs), operand_str(p, f, rhs))
        }
        BasicStmt::Unary { lhs, op, rhs } => {
            format!(
                "{} = {}{};",
                ref_str(p, f, lhs),
                unop_str(*op),
                operand_str(p, f, rhs)
            )
        }
        BasicStmt::Binary { lhs, op, a, b } => format!(
            "{} = {} {} {};",
            ref_str(p, f, lhs),
            operand_str(p, f, a),
            binop_str(*op),
            operand_str(p, f, b)
        ),
        BasicStmt::PtrArith { lhs, ptr, shift } => {
            let sh = match shift {
                IdxClass::Zero => "+ 0",
                IdxClass::Positive => "+ k",
                IdxClass::Unknown => "+ ?",
            };
            format!("{} = {} {sh};", ref_str(p, f, lhs), ref_str(p, f, ptr))
        }
        BasicStmt::Alloc { lhs, size } => {
            format!(
                "{} = malloc({});",
                ref_str(p, f, lhs),
                operand_str(p, f, size)
            )
        }
        BasicStmt::Call {
            lhs,
            target,
            args,
            call_site,
        } => {
            let callee = match target {
                CallTarget::Direct(id) => p.function(*id).name.clone(),
                CallTarget::Indirect(r) => format!("(*{})", ref_str(p, f, r)),
            };
            let args: Vec<String> = args.iter().map(|a| operand_str(p, f, a)).collect();
            match lhs {
                Some(l) => format!(
                    "{} = {callee}({}); /* {call_site} */",
                    ref_str(p, f, l),
                    args.join(", ")
                ),
                None => format!("{callee}({}); /* {call_site} */", args.join(", ")),
            }
        }
        BasicStmt::Return(v) => match v {
            Some(v) => format!("return {};", operand_str(p, f, v)),
            None => "return;".to_owned(),
        },
    }
}

/// Renders a condition.
pub fn cond_str(p: &IrProgram, f: &IrFunction, c: &CondExpr) -> String {
    match c {
        CondExpr::Rel(op, a, b) => {
            format!(
                "{} {} {}",
                operand_str(p, f, a),
                binop_str(*op),
                operand_str(p, f, b)
            )
        }
        CondExpr::Test(a) => operand_str(p, f, a),
        CondExpr::Not(a) => format!("!{}", operand_str(p, f, a)),
        CondExpr::ConstTrue => "1".to_owned(),
    }
}
