//! The simplifier: lowers the typed AST into SIMPLE form.
//!
//! Responsibilities (mirroring the McCAT SIMPLE design of §2 of the
//! paper):
//! - compile complex expressions into sequences of basic statements with
//!   compiler temporaries;
//! - guarantee at most one level of pointer indirection per variable
//!   reference;
//! - simplify call arguments to constants or variable references;
//! - simplify conditions to side-effect-free simple expressions, hoisting
//!   their computation into `pre_cond` blocks;
//! - move variable initializations from declarations into statements
//!   (global initializers are hoisted to the top of `main`);
//! - break struct assignments into per-field assignments;
//! - turn `malloc`/`calloc`/`realloc` calls into [`BasicStmt::Alloc`].

use crate::ir::*;
use pta_cfront::ast::{
    self, BinaryOp, Expr, ExprKind, FuncId, Init, Resolution, Stmt as AStmt, StmtKind, UnaryOp,
};
use pta_cfront::error::{FrontendError, Phase};
use pta_cfront::span::Span;
use pta_cfront::types::{StructTable, Type};

/// Lowers a semantically-analyzed program into SIMPLE.
///
/// # Errors
///
/// Returns an error for constructs outside the analysable subset (e.g.
/// an initializer list that does not match its declared type).
pub fn lower(program: &ast::Program) -> Result<IrProgram, FrontendError> {
    let globals: Vec<IrGlobal> = program
        .globals
        .iter()
        .map(|g| IrGlobal {
            name: g.name.clone(),
            ty: g.ty.clone(),
        })
        .collect();

    let mut ir = IrProgram {
        structs: program.structs.clone(),
        globals,
        functions: Vec::new(),
        entry: program.main(),
        n_stmts: 0,
        call_sites: Vec::new(),
        spans: Vec::new(),
    };

    let mut next_stmt = 0u32;
    for (idx, f) in program.functions.iter().enumerate() {
        let func_id = FuncId(idx as u32);
        let mut vars: Vec<IrVar> = f
            .params
            .iter()
            .enumerate()
            .map(|(i, p)| IrVar {
                name: p.name.clone(),
                ty: p.ty.clone(),
                kind: VarKind::Param(i as u32),
            })
            .collect();
        vars.extend(f.locals.iter().map(|l| IrVar {
            name: l.name.clone(),
            ty: l.ty.clone(),
            kind: VarKind::Local,
        }));
        let body = match &f.body {
            None => None,
            Some(stmts) => {
                let mut ctx = Lower {
                    ast: program,
                    func_id,
                    vars: &mut vars,
                    next_stmt: &mut next_stmt,
                    call_sites: &mut ir.call_sites,
                    n_params: f.params.len(),
                    spans: &mut ir.spans,
                    cur_span: f.span,
                };
                let mut out = Vec::new();
                // Hoist global initializers into the entry function.
                if Some(func_id) == program.main() {
                    for (gi, g) in program.globals.iter().enumerate() {
                        if let Some(init) = &g.init {
                            let path = VarPath::global(ast::GlobalId(gi as u32));
                            ctx.lower_init(&mut out, path, &g.ty, init, g.span)?;
                        }
                    }
                }
                for s in stmts {
                    ctx.stmt(&mut out, s)?;
                }
                Some(Stmt::Seq(out))
            }
        };
        ir.functions.push(IrFunction {
            name: f.name.clone(),
            ret: f.ret.clone(),
            n_params: f.params.len(),
            vars,
            body,
            variadic: f.variadic,
            span: f.span,
        });
    }
    ir.n_stmts = next_stmt;
    Ok(ir)
}

fn err(span: Span, msg: impl Into<String>) -> FrontendError {
    FrontendError::new(Phase::Sema, span, msg)
}

struct Lower<'a> {
    ast: &'a ast::Program,
    func_id: FuncId,
    vars: &'a mut Vec<IrVar>,
    next_stmt: &'a mut u32,
    call_sites: &'a mut Vec<CallSiteInfo>,
    n_params: usize,
    spans: &'a mut Vec<Span>,
    cur_span: Span,
}

impl<'a> Lower<'a> {
    fn structs(&self) -> &StructTable {
        &self.ast.structs
    }

    fn fresh_id(&mut self) -> StmtId {
        let id = StmtId(*self.next_stmt);
        *self.next_stmt += 1;
        debug_assert_eq!(self.spans.len(), id.0 as usize);
        self.spans.push(self.cur_span);
        id
    }

    fn temp(&mut self, ty: Type) -> IrVarId {
        let id = IrVarId(self.vars.len() as u32);
        self.vars.push(IrVar {
            name: format!("_t{}", self.vars.len()),
            ty,
            kind: VarKind::Temp,
        });
        id
    }

    fn emit(&mut self, out: &mut Vec<Stmt>, b: BasicStmt) {
        let id = self.fresh_id();
        out.push(Stmt::Basic(b, id));
    }

    fn emit_call(
        &mut self,
        out: &mut Vec<Stmt>,
        lhs: Option<VarRef>,
        target: CallTarget,
        args: Vec<Operand>,
    ) {
        let id = self.fresh_id();
        let cs = CallSiteId(self.call_sites.len() as u32);
        self.call_sites.push(CallSiteInfo {
            caller: self.func_id,
            stmt: id,
            indirect: matches!(target, CallTarget::Indirect(_)),
        });
        out.push(Stmt::Basic(
            BasicStmt::Call {
                lhs,
                target,
                args,
                call_site: cs,
            },
            id,
        ));
    }

    /// Resolves an identifier to its IR path base.
    fn res_path(&self, r: Resolution) -> Option<VarPath> {
        match r {
            Resolution::Local(id) => Some(VarPath::var(IrVarId(self.n_params as u32 + id.0))),
            Resolution::Param(i) => Some(VarPath::var(IrVarId(i))),
            Resolution::Global(id) => Some(VarPath::global(id)),
            _ => None,
        }
    }

    // ----- statements ------------------------------------------------------

    fn stmt(&mut self, out: &mut Vec<Stmt>, s: &AStmt) -> Result<(), FrontendError> {
        self.cur_span = s.span;
        match &s.kind {
            StmtKind::Expr(e) => self.expr_stmt(out, e),
            StmtKind::Decl(decls) => {
                for d in decls {
                    if let Some(init) = &d.init {
                        let lid = d.local_id.expect("sema assigned local ids");
                        let path = VarPath::var(IrVarId(self.n_params as u32 + lid.0));
                        self.lower_init(out, path, &d.ty, init, d.span)?;
                    }
                }
                Ok(())
            }
            StmtKind::If(c, t, e) => {
                let cond = self.lower_cond(out, c)?;
                let mut then_v = Vec::new();
                self.stmt(&mut then_v, t)?;
                let else_s = match e {
                    Some(e) => {
                        let mut else_v = Vec::new();
                        self.stmt(&mut else_v, e)?;
                        Some(Box::new(Stmt::Seq(else_v)))
                    }
                    None => None,
                };
                let id = self.fresh_id();
                out.push(Stmt::If {
                    cond,
                    then_s: Box::new(Stmt::Seq(then_v)),
                    else_s,
                    id,
                });
                Ok(())
            }
            StmtKind::While(c, b) => {
                let mut pre = Vec::new();
                let cond = self.lower_cond(&mut pre, c)?;
                let mut body = Vec::new();
                self.stmt(&mut body, b)?;
                let id = self.fresh_id();
                out.push(Stmt::While {
                    pre_cond: Box::new(Stmt::Seq(pre)),
                    cond,
                    body: Box::new(Stmt::Seq(body)),
                    id,
                });
                Ok(())
            }
            StmtKind::DoWhile(b, c) => {
                let mut body = Vec::new();
                self.stmt(&mut body, b)?;
                let mut pre = Vec::new();
                let cond = self.lower_cond(&mut pre, c)?;
                let id = self.fresh_id();
                out.push(Stmt::DoWhile {
                    body: Box::new(Stmt::Seq(body)),
                    pre_cond: Box::new(Stmt::Seq(pre)),
                    cond,
                    id,
                });
                Ok(())
            }
            StmtKind::For(i, c, st, b) => {
                let mut init = Vec::new();
                if let Some(i) = i {
                    self.expr_stmt(&mut init, i)?;
                }
                let mut pre = Vec::new();
                let cond = match c {
                    Some(c) => self.lower_cond(&mut pre, c)?,
                    None => CondExpr::ConstTrue,
                };
                let mut step = Vec::new();
                if let Some(st) = st {
                    self.expr_stmt(&mut step, st)?;
                }
                let mut body = Vec::new();
                self.stmt(&mut body, b)?;
                let id = self.fresh_id();
                out.push(Stmt::For {
                    init: Box::new(Stmt::Seq(init)),
                    pre_cond: Box::new(Stmt::Seq(pre)),
                    cond,
                    step: Box::new(Stmt::Seq(step)),
                    body: Box::new(Stmt::Seq(body)),
                    id,
                });
                Ok(())
            }
            StmtKind::Switch(e, arms) => {
                let scrutinee = self.rvalue(out, e)?;
                let mut ir_arms = Vec::new();
                let mut has_default = false;
                for arm in arms {
                    if arm.labels.contains(&None) {
                        has_default = true;
                    }
                    let mut body = Vec::new();
                    for s in &arm.stmts {
                        self.stmt(&mut body, s)?;
                    }
                    ir_arms.push(IrSwitchArm {
                        labels: arm.labels.clone(),
                        body: Stmt::Seq(body),
                    });
                }
                let id = self.fresh_id();
                out.push(Stmt::Switch {
                    scrutinee,
                    arms: ir_arms,
                    has_default,
                    id,
                });
                Ok(())
            }
            StmtKind::Break => {
                let id = self.fresh_id();
                out.push(Stmt::Break(id));
                Ok(())
            }
            StmtKind::Continue => {
                let id = self.fresh_id();
                out.push(Stmt::Continue(id));
                Ok(())
            }
            StmtKind::Return(e) => {
                let v = match e {
                    Some(e) => Some(self.rvalue(out, e)?),
                    None => None,
                };
                self.emit(out, BasicStmt::Return(v));
                Ok(())
            }
            StmtKind::Block(stmts) => {
                for s in stmts {
                    self.stmt(out, s)?;
                }
                Ok(())
            }
            StmtKind::Empty => Ok(()),
        }
    }

    /// Lowers an expression evaluated only for its effects.
    fn expr_stmt(&mut self, out: &mut Vec<Stmt>, e: &Expr) -> Result<(), FrontendError> {
        match &e.kind {
            ExprKind::Assign(..) => {
                self.rvalue(out, e)?;
                Ok(())
            }
            ExprKind::Call(..) => {
                self.lower_call(out, e, false)?;
                Ok(())
            }
            ExprKind::Unary(
                UnaryOp::PreInc | UnaryOp::PreDec | UnaryOp::PostInc | UnaryOp::PostDec,
                inner,
            ) => {
                let op = match &e.kind {
                    ExprKind::Unary(op, _) => *op,
                    _ => unreachable!(),
                };
                let lv = self.lvalue(out, inner)?;
                self.emit_incdec(out, &lv, inner.ty(), op);
                Ok(())
            }
            ExprKind::Comma(a, b) => {
                self.expr_stmt(out, a)?;
                self.expr_stmt(out, b)
            }
            _ => {
                self.rvalue(out, e)?;
                Ok(())
            }
        }
    }

    fn emit_incdec(&mut self, out: &mut Vec<Stmt>, lv: &VarRef, ty: &Type, op: UnaryOp) {
        let inc = matches!(op, UnaryOp::PreInc | UnaryOp::PostInc);
        if ty.is_pointer() {
            let shift = if inc {
                IdxClass::Positive
            } else {
                IdxClass::Unknown
            };
            self.emit(
                out,
                BasicStmt::PtrArith {
                    lhs: lv.clone(),
                    ptr: lv.clone(),
                    shift,
                },
            );
        } else {
            let bop = if inc { BinaryOp::Add } else { BinaryOp::Sub };
            self.emit(
                out,
                BasicStmt::Binary {
                    lhs: lv.clone(),
                    op: bop,
                    a: Operand::Ref(lv.clone()),
                    b: Operand::int(1),
                },
            );
        }
    }

    // ----- initializers ----------------------------------------------------

    fn lower_init(
        &mut self,
        out: &mut Vec<Stmt>,
        path: VarPath,
        ty: &Type,
        init: &Init,
        span: Span,
    ) -> Result<(), FrontendError> {
        self.cur_span = span;
        match (init, ty) {
            (Init::Expr(e), _) => {
                let lv = VarRef::Path(path);
                self.assign_into(out, lv, ty, e)
            }
            (Init::List(items), Type::Array(elem, _)) => {
                for (i, item) in items.iter().enumerate() {
                    let p = path
                        .clone()
                        .project(IrProj::Index(IdxClass::of_const(i as i64)));
                    self.lower_init(out, p, elem, item, span)?;
                }
                Ok(())
            }
            (Init::List(items), Type::Struct(id)) => {
                let fields = self.structs().def(*id).fields.clone();
                if items.len() > fields.len() {
                    return Err(err(span, "too many initializers for struct"));
                }
                for (item, field) in items.iter().zip(fields.iter()) {
                    let p = path.clone().project(IrProj::Field(field.name.clone()));
                    self.lower_init(out, p, &field.ty, item, span)?;
                }
                Ok(())
            }
            (Init::List(items), _) if items.len() == 1 => {
                // `int x = {1};` — scalar braced initializer.
                self.lower_init(out, path, ty, &items[0], span)
            }
            (Init::List(_), _) => Err(err(span, "initializer list does not match declared type")),
        }
    }

    // ----- lvalues ---------------------------------------------------------

    /// Lowers an lvalue expression to a SIMPLE variable reference
    /// (introducing temporaries to keep at most one dereference).
    fn lvalue(&mut self, out: &mut Vec<Stmt>, e: &Expr) -> Result<VarRef, FrontendError> {
        match &e.kind {
            ExprKind::Ident(name, res) => {
                let r = res.expect("sema resolved idents");
                match self.res_path(r) {
                    Some(p) => Ok(VarRef::Path(p)),
                    None => Err(err(e.span, format!("`{name}` is not assignable storage"))),
                }
            }
            ExprKind::Member(base, field, false) => {
                let b = self.lvalue(out, base)?;
                Ok(ref_project(b, IrProj::Field(field.clone())))
            }
            ExprKind::Member(base, field, true) => {
                let path = self.pointer_path(out, base)?;
                Ok(VarRef::Deref {
                    path,
                    shift: IdxClass::Zero,
                    after: vec![IrProj::Field(field.clone())],
                })
            }
            ExprKind::Unary(UnaryOp::Deref, inner) => {
                let it = inner.ty();
                if it.is_array() {
                    // `*a` on an array is `a[0]` — no pointer dereference.
                    let b = self.lvalue(out, inner)?;
                    return Ok(ref_project(b, IrProj::Index(IdxClass::Zero)));
                }
                let path = self.pointer_path(out, inner)?;
                Ok(VarRef::Deref {
                    path,
                    shift: IdxClass::Zero,
                    after: vec![],
                })
            }
            ExprKind::Index(base, idx) => {
                let class = self.idx_class(idx);
                // Evaluate the index for its side effects.
                if has_effects(idx) {
                    self.expr_stmt(out, idx)?;
                }
                let bt = base.ty();
                if bt.is_array() {
                    let b = self.lvalue(out, base)?;
                    Ok(ref_project(b, IrProj::Index(class)))
                } else {
                    // Pointer subscript: one dereference with a shift.
                    let path = self.pointer_path(out, base)?;
                    Ok(VarRef::Deref {
                        path,
                        shift: class,
                        after: vec![],
                    })
                }
            }
            ExprKind::Cast(_, inner) => self.lvalue(out, inner),
            _ => Err(err(e.span, "expression is not an lvalue in SIMPLE form")),
        }
    }

    /// Lowers a pointer-valued expression to a dereference-free path
    /// (the pointer that a single-deref reference will go through).
    fn pointer_path(&mut self, out: &mut Vec<Stmt>, e: &Expr) -> Result<VarPath, FrontendError> {
        // Fast path: the expression is already a dereference-free lvalue.
        if let Ok(VarRef::Path(p)) = self.try_simple_lvalue(e) {
            return Ok(p);
        }
        let ty = e.ty().decay();
        let op = self.rvalue(out, e)?;
        match op {
            Operand::Ref(VarRef::Path(p)) => Ok(p),
            other => {
                let t = self.temp(ty);
                self.emit(
                    out,
                    BasicStmt::Copy {
                        lhs: VarRef::Path(VarPath::var(t)),
                        rhs: other,
                    },
                );
                Ok(VarPath::var(t))
            }
        }
    }

    /// Tries to view `e` as a dereference-free lvalue without emitting
    /// any statements (no side effects allowed).
    fn try_simple_lvalue(&mut self, e: &Expr) -> Result<VarRef, FrontendError> {
        match &e.kind {
            ExprKind::Ident(_, Some(r)) => match self.res_path(*r) {
                Some(p) => Ok(VarRef::Path(p)),
                None => Err(err(e.span, "not simple storage")),
            },
            ExprKind::Member(base, field, false) => {
                let b = self.try_simple_lvalue(base)?;
                match b {
                    VarRef::Path(_) => Ok(ref_project(b, IrProj::Field(field.clone()))),
                    _ => Err(err(e.span, "not simple")),
                }
            }
            ExprKind::Index(base, idx) if base.ty().is_array() && !has_effects(idx) => {
                let class = self.idx_class(idx);
                let b = self.try_simple_lvalue(base)?;
                match b {
                    VarRef::Path(_) => Ok(ref_project(b, IrProj::Index(class))),
                    _ => Err(err(e.span, "not simple")),
                }
            }
            _ => Err(err(e.span, "not simple")),
        }
    }

    fn idx_class(&self, idx: &Expr) -> IdxClass {
        match const_int(idx) {
            Some(0) => IdxClass::Zero,
            Some(v) if v > 0 => IdxClass::Positive,
            _ => IdxClass::Unknown,
        }
    }

    // ----- rvalues ---------------------------------------------------------

    /// Lowers an expression to an operand, emitting any needed basic
    /// statements.
    fn rvalue(&mut self, out: &mut Vec<Stmt>, e: &Expr) -> Result<Operand, FrontendError> {
        match &e.kind {
            ExprKind::IntLit(v) | ExprKind::CharLit(v) => Ok(Operand::int(*v)),
            ExprKind::FloatLit(v) => Ok(Operand::Const(Const::Float(*v))),
            ExprKind::StrLit(s) => Ok(Operand::Str(s.clone())),
            ExprKind::Ident(_, Some(Resolution::Func(id))) => Ok(Operand::Func(*id)),
            ExprKind::Ident(_, Some(Resolution::EnumConst(v))) => Ok(Operand::int(*v)),
            ExprKind::Ident(..) | ExprKind::Member(..) | ExprKind::Index(..) => {
                let lv = self.lvalue(out, e)?;
                Ok(self.decayed_read(lv, e.ty()))
            }
            ExprKind::Unary(UnaryOp::AddrOf, inner) => {
                if let ExprKind::Ident(_, Some(Resolution::Func(id))) = &inner.kind {
                    return Ok(Operand::Func(*id));
                }
                let lv = self.lvalue(out, inner)?;
                Ok(Operand::AddrOf(lv))
            }
            ExprKind::Unary(UnaryOp::Deref, inner) => {
                if inner.ty().decay().is_func_pointerish() && e.ty().is_func() {
                    // `*fp` yields the function designator, which decays
                    // back to the pointer value: just read `fp`.
                    return self.rvalue(out, inner);
                }
                let lv = self.lvalue(out, e)?;
                Ok(self.decayed_read(lv, e.ty()))
            }
            ExprKind::Unary(op @ (UnaryOp::PreInc | UnaryOp::PreDec), inner) => {
                let lv = self.lvalue(out, inner)?;
                self.emit_incdec(out, &lv, inner.ty(), *op);
                Ok(Operand::Ref(lv))
            }
            ExprKind::Unary(op @ (UnaryOp::PostInc | UnaryOp::PostDec), inner) => {
                let lv = self.lvalue(out, inner)?;
                let t = self.temp(inner.ty().clone());
                let tref = VarRef::Path(VarPath::var(t));
                self.emit(
                    out,
                    BasicStmt::Copy {
                        lhs: tref.clone(),
                        rhs: Operand::Ref(lv.clone()),
                    },
                );
                self.emit_incdec(out, &lv, inner.ty(), *op);
                Ok(Operand::Ref(tref))
            }
            ExprKind::Unary(op, inner) => {
                let v = self.rvalue(out, inner)?;
                if let Operand::Const(Const::Int(x)) = v {
                    // Fold constant unary arithmetic.
                    let folded = match op {
                        UnaryOp::Neg => Some(-x),
                        UnaryOp::Not => Some((x == 0) as i64),
                        UnaryOp::BitNot => Some(!x),
                        _ => None,
                    };
                    if let Some(f) = folded {
                        return Ok(Operand::int(f));
                    }
                }
                let t = self.temp(e.ty().clone());
                let lhs = VarRef::Path(VarPath::var(t));
                self.emit(
                    out,
                    BasicStmt::Unary {
                        lhs: lhs.clone(),
                        op: *op,
                        rhs: v,
                    },
                );
                Ok(Operand::Ref(lhs))
            }
            ExprKind::Binary(op, a, b) => self.lower_binary(out, e, *op, a, b),
            ExprKind::Assign(lhs, op, rhs) => {
                let lv = self.lvalue(out, lhs)?;
                match op {
                    None => {
                        self.assign_into_ref(out, lv.clone(), lhs.ty(), rhs)?;
                    }
                    Some(bop) => {
                        if lhs.ty().is_pointer() && matches!(bop, BinaryOp::Add | BinaryOp::Sub) {
                            let shift = match (bop, const_int(rhs)) {
                                (BinaryOp::Add, Some(0)) | (BinaryOp::Sub, Some(0)) => {
                                    IdxClass::Zero
                                }
                                (BinaryOp::Add, Some(v)) if v > 0 => IdxClass::Positive,
                                _ => IdxClass::Unknown,
                            };
                            if has_effects(rhs) {
                                self.expr_stmt(out, rhs)?;
                            }
                            self.emit(
                                out,
                                BasicStmt::PtrArith {
                                    lhs: lv.clone(),
                                    ptr: lv.clone(),
                                    shift,
                                },
                            );
                        } else {
                            let v = self.rvalue(out, rhs)?;
                            self.emit(
                                out,
                                BasicStmt::Binary {
                                    lhs: lv.clone(),
                                    op: *bop,
                                    a: Operand::Ref(lv.clone()),
                                    b: v,
                                },
                            );
                        }
                    }
                }
                Ok(Operand::Ref(lv))
            }
            ExprKind::Cond(c, t, f) => {
                let cond = self.lower_cond(out, c)?;
                let tmp = self.temp(e.ty().clone());
                let tref = VarRef::Path(VarPath::var(tmp));
                let mut then_v = Vec::new();
                let tv = self.rvalue(&mut then_v, t)?;
                self.emit(
                    &mut then_v,
                    BasicStmt::Copy {
                        lhs: tref.clone(),
                        rhs: tv,
                    },
                );
                let mut else_v = Vec::new();
                let fv = self.rvalue(&mut else_v, f)?;
                self.emit(
                    &mut else_v,
                    BasicStmt::Copy {
                        lhs: tref.clone(),
                        rhs: fv,
                    },
                );
                let id = self.fresh_id();
                out.push(Stmt::If {
                    cond,
                    then_s: Box::new(Stmt::Seq(then_v)),
                    else_s: Some(Box::new(Stmt::Seq(else_v))),
                    id,
                });
                Ok(Operand::Ref(tref))
            }
            ExprKind::Call(..) => {
                let dst = self.lower_call(out, e, true)?;
                Ok(dst.expect("lower_call returns a value when requested"))
            }
            ExprKind::Cast(_, inner) => self.rvalue(out, inner),
            ExprKind::SizeofTy(ty) => {
                Ok(Operand::int(pta_cfront::types::size_of(ty, self.structs())))
            }
            ExprKind::SizeofExpr(inner) => Ok(Operand::int(pta_cfront::types::size_of(
                inner.ty(),
                self.structs(),
            ))),
            ExprKind::Comma(a, b) => {
                self.expr_stmt(out, a)?;
                self.rvalue(out, b)
            }
        }
    }

    /// Reads an lvalue as an rvalue, applying array decay.
    fn decayed_read(&mut self, lv: VarRef, ty: &Type) -> Operand {
        if ty.is_array() {
            // An array rvalue is the address of its first element.
            Operand::AddrOf(ref_project(lv, IrProj::Index(IdxClass::Zero)))
        } else {
            Operand::Ref(lv)
        }
    }

    fn lower_binary(
        &mut self,
        out: &mut Vec<Stmt>,
        e: &Expr,
        op: BinaryOp,
        a: &Expr,
        b: &Expr,
    ) -> Result<Operand, FrontendError> {
        if op.is_logical() {
            return self.lower_logical(out, e, op, a, b);
        }
        // Pointer arithmetic: result is a pointer.
        let rty = e.ty().decay();
        if rty.is_pointer() && matches!(op, BinaryOp::Add | BinaryOp::Sub) {
            let (ptr_e, int_e) = if a.ty().decay().is_pointer() {
                (a, b)
            } else {
                (b, a)
            };
            let shift = match (op, const_int(int_e)) {
                (_, Some(0)) => IdxClass::Zero,
                (BinaryOp::Add, Some(v)) if v > 0 => IdxClass::Positive,
                _ => IdxClass::Unknown,
            };
            if has_effects(int_e) {
                self.expr_stmt(out, int_e)?;
            }
            let pv = self.rvalue(out, ptr_e)?;
            // `p + 0` is just `p`.
            if shift == IdxClass::Zero {
                return Ok(pv);
            }
            // `&a[k] + i` folds into `&a[k+i]` when the shape allows.
            if let Operand::AddrOf(r) = &pv {
                if let Some(shifted) = shift_addr(r, shift) {
                    return Ok(Operand::AddrOf(shifted));
                }
            }
            let pr = self.operand_to_ref(out, pv, rty.clone());
            let t = self.temp(rty);
            let lhs = VarRef::Path(VarPath::var(t));
            self.emit(
                out,
                BasicStmt::PtrArith {
                    lhs: lhs.clone(),
                    ptr: pr,
                    shift,
                },
            );
            return Ok(Operand::Ref(lhs));
        }
        let av = self.rvalue(out, a)?;
        let bv = self.rvalue(out, b)?;
        if let (Operand::Const(Const::Int(x)), Operand::Const(Const::Int(y))) = (&av, &bv) {
            if let Some(f) = fold_int(op, *x, *y) {
                return Ok(Operand::int(f));
            }
        }
        let t = self.temp(e.ty().clone());
        let lhs = VarRef::Path(VarPath::var(t));
        self.emit(
            out,
            BasicStmt::Binary {
                lhs: lhs.clone(),
                op,
                a: av,
                b: bv,
            },
        );
        Ok(Operand::Ref(lhs))
    }

    fn lower_logical(
        &mut self,
        out: &mut Vec<Stmt>,
        e: &Expr,
        op: BinaryOp,
        a: &Expr,
        b: &Expr,
    ) -> Result<Operand, FrontendError> {
        let t = self.temp(e.ty().clone());
        let tref = VarRef::Path(VarPath::var(t));
        let cond = self.lower_cond(out, a)?;
        // t = a && b  →  if (a) { t = (b != 0); } else { t = 0; }
        // t = a || b  →  if (a) { t = 1; } else { t = (b != 0); }
        let mut eval_b = Vec::new();
        let bv = self.rvalue(&mut eval_b, b)?;
        self.emit(
            &mut eval_b,
            BasicStmt::Binary {
                lhs: tref.clone(),
                op: BinaryOp::Ne,
                a: bv,
                b: Operand::int(0),
            },
        );
        let mut const_v = Vec::new();
        let k = if op == BinaryOp::LogAnd { 0 } else { 1 };
        self.emit(
            &mut const_v,
            BasicStmt::Copy {
                lhs: tref.clone(),
                rhs: Operand::int(k),
            },
        );
        let (then_v, else_v) = if op == BinaryOp::LogAnd {
            (eval_b, const_v)
        } else {
            (const_v, eval_b)
        };
        let id = self.fresh_id();
        out.push(Stmt::If {
            cond,
            then_s: Box::new(Stmt::Seq(then_v)),
            else_s: Some(Box::new(Stmt::Seq(else_v))),
            id,
        });
        Ok(Operand::Ref(tref))
    }

    fn operand_to_ref(&mut self, out: &mut Vec<Stmt>, op: Operand, ty: Type) -> VarRef {
        match op {
            Operand::Ref(r) => r,
            other => {
                let t = self.temp(ty);
                let lhs = VarRef::Path(VarPath::var(t));
                self.emit(
                    out,
                    BasicStmt::Copy {
                        lhs: lhs.clone(),
                        rhs: other,
                    },
                );
                lhs
            }
        }
    }

    // ----- assignments (with struct expansion) -----------------------------

    fn assign_into(
        &mut self,
        out: &mut Vec<Stmt>,
        lv: VarRef,
        ty: &Type,
        rhs: &Expr,
    ) -> Result<(), FrontendError> {
        self.assign_into_ref(out, lv, ty, rhs)
    }

    fn assign_into_ref(
        &mut self,
        out: &mut Vec<Stmt>,
        lv: VarRef,
        ty: &Type,
        rhs: &Expr,
    ) -> Result<(), FrontendError> {
        if ty.is_struct() {
            // Struct assignment: obtain a readable reference for the rhs
            // and expand field by field.
            let rv = self.rvalue(out, rhs)?;
            let rref = match rv {
                Operand::Ref(r) => r,
                _ => return Err(err(rhs.span, "struct value expected")),
            };
            self.expand_struct_copy(out, &lv, &rref, ty);
            return Ok(());
        }
        let v = self.rvalue(out, rhs)?;
        self.emit(out, BasicStmt::Copy { lhs: lv, rhs: v });
        Ok(())
    }

    /// Breaks a struct assignment into per-leaf-field assignments, as the
    /// paper prescribes for the basic rules.
    fn expand_struct_copy(&mut self, out: &mut Vec<Stmt>, lhs: &VarRef, rhs: &VarRef, ty: &Type) {
        match ty {
            Type::Struct(id) => {
                let fields = self.structs().def(*id).fields.clone();
                for f in &fields {
                    let l = ref_project(lhs.clone(), IrProj::Field(f.name.clone()));
                    let r = ref_project(rhs.clone(), IrProj::Field(f.name.clone()));
                    self.expand_struct_copy(out, &l, &r, &f.ty);
                }
            }
            Type::Array(elem, _) => {
                // Element-wise copy collapses to a weak update over the
                // head/tail locations.
                for class in [IdxClass::Zero, IdxClass::Unknown] {
                    let l = ref_project(lhs.clone(), IrProj::Index(class));
                    let r = ref_project(rhs.clone(), IrProj::Index(class));
                    self.expand_struct_copy(out, &l, &r, elem);
                }
            }
            _ => {
                self.emit(
                    out,
                    BasicStmt::Copy {
                        lhs: lhs.clone(),
                        rhs: Operand::Ref(rhs.clone()),
                    },
                );
            }
        }
    }

    // ----- calls -----------------------------------------------------------

    /// Lowers a call expression. Returns the result operand when
    /// `want_value` is set.
    fn lower_call(
        &mut self,
        out: &mut Vec<Stmt>,
        e: &Expr,
        want_value: bool,
    ) -> Result<Option<Operand>, FrontendError> {
        let ExprKind::Call(callee, args) = &e.kind else {
            return Err(err(e.span, "not a call"));
        };
        // Heap allocators become Alloc statements.
        if let ExprKind::Ident(name, Some(Resolution::Func(_))) = &callee.kind {
            if matches!(name.as_str(), "malloc" | "calloc" | "realloc") {
                let size = if args.is_empty() {
                    Operand::int(0)
                } else {
                    self.rvalue(out, &args[0])?
                };
                // Evaluate any extra args for effects.
                for a in args.iter().skip(1) {
                    if has_effects(a) {
                        self.expr_stmt(out, a)?;
                    }
                }
                let t = self.temp(e.ty().clone());
                let lhs = VarRef::Path(VarPath::var(t));
                self.emit(
                    out,
                    BasicStmt::Alloc {
                        lhs: lhs.clone(),
                        size,
                    },
                );
                return Ok(Some(Operand::Ref(lhs)));
            }
        }
        let target = self.lower_callee(out, callee)?;
        let mut ops = Vec::new();
        for a in args {
            let v = self.rvalue(out, a)?;
            // Arguments must be constants or variable references; anything
            // else (another call's temp, &x is fine) is already simple.
            ops.push(v);
        }
        let ret_ty = e.ty().clone();
        let lhs = if want_value && ret_ty != Type::Void {
            let t = self.temp(ret_ty);
            Some(VarRef::Path(VarPath::var(t)))
        } else {
            None
        };
        self.emit_call(out, lhs.clone(), target, ops);
        Ok(match lhs {
            Some(r) => Some(Operand::Ref(r)),
            None if want_value => Some(Operand::int(0)), // void call in value position
            None => None,
        })
    }

    fn lower_callee(
        &mut self,
        out: &mut Vec<Stmt>,
        callee: &Expr,
    ) -> Result<CallTarget, FrontendError> {
        match &callee.kind {
            ExprKind::Ident(_, Some(Resolution::Func(id))) => Ok(CallTarget::Direct(*id)),
            ExprKind::Cast(_, inner) => self.lower_callee(out, inner),
            // `(*fp)(…)` — the called value is `fp` itself.
            ExprKind::Unary(UnaryOp::Deref, inner)
                if inner.ty().decay().is_func_pointerish() && callee.ty().is_func() =>
            {
                self.lower_callee_value(out, inner)
            }
            ExprKind::Unary(UnaryOp::AddrOf, inner)
                if matches!(inner.kind, ExprKind::Ident(_, Some(Resolution::Func(_)))) =>
            {
                match &inner.kind {
                    ExprKind::Ident(_, Some(Resolution::Func(id))) => Ok(CallTarget::Direct(*id)),
                    _ => unreachable!(),
                }
            }
            _ => self.lower_callee_value(out, callee),
        }
    }

    /// Lowers an expression whose *value* is the function pointer being
    /// called.
    fn lower_callee_value(
        &mut self,
        out: &mut Vec<Stmt>,
        e: &Expr,
    ) -> Result<CallTarget, FrontendError> {
        let v = self.rvalue(out, e)?;
        match v {
            Operand::Func(id) => Ok(CallTarget::Direct(id)),
            Operand::Ref(r) => Ok(CallTarget::Indirect(r)),
            other => {
                let t = self.temp(e.ty().decay());
                let lhs = VarRef::Path(VarPath::var(t));
                self.emit(
                    out,
                    BasicStmt::Copy {
                        lhs: lhs.clone(),
                        rhs: other,
                    },
                );
                Ok(CallTarget::Indirect(lhs))
            }
        }
    }

    // ----- conditions ------------------------------------------------------

    /// Lowers a condition to a side-effect-free simple expression,
    /// emitting its computation into `out`.
    fn lower_cond(&mut self, out: &mut Vec<Stmt>, e: &Expr) -> Result<CondExpr, FrontendError> {
        match &e.kind {
            ExprKind::IntLit(v) if *v != 0 => Ok(CondExpr::ConstTrue),
            ExprKind::Binary(op, a, b) if op.is_comparison() => {
                let av = self.rvalue(out, a)?;
                let bv = self.rvalue(out, b)?;
                Ok(CondExpr::Rel(*op, av, bv))
            }
            ExprKind::Unary(UnaryOp::Not, inner) => {
                // Only keep `!x` simple when x is already an operand.
                let v = self.rvalue(out, inner)?;
                Ok(CondExpr::Not(v))
            }
            ExprKind::Cast(_, inner) => self.lower_cond(out, inner),
            _ => {
                let v = self.rvalue(out, e)?;
                Ok(CondExpr::Test(v))
            }
        }
    }
}

/// Appends a projection to a variable reference (to the post-deref
/// projections for indirect references).
pub(crate) fn ref_project(r: VarRef, p: IrProj) -> VarRef {
    match r {
        VarRef::Path(path) => VarRef::Path(path.project(p)),
        VarRef::Deref {
            path,
            shift,
            mut after,
        } => {
            after.push(p);
            VarRef::Deref { path, shift, after }
        }
    }
}

/// `&ref + shift` folding: shifts the final index projection when
/// possible.
fn shift_addr(r: &VarRef, shift: IdxClass) -> Option<VarRef> {
    if shift == IdxClass::Zero {
        return Some(r.clone());
    }
    let combine = |c: IdxClass| match (c, shift) {
        (IdxClass::Zero, IdxClass::Positive) | (IdxClass::Positive, IdxClass::Positive) => {
            IdxClass::Positive
        }
        _ => IdxClass::Unknown,
    };
    match r {
        VarRef::Path(path) => {
            let mut path = path.clone();
            match path.projs.last_mut() {
                Some(IrProj::Index(c)) => {
                    *c = combine(*c);
                    Some(VarRef::Path(path))
                }
                _ => None,
            }
        }
        VarRef::Deref {
            path,
            shift: s0,
            after,
        } => {
            if after.is_empty() {
                let s = combine(*s0);
                Some(VarRef::Deref {
                    path: path.clone(),
                    shift: s,
                    after: vec![],
                })
            } else {
                let mut after = after.clone();
                match after.last_mut() {
                    Some(IrProj::Index(c)) => {
                        *c = combine(*c);
                        Some(VarRef::Deref {
                            path: path.clone(),
                            shift: *s0,
                            after,
                        })
                    }
                    _ => None,
                }
            }
        }
    }
}

/// Constant-detects an integer expression (literals, enum constants,
/// negation of literals).
fn const_int(e: &Expr) -> Option<i64> {
    match &e.kind {
        ExprKind::IntLit(v) | ExprKind::CharLit(v) => Some(*v),
        ExprKind::Ident(_, Some(Resolution::EnumConst(v))) => Some(*v),
        ExprKind::Unary(UnaryOp::Neg, inner) => const_int(inner).map(|v| -v),
        ExprKind::Cast(_, inner) => const_int(inner),
        _ => None,
    }
}

fn fold_int(op: BinaryOp, a: i64, b: i64) -> Option<i64> {
    use BinaryOp::*;
    Some(match op {
        Add => a.wrapping_add(b),
        Sub => a.wrapping_sub(b),
        Mul => a.wrapping_mul(b),
        Div => {
            if b == 0 {
                return None;
            }
            a / b
        }
        Rem => {
            if b == 0 {
                return None;
            }
            a % b
        }
        Shl => a.wrapping_shl(b as u32),
        Shr => a.wrapping_shr(b as u32),
        Lt => (a < b) as i64,
        Gt => (a > b) as i64,
        Le => (a <= b) as i64,
        Ge => (a >= b) as i64,
        Eq => (a == b) as i64,
        Ne => (a != b) as i64,
        BitAnd => a & b,
        BitOr => a | b,
        BitXor => a ^ b,
        LogAnd | LogOr => return None,
    })
}

/// Conservative side-effect check for expressions.
fn has_effects(e: &Expr) -> bool {
    match &e.kind {
        ExprKind::Assign(..) | ExprKind::Call(..) => true,
        ExprKind::Unary(
            UnaryOp::PreInc | UnaryOp::PreDec | UnaryOp::PostInc | UnaryOp::PostDec,
            _,
        ) => true,
        ExprKind::Unary(_, a) => has_effects(a),
        ExprKind::Binary(_, a, b) => has_effects(a) || has_effects(b),
        ExprKind::Cond(c, t, f) => has_effects(c) || has_effects(t) || has_effects(f),
        ExprKind::Index(a, b) => has_effects(a) || has_effects(b),
        ExprKind::Member(a, _, _) => has_effects(a),
        ExprKind::Cast(_, a) => has_effects(a),
        ExprKind::Comma(..) => true,
        _ => false,
    }
}
