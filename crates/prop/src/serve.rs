//! Serve-protocol stress: the determinism contract of `pta serve`,
//! exercised against warm stores.
//!
//! Each case generates a program (see [`crate::cgen`]), analyses it
//! cold, round-trips the facts through the on-disk snapshot format,
//! re-analyses warm from the reloaded snapshot, and then replays a
//! deterministic query workload against both engines from several
//! worker threads at once. Three invariants are asserted:
//!
//! 1. **warm ≡ cold** — every response served from the warm
//!    (snapshot-seeded) engine is byte-identical to the cold engine's;
//! 2. **thread independence** — under `--jobs N`, every worker replaying
//!    the workload concurrently gets byte-identical responses;
//! 3. **no panics** — a panic anywhere (store codec, warm start, query
//!    dispatch) is caught and reported as a harness failure;
//! 4. **transport independence** — the same workload replayed over real
//!    TCP connections (one per worker, concurrently, plus the whole
//!    workload as a single batch line) gets the same bytes as the
//!    in-process engine.
//!
//! Everything is seeded; a failing case prints the seed that replays it.

use crate::{case_seed, cgen, Rng};
use pta_core::{AnalysisConfig, Fidelity, Pta};
use pta_simple::IrProgram;
use pta_store::{analyze_incremental, parse, serialize, ServeEngine, Snapshot, WarmMode};
use std::fmt::Write as _;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Knobs for a serve-stress run.
#[derive(Debug, Clone)]
pub struct ServeStressConfig {
    /// Number of generated programs to push through the store + serve
    /// pipeline.
    pub cases: u32,
    /// Base seed; each case derives its own seed from it.
    pub seed: u64,
    /// Concurrent workers replaying the workload per case.
    pub jobs: usize,
    /// Also replay the workload over a real TCP connection per worker
    /// (invariant 4); `false` keeps the phase in-process only.
    pub socket: bool,
}

impl Default for ServeStressConfig {
    fn default() -> Self {
        ServeStressConfig {
            cases: 8,
            seed: crate::DEFAULT_SEED,
            jobs: 2,
            socket: true,
        }
    }
}

/// One serve-stress case's record.
#[derive(Debug, Clone)]
pub struct ServeCaseReport {
    /// Case index within the run.
    pub case: u32,
    /// Seed that regenerates this exact program and workload.
    pub seed: u64,
    /// Generator family of the program.
    pub family: &'static str,
    /// Queries replayed (per worker).
    pub queries: usize,
    /// `Err` describes the violated invariant.
    pub outcome: Result<(), String>,
    /// Wall-clock time for the case.
    pub elapsed: Duration,
}

/// Aggregate results of a serve-stress run.
#[derive(Debug, Clone)]
pub struct ServeStressSummary {
    /// Per-case records, in case order.
    pub reports: Vec<ServeCaseReport>,
    /// Workers used per case.
    pub jobs: usize,
    /// Wall-clock time for the whole run.
    pub wall: Duration,
}

impl ServeStressSummary {
    /// The invariant violations. A correct build has none.
    pub fn failures(&self) -> Vec<&ServeCaseReport> {
        self.reports.iter().filter(|r| r.outcome.is_err()).collect()
    }

    /// True when every case held all three invariants.
    pub fn is_clean(&self) -> bool {
        self.failures().is_empty()
    }

    /// Total queries served (golden + cold + workers, per case).
    pub fn queries(&self) -> usize {
        self.reports.iter().map(|r| r.queries).sum()
    }

    /// Human-readable summary, one line per failure.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "serve-stress: {} cases × {} workers in {:?} — {} queries, {} FAILED",
            self.reports.len(),
            self.jobs,
            self.wall,
            self.queries(),
            self.failures().len(),
        );
        for r in self.failures() {
            let Err(msg) = &r.outcome else { continue };
            let _ = writeln!(
                out,
                "  case {} [{}] seed {:#x}: {msg}",
                r.case, r.family, r.seed,
            );
        }
        out
    }
}

/// Builds the deterministic query workload for one analysed program:
/// every function's lint findings, every call site's targets, a
/// points-to query per variable (at the exit set and at one seeded
/// program point), alias queries between neighbouring variables, and a
/// few deliberately invalid requests (error responses are part of the
/// determinism contract too).
pub fn build_workload(ir: &IrProgram, g: &mut Rng) -> Vec<String> {
    let mut lines = Vec::new();
    let mut id = 0u32;
    let mut push = |lines: &mut Vec<String>, body: String| {
        id += 1;
        lines.push(format!("{{\"id\":{id},{body}}}"));
    };
    push(&mut lines, "\"op\":\"lint\"".to_owned());
    for f in &ir.functions {
        push(
            &mut lines,
            format!("\"op\":\"lint\",\"function\":\"{}\"", f.name),
        );
    }
    for site in 0..ir.call_sites.len() {
        push(
            &mut lines,
            format!("\"op\":\"call-targets\",\"site\":{site}"),
        );
    }
    for f in &ir.functions {
        for v in &f.vars {
            push(
                &mut lines,
                format!(
                    "\"op\":\"points-to\",\"func\":\"{}\",\"var\":\"{}\"",
                    f.name, v.name
                ),
            );
            if ir.n_stmts > 0 {
                let stmt = g.u32(0..ir.n_stmts);
                push(
                    &mut lines,
                    format!(
                        "\"op\":\"points-to\",\"func\":\"{}\",\"var\":\"{}\",\"stmt\":{stmt}",
                        f.name, v.name
                    ),
                );
            }
        }
        for w in f.vars.windows(2) {
            push(
                &mut lines,
                format!(
                    "\"op\":\"aliases?\",\"a_func\":\"{0}\",\"a_var\":\"{1}\",\"b_func\":\"{0}\",\"b_var\":\"{2}\"",
                    f.name, w[0].name, w[1].name
                ),
            );
        }
    }
    // Invalid requests: must answer deterministic errors, never panic.
    push(
        &mut lines,
        "\"op\":\"points-to\",\"func\":\"main\",\"var\":\"no_such_var_\"".to_owned(),
    );
    push(
        &mut lines,
        format!("\"op\":\"call-targets\",\"site\":{}", ir.call_sites.len()),
    );
    push(&mut lines, "\"op\":\"no-such-op\"".to_owned());
    lines
}

/// Replays the workload over TCP against `engine` served in-process:
/// `jobs` concurrent pipelined connections plus one batch-line
/// connection, each compared byte-for-byte against `golden`.
fn run_socket_phase(
    engine: &ServeEngine,
    workload: &[String],
    golden: &[String],
    jobs: usize,
) -> Result<(), String> {
    use pta_store::server::{connect, serve, ListenAddr, Listener};
    use std::io::{BufReader, Read as _, Write as _};
    use std::sync::atomic::{AtomicBool, Ordering};

    let listener = Listener::bind(&ListenAddr::Tcp("127.0.0.1:0".to_owned()))
        .map_err(|e| format!("socket bind: {e}"))?;
    let addr = listener.local_addr();
    let stop = AtomicBool::new(false);
    let result = std::thread::scope(|s| -> Result<(), String> {
        let server = s.spawn(|| serve(&listener, engine, &stop, false));
        let replay = |label: String, lines: Vec<String>| -> Result<Vec<String>, String> {
            let mut conn = connect(&addr).map_err(|e| format!("{label}: connect: {e}"))?;
            // A wedged server must fail the phase, never hang it.
            let deadline = Some(std::time::Duration::from_secs(30));
            let _ = conn.set_read_timeout(deadline);
            let _ = conn.set_write_timeout(deadline);
            // Pipeline everything before reading anything back.
            let mut request = String::new();
            for l in &lines {
                request.push_str(l);
                request.push('\n');
            }
            conn.write_all(request.as_bytes())
                .and_then(|()| conn.shutdown_write())
                .map_err(|e| format!("{label}: send: {e}"))?;
            let mut responses = String::new();
            BufReader::new(conn)
                .read_to_string(&mut responses)
                .map_err(|e| format!("{label}: recv: {e}"))?;
            Ok(responses.lines().map(str::to_owned).collect())
        };
        // Any early `Err` must still lower the stop flag before the
        // scope tries to join the server thread.
        let outcome = (|| -> Result<(), String> {
            let mut clients = Vec::new();
            for worker in 0..jobs {
                let lines = workload.to_vec();
                clients.push(s.spawn(move || replay(format!("socket worker {worker}"), lines)));
            }
            for (worker, c) in clients.into_iter().enumerate() {
                let got = c
                    .join()
                    .map_err(|_| "socket worker panicked".to_owned())??;
                if got.len() != golden.len() {
                    return Err(format!(
                        "socket worker {worker}: {} responses for {} requests",
                        got.len(),
                        golden.len()
                    ));
                }
                for (i, (g_, w)) in got.iter().zip(golden).enumerate() {
                    if g_ != w {
                        return Err(format!(
                            "socket worker {worker} diverged on query {i}:\n  got:  {g_}\n  want: {w}"
                        ));
                    }
                }
            }
            // The whole workload as one batch line answers one array
            // line of the same individual responses.
            let batch = format!("[{}]", workload.join(","));
            let got = replay("socket batch".to_owned(), vec![batch])?;
            let want = vec![format!("[{}]", golden.join(","))];
            if got != want {
                return Err("socket batch response diverged from per-line responses".to_owned());
            }
            Ok(())
        })();
        stop.store(true, Ordering::Release);
        let served = server
            .join()
            .map_err(|_| "socket server panicked".to_owned())?
            .map_err(|e| format!("socket server: {e}"));
        outcome.and(served)
    });
    result
}

/// Runs one generated program through store + serve and checks the
/// invariants. Returns the per-worker query count.
fn run_serve_case(source: &str, jobs: usize, socket: bool, g: &mut Rng) -> Result<usize, String> {
    let config = AnalysisConfig::default();
    let ir = pta_simple::compile(source).map_err(|e| format!("compile: {e}"))?;
    let cold = pta_core::analyze_recorded(&ir, config.clone())
        .map_err(|e| format!("cold analysis: {e}"))?;
    let lint = pta_lint::lint_ir(
        &ir,
        &cold.result,
        Fidelity::ContextSensitive,
        &pta_lint::LintOptions::default(),
    );

    // Round-trip the facts through the snapshot *text* — the workload
    // must be served from a store that went through the codec.
    let snap = Snapshot::build(&ir, &config, &cold, &lint);
    let text = serialize(&snap);
    let snap = parse(&text).map_err(|e| format!("snapshot round-trip: {e}"))?;
    let warm = analyze_incremental(&ir, &config, Some(&snap))
        .map_err(|e| format!("warm analysis: {e}"))?;
    match &warm.mode {
        WarmMode::Warm { dirty, .. } if dirty.is_empty() => {}
        other => return Err(format!("expected a clean warm start, got {other:?}")),
    }

    let workload = build_workload(&ir, g);
    let cold_engine = ServeEngine::new(
        Pta {
            ir: ir.clone(),
            result: cold.result,
        },
        lint.clone(),
    );
    let warm_engine = Arc::new(ServeEngine::new(
        Pta {
            ir,
            result: warm.run.result,
        },
        lint,
    ));

    // Invariant 1: warm ≡ cold, byte for byte.
    let golden: Vec<String> = workload
        .iter()
        .map(|l| warm_engine.handle_line(l).0)
        .collect();
    for (line, want) in workload.iter().zip(&golden) {
        let (got, _) = cold_engine.handle_line(line);
        if &got != want {
            return Err(format!(
                "warm/cold divergence on `{line}`:\n  cold: {got}\n  warm: {want}"
            ));
        }
    }

    // Invariant 2: byte-identical under concurrent workers.
    let workload = Arc::new(workload);
    let mut handles = Vec::new();
    for worker in 0..jobs {
        let engine = Arc::clone(&warm_engine);
        let workload = Arc::clone(&workload);
        handles.push(std::thread::spawn(move || {
            let responses: Vec<String> = workload.iter().map(|l| engine.handle_line(l).0).collect();
            (worker, responses)
        }));
    }
    for h in handles {
        let (worker, responses) = h.join().map_err(|_| "worker panicked".to_owned())?;
        for (i, (got, want)) in responses.iter().zip(&golden).enumerate() {
            if got != want {
                return Err(format!(
                    "worker {worker} diverged on query {i}:\n  got:  {got}\n  want: {want}"
                ));
            }
        }
    }

    // Invariant 4: the socket transport changes nothing about the bytes.
    if socket {
        run_socket_phase(&warm_engine, &workload, &golden, jobs)?;
    }
    Ok(workload.len())
}

/// Runs the serve-stress suite: `cases` generated programs cycling
/// through the generator families, each replayed by `jobs` concurrent
/// workers.
pub fn run_serve_stress(cfg: &ServeStressConfig) -> ServeStressSummary {
    let start = Instant::now();
    let jobs = cfg.jobs.max(1);
    let mut reports = Vec::with_capacity(cfg.cases as usize);
    for case in 0..cfg.cases {
        let seed = case_seed(cfg.seed ^ 0x5e57_e55e_5e57_e55e, case);
        let mut g = Rng::new(seed);
        let family = cgen::FAMILIES[case as usize % cgen::FAMILIES.len()];
        let source = cgen::generate(family, &mut g);
        let t0 = Instant::now();
        let caught = catch_unwind(AssertUnwindSafe(|| {
            run_serve_case(&source, jobs, cfg.socket, &mut g)
        }));
        let (queries, outcome) = match caught {
            Ok(Ok(n)) => (n, Ok(())),
            Ok(Err(msg)) => (0, Err(msg)),
            Err(_) => (0, Err("panic in the store/serve pipeline".to_owned())),
        };
        reports.push(ServeCaseReport {
            case,
            seed,
            family,
            queries,
            outcome,
            elapsed: t0.elapsed(),
        });
    }
    ServeStressSummary {
        reports,
        jobs,
        wall: start.elapsed(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serve_stress_smoke_is_clean() {
        let summary = run_serve_stress(&ServeStressConfig {
            cases: 4,
            jobs: 3,
            ..ServeStressConfig::default()
        });
        assert!(summary.is_clean(), "{}", summary.render());
        assert_eq!(summary.reports.len(), 4);
        assert!(summary.queries() > 0);
        assert!(summary.render().contains("4 cases × 3 workers"));
    }

    #[test]
    fn workload_is_deterministic_per_seed() {
        let ir = pta_simple::compile(&cgen::deep_chain(3)).unwrap();
        let a = build_workload(&ir, &mut Rng::new(9));
        let b = build_workload(&ir, &mut Rng::new(9));
        assert_eq!(a, b);
        assert!(a.len() > 4, "workload too small: {}", a.len());
    }
}
