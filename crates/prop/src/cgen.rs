//! Generators of pathological-but-valid C programs for stress-testing
//! the analysis budgets.
//!
//! Three families target the known blow-up axes of the paper's
//! algorithm, plus a random mix:
//!
//! - **deep pointer chains** ([`deep_chain`]) — `int ****…*p` towers
//!   passed across a call boundary, stressing the map process's
//!   pointer-chain traversal (`max_map_depth`) and symbolic naming;
//! - **recursive function-pointer knots** ([`fnptr_knot`]) — a ring of
//!   functions re-targeting one global function pointer and calling
//!   through it, stressing invocation-graph growth with
//!   recursive/approximate nodes (`max_ig_nodes`);
//! - **wide indirect calls** ([`wide_indirect`]) — one call site whose
//!   pointer may target many functions, stressing fan-out
//!   (`max_ig_nodes`, `max_steps`);
//! - **random mix** ([`random_mix`]) — a seeded combination with
//!   aliasing noise, for coverage beyond the crafted families.
//!
//! All generators are deterministic in their inputs, so any failing
//! case replays from its seed.

use crate::Rng;
use std::fmt::Write as _;

/// A pointer tower of the given depth, threaded through a helper call:
/// `p1 = &x; p2 = &p1; …; pd = &p(d-1)` then `poke(pd)` dereferences
/// all the way back down. Depth ≥ 1.
pub fn deep_chain(depth: usize) -> String {
    let depth = depth.max(1);
    let mut s = String::new();
    let stars = |n: usize| "*".repeat(n);
    let _ = writeln!(s, "int x;");
    // void poke(int ***…*p) { int *q; q = **…*p; }
    let _ = writeln!(
        s,
        "void poke(int {}p) {{ int *q; q = {}p; *q = 1; }}",
        stars(depth + 1),
        stars(depth)
    );
    let _ = writeln!(s, "int main(void) {{");
    for i in 1..=depth {
        let _ = writeln!(s, "    int {}p{};", stars(i), i);
    }
    let _ = writeln!(s, "    p1 = &x;");
    for i in 2..=depth {
        let _ = writeln!(s, "    p{} = &p{};", i, i - 1);
    }
    let _ = writeln!(s, "    poke(&p{depth});");
    let _ = writeln!(s, "    return x;");
    let _ = writeln!(s, "}}");
    s
}

/// A ring of `n` functions that each re-target the global function
/// pointer at the *previous* ring member and call through it, guarded
/// by a shared counter — indirect recursion that forces the invocation
/// graph to approximate. `n ≥ 2`.
pub fn fnptr_knot(n: usize) -> String {
    let n = n.max(2);
    let mut s = String::new();
    let _ = writeln!(s, "int n;");
    let _ = writeln!(s, "void (*fp)(void);");
    let _ = writeln!(s, "void k0(void) {{ if (n) {{ n = n - 1; fp(); }} }}");
    for i in 1..n {
        let _ = writeln!(
            s,
            "void k{i}(void) {{ if (n) {{ n = n - 1; fp = k{}; fp(); }} }}",
            i - 1
        );
    }
    let _ = writeln!(
        s,
        "int main(void) {{ n = {}; fp = k{}; fp(); return n; }}",
        n * 2,
        n - 1
    );
    s
}

/// One indirect call site whose pointer may target any of `n`
/// functions (each writes a distinct global through a shared pointer),
/// stressing call fan-out. `n ≥ 1`.
pub fn wide_indirect(n: usize) -> String {
    let n = n.max(1);
    let mut s = String::new();
    let _ = writeln!(s, "int sel;");
    let _ = writeln!(s, "int *shared;");
    for i in 0..n {
        let _ = writeln!(s, "int g{i};");
        let _ = writeln!(s, "void t{i}(void) {{ shared = &g{i}; }}");
    }
    let _ = writeln!(s, "int main(void) {{");
    let _ = writeln!(s, "    void (*fp)(void);");
    let _ = writeln!(s, "    fp = t0;");
    for i in 1..n {
        let _ = writeln!(s, "    if (sel == {i}) {{ fp = t{i}; }}");
    }
    let _ = writeln!(s, "    fp();");
    let _ = writeln!(s, "    return *shared;");
    let _ = writeln!(s, "}}");
    s
}

/// A seeded combination: a few globals, a pointer tower, a handful of
/// functions assigned to a function pointer under data-dependent
/// branches, aliasing helpers called in a loop.
pub fn random_mix(g: &mut Rng) -> String {
    let globals = g.usize(2..6);
    let depth = g.usize(2..6);
    let fns = g.usize(2..7);
    let mut s = String::new();
    for i in 0..globals {
        let _ = writeln!(s, "int g{i};");
    }
    let _ = writeln!(s, "int *cursor;");
    // Helpers that alias globals through a pointer-to-pointer.
    let _ = writeln!(s, "void alias(int **pp, int *v) {{ *pp = v; }}");
    for i in 0..fns {
        let target = g.usize(0..globals);
        let _ = writeln!(s, "void h{i}(void) {{ cursor = &g{target}; }}");
    }
    let _ = writeln!(s, "int main(void) {{");
    let _ = writeln!(s, "    int i;");
    let _ = writeln!(s, "    void (*fp)(void);");
    for i in 1..=depth {
        let _ = writeln!(s, "    int {}q{};", "*".repeat(i), i);
    }
    let _ = writeln!(s, "    q1 = &g0;");
    for i in 2..=depth {
        let _ = writeln!(s, "    q{} = &q{};", i, i - 1);
    }
    let _ = writeln!(s, "    fp = h0;");
    for i in 1..fns {
        let cond = g.usize(0..globals);
        let _ = writeln!(s, "    if (g{cond}) {{ fp = h{i}; }}");
    }
    let iters = g.usize(1..4);
    let _ = writeln!(s, "    for (i = 0; i < {iters}; i++) {{");
    let _ = writeln!(s, "        fp();");
    let a = g.usize(0..globals);
    let b = g.usize(0..globals);
    let _ = writeln!(s, "        alias(&cursor, &g{a});");
    let _ = writeln!(s, "        alias(&q1, &g{b});");
    let _ = writeln!(s, "    }}");
    let _ = writeln!(s, "    return *cursor;");
    let _ = writeln!(s, "}}");
    s
}

/// The stress families, picked by index (see [`FAMILIES`]).
pub fn generate(family: &str, g: &mut Rng) -> String {
    match family {
        "deep-chain" => deep_chain(g.usize(3..24)),
        "fnptr-knot" => fnptr_knot(g.usize(2..12)),
        "wide-indirect" => wide_indirect(g.usize(2..40)),
        _ => random_mix(g),
    }
}

/// The generator family names.
pub const FAMILIES: &[&str] = &["deep-chain", "fnptr-knot", "wide-indirect", "random-mix"];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generated_sources_compile() {
        for (i, src) in [
            deep_chain(1),
            deep_chain(8),
            fnptr_knot(2),
            fnptr_knot(6),
            wide_indirect(1),
            wide_indirect(12),
        ]
        .iter()
        .enumerate()
        {
            assert!(pta_core::run_source(src).is_ok(), "case {i} failed:\n{src}");
        }
    }

    #[test]
    fn random_mix_compiles_across_seeds() {
        for seed in 0..20 {
            let mut g = Rng::new(seed);
            let src = random_mix(&mut g);
            let r = pta_core::run_source(&src);
            assert!(r.is_ok(), "seed {seed} failed: {:?}\n{src}", r.err());
        }
    }

    #[test]
    fn generators_are_deterministic() {
        let a = generate("random-mix", &mut Rng::new(9));
        let b = generate("random-mix", &mut Rng::new(9));
        assert_eq!(a, b);
    }
}
