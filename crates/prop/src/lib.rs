//! # pta-prop — a tiny deterministic property-testing harness
//!
//! The repository's build environment has no access to crates.io, so
//! `proptest` cannot be used. This crate provides the small slice of
//! property-based testing the PTA suites need: a fast deterministic
//! generator ([`Rng`], SplitMix64), convenience samplers, and a case
//! runner ([`check`]) that reports the failing case seed so any failure
//! can be replayed exactly.
//!
//! ```
//! pta_prop::check("addition commutes", 256, |g| {
//!     let a = g.u64(0..1_000);
//!     let b = g.u64(0..1_000);
//!     assert_eq!(a + b, b + a);
//! });
//! ```

use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};

pub mod cgen;
pub mod chaos;
pub mod load;
pub mod serve;
pub mod stress;

/// Default base seed; fixed so CI runs are reproducible.
pub const DEFAULT_SEED: u64 = 0x9E37_79B9_7F4A_7C15;

/// A SplitMix64 generator: tiny, fast, and plenty for test data.
#[derive(Debug, Clone)]
pub struct Rng {
    state: u64,
}

impl Rng {
    /// A generator with the given seed.
    pub fn new(seed: u64) -> Self {
        Rng { state: seed }
    }

    /// The next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A uniform value in `[range.start, range.end)`.
    pub fn u64(&mut self, range: std::ops::Range<u64>) -> u64 {
        assert!(range.start < range.end, "empty range");
        let span = range.end - range.start;
        range.start + self.next_u64() % span
    }

    /// A uniform `u32` in the range.
    pub fn u32(&mut self, range: std::ops::Range<u32>) -> u32 {
        self.u64(range.start as u64..range.end as u64) as u32
    }

    /// A uniform `usize` in the range.
    pub fn usize(&mut self, range: std::ops::Range<usize>) -> usize {
        self.u64(range.start as u64..range.end as u64) as usize
    }

    /// A uniform `u8`.
    pub fn u8(&mut self) -> u8 {
        self.next_u64() as u8
    }

    /// True with probability `num / den`.
    pub fn ratio(&mut self, num: u64, den: u64) -> bool {
        self.u64(0..den) < num
    }

    /// A random element of the slice.
    pub fn pick<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        &items[self.usize(0..items.len())]
    }

    /// A vector of `len ∈ [range)` elements drawn from `f`.
    pub fn vec<T>(
        &mut self,
        range: std::ops::Range<usize>,
        mut f: impl FnMut(&mut Rng) -> T,
    ) -> Vec<T> {
        let n = self.usize(range);
        (0..n).map(|_| f(self)).collect()
    }

    /// An ASCII string of `len ∈ [range)` characters in `[' ', '~']`
    /// plus newlines.
    pub fn ascii_soup(&mut self, range: std::ops::Range<usize>) -> String {
        let n = self.usize(range);
        (0..n)
            .map(|_| {
                if self.ratio(1, 20) {
                    '\n'
                } else {
                    (b' ' + (self.next_u64() % 95) as u8) as char
                }
            })
            .collect()
    }

    /// A lowercase identifier (`[a-z_][a-z0-9_]{0,max-1}`).
    pub fn ident(&mut self, max: usize) -> String {
        const HEAD: &[u8] = b"abcdefghijklmnopqrstuvwxyz_";
        const TAIL: &[u8] = b"abcdefghijklmnopqrstuvwxyz0123456789_";
        let n = self.usize(1..max.max(2));
        let mut s = String::new();
        s.push(HEAD[self.usize(0..HEAD.len())] as char);
        for _ in 1..n {
            s.push(TAIL[self.usize(0..TAIL.len())] as char);
        }
        s
    }
}

/// Runs `cases` generated test cases. Each case gets an independent,
/// deterministic generator; a failing case panics with its name, index,
/// and seed so it can be reproduced with [`replay`].
pub fn check(name: &str, cases: u32, mut f: impl FnMut(&mut Rng)) {
    check_seeded(name, DEFAULT_SEED, cases, &mut f);
}

/// [`check`] with an explicit base seed.
pub fn check_seeded(name: &str, base_seed: u64, cases: u32, f: &mut impl FnMut(&mut Rng)) {
    for case in 0..cases {
        let seed = case_seed(base_seed, case);
        let mut g = Rng::new(seed);
        let result = catch_unwind(AssertUnwindSafe(|| f(&mut g)));
        if let Err(payload) = result {
            eprintln!(
                "property `{name}` failed at case {case}/{cases} \
                 (replay with pta_prop::replay({seed:#x}, ..))"
            );
            resume_unwind(payload);
        }
    }
}

/// Re-runs a single case from the seed printed by a failing [`check`].
pub fn replay(seed: u64, mut f: impl FnMut(&mut Rng)) {
    let mut g = Rng::new(seed);
    f(&mut g);
}

/// The derived seed for `case` under `base` — the value a failing
/// [`check`] prints, and what the stress harness records per case.
pub fn case_seed(base: u64, case: u32) -> u64 {
    // One SplitMix64 step decorrelates consecutive case seeds. The mix
    // must be injective in `case`: an OR against a dense constant (as an
    // earlier version used) absorbs the case bits and hands many cases
    // the same seed.
    Rng::new(base.wrapping_add((case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15))).next_u64()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generator_is_deterministic() {
        let mut a = Rng::new(42);
        let mut b = Rng::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_are_respected() {
        let mut g = Rng::new(7);
        for _ in 0..1000 {
            let v = g.u64(10..20);
            assert!((10..20).contains(&v));
            let u = g.usize(0..3);
            assert!(u < 3);
        }
    }

    #[test]
    fn vec_and_ident_shapes() {
        let mut g = Rng::new(3);
        let v = g.vec(2..5, |g| g.u32(0..10));
        assert!((2..5).contains(&v.len()));
        for _ in 0..50 {
            let id = g.ident(8);
            assert!(!id.is_empty() && id.len() < 8);
            let first = id.as_bytes()[0];
            assert!(first == b'_' || first.is_ascii_lowercase());
        }
    }

    #[test]
    fn case_seeds_are_distinct() {
        let mut seen = std::collections::HashSet::new();
        for case in 0..4096 {
            assert!(
                seen.insert(case_seed(DEFAULT_SEED, case)),
                "seed collision at case {case}"
            );
        }
    }

    #[test]
    fn check_runs_all_cases() {
        let mut n = 0u32;
        check("counter", 25, |_| n += 1);
        assert_eq!(n, 25);
    }

    #[test]
    fn failing_case_reports_seed() {
        let caught = catch_unwind(AssertUnwindSafe(|| {
            check("always fails", 3, |_| panic!("boom"));
        }));
        assert!(caught.is_err());
    }
}
