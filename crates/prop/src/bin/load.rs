//! `pta-load` — QPS/latency load generator for `pta serve --listen`.
//!
//! Compiles the given C sources (the same ones the server is serving),
//! builds a seeded deterministic query mix across all of them, replays
//! it over `--conns` concurrent socket connections, and reports
//! QPS + p50/p90/p99 latency. `--verify` replays the identical mix on a
//! single connection afterwards and fails (exit 1) unless the
//! responses, reassembled in query order, are byte-identical — the
//! connection count must never change an answer.
//!
//! ```text
//! pta-load --connect ADDR <file.c>... [--conns N] [--rounds N]
//!          [--batch N] [--seed S] [--verify] [--json PATH]
//!          [--timeout-ms MS] [--retries N]
//! ```
//!
//! Every request carries a deadline (`--timeout-ms`, default 5000,
//! `0` = none) and is retried up to `--retries` times (default 2) on a
//! fresh connection under seeded-jitter backoff; a dead or wedged
//! server yields synthetic `client:` error rows and a non-zero exit
//! instead of a hung process.
//!
//! `ADDR` accepts the same forms as `pta serve --listen`: `unix:PATH`,
//! `tcp:HOST:PORT`, or `HOST:PORT`. The `--json` artifact is the
//! `pta.load.v1` schema that `report summary --serve-json` embeds into
//! the bench report (CI uploads it as `BENCH_6.json`).

use pta_prop::load::{render_json, run_load, LoadConfig};
use pta_prop::DEFAULT_SEED;
use std::process::ExitCode;

const USAGE: &str = "usage: pta-load --connect ADDR <file.c>... [--conns N] [--rounds N] \
     [--batch N] [--seed S] [--verify] [--json PATH] [--timeout-ms MS] [--retries N]";

fn main() -> ExitCode {
    let mut addr: Option<String> = None;
    let mut files: Vec<String> = Vec::new();
    let mut conns = 4usize;
    let mut rounds = 3u32;
    let mut batch = 1usize;
    let mut seed = DEFAULT_SEED;
    let mut verify = false;
    let mut json_path: Option<String> = None;
    let mut timeout_ms = 5000u64;
    let mut retries = 2u32;

    let mut argv = std::env::args().skip(1);
    while let Some(arg) = argv.next() {
        let mut value = |what: &str| {
            argv.next()
                .unwrap_or_else(|| die_usage(&format!("{what} needs a value")))
        };
        match arg.as_str() {
            "--connect" => addr = Some(value("--connect")),
            "--conns" => {
                conns = parse(&value("--conns"), "--conns");
                if conns == 0 {
                    die_usage("--conns must be positive");
                }
            }
            "--rounds" => {
                rounds = parse(&value("--rounds"), "--rounds");
                if rounds == 0 {
                    die_usage("--rounds must be positive");
                }
            }
            "--batch" => {
                batch = parse(&value("--batch"), "--batch");
                if batch == 0 {
                    die_usage("--batch must be positive");
                }
            }
            "--seed" => seed = parse_seed(&value("--seed")),
            "--verify" => verify = true,
            "--json" => json_path = Some(value("--json")),
            "--timeout-ms" => timeout_ms = parse(&value("--timeout-ms"), "--timeout-ms"),
            "--retries" => retries = parse(&value("--retries"), "--retries"),
            "--help" | "-h" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            f if !f.starts_with('-') => files.push(f.to_owned()),
            other => die_usage(&format!("unknown argument `{other}`")),
        }
    }
    let Some(addr) = addr else {
        die_usage("--connect is required");
    };
    if files.is_empty() {
        die_usage("at least one <file.c> is required");
    }
    let addr = pta_store::parse_listen(&addr).unwrap_or_else(|e| die_usage(&e));

    let mut programs = Vec::new();
    for file in &files {
        let stem = std::path::Path::new(file)
            .file_stem()
            .map(|s| s.to_string_lossy().into_owned())
            .unwrap_or_else(|| file.clone());
        let source = match std::fs::read_to_string(file) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("pta-load: cannot read `{file}`: {e}");
                return ExitCode::from(2);
            }
        };
        let ir = match pta_simple::compile(&source) {
            Ok(ir) => ir,
            Err(e) => {
                eprintln!("pta-load: `{file}`: {e}");
                return ExitCode::from(2);
            }
        };
        programs.push((stem, ir));
    }
    // With a single program the server accepts untagged requests too,
    // but tagging is always correct, so the mix always tags.
    let cfg = LoadConfig {
        addr,
        programs,
        conns,
        rounds,
        seed,
        batch,
        verify,
        timeout: (timeout_ms > 0).then(|| std::time::Duration::from_millis(timeout_ms)),
        retries,
    };
    let report = match run_load(&cfg) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("pta-load: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!(
        "pta-load: {} queries over {} conns in {:?} — {:.1} qps, \
         p50 {}us p90 {}us p99 {}us, {} ok / {} errors, \
         {} retries / {} timeouts / {} failed{}",
        report.queries,
        cfg.conns,
        report.wall,
        report.qps(),
        report.percentile_us(50.0),
        report.percentile_us(90.0),
        report.percentile_us(99.0),
        report.ok,
        report.errors,
        report.retries,
        report.timeouts,
        report.failed,
        match report.verified {
            Some(true) => ", verified across connection counts",
            Some(false) => ", VERIFY FAILED",
            None => "",
        }
    );
    if let Some(path) = &json_path {
        if let Err(e) = std::fs::write(path, render_json(&cfg, &report) + "\n") {
            eprintln!("pta-load: cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
        println!("wrote {path}");
    }
    if report.verified == Some(false) {
        eprintln!("pta-load: responses differ between {conns} connections and 1 connection");
        return ExitCode::FAILURE;
    }
    if report.failed as usize >= report.queries {
        eprintln!("pta-load: server unreachable — every request failed");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

fn parse<T: std::str::FromStr>(s: &str, flag: &str) -> T {
    s.parse()
        .unwrap_or_else(|_| die_usage(&format!("{flag}: invalid value `{s}`")))
}

fn parse_seed(s: &str) -> u64 {
    let parsed = match s.strip_prefix("0x") {
        Some(hex) => u64::from_str_radix(hex, 16),
        None => s.parse(),
    };
    parsed.unwrap_or_else(|_| die_usage(&format!("--seed: invalid value `{s}`")))
}

fn die_usage(msg: &str) -> ! {
    eprintln!("pta-load: {msg}\n{USAGE}");
    std::process::exit(2);
}
