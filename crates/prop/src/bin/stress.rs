//! Stress-harness driver: generates pathological programs and runs
//! them through the resilient analysis under tight budgets, failing
//! (exit 1) if any case panics or violates a robustness invariant.
//! A second phase replays a deterministic `pta serve` query workload
//! against warm (snapshot-seeded) engines from `--jobs` concurrent
//! workers — in-process *and* over real TCP connections (pipelined and
//! batched) — and asserts byte-identical responses everywhere;
//! `--serve-stdio-only` skips the socket replay.
//!
//! ```text
//! stress [--cases N] [--seed S] [--deadline MS] [--steps N]
//!        [--serve-cases N] [--jobs N] [--serve-stdio-only] [--json PATH]
//! ```

use pta_prop::serve::{run_serve_stress, ServeStressConfig};
use pta_prop::stress::{run_stress, StressConfig};
use std::process::ExitCode;

const USAGE: &str = "usage: stress [--cases N] [--seed S] [--deadline MS] [--steps N] \
     [--serve-cases N] [--jobs N] [--serve-stdio-only] [--json PATH]";

fn main() -> ExitCode {
    let mut cfg = StressConfig::default();
    let mut serve_cfg = ServeStressConfig::default();
    let mut json_path: Option<String> = None;

    let mut argv = std::env::args().skip(1);
    while let Some(arg) = argv.next() {
        let mut value = |what: &str| {
            argv.next()
                .unwrap_or_else(|| die_usage(&format!("{what} needs a value")))
        };
        match arg.as_str() {
            "--cases" => cfg.cases = parse(&value("--cases"), "--cases"),
            "--seed" => {
                cfg.seed = parse_seed(&value("--seed"));
                serve_cfg.seed = cfg.seed;
            }
            "--deadline" => cfg.deadline_ms = parse(&value("--deadline"), "--deadline"),
            "--steps" => cfg.tight_steps = parse(&value("--steps"), "--steps"),
            "--serve-cases" => serve_cfg.cases = parse(&value("--serve-cases"), "--serve-cases"),
            "--jobs" => {
                serve_cfg.jobs = parse(&value("--jobs"), "--jobs");
                if serve_cfg.jobs == 0 {
                    die_usage("--jobs must be positive");
                }
            }
            "--serve-stdio-only" => serve_cfg.socket = false,
            "--json" => json_path = Some(value("--json")),
            "--help" | "-h" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other => die_usage(&format!("unknown argument `{other}`")),
        }
    }
    if cfg.cases == 0 {
        die_usage("--cases must be positive");
    }

    let summary = run_stress(&cfg);
    print!("{}", summary.render());
    let serve = run_serve_stress(&serve_cfg);
    print!("{}", serve.render());
    if let Some(path) = json_path {
        if let Err(e) = std::fs::write(&path, summary.to_json()) {
            eprintln!("stress: cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
        println!("wrote {path}");
    }
    if summary.is_clean() && serve.is_clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn parse<T: std::str::FromStr>(s: &str, flag: &str) -> T {
    s.parse()
        .unwrap_or_else(|_| die_usage(&format!("{flag}: invalid value `{s}`")))
}

fn parse_seed(s: &str) -> u64 {
    let parsed = match s.strip_prefix("0x") {
        Some(hex) => u64::from_str_radix(hex, 16),
        None => s.parse(),
    };
    parsed.unwrap_or_else(|_| die_usage(&format!("--seed: invalid value `{s}`")))
}

fn die_usage(msg: &str) -> ! {
    eprintln!("stress: {msg}\n{USAGE}");
    std::process::exit(2);
}
