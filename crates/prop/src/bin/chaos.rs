//! `pta-chaos` — fault-injection chaos harness for the serving stack.
//!
//! Serves the fixed chaos tenants in-process under the hardened server
//! options and attacks them: killed connections, dribbled bytes,
//! oversized and garbage lines, every numbered store fault point, and
//! SIGKILL-during-save victims. Exit 1 when any invariant broke.
//!
//! ```text
//! pta-chaos [--seed S] [--kill-conns N] [--dribbles N] [--garbage N]
//!           [--no-store-faults] [--kill-saves N] [--json PATH]
//! pta-chaos --victim DIR      (internal: the kill-during-save target)
//! ```
//!
//! The `--json` artifact is the `pta.chaos.v1` schema CI uploads as
//! `CHAOS_7.json`.

use pta_prop::chaos::{run_chaos, run_victim, ChaosConfig};
use std::process::ExitCode;

const USAGE: &str = "usage: pta-chaos [--seed S] [--kill-conns N] [--dribbles N] \
     [--garbage N] [--no-store-faults] [--kill-saves N] [--json PATH]";

fn main() -> ExitCode {
    let mut cfg = ChaosConfig::default();
    let mut json_path: Option<String> = None;
    let mut argv = std::env::args().skip(1);
    while let Some(arg) = argv.next() {
        let mut value = |what: &str| {
            argv.next()
                .unwrap_or_else(|| die_usage(&format!("{what} needs a value")))
        };
        match arg.as_str() {
            "--victim" => {
                let dir = std::path::PathBuf::from(value("--victim"));
                run_victim(&dir); // never returns
            }
            "--seed" => cfg.seed = parse_seed(&value("--seed")),
            "--kill-conns" => cfg.kill_conns = parse(&value("--kill-conns"), "--kill-conns"),
            "--dribbles" => cfg.dribbles = parse(&value("--dribbles"), "--dribbles"),
            "--garbage" => cfg.garbage = parse(&value("--garbage"), "--garbage"),
            "--no-store-faults" => cfg.store_faults = false,
            "--kill-saves" => cfg.kill_saves = parse(&value("--kill-saves"), "--kill-saves"),
            "--json" => json_path = Some(value("--json")),
            "--help" | "-h" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other => die_usage(&format!("unknown argument `{other}`")),
        }
    }
    cfg.victim_exe = std::env::current_exe().ok();
    if cfg.victim_exe.is_none() && cfg.kill_saves > 0 {
        eprintln!("pta-chaos: cannot locate own executable; skipping kill-during-save");
        cfg.kill_saves = 0;
    }
    let report = match run_chaos(&cfg) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("pta-chaos: {e}");
            return ExitCode::from(2);
        }
    };
    print!("{}", report.render());
    if let Some(path) = &json_path {
        if let Err(e) = std::fs::write(path, report.render_json(cfg.seed) + "\n") {
            eprintln!("pta-chaos: cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
        println!("wrote {path}");
    }
    if report.is_clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn parse<T: std::str::FromStr>(s: &str, flag: &str) -> T {
    s.parse()
        .unwrap_or_else(|_| die_usage(&format!("{flag}: invalid value `{s}`")))
}

fn parse_seed(s: &str) -> u64 {
    let parsed = match s.strip_prefix("0x") {
        Some(hex) => u64::from_str_radix(hex, 16),
        None => s.parse(),
    };
    parsed.unwrap_or_else(|_| die_usage(&format!("--seed: invalid value `{s}`")))
}

fn die_usage(msg: &str) -> ! {
    eprintln!("pta-chaos: {msg}\n{USAGE}");
    std::process::exit(2);
}
