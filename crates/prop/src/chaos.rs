//! The `pta-chaos` harness: deterministic fault injection against a
//! live hardened server and the crash-safe store.
//!
//! A chaos run serves two small fixed tenants in-process under the
//! hardened [`ServeOptions`] and replays the seeded query mix while
//! misbehaving on purpose, phase by phase:
//!
//! 1. **baseline** — the resilient client replays the mix fault-free;
//!    its responses are the golden bytes every later phase compares
//!    against.
//! 2. **conn-kill** — connections are dropped mid-request (partial
//!    writes, full writes abandoned before the response); the server
//!    must keep serving and the next clean exchange must match golden.
//! 3. **dribble** — a request arrives one byte at a time; the answer
//!    must still be byte-identical.
//! 4. **oversize-garbage** — over-cap lines and invalid-UTF-8 garbage
//!    get in-band `too-large` / `bad request` errors, and the
//!    connection resyncs to answer the next query correctly.
//! 5. **store-faults** — every numbered store fault point
//!    ([`pta_store::fault::POINTS`]) is armed in turn: an interrupted
//!    save must leave the old-or-new snapshot loadable, and a poisoned
//!    load must degrade to a cold rebuild that answers the same bytes.
//! 6. **kill-during-save** — a victim process (`pta-chaos --victim`)
//!    alternates snapshot saves until SIGKILLed at a seeded random
//!    moment; the snapshot file must parse as exactly the old or the
//!    new bytes, every time.
//!
//! Everything is seeded: a failing probe is replayable from the run
//! seed. [`ChaosReport::render_json`] emits the `pta.chaos.v1`
//! artifact CI uploads next to the load numbers.

use crate::load::LoadConfig;
use crate::Rng;
use pta_store::fault::{self, FaultMode, FaultPlan};
use pta_store::server::{connect, serve_with, ListenAddr, Listener, ServeOptions};
use pta_store::{json, Router, Snapshot, TenantCache, TenantSpec};
use std::io::{BufRead as _, BufReader, Write as _};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::{Duration, Instant};

/// The two fixed tenant programs a chaos run serves. Small enough to
/// analyse in milliseconds, rich enough (pointer chains, a call) that
/// the query mix exercises every op.
pub const PROGRAMS: &[(&str, &str)] = &[
    (
        "alpha",
        "int x; int main(void) { int *p; p = &x; return *p; }",
    ),
    (
        "beta",
        "int y; void set(int **p, int *v) { *p = v; } \
         int main(void) { int *q; set(&q, &y); return *q; }",
    ),
];

/// Knobs for one chaos run.
#[derive(Debug, Clone)]
pub struct ChaosConfig {
    /// Run seed; every probe derives from it.
    pub seed: u64,
    /// Connection-kill probes (phase 2).
    pub kill_conns: u32,
    /// Byte-at-a-time replays (phase 3).
    pub dribbles: u32,
    /// Garbage/oversize probes (phase 4).
    pub garbage: u32,
    /// Arm every store fault point (phase 5).
    pub store_faults: bool,
    /// SIGKILL-during-save iterations (phase 6); `0` skips the phase.
    pub kill_saves: u32,
    /// The executable to re-invoke with `--victim` for phase 6;
    /// `None` skips the phase.
    pub victim_exe: Option<PathBuf>,
}

impl Default for ChaosConfig {
    fn default() -> Self {
        ChaosConfig {
            seed: crate::DEFAULT_SEED,
            kill_conns: 8,
            dribbles: 2,
            garbage: 8,
            store_faults: true,
            kill_saves: 5,
            victim_exe: None,
        }
    }
}

/// One phase's outcome.
#[derive(Debug, Clone)]
pub struct PhaseReport {
    /// Phase name (stable, appears in the artifact).
    pub name: &'static str,
    /// Probes attempted.
    pub probes: u32,
    /// One message per violated invariant. A correct build has none.
    pub failures: Vec<String>,
}

/// Aggregate outcome of a chaos run.
#[derive(Debug, Clone)]
pub struct ChaosReport {
    /// Per-phase records, in run order.
    pub phases: Vec<PhaseReport>,
    /// Wall clock for the whole run.
    pub wall: Duration,
}

impl ChaosReport {
    /// True when no phase recorded a failure.
    pub fn is_clean(&self) -> bool {
        self.phases.iter().all(|p| p.failures.is_empty())
    }

    /// Human-readable summary, one line per phase plus failures.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "pta-chaos: {} phases in {:?} — {}",
            self.phases.len(),
            self.wall,
            if self.is_clean() { "clean" } else { "FAILED" }
        );
        for p in &self.phases {
            let _ = writeln!(
                out,
                "  {}: {} probes, {} failures",
                p.name,
                p.probes,
                p.failures.len()
            );
            for f in &p.failures {
                let _ = writeln!(out, "    - {f}");
            }
        }
        out
    }

    /// The `pta.chaos.v1` JSON artifact (one line).
    pub fn render_json(&self, seed: u64) -> String {
        let phases: Vec<String> = self
            .phases
            .iter()
            .map(|p| {
                let failures: Vec<String> = p.failures.iter().map(|f| json::escape(f)).collect();
                format!(
                    "{{\"name\":{},\"probes\":{},\"failures\":[{}]}}",
                    json::escape(p.name),
                    p.probes,
                    failures.join(",")
                )
            })
            .collect();
        format!(
            "{{\"schema\":\"pta.chaos.v1\",\"seed\":\"{seed:#x}\",\"clean\":{},\
             \"wall_ms\":{},\"phases\":[{}]}}",
            self.is_clean(),
            self.wall.as_millis(),
            phases.join(",")
        )
    }
}

/// The serve options a chaos server runs under: hardened, with caps
/// small enough to trip on purpose.
fn chaos_opts() -> ServeOptions {
    ServeOptions {
        metrics: false,
        max_conns: 32,
        io_timeout: Some(Duration::from_secs(2)),
        max_line_bytes: 64 * 1024,
    }
}

/// A scratch directory for this run, already created.
fn scratch_dir(tag: &str, seed: u64) -> Result<PathBuf, String> {
    let dir = std::env::temp_dir().join(format!("pta-chaos-{tag}-{}-{seed:x}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).map_err(|e| format!("mkdir {}: {e}", dir.display()))?;
    Ok(dir)
}

/// Builds the two chaos tenants under `dir` and a router over them.
fn build_router(dir: &Path) -> Result<(Router, Vec<TenantSpec>), String> {
    let mut specs = Vec::new();
    for (name, source) in PROGRAMS {
        let src = dir.join(format!("{name}.c"));
        std::fs::write(&src, source).map_err(|e| format!("write {}: {e}", src.display()))?;
        specs.push(TenantSpec::from_source(&src, dir));
    }
    let cache = TenantCache::new(
        specs.clone(),
        specs.len(),
        pta_core::AnalysisConfig::default(),
        None,
    );
    Ok((Router::new(cache), specs))
}

/// One clean request/response exchange on a fresh connection.
fn exchange(addr: &ListenAddr, line: &str) -> Result<String, String> {
    let mut conn = connect(addr).map_err(|e| format!("connect: {e}"))?;
    let deadline = Some(Duration::from_secs(10));
    let _ = conn.set_read_timeout(deadline);
    let _ = conn.set_write_timeout(deadline);
    conn.write_all(format!("{line}\n").as_bytes())
        .and_then(|()| conn.flush())
        .map_err(|e| format!("send: {e}"))?;
    let mut response = String::new();
    BufReader::new(conn)
        .read_line(&mut response)
        .map_err(|e| format!("recv: {e}"))?;
    if !response.ends_with('\n') {
        return Err("connection closed mid-response".to_owned());
    }
    Ok(response.trim_end().to_owned())
}

/// A clean exchange that must reproduce the golden bytes; pushes a
/// failure message otherwise.
fn assert_golden(
    addr: &ListenAddr,
    mix: &[String],
    golden: &[String],
    idx: usize,
    context: &str,
    failures: &mut Vec<String>,
) {
    match exchange(addr, &mix[idx]) {
        Ok(got) if got == golden[idx] => {}
        Ok(got) => failures.push(format!(
            "{context}: query {idx} diverged from golden\n  got:  {got}\n  want: {}",
            golden[idx]
        )),
        Err(e) => failures.push(format!("{context}: query {idx}: {e}")),
    }
}

/// Runs the whole chaos schedule. The error is for harness-level
/// breakage (cannot bind, cannot analyse); injected faults that the
/// system survives incorrectly are *failures in the report*, not
/// errors.
///
/// # Errors
///
/// Setup problems only.
pub fn run_chaos(cfg: &ChaosConfig) -> Result<ChaosReport, String> {
    let t0 = Instant::now();
    let dir = scratch_dir("run", cfg.seed)?;
    let (router, _specs) = build_router(&dir)?;
    let listener = Listener::bind(&ListenAddr::Tcp("127.0.0.1:0".to_owned()))
        .map_err(|e| format!("bind: {e}"))?;
    let addr = listener.local_addr();
    let stop = AtomicBool::new(false);
    let opts = chaos_opts();

    let mut phases = Vec::new();
    std::thread::scope(|s| {
        let server = s.spawn(|| serve_with(&listener, &router, &stop, &opts));

        // Phase 1: fault-free golden replay through the resilient client.
        let programs: Vec<(String, pta_simple::IrProgram)> = PROGRAMS
            .iter()
            .map(|(n, src)| {
                (
                    (*n).to_owned(),
                    pta_simple::compile(src).expect("fixed program"),
                )
            })
            .collect();
        let load_cfg = LoadConfig {
            addr: addr.clone(),
            programs,
            conns: 1,
            rounds: 1,
            seed: cfg.seed,
            batch: 1,
            verify: false,
            timeout: Some(Duration::from_secs(10)),
            retries: 2,
        };
        let mix = crate::load::build_mix(&load_cfg);
        let mut baseline = PhaseReport {
            name: "baseline",
            probes: mix.len() as u32,
            failures: Vec::new(),
        };
        let golden = match crate::load::run_once(&load_cfg, &mix, 1) {
            Ok((responses, _, _, stats)) => {
                if stats.failed > 0 {
                    baseline.failures.push(format!(
                        "{} of {} fault-free queries failed",
                        stats.failed,
                        mix.len()
                    ));
                }
                responses
            }
            Err(e) => {
                baseline.failures.push(format!("golden replay: {e}"));
                Vec::new()
            }
        };
        phases.push(baseline);
        if golden.is_empty() {
            stop.store(true, Ordering::Release);
            let _ = server.join();
            return;
        }
        let mut g = Rng::new(cfg.seed ^ 0xc4a0_5c4a_05c4_a05c);

        // Phase 2: kill connections mid-request.
        let mut kill = PhaseReport {
            name: "conn-kill",
            probes: cfg.kill_conns,
            failures: Vec::new(),
        };
        for probe in 0..cfg.kill_conns {
            let idx = g.usize(0..mix.len());
            let line = format!("{}\n", mix[idx]);
            match connect(&addr) {
                Ok(mut conn) => {
                    let bytes = line.as_bytes();
                    if probe % 2 == 0 {
                        // Half a request, then a hard drop.
                        let cut = 1 + g.usize(0..bytes.len().saturating_sub(1).max(1));
                        let _ = conn.write_all(&bytes[..cut.min(bytes.len())]);
                    } else {
                        // The whole request, dropped before the answer.
                        let _ = conn.write_all(bytes);
                        let _ = conn.flush();
                    }
                    drop(conn);
                }
                Err(e) => kill.failures.push(format!("probe {probe}: connect: {e}")),
            }
            // The server must still answer the next client correctly.
            let check = g.usize(0..mix.len());
            assert_golden(
                &addr,
                &mix,
                &golden,
                check,
                &format!("conn-kill probe {probe}"),
                &mut kill.failures,
            );
        }
        phases.push(kill);

        // Phase 3: dribble a request one byte at a time.
        let mut dribble = PhaseReport {
            name: "dribble",
            probes: cfg.dribbles,
            failures: Vec::new(),
        };
        for probe in 0..cfg.dribbles {
            let idx = g.usize(0..mix.len());
            let line = format!("{}\n", mix[idx]);
            let outcome = (|| -> Result<String, String> {
                let mut conn = connect(&addr).map_err(|e| format!("connect: {e}"))?;
                let deadline = Some(Duration::from_secs(10));
                let _ = conn.set_read_timeout(deadline);
                for b in line.as_bytes() {
                    conn.write_all(std::slice::from_ref(b))
                        .and_then(|()| conn.flush())
                        .map_err(|e| format!("dribble send: {e}"))?;
                }
                let mut response = String::new();
                BufReader::new(conn)
                    .read_line(&mut response)
                    .map_err(|e| format!("recv: {e}"))?;
                Ok(response.trim_end().to_owned())
            })();
            match outcome {
                Ok(got) if got == golden[idx] => {}
                Ok(got) => dribble.failures.push(format!(
                    "probe {probe}: dribbled query {idx} diverged\n  got:  {got}\n  want: {}",
                    golden[idx]
                )),
                Err(e) => dribble.failures.push(format!("probe {probe}: {e}")),
            }
        }
        phases.push(dribble);

        // Phase 4: oversized lines and garbage bytes.
        let mut garbage = PhaseReport {
            name: "oversize-garbage",
            probes: cfg.garbage,
            failures: Vec::new(),
        };
        for probe in 0..cfg.garbage {
            let outcome = (|| -> Result<(), String> {
                let mut conn = connect(&addr).map_err(|e| format!("connect: {e}"))?;
                let deadline = Some(Duration::from_secs(10));
                let _ = conn.set_read_timeout(deadline);
                let (attack, expect): (Vec<u8>, &str) = match probe % 3 {
                    0 => {
                        // One byte over the line cap.
                        let mut v = vec![b'x'; opts.max_line_bytes + 1];
                        v.push(b'\n');
                        (v, "too-large")
                    }
                    1 => {
                        // Invalid UTF-8.
                        let mut v = vec![0xFF, 0xFE, b'{', 0x80];
                        v.push(b'\n');
                        (v, "bad request")
                    }
                    _ => {
                        // Printable garbage: must answer *some* in-band
                        // error, never close or panic.
                        let mut v = g.ascii_soup(1..128).replace('\n', " ").into_bytes();
                        v.push(b'\n');
                        (v, "\"ok\":false")
                    }
                };
                conn.write_all(&attack).map_err(|e| format!("send: {e}"))?;
                let mut reader = BufReader::new(conn.try_clone().map_err(|e| e.to_string())?);
                let mut response = String::new();
                reader
                    .read_line(&mut response)
                    .map_err(|e| format!("recv: {e}"))?;
                if !response.contains(expect) {
                    return Err(format!(
                        "expected `{expect}` in the in-band answer, got: {}",
                        response.trim_end()
                    ));
                }
                // The connection must resync: a clean follow-up query
                // answers golden bytes.
                let idx = probe as usize % mix.len();
                conn.write_all(format!("{}\n", mix[idx]).as_bytes())
                    .map_err(|e| format!("resync send: {e}"))?;
                let mut second = String::new();
                reader
                    .read_line(&mut second)
                    .map_err(|e| format!("resync recv: {e}"))?;
                if second.trim_end() != golden[idx] {
                    return Err(format!(
                        "post-garbage query {idx} diverged\n  got:  {}\n  want: {}",
                        second.trim_end(),
                        golden[idx]
                    ));
                }
                Ok(())
            })();
            if let Err(e) = outcome {
                garbage.failures.push(format!("probe {probe}: {e}"));
            }
        }
        phases.push(garbage);

        // Phase 5: every store fault point, against a scratch snapshot
        // path (the live server's stores are left alone).
        if cfg.store_faults {
            phases.push(store_fault_phase(cfg, &mix, &golden));
        }

        // Phase 6: SIGKILL a saving process, prove old-or-new.
        if cfg.kill_saves > 0 {
            if let Some(exe) = &cfg.victim_exe {
                phases.push(kill_save_phase(cfg, exe, &mut g));
            }
        }

        stop.store(true, Ordering::Release);
        if let Err(e) = server.join().expect("server thread") {
            phases.push(PhaseReport {
                name: "server-exit",
                probes: 1,
                failures: vec![format!("server loop returned an error: {e}")],
            });
        }
    });

    Ok(ChaosReport {
        phases,
        wall: t0.elapsed(),
    })
}

/// The snapshots the save-fault and kill-during-save phases flip
/// between: one per fixed program, built deterministically.
///
/// # Errors
///
/// Front-end or analysis failures (none for the fixed programs).
pub fn victim_snapshots() -> Result<(Snapshot, Snapshot), String> {
    let mut snaps = Vec::new();
    let config = pta_core::AnalysisConfig::default();
    for (_, source) in PROGRAMS {
        let ir = pta_simple::compile(source).map_err(|e| e.to_string())?;
        let inc = pta_store::analyze_incremental(&ir, &config, None).map_err(|e| e.to_string())?;
        let lint = pta_lint::lint_ir(
            &ir,
            &inc.run.result,
            pta_core::Fidelity::ContextSensitive,
            &pta_lint::LintOptions::default(),
        );
        snaps.push(Snapshot::build(&ir, &config, &inc.run, &lint));
    }
    let second = snaps.pop().expect("two programs");
    let first = snaps.pop().expect("two programs");
    Ok((first, second))
}

/// Phase 5: arm each numbered fault point in turn. Save faults must
/// leave the old-or-new snapshot loadable; load faults must degrade a
/// fresh router to a cold rebuild that answers golden bytes.
fn store_fault_phase(cfg: &ChaosConfig, mix: &[String], golden: &[String]) -> PhaseReport {
    let mut phase = PhaseReport {
        name: "store-faults",
        probes: 0,
        failures: Vec::new(),
    };
    let run = (|| -> Result<(), String> {
        let dir = scratch_dir("faults", cfg.seed)?;
        let (old, new) = victim_snapshots()?;
        let (old_text, new_text) = (pta_store::serialize(&old), pta_store::serialize(&new));
        let path = dir.join("snap.pta");
        let save_plans = [
            (fault::SAVE_CREATE, FaultMode::Fail),
            (fault::SAVE_WRITE, FaultMode::Fail),
            (fault::SAVE_WRITE, FaultMode::Truncate),
            (fault::SAVE_SYNC, FaultMode::Fail),
            (fault::SAVE_RENAME, FaultMode::Fail),
            (fault::SAVE_DIRSYNC, FaultMode::Fail),
        ];
        for (point, mode) in save_plans {
            phase.probes += 1;
            // A clean old snapshot, then a faulted save of the new one.
            pta_store::save(&path, &old).map_err(|e| format!("clean save: {e}"))?;
            fault::arm(FaultPlan {
                point,
                mode,
                hit: 1,
            });
            let saved = pta_store::save(&path, &new);
            fault::disarm();
            let name = FaultPlan {
                point,
                mode,
                hit: 1,
            }
            .point_name();
            // Points up to the rename must report the failure; the
            // dirsync point fires after the rename landed, so the save
            // may have succeeded in every way the caller can observe.
            if saved.is_ok() && point != fault::SAVE_DIRSYNC {
                phase
                    .failures
                    .push(format!("fault at {name} ({mode:?}): save reported success"));
            }
            match std::fs::read_to_string(&path) {
                Ok(text) if text == old_text || text == new_text => {}
                Ok(_) => phase.failures.push(format!(
                    "fault at {name} ({mode:?}): snapshot is neither old nor new bytes"
                )),
                Err(e) => phase.failures.push(format!(
                    "fault at {name} ({mode:?}): snapshot unreadable: {e}"
                )),
            }
            if pta_store::load(&path).is_err() {
                phase.failures.push(format!(
                    "fault at {name} ({mode:?}): snapshot does not load"
                ));
            }
            // No tempfile debris from a failed save.
            let debris = std::fs::read_dir(&dir)
                .map_err(|e| e.to_string())?
                .filter_map(Result::ok)
                .filter(|e| e.file_name().to_string_lossy().contains(".tmp."))
                .count();
            if debris > 0 {
                phase.failures.push(format!(
                    "fault at {name} ({mode:?}): {debris} tempfiles left behind"
                ));
            }
        }
        // Load faults: a fresh router over poisoned snapshots must
        // degrade to cold and still answer golden bytes.
        for mode in [FaultMode::Fail, FaultMode::Truncate] {
            phase.probes += 1;
            let tenant_dir = scratch_dir(
                match mode {
                    FaultMode::Fail => "load-fail",
                    FaultMode::Truncate => "load-trunc",
                },
                cfg.seed,
            )?;
            let (router, specs) = build_router(&tenant_dir)?;
            // First pass builds and saves every tenant's snapshot.
            for line in mix.iter().take(2) {
                let _ = router.handle_text(line);
            }
            let saved = specs.iter().filter(|sp| sp.store.exists()).count();
            if saved == 0 {
                phase
                    .failures
                    .push("load-fault setup: no tenant snapshot was saved".to_owned());
                continue;
            }
            // A fresh cache must hit the armed load fault and rebuild.
            let (fresh, _) = build_router(&tenant_dir)?;
            fault::arm(FaultPlan {
                point: fault::LOAD_READ,
                mode,
                hit: 1,
            });
            let idx = 0;
            let (got, _) = fresh.handle_text(&mix[idx]);
            fault::disarm();
            if got != golden[idx] {
                phase.failures.push(format!(
                    "load fault ({mode:?}): degraded answer diverged\n  got:  {got}\n  want: {}",
                    golden[idx]
                ));
            }
        }
        Ok(())
    })();
    fault::disarm();
    if let Err(e) = run {
        phase.failures.push(format!("harness: {e}"));
    }
    phase
}

/// Phase 6: spawn `exe --victim DIR` (which alternates saving the two
/// snapshots), SIGKILL it after a seeded delay, and require the
/// snapshot file to parse as exactly the old or the new bytes.
fn kill_save_phase(cfg: &ChaosConfig, exe: &Path, g: &mut Rng) -> PhaseReport {
    let mut phase = PhaseReport {
        name: "kill-during-save",
        probes: cfg.kill_saves,
        failures: Vec::new(),
    };
    let run = (|| -> Result<(), String> {
        let (s1, s2) = victim_snapshots()?;
        let (t1, t2) = (pta_store::serialize(&s1), pta_store::serialize(&s2));
        for probe in 0..cfg.kill_saves {
            let dir = scratch_dir(&format!("kill-{probe}"), cfg.seed)?;
            let mut child = std::process::Command::new(exe)
                .arg("--victim")
                .arg(&dir)
                .stdout(std::process::Stdio::piped())
                .stderr(std::process::Stdio::null())
                .spawn()
                .map_err(|e| format!("spawn victim: {e}"))?;
            let stdout = child.stdout.take().expect("piped stdout");
            let mut ready = String::new();
            BufReader::new(stdout)
                .read_line(&mut ready)
                .map_err(|e| format!("victim handshake: {e}"))?;
            if ready.trim() != "ready" {
                let _ = child.kill();
                let _ = child.wait();
                return Err(format!("victim said `{}`, not `ready`", ready.trim()));
            }
            // Let it save furiously for a random moment, then kill -9.
            std::thread::sleep(Duration::from_micros(g.u64(50..30_000)));
            child.kill().map_err(|e| format!("kill victim: {e}"))?;
            let _ = child.wait();
            let path = dir.join("snap.pta");
            match std::fs::read_to_string(&path) {
                Ok(text) if text == t1 || text == t2 => {}
                Ok(_) => phase.failures.push(format!(
                    "probe {probe}: snapshot is neither old nor new bytes after SIGKILL"
                )),
                Err(e) => phase.failures.push(format!(
                    "probe {probe}: snapshot unreadable after SIGKILL: {e}"
                )),
            }
            if pta_store::load(&path).is_err() {
                phase.failures.push(format!(
                    "probe {probe}: snapshot does not load after SIGKILL"
                ));
            }
            let _ = std::fs::remove_dir_all(&dir);
        }
        Ok(())
    })();
    if let Err(e) = run {
        phase.failures.push(format!("harness: {e}"));
    }
    phase
}

/// The `--victim` mode of `pta-chaos`: save one snapshot, announce
/// readiness, then alternate saves until killed. Never returns.
pub fn run_victim(dir: &Path) -> ! {
    let (s1, s2) = victim_snapshots().unwrap_or_else(|e| {
        eprintln!("pta-chaos --victim: {e}");
        std::process::exit(2);
    });
    let path = dir.join("snap.pta");
    if let Err(e) = pta_store::save(&path, &s1) {
        eprintln!("pta-chaos --victim: first save: {e}");
        std::process::exit(2);
    }
    println!("ready");
    let _ = std::io::stdout().flush();
    loop {
        let _ = pta_store::save(&path, &s2);
        let _ = pta_store::save(&path, &s1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The in-process phases (no victim subprocess) run clean. The
    /// full schedule including SIGKILL probes runs in
    /// `tests/robustness.rs` and in CI's chaos-smoke job via the
    /// `pta-chaos` binary.
    #[test]
    fn chaos_smoke_runs_clean_without_subprocess_phases() {
        let cfg = ChaosConfig {
            kill_conns: 2,
            dribbles: 1,
            garbage: 3,
            store_faults: false, // fault arming is process-global; see tests/robustness.rs
            kill_saves: 0,
            ..ChaosConfig::default()
        };
        let report = run_chaos(&cfg).unwrap();
        assert!(report.is_clean(), "{}", report.render());
        let line = report.render_json(cfg.seed);
        let parsed = json::parse(&line).unwrap();
        assert_eq!(
            parsed.get("schema").and_then(json::Json::as_str),
            Some("pta.chaos.v1")
        );
    }
}
