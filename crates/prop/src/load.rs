//! The `pta-load` generator: seeded, deterministic query load against a
//! running `pta serve --listen` server, measured as QPS and latency
//! percentiles.
//!
//! The query mix reuses the serve-stress workload builder
//! ([`crate::serve::build_workload`]) per program, tags each request
//! with its `"program"`, shuffles the combined list per round with the
//! run seed, and partitions it round-robin across `conns` concurrent
//! connections. Because the server answers each connection strictly in
//! request order, the responses reassemble by query index into one
//! vector that is independent of the connection count — which is what
//! lets `--verify` assert byte-identical responses across 1 vs N
//! connections, and what the CI `serve-load` job pins.
//!
//! Latency is measured per request (or per `--batch` array line) from
//! write to response line; QPS is total queries over the measured wall
//! clock. [`render_json`] emits the `pta.load.v1` artifact that
//! `report summary --serve-json` folds into the bench report.

use crate::{case_seed, Rng};
use pta_store::json::{self, Json};
use pta_store::server::{connect, ListenAddr, Stream};
use std::io::{BufRead, BufReader, Write as _};
use std::time::{Duration, Instant};

/// Knobs for one load run.
#[derive(Debug, Clone)]
pub struct LoadConfig {
    /// Server address to connect to.
    pub addr: ListenAddr,
    /// `(program name, compiled IR)` per tenant to generate queries
    /// for; names must match the server's tenants.
    pub programs: Vec<(String, pta_simple::IrProgram)>,
    /// Concurrent connections.
    pub conns: usize,
    /// Rounds: the full mixed workload is replayed this many times
    /// (each round reshuffled, same seed stream).
    pub rounds: u32,
    /// Run seed.
    pub seed: u64,
    /// Queries per request line: 1 sends plain objects, larger values
    /// send batch arrays.
    pub batch: usize,
    /// Re-run the whole workload on a single connection afterwards and
    /// require byte-identical responses.
    pub verify: bool,
    /// Per-request deadline: a response must arrive within this long or
    /// the attempt counts as timed out (and is retried on a fresh
    /// connection). `None` = wait forever (the pre-hardening behavior).
    pub timeout: Option<Duration>,
    /// Extra attempts per request beyond the first; each retry
    /// reconnects after a capped, seeded-jitter backoff. `0` = fail a
    /// request on its first broken exchange.
    pub retries: u32,
}

/// What one measured run produced.
#[derive(Debug, Clone)]
pub struct LoadReport {
    /// Queries sent (across all connections and rounds).
    pub queries: usize,
    /// Responses with `"ok": true`.
    pub ok: usize,
    /// Responses with `"ok": false` (in-band errors are part of the
    /// workload: some generated queries are deliberately invalid).
    pub errors: usize,
    /// Measured wall clock of the concurrent run.
    pub wall: Duration,
    /// Per-request latencies in microseconds, sorted ascending.
    pub latencies_us: Vec<u64>,
    /// `Some(true)` when `--verify` ran and the single-connection replay
    /// was byte-identical; `None` when `--verify` was off.
    pub verified: Option<bool>,
    /// Re-sent exchanges during the measured run (reconnect + replay
    /// after a broken or timed-out exchange).
    pub retries: u64,
    /// Exchanges that hit the per-request deadline.
    pub timeouts: u64,
    /// Queries that exhausted every attempt and were answered with a
    /// synthetic client-side error row instead of hanging the run.
    pub failed: u64,
}

/// One replayed exchange: `(query index, response line, micros)`.
type ConnRow = (usize, String, u64);

/// Client-side resilience counters for one connection's replay.
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct ClientStats {
    pub(crate) retries: u64,
    pub(crate) timeouts: u64,
    pub(crate) failed: u64,
}

impl ClientStats {
    fn absorb(&mut self, other: ClientStats) {
        self.retries += other.retries;
        self.timeouts += other.timeouts;
        self.failed += other.failed;
    }
}

impl LoadReport {
    /// Queries per second over the measured wall clock.
    pub fn qps(&self) -> f64 {
        let secs = self.wall.as_secs_f64();
        if secs > 0.0 {
            self.queries as f64 / secs
        } else {
            0.0
        }
    }

    /// The `p`-th latency percentile (0..=100), in microseconds.
    pub fn percentile_us(&self, p: f64) -> u64 {
        if self.latencies_us.is_empty() {
            return 0;
        }
        let rank = (p / 100.0 * (self.latencies_us.len() - 1) as f64).round() as usize;
        self.latencies_us[rank.min(self.latencies_us.len() - 1)]
    }
}

/// Builds the tagged, shuffled, round-replicated master query list.
/// Deterministic in `(programs, rounds, seed)`.
pub fn build_mix(cfg: &LoadConfig) -> Vec<String> {
    let mut per_program: Vec<Vec<String>> = Vec::new();
    for (i, (name, ir)) in cfg.programs.iter().enumerate() {
        let mut g = Rng::new(case_seed(cfg.seed, i as u32));
        let tagged: Vec<String> = crate::serve::build_workload(ir, &mut g)
            .into_iter()
            .map(|line| {
                // `{"id":…` → `{"program":"name","id":…` — still one
                // flat request object.
                line.replacen('{', &format!("{{\"program\":\"{name}\","), 1)
            })
            .collect();
        per_program.push(tagged);
    }
    let base: Vec<String> = per_program.into_iter().flatten().collect();
    let mut g = Rng::new(case_seed(cfg.seed, u32::MAX));
    let mut mix = Vec::with_capacity(base.len() * cfg.rounds.max(1) as usize);
    for _ in 0..cfg.rounds.max(1) {
        let mut round = base.clone();
        // Fisher–Yates with the run's own stream.
        for i in (1..round.len()).rev() {
            round.swap(i, g.usize(0..i + 1));
        }
        mix.extend(round);
    }
    mix
}

/// The synthetic response row a query gets when every attempt at its
/// exchange failed. Deterministic bytes: retried runs stay comparable.
fn failed_row(attempts: u32) -> String {
    format!(
        "{{\"id\":null,\"ok\":false,\"error\":\"client: no response after {attempts} attempts\"}}"
    )
}

/// Seeded exponential backoff with jitter: attempt 1 waits ~10ms,
/// doubling up to a 500ms cap, each with up to +50% jitter from the
/// connection's own deterministic stream.
fn backoff_delay(g: &mut Rng, attempt: u32) -> Duration {
    let base = 10u64.saturating_mul(1u64 << (attempt.saturating_sub(1)).min(6));
    let base = base.min(500);
    Duration::from_millis(base + g.usize(0..(base / 2 + 1) as usize) as u64)
}

/// A connected client stream: write half + buffered read half.
fn open_conn(addr: &ListenAddr, timeout: Option<Duration>) -> Option<(Stream, BufReader<Stream>)> {
    let conn = connect(addr).ok()?;
    // A deadline on both halves: a dead or wedged server must surface
    // as a timed-out exchange, never a hung client thread.
    let _ = conn.set_read_timeout(timeout);
    let _ = conn.set_write_timeout(timeout);
    let out = conn.try_clone().ok()?;
    Some((out, BufReader::new(conn)))
}

/// One connection's replay: its queries in index order, one
/// request/response exchange per line (batched per `batch`), each
/// exchange timed. A broken or timed-out exchange reconnects and
/// retries under seeded backoff; a query whose attempts are exhausted
/// gets a synthetic error row — this function never hangs on a dead
/// server and never fails the run. Returns `(index, response, micros)`
/// triples plus the resilience counters.
fn replay_conn(
    addr: &ListenAddr,
    queries: &[(usize, &str)],
    cfg: &LoadConfig,
    seed: u64,
) -> (Vec<ConnRow>, ClientStats) {
    let mut g = Rng::new(seed);
    let mut stats = ClientStats::default();
    let mut conn: Option<(Stream, BufReader<Stream>)> = None;
    let mut results = Vec::with_capacity(queries.len());
    let batch = cfg.batch.max(1);
    let attempts = cfg.retries.saturating_add(1);
    for chunk in queries.chunks(batch) {
        let line = if chunk.len() == 1 && batch <= 1 {
            format!("{}\n", chunk[0].1)
        } else {
            let bodies: Vec<&str> = chunk.iter().map(|(_, q)| *q).collect();
            format!("[{}]\n", bodies.join(","))
        };
        let t0 = Instant::now();
        let mut answer: Option<String> = None;
        for attempt in 0..attempts {
            if attempt > 0 {
                stats.retries += 1;
                std::thread::sleep(backoff_delay(&mut g, attempt));
            }
            if conn.is_none() {
                conn = open_conn(addr, cfg.timeout);
            }
            let Some((out, reader)) = conn.as_mut() else {
                continue;
            };
            if out
                .write_all(line.as_bytes())
                .and_then(|()| out.flush())
                .is_err()
            {
                conn = None;
                continue;
            }
            let mut response = String::new();
            match reader.read_line(&mut response) {
                // EOF (0) or a partial line without its newline: the
                // server closed mid-response — reconnect and retry.
                Ok(n) if n == 0 || !response.ends_with('\n') => conn = None,
                Ok(_) => {
                    answer = Some(response);
                    break;
                }
                Err(e)
                    if e.kind() == std::io::ErrorKind::WouldBlock
                        || e.kind() == std::io::ErrorKind::TimedOut =>
                {
                    stats.timeouts += 1;
                    conn = None;
                }
                Err(_) => conn = None,
            }
        }
        let us = t0.elapsed().as_micros() as u64;
        let answer = answer
            .as_deref()
            .map(str::trim_end)
            .map(str::to_owned)
            .unwrap_or_else(|| {
                stats.failed += chunk.len() as u64;
                failed_row(attempts)
            });
        if chunk.len() == 1 && batch <= 1 {
            results.push((chunk[0].0, answer, us));
        } else {
            // One array line answers the whole chunk; every member gets
            // the batch's latency. A response that does not split back
            // into the chunk (garbled, or the synthetic row) is copied
            // to every member so indexes stay covered.
            match split_batch(&answer, chunk.len()) {
                Ok(parts) => {
                    for ((idx, _), part) in chunk.iter().zip(parts) {
                        results.push((*idx, part, us));
                    }
                }
                Err(_) => {
                    for (idx, _) in chunk {
                        results.push((*idx, answer.clone(), us));
                    }
                }
            }
        }
    }
    (results, stats)
}

/// Splits a batch response array line back into its `n` member
/// responses (rendered bytes, not re-encoded).
fn split_batch(line: &str, n: usize) -> Result<Vec<String>, String> {
    let v = json::parse(line).map_err(|e| format!("unparsable batch response: {e}"))?;
    let items = v
        .as_arr()
        .ok_or_else(|| format!("expected a batch array, got: {line}"))?;
    if items.len() != n {
        return Err(format!("batch answered {} of {n} requests", items.len()));
    }
    Ok(items.iter().map(Json::render).collect())
}

/// Runs the mix over `conns` connections and reassembles responses in
/// query order.
pub(crate) fn run_once(
    cfg: &LoadConfig,
    mix: &[String],
    conns: usize,
) -> Result<(Vec<String>, Vec<u64>, Duration, ClientStats), String> {
    let conns = conns.max(1);
    let shares: Vec<Vec<(usize, &str)>> = (0..conns)
        .map(|c| {
            mix.iter()
                .enumerate()
                .skip(c)
                .step_by(conns)
                .map(|(i, q)| (i, q.as_str()))
                .collect()
        })
        .collect();
    let t0 = Instant::now();
    let results = std::thread::scope(|s| -> Result<(Vec<ConnRow>, ClientStats), String> {
        let mut handles = Vec::new();
        for (c, share) in shares.iter().enumerate() {
            // Each connection retries on its own seeded jitter
            // stream, disjoint from the workload-building streams.
            let seed = case_seed(cfg.seed ^ 0x7e7a_11ed, c as u32);
            handles.push(s.spawn(move || replay_conn(&cfg.addr, share, cfg, seed)));
        }
        let mut all = Vec::with_capacity(mix.len());
        let mut stats = ClientStats::default();
        for h in handles {
            let (rows, s) = h.join().map_err(|_| "client thread panicked".to_owned())?;
            all.extend(rows);
            stats.absorb(s);
        }
        Ok((all, stats))
    })?;
    let wall = t0.elapsed();
    let (rows, stats) = results;
    let mut responses = vec![String::new(); mix.len()];
    let mut latencies = Vec::with_capacity(rows.len());
    for (idx, resp, us) in rows {
        responses[idx] = resp;
        latencies.push(us);
    }
    latencies.sort_unstable();
    Ok((responses, latencies, wall, stats))
}

/// Runs the configured load and, with `verify`, the single-connection
/// control replay.
///
/// # Errors
///
/// Connection-level failures; in-band error responses are counted, not
/// failures.
pub fn run_load(cfg: &LoadConfig) -> Result<LoadReport, String> {
    let mix = build_mix(cfg);
    if mix.is_empty() {
        return Err("empty workload (no programs?)".to_owned());
    }
    let (responses, latencies_us, wall, stats) = run_once(cfg, &mix, cfg.conns)?;
    let verified = if cfg.verify {
        let (control, _, _, _) = run_once(cfg, &mix, 1)?;
        Some(control == responses)
    } else {
        None
    };
    let ok = responses
        .iter()
        .filter(|r| r.starts_with("{\"id\":") && r.contains("\"ok\":true"))
        .count();
    Ok(LoadReport {
        queries: mix.len(),
        ok,
        errors: responses.len() - ok,
        wall,
        latencies_us,
        verified,
        retries: stats.retries,
        timeouts: stats.timeouts,
        failed: stats.failed,
    })
}

/// Renders the `pta.load.v1` JSON artifact (one line).
pub fn render_json(cfg: &LoadConfig, report: &LoadReport) -> String {
    let programs: Vec<String> = cfg.programs.iter().map(|(n, _)| json::escape(n)).collect();
    format!(
        "{{\"schema\":\"pta.load.v1\",\"addr\":{addr},\"programs\":[{programs}],\
         \"conns\":{conns},\"rounds\":{rounds},\"seed\":\"{seed:#x}\",\"batch\":{batch},\
         \"queries\":{queries},\"ok\":{ok},\"errors\":{errors},\"retries\":{retries},\
         \"timeouts\":{timeouts},\"failed\":{failed},\"wall_ms\":{wall_ms},\
         \"qps\":{qps:.1},\"latency_us\":{{\"p50\":{p50},\"p90\":{p90},\"p99\":{p99},\
         \"max\":{max}}},\"verified\":{verified}}}",
        addr = json::escape(&cfg.addr.to_string()),
        programs = programs.join(","),
        conns = cfg.conns,
        rounds = cfg.rounds,
        seed = cfg.seed,
        batch = cfg.batch.max(1),
        queries = report.queries,
        ok = report.ok,
        errors = report.errors,
        retries = report.retries,
        timeouts = report.timeouts,
        failed = report.failed,
        wall_ms = report.wall.as_millis(),
        qps = report.qps(),
        p50 = report.percentile_us(50.0),
        p90 = report.percentile_us(90.0),
        p99 = report.percentile_us(99.0),
        max = report.latencies_us.last().copied().unwrap_or(0),
        verified = match report.verified {
            Some(v) => v.to_string(),
            None => "null".to_owned(),
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use pta_store::server::{serve, Listener};
    use pta_store::{Router, TenantCache, TenantSpec};
    use std::sync::atomic::{AtomicBool, Ordering};

    fn serve_sources(sources: &[(&str, &str)]) -> (Listener, Router, Vec<TenantSpec>) {
        let dir = std::env::temp_dir().join(format!(
            "pta-load-test-{}-{}",
            std::process::id(),
            sources.len()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let mut specs = Vec::new();
        for (name, source) in sources {
            let src = dir.join(format!("{name}.c"));
            std::fs::write(&src, source).unwrap();
            specs.push(TenantSpec::from_source(&src, &dir));
        }
        let cache = TenantCache::new(
            specs.clone(),
            specs.len(),
            pta_core::AnalysisConfig::default(),
            None,
        );
        let router = Router::new(cache);
        let listener = Listener::bind(&ListenAddr::Tcp("127.0.0.1:0".to_owned())).unwrap();
        (listener, router, specs)
    }

    #[test]
    fn mix_is_deterministic_and_tagged() {
        let ir =
            pta_simple::compile("int x; int main(void) { int *p; p = &x; return *p; }").unwrap();
        let cfg = LoadConfig {
            addr: ListenAddr::Tcp("unused:0".to_owned()),
            programs: vec![("alpha".to_owned(), ir)],
            conns: 2,
            rounds: 2,
            seed: 7,
            batch: 1,
            verify: false,
            timeout: None,
            retries: 0,
        };
        let a = build_mix(&cfg);
        let b = build_mix(&cfg);
        assert_eq!(a, b);
        assert!(a.iter().all(|q| q.contains("\"program\":\"alpha\"")));
        assert_eq!(a.len() % 2, 0, "two identical-length rounds");
    }

    #[test]
    fn load_run_verifies_across_connection_counts() {
        let (listener, router, _specs) = serve_sources(&[
            ("a", "int x; int main(void) { int *p; p = &x; return *p; }"),
            (
                "b",
                "int y; void set(int **p, int *v) { *p = v; } \
                 int main(void) { int *q; set(&q, &y); return *q; }",
            ),
        ]);
        let addr = listener.local_addr();
        let stop = AtomicBool::new(false);
        std::thread::scope(|s| {
            let server = s.spawn(|| serve(&listener, &router, &stop, false));
            let programs = ["a", "b"]
                .iter()
                .map(|n| {
                    let src = std::fs::read_to_string(
                        _specs
                            .iter()
                            .find(|sp| sp.name == **n)
                            .unwrap()
                            .source
                            .clone(),
                    )
                    .unwrap();
                    ((*n).to_owned(), pta_simple::compile(&src).unwrap())
                })
                .collect();
            let cfg = LoadConfig {
                addr: addr.clone(),
                programs,
                conns: 4,
                rounds: 2,
                seed: 0x5eed,
                batch: 1,
                verify: true,
                timeout: Some(Duration::from_secs(10)),
                retries: 2,
            };
            let report = run_load(&cfg).unwrap();
            assert_eq!(report.verified, Some(true));
            assert!(report.queries > 0);
            assert!(report.ok > 0);
            assert_eq!(report.latencies_us.len(), report.queries);
            let rendered = render_json(&cfg, &report);
            let parsed = json::parse(&rendered).unwrap();
            assert_eq!(
                parsed.get("schema").and_then(Json::as_str),
                Some("pta.load.v1")
            );
            assert_eq!(parsed.get("verified"), Some(&Json::Bool(true)));
            // Batched replay answers the same bytes.
            let batched = LoadConfig {
                batch: 8,
                verify: true,
                ..cfg
            };
            let batched_report = run_load(&batched).unwrap();
            assert_eq!(batched_report.verified, Some(true));
            assert_eq!(batched_report.queries, report.queries);
            assert_eq!(batched_report.ok, report.ok);
            stop.store(true, Ordering::Release);
            server.join().unwrap().unwrap();
        });
    }

    #[test]
    fn a_dead_server_yields_error_rows_not_a_hang() {
        // Bind a port, then drop the listener: connects are refused.
        let dead = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = ListenAddr::Tcp(dead.local_addr().unwrap().to_string());
        drop(dead);
        let ir =
            pta_simple::compile("int x; int main(void) { int *p; p = &x; return *p; }").unwrap();
        let cfg = LoadConfig {
            addr,
            programs: vec![("alpha".to_owned(), ir)],
            conns: 2,
            rounds: 1,
            seed: 11,
            batch: 1,
            verify: false,
            timeout: Some(Duration::from_millis(200)),
            retries: 1,
        };
        let t0 = Instant::now();
        let report = run_load(&cfg).unwrap();
        assert_eq!(report.ok, 0);
        assert_eq!(report.failed as usize, report.queries);
        assert!(report.retries > 0, "each query should have retried once");
        assert!(
            t0.elapsed() < Duration::from_secs(30),
            "dead-server run took {:?}",
            t0.elapsed()
        );
        let rendered = render_json(&cfg, &report);
        let parsed = json::parse(&rendered).unwrap();
        assert_eq!(
            parsed.get("failed").and_then(Json::as_u32),
            Some(report.failed as u32)
        );
    }
}
