//! The stress harness: feed generated pathological programs (see
//! [`crate::cgen`]) through the resilient analysis pipeline under tight
//! budgets, and check the three robustness invariants:
//!
//! 1. **termination** — every run finishes within its (generous outer)
//!    deadline because the budgets trip cooperatively;
//! 2. **no panics** — a panic anywhere in the pipeline is caught and
//!    reported as a harness failure, never a crash;
//! 3. **tagged fidelity** — whatever comes back is either a
//!    full-precision result or one explicitly tagged with the fallback
//!    rung that produced it.
//!
//! Everything is seeded, so any failing case prints the seed needed to
//! replay it exactly.

use crate::{case_seed, cgen, Rng};
use pta_core::{AnalysisConfig, Fidelity};
use std::fmt::Write as _;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::time::{Duration, Instant};

/// Knobs for a stress run.
#[derive(Debug, Clone)]
pub struct StressConfig {
    /// Number of generated programs to run.
    pub cases: u32,
    /// Base seed; each case derives its own seed from it.
    pub seed: u64,
    /// Per-analysis deadline in milliseconds (each ladder rung gets a
    /// fresh one).
    pub deadline_ms: u64,
    /// Step budget used for the tight-budget cases.
    pub tight_steps: u64,
}

impl Default for StressConfig {
    fn default() -> Self {
        StressConfig {
            cases: 64,
            seed: crate::DEFAULT_SEED,
            deadline_ms: 2_000,
            // Low enough that the generated programs reliably trip it
            // (the analyser counts coarse per-statement steps).
            tight_steps: 25,
        }
    }
}

/// What happened to one generated program.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CaseOutcome {
    /// Analysis completed; `Fidelity::ContextSensitive` means no rung
    /// was skipped, anything else is a tagged degradation.
    Analysed(Fidelity),
    /// The whole ladder tripped its budgets — acceptable (it
    /// terminated, with provenance), but worth counting separately.
    LadderExhausted(String),
    /// Invariant violation: the pipeline panicked or returned a
    /// non-recoverable error on a generated (valid) program.
    Failed(String),
}

/// One case's record, sufficient to replay it.
#[derive(Debug, Clone)]
pub struct CaseReport {
    /// Case index within the run.
    pub case: u32,
    /// Seed that regenerates this exact program.
    pub seed: u64,
    /// Which generator family produced the program.
    pub family: &'static str,
    /// Whether the tight step budget was applied.
    pub tight: bool,
    /// The outcome.
    pub outcome: CaseOutcome,
    /// Wall-clock time for the case.
    pub elapsed: Duration,
}

/// Aggregate results of a stress run.
#[derive(Debug, Clone)]
pub struct StressSummary {
    /// Per-case records, in case order.
    pub reports: Vec<CaseReport>,
    /// Wall-clock time for the whole run.
    pub wall: Duration,
}

impl StressSummary {
    /// Count of full-precision completions.
    pub fn full(&self) -> usize {
        self.count(|o| matches!(o, CaseOutcome::Analysed(f) if f.is_full()))
    }

    /// Count of tagged degradations.
    pub fn degraded(&self) -> usize {
        self.count(|o| matches!(o, CaseOutcome::Analysed(f) if !f.is_full()))
    }

    /// Count of exhausted ladders (terminated, budget provenance, no
    /// result).
    pub fn exhausted(&self) -> usize {
        self.count(|o| matches!(o, CaseOutcome::LadderExhausted(_)))
    }

    /// The invariant violations. A robust build has none.
    pub fn failures(&self) -> Vec<&CaseReport> {
        self.reports
            .iter()
            .filter(|r| matches!(r.outcome, CaseOutcome::Failed(_)))
            .collect()
    }

    /// True when no case violated an invariant.
    pub fn is_clean(&self) -> bool {
        self.failures().is_empty()
    }

    fn count(&self, f: impl Fn(&CaseOutcome) -> bool) -> usize {
        self.reports.iter().filter(|r| f(&r.outcome)).count()
    }

    /// Human-readable summary, one line per failure.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "stress: {} cases in {:?} — {} full, {} degraded, {} exhausted, {} FAILED",
            self.reports.len(),
            self.wall,
            self.full(),
            self.degraded(),
            self.exhausted(),
            self.failures().len(),
        );
        for r in self.failures() {
            let CaseOutcome::Failed(msg) = &r.outcome else {
                continue;
            };
            let _ = writeln!(
                out,
                "  case {} [{}{}] seed {:#x}: {msg}",
                r.case,
                r.family,
                if r.tight { ", tight" } else { "" },
                r.seed,
            );
        }
        out
    }

    /// Machine-readable summary (JSON, no external deps).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{");
        let _ = write!(
            out,
            "\"cases\":{},\"full\":{},\"degraded\":{},\"exhausted\":{},\"failed\":{},\"wall_ms\":{},\"results\":[",
            self.reports.len(),
            self.full(),
            self.degraded(),
            self.exhausted(),
            self.failures().len(),
            self.wall.as_millis(),
        );
        for (i, r) in self.reports.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let (status, detail) = match &r.outcome {
                CaseOutcome::Analysed(f) => ("analysed", f.tag().to_owned()),
                CaseOutcome::LadderExhausted(m) => ("exhausted", m.clone()),
                CaseOutcome::Failed(m) => ("failed", m.clone()),
            };
            let _ = write!(
                out,
                "{{\"case\":{},\"seed\":\"{:#x}\",\"family\":\"{}\",\"tight\":{},\"status\":\"{status}\",\"detail\":\"{}\",\"ms\":{}}}",
                r.case,
                r.seed,
                r.family,
                r.tight,
                json_escape(&detail),
                r.elapsed.as_millis(),
            );
        }
        out.push_str("]}");
        out
    }
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Runs one generated program under the given budgets and classifies
/// the outcome. Panics anywhere in the pipeline — including the lint
/// passes, which run on every successful analysis — become
/// [`CaseOutcome::Failed`]. A degraded run that still emits an
/// error-severity diagnostic violates the fidelity contract and is
/// likewise a failure.
pub fn run_case(source: &str, config: AnalysisConfig) -> CaseOutcome {
    let caught = catch_unwind(AssertUnwindSafe(|| {
        let (pta, fidelity, degradations) = pta_core::run_source_resilient(source, config)?;
        let diags = pta_lint::lint_ir(
            &pta.ir,
            &pta.result,
            fidelity,
            &pta_lint::LintOptions::default(),
        );
        Ok::<_, pta_core::PtaError>(((pta, fidelity, degradations), diags))
    }));
    match caught {
        Ok(Ok(((_, fidelity, _), diags))) => {
            if !fidelity.is_full()
                && diags
                    .iter()
                    .any(|d| d.severity == pta_lint::Severity::Error)
            {
                return CaseOutcome::Failed(format!(
                    "degraded run ({}) emitted an error-severity diagnostic",
                    fidelity.tag()
                ));
            }
            CaseOutcome::Analysed(fidelity)
        }
        Ok(Err(e)) => {
            let msg = e.to_string();
            if is_budget_error(&e) {
                CaseOutcome::LadderExhausted(msg)
            } else {
                CaseOutcome::Failed(format!("non-recoverable error: {msg}"))
            }
        }
        Err(p) => CaseOutcome::Failed(format!("panic: {}", panic_text(&*p))),
    }
}

fn is_budget_error(e: &pta_core::PtaError) -> bool {
    match e {
        pta_core::PtaError::Analysis(a) => a.budget_kind().is_some(),
        pta_core::PtaError::Frontend(_) => false,
    }
}

fn panic_text(p: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = p.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = p.downcast_ref::<String>() {
        s.clone()
    } else {
        String::from("<non-string payload>")
    }
}

/// Runs the full stress suite: `cases` generated programs cycling
/// through the generator families, alternating generous and tight
/// budgets so both the full analysis and the degradation ladder get
/// exercised.
pub fn run_stress(cfg: &StressConfig) -> StressSummary {
    let start = Instant::now();
    let mut reports = Vec::with_capacity(cfg.cases as usize);
    for case in 0..cfg.cases {
        let seed = case_seed(cfg.seed, case);
        let mut g = Rng::new(seed);
        let family = cgen::FAMILIES[case as usize % cgen::FAMILIES.len()];
        let source = cgen::generate(family, &mut g);
        // Every other case gets a tight step budget to force the
        // ladder; the rest run with only the deadline as a backstop.
        let tight = case % 2 == 1;
        let config = AnalysisConfig {
            deadline: Some(Duration::from_millis(cfg.deadline_ms)),
            max_steps: if tight { cfg.tight_steps } else { u64::MAX },
            // Every third case runs with liveness pruning so the
            // stress corpus exercises the pruned engine path (and its
            // interaction with the ladder) end to end.
            prune_liveness: case % 3 == 0,
            ..AnalysisConfig::default()
        };
        let t0 = Instant::now();
        let outcome = run_case(&source, config);
        reports.push(CaseReport {
            case,
            seed,
            family,
            tight,
            outcome,
            elapsed: t0.elapsed(),
        });
    }
    StressSummary {
        reports,
        wall: start.elapsed(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stress_smoke_is_clean() {
        let summary = run_stress(&StressConfig {
            cases: 16,
            ..StressConfig::default()
        });
        assert!(summary.is_clean(), "{}", summary.render());
        assert_eq!(summary.reports.len(), 16);
        // Both paths get exercised: some cases complete at full
        // precision, and the alternating tight budget forces the
        // degradation ladder at least once.
        assert!(summary.full() > 0, "{}", summary.render());
        assert!(summary.degraded() > 0, "{}", summary.render());
    }

    #[test]
    fn tight_budget_forces_tagged_degradation() {
        let source = cgen::wide_indirect(16);
        let config = AnalysisConfig {
            max_steps: 5,
            ..AnalysisConfig::default()
        };
        match run_case(&source, config) {
            CaseOutcome::Analysed(f) => assert!(!f.is_full(), "expected a degraded tag"),
            other => panic!("expected a tagged analysis, got {other:?}"),
        }
    }

    #[test]
    fn json_and_render_shapes() {
        let summary = run_stress(&StressConfig {
            cases: 4,
            ..StressConfig::default()
        });
        let json = summary.to_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"cases\":4"));
        assert!(json.contains("\"family\":\"deep-chain\""));
        assert!(summary.render().contains("4 cases"));
    }

    #[test]
    fn panicking_pipeline_is_reported_not_propagated() {
        // An invalid program is a frontend error, not a panic; the
        // harness classifies it as Failed without crashing.
        let out = run_case("int main(void) {", AnalysisConfig::default());
        assert!(matches!(out, CaseOutcome::Failed(_)), "{out:?}");
    }
}
