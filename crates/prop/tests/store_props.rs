//! Property tests for the fact store over generated pathological
//! programs:
//!
//! 1. save → load → warm re-analysis of the *unchanged* program is
//!    fact-identical to the cold run that produced the snapshot;
//! 2. save → mutate one function → load + incremental re-analysis is
//!    fact-identical to a cold run of the mutated program (the
//!    incremental correctness contract);
//! 3. the snapshot codec is a fixed point: serialize ∘ parse ∘
//!    serialize is byte-identical to serialize.

use pta_core::{analyze_recorded, AnalysisConfig, Fidelity};
use pta_lint::{lint_ir, LintOptions};
use pta_prop::{cgen, check_seeded, Rng};
use pta_store::{analyze_incremental, canonical_facts, parse, perturb_source, serialize};
use pta_store::{Snapshot, WarmMode};

/// Deterministic generated source for one case, cycling the families.
fn source_for(case_rng: &mut Rng, case: u32) -> String {
    let family = cgen::FAMILIES[case as usize % cgen::FAMILIES.len()];
    cgen::generate(family, case_rng)
}

/// Cold-analyses `source` and returns its snapshot plus canonical
/// facts and lint findings (the byte-comparison basis).
fn cold_facts(source: &str) -> Option<(Snapshot, String, Vec<pta_lint::Diagnostic>)> {
    let config = AnalysisConfig::default();
    let ir = pta_simple::compile(source).ok()?;
    let run = analyze_recorded(&ir, config.clone()).ok()?;
    let lint = lint_ir(
        &ir,
        &run.result,
        Fidelity::ContextSensitive,
        &LintOptions::default(),
    );
    let facts = canonical_facts(&ir, &run.result);
    Some((Snapshot::build(&ir, &config, &run, &lint), facts, lint))
}

#[test]
fn warm_reanalysis_of_unchanged_program_matches_cold() {
    let mut case = 0u32;
    check_seeded(
        "store-warm-identity",
        pta_prop::DEFAULT_SEED,
        16,
        &mut |g| {
            let src = source_for(g, case);
            case += 1;
            let Some((snap, cold, lint)) = cold_facts(&src) else {
                return;
            };
            // Through the codec: the warm run must be seeded from parsed
            // bytes, not from the in-memory snapshot.
            let snap = parse(&serialize(&snap)).expect("snapshot must round-trip");
            let ir = pta_simple::compile(&src).unwrap();
            let config = AnalysisConfig::default();
            let warm = analyze_incremental(&ir, &config, Some(&snap)).expect("warm analysis");
            let WarmMode::Warm { ref dirty, .. } = warm.mode else {
                panic!("expected a warm start, got {:?}\n{src}", warm.mode);
            };
            assert!(
                dirty.is_empty(),
                "unchanged program marked dirty: {dirty:?}"
            );
            assert_eq!(
                canonical_facts(&ir, &warm.run.result),
                cold,
                "warm facts diverged from cold:\n{src}"
            );
            let warm_lint = lint_ir(
                &ir,
                &warm.run.result,
                Fidelity::ContextSensitive,
                &LintOptions::default(),
            );
            assert_eq!(warm_lint, lint, "warm lint diverged from cold:\n{src}");
        },
    );
}

#[test]
fn incremental_after_single_function_edit_matches_cold() {
    let mut case = 0u32;
    check_seeded("store-incremental", pta_prop::DEFAULT_SEED, 16, &mut |g| {
        let src = source_for(g, case);
        case += 1;
        let Some((snap, _, _)) = cold_facts(&src) else {
            return;
        };
        let Some(mutated) = perturb_source(&src) else {
            return;
        };
        let Some((_, cold_mutated, cold_lint)) = cold_facts(&mutated) else {
            return;
        };
        let snap = parse(&serialize(&snap)).expect("snapshot must round-trip");
        let ir = pta_simple::compile(&mutated).unwrap();
        let config = AnalysisConfig::default();
        let inc = analyze_incremental(&ir, &config, Some(&snap)).expect("incremental analysis");
        // The stale snapshot may warm-start (with a dirty set) or be
        // rejected outright; either way the facts must match cold.
        if let WarmMode::Warm { ref dirty, .. } = inc.mode {
            assert!(
                !dirty.is_empty(),
                "mutated program produced an empty dirty set:\n{mutated}"
            );
        }
        assert_eq!(
            canonical_facts(&ir, &inc.run.result),
            cold_mutated,
            "incremental facts diverged from cold on the mutated program:\n{mutated}"
        );
        let inc_lint = lint_ir(
            &ir,
            &inc.run.result,
            Fidelity::ContextSensitive,
            &LintOptions::default(),
        );
        assert_eq!(
            inc_lint, cold_lint,
            "incremental lint diverged from cold:\n{mutated}"
        );
    });
}

#[test]
fn snapshot_codec_is_a_fixed_point() {
    let mut case = 0u32;
    check_seeded(
        "store-codec-fixpoint",
        pta_prop::DEFAULT_SEED,
        12,
        &mut |g| {
            let src = source_for(g, case);
            case += 1;
            let Some((snap, _, _)) = cold_facts(&src) else {
                return;
            };
            let text = serialize(&snap);
            let reparsed = parse(&text).expect("snapshot must parse");
            assert_eq!(
                serialize(&reparsed),
                text,
                "serialize∘parse is not a fixed point:\n{src}"
            );
        },
    );
}
