//! Property tests for the lint passes (`pta-lint`) over generated
//! pathological programs:
//!
//! 1. linting terminates and never panics, whatever the generators
//!    throw at it (the stress harness runs the full registry on every
//!    successful analysis and treats a panic as a failure);
//! 2. a degraded run never yields an error-severity diagnostic;
//! 3. multi-file lint output is byte-identical for every worker count.

use pta_core::AnalysisConfig;
use pta_lint::{lint_files, render_json, render_text, FileInput, LintOptions, Severity};
use pta_prop::stress::{run_stress, StressConfig};
use pta_prop::{case_seed, cgen, Rng};
use std::time::Duration;

/// A deterministic corpus drawn from every generator family, sized to
/// keep the test fast while still covering the interesting shapes.
fn corpus(cases: u32) -> Vec<FileInput> {
    (0..cases)
        .map(|case| {
            let seed = case_seed(pta_prop::DEFAULT_SEED, case);
            let mut g = Rng::new(seed);
            let family = cgen::FAMILIES[case as usize % cgen::FAMILIES.len()];
            FileInput {
                path: format!("<{family}-{case}>"),
                source: cgen::generate(family, &mut g),
            }
        })
        .collect()
}

#[test]
fn lint_on_pathological_programs_terminates_without_panicking() {
    // The stress harness lints every analysed case; any panic or
    // fidelity-contract violation shows up as a failure report.
    let summary = run_stress(&StressConfig {
        cases: 24,
        ..StressConfig::default()
    });
    assert!(summary.is_clean(), "{}", summary.render());
    // The alternating tight budget guarantees the degraded path (and
    // its severity cap) was actually exercised, not just the full one.
    assert!(summary.degraded() > 0, "{}", summary.render());
    assert!(summary.full() > 0, "{}", summary.render());
}

#[test]
fn degraded_lint_runs_emit_no_error_severity() {
    // Force the ladder on every file with a starvation budget and make
    // the findings as loud as possible: even with every check denied,
    // the fidelity cap must keep degraded findings at warning level.
    let opts = LintOptions {
        deny: pta_lint::all_checks()
            .iter()
            .map(|c| c.id().to_owned())
            .collect(),
        ..LintOptions::default()
    };
    let config = AnalysisConfig {
        max_steps: 5,
        deadline: Some(Duration::from_millis(2_000)),
        ..AnalysisConfig::default()
    };
    let reports = lint_files(&corpus(12), &config, &opts, 4);
    for r in &reports {
        assert!(r.error.is_none(), "{}: {:?}", r.path, r.error);
        let degraded = r.fidelity.is_some_and(|f| !f.is_full());
        if degraded {
            for d in &r.diagnostics {
                assert!(
                    d.severity != Severity::Error,
                    "{}: degraded run emitted {d}",
                    r.path
                );
            }
        }
    }
}

#[test]
fn lint_output_is_identical_for_every_worker_count() {
    let inputs = corpus(16);
    let opts = LintOptions::default();
    let config = AnalysisConfig::default();
    let baseline = lint_files(&inputs, &config, &opts, 1);
    let base_text = render_text(&baseline);
    let base_json = render_json(&baseline);
    for jobs in 2..=8 {
        let reports = lint_files(&inputs, &config, &opts, jobs);
        assert_eq!(
            base_text,
            render_text(&reports),
            "text diverged at --jobs {jobs}"
        );
        assert_eq!(
            base_json,
            render_json(&reports),
            "json diverged at --jobs {jobs}"
        );
    }
}
