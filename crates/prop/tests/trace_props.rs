//! Property tests for the trace layer over generated pathological
//! programs:
//!
//! 1. attaching a sink never changes the analysis result or the lint
//!    findings (observation must be free of side effects);
//! 2. a scrubbed JSONL trace is byte-identical across repeated runs of
//!    the same program (determinism is what makes golden traces and
//!    the CI smoke check possible);
//! 3. every emitted line is schema-valid: known kind, `ts_us` present,
//!    kind-specific fields in wire order.

use pta_core::trace::{JsonlSink, TraceMetrics, EVENT_SPECS};
use pta_core::{analyze, analyze_traced, AnalysisConfig, Fidelity};
use pta_lint::{lint_ir, LintOptions};
use pta_prop::{case_seed, cgen, check_seeded, Rng};

/// Deterministic generated source for one case, cycling the families.
fn source_for(case_rng: &mut Rng, case: u32) -> String {
    let family = cgen::FAMILIES[case as usize % cgen::FAMILIES.len()];
    cgen::generate(family, case_rng)
}

#[test]
fn tracing_never_changes_results_or_findings() {
    let mut case = 0u32;
    check_seeded("trace-transparency", pta_prop::DEFAULT_SEED, 20, &mut |g| {
        let src = source_for(g, case);
        case += 1;
        let Ok(ir) = pta_simple::compile(&src) else {
            return; // front-end rejections are covered elsewhere
        };
        let plain = analyze(&ir);
        let mut metrics = TraceMetrics::new();
        let traced = analyze_traced(&ir, AnalysisConfig::default(), &mut metrics);
        match (plain, traced) {
            (Ok(a), Ok(b)) => {
                assert_eq!(
                    format!("{:?}", a.per_stmt),
                    format!("{:?}", b.per_stmt),
                    "per-statement facts diverged under tracing:\n{src}"
                );
                assert_eq!(
                    format!("{:?}", a.exit_set),
                    format!("{:?}", b.exit_set),
                    "exit set diverged under tracing:\n{src}"
                );
                assert_eq!(a.warnings, b.warnings, "warnings diverged:\n{src}");
                let opts = LintOptions::default();
                let la = lint_ir(&ir, &a, Fidelity::ContextSensitive, &opts);
                let lb = lint_ir(&ir, &b, Fidelity::ContextSensitive, &opts);
                assert_eq!(la, lb, "lint findings diverged under tracing:\n{src}");
            }
            (Err(ea), Err(eb)) => {
                assert_eq!(
                    ea.to_string(),
                    eb.to_string(),
                    "failure mode diverged under tracing:\n{src}"
                );
            }
            (a, b) => panic!(
                "tracing flipped success/failure: plain={:?} traced={:?}\n{src}",
                a.map(|_| ()),
                b.map(|_| ()),
            ),
        }
    });
}

#[test]
fn scrubbed_traces_are_deterministic_and_schema_valid() {
    let mut case = 0u32;
    check_seeded("trace-determinism", pta_prop::DEFAULT_SEED, 12, &mut |g| {
        let seed_rng_src = source_for(g, case);
        case += 1;
        let Ok(ir) = pta_simple::compile(&seed_rng_src) else {
            return;
        };
        let run = |ir: &pta_simple::IrProgram| {
            let mut sink = JsonlSink::scrubbed();
            let _ = analyze_traced(ir, AnalysisConfig::default(), &mut sink);
            sink.into_string()
        };
        let first = run(&ir);
        let second = run(&ir);
        assert_eq!(first, second, "scrubbed trace varied across runs");
        for line in first.lines() {
            assert!(line.starts_with("{\"ev\":\""), "bad prefix: {line}");
            let kind = &line["{\"ev\":\"".len()..]
                [..line["{\"ev\":\"".len()..].find('"').expect("closing quote")];
            let spec = EVENT_SPECS
                .iter()
                .find(|s| s.kind == kind)
                .unwrap_or_else(|| panic!("unknown event kind `{kind}`: {line}"));
            let mut at = 0usize;
            for field in std::iter::once(&"ts_us").chain(spec.fields) {
                let needle = format!("\"{field}\":");
                let pos = line[at..]
                    .find(&needle)
                    .unwrap_or_else(|| panic!("field `{field}` missing or out of order: {line}"));
                at += pos + needle.len();
            }
        }
    });
}

#[test]
fn seeded_corpus_produces_memo_traffic() {
    // Make sure the generated corpus actually exercises the memo
    // counters at least somewhere, so the transparency property above
    // is not vacuously passing on programs with no calls.
    let mut saw_calls = false;
    for case in 0..20u32 {
        let mut g = Rng::new(case_seed(pta_prop::DEFAULT_SEED, case));
        let src = source_for(&mut g, case);
        let Ok(ir) = pta_simple::compile(&src) else {
            continue;
        };
        let mut m = TraceMetrics::new();
        if analyze_traced(&ir, AnalysisConfig::default(), &mut m).is_ok()
            && m.memo_hits + m.memo_misses > 0
        {
            saw_calls = true;
            break;
        }
    }
    assert!(saw_calls, "corpus never produced memoization traffic");
}
