/* clinpack - C version of Linpack (paper benchmark `clinpack`):
 * matrices passed as pointer-to-array parameters (the x[i][j] indirect
 * reference style the paper highlights), daxpy/ddot kernels. */

enum { N = 20, LDA = 21 };

double aa[LDA][LDA];
double b_vec[LDA];
double x_vec[LDA];
int ipvt[LDA];

double fabs_d(double x) {
    if (x < 0.0) {
        return -x;
    }
    return x;
}

void daxpy(int n, double da, double *dx, double *dy) {
    int i;
    if (n <= 0) {
        return;
    }
    if (da == 0.0) {
        return;
    }
    for (i = 0; i < n; i++) {
        dy[i] = dy[i] + da * dx[i];
    }
}

double ddot(int n, double *dx, double *dy) {
    int i;
    double dtemp;
    dtemp = 0.0;
    for (i = 0; i < n; i++) {
        dtemp = dtemp + dx[i] * dy[i];
    }
    return dtemp;
}

void dscal(int n, double da, double *dx) {
    int i;
    for (i = 0; i < n; i++) {
        dx[i] = da * dx[i];
    }
}

int idamax(int n, double *dx) {
    int i, itemp;
    double dmax;
    if (n < 1) {
        return -1;
    }
    itemp = 0;
    dmax = fabs_d(dx[0]);
    for (i = 1; i < n; i++) {
        if (fabs_d(dx[i]) > dmax) {
            itemp = i;
            dmax = fabs_d(dx[i]);
        }
    }
    return itemp;
}

void matgen(double (*a)[LDA], int n, double *b) {
    int i, j;
    int init;
    init = 1325;
    for (j = 0; j < n; j++) {
        for (i = 0; i < n; i++) {
            init = 3125 * init % 65536;
            a[j][i] = (init - 32768.0) / 16384.0;
        }
    }
    for (i = 0; i < n; i++) {
        b[i] = 0.0;
    }
    for (j = 0; j < n; j++) {
        for (i = 0; i < n; i++) {
            b[i] = b[i] + a[j][i];
        }
    }
}

int dgefa(double (*a)[LDA], int n, int *pvt) {
    int info, j, k, l;
    double t;
    info = 0;
    for (k = 0; k < n - 1; k++) {
        l = idamax(n - k, &a[k][k]) + k;
        pvt[k] = l;
        if (a[k][l] != 0.0) {
            if (l != k) {
                t = a[k][l];
                a[k][l] = a[k][k];
                a[k][k] = t;
            }
            t = -1.0 / a[k][k];
            dscal(n - k - 1, t, &a[k][k + 1]);
            for (j = k + 1; j < n; j++) {
                t = a[j][l];
                if (l != k) {
                    a[j][l] = a[j][k];
                    a[j][k] = t;
                }
                daxpy(n - k - 1, t, &a[k][k + 1], &a[j][k + 1]);
            }
        } else {
            info = k;
        }
    }
    pvt[n - 1] = n - 1;
    return info;
}

void dgesl(double (*a)[LDA], int n, int *pvt, double *b) {
    int k, l;
    double t;
    for (k = 0; k < n - 1; k++) {
        l = pvt[k];
        t = b[l];
        if (l != k) {
            b[l] = b[k];
            b[k] = t;
        }
        daxpy(n - k - 1, t, &a[k][k + 1], &b[k + 1]);
    }
    for (k = n - 1; k >= 0; k--) {
        b[k] = b[k] / a[k][k];
        t = -b[k];
        daxpy(k, t, &a[k][0], &b[0]);
    }
}

double residual(double (*a)[LDA], int n, double *x, double *b) {
    int i;
    double r, acc;
    acc = 0.0;
    for (i = 0; i < n; i++) {
        r = ddot(n, &a[i][0], x) - b[i];
        acc = acc + fabs_d(r);
    }
    return acc;
}

int main(void) {
    int i, info;
    matgen(aa, N, b_vec);
    info = dgefa(aa, N, ipvt);
    dgesl(aa, N, ipvt, b_vec);
    for (i = 0; i < N; i++) {
        x_vec[i] = b_vec[i];
    }
    printf("info %d x0 %f\n", info, x_vec[0]);
    return 0;
}
