/* livc - a collection of Livermore loops dispatched through three
 * global arrays of function pointers (the paper's function-pointer
 * case study in section 6): each array holds 24 kernels, each of the
 * three indirect call sites sits inside a loop and calls through a
 * scalar local function pointer loaded from an array element. */

enum { VLEN = 32 };
double vx[VLEN];
double vy[VLEN];
double vz[VLEN];
double result_sum;

double kernel_0_0(double *u, double *v, int n) {
    int i;
    double s;
    s = 0.0;
    for (i = 0; i < n; i++) {
        s = s + u[i] + v[i] * 1.0;
    }
    return s;
}

double kernel_0_1(double *u, double *v, int n) {
    int i;
    double s;
    s = 0.0;
    for (i = 0; i < n; i++) {
        s = s + u[i] - v[i] * 2.0;
    }
    return s;
}

double kernel_0_2(double *u, double *v, int n) {
    int i;
    double s;
    s = 0.0;
    for (i = 0; i < n; i++) {
        s = s + u[i] * v[i] * 3.0;
    }
    return s;
}

double kernel_0_3(double *u, double *v, int n) {
    int i;
    double s;
    s = 0.0;
    for (i = 0; i < n; i++) {
        s = s + u[i] + v[i] * 4.0;
    }
    return s;
}

double kernel_0_4(double *u, double *v, int n) {
    int i;
    double s;
    s = 0.0;
    for (i = 0; i < n; i++) {
        s = s + u[i] - v[i] * 5.0;
    }
    return s;
}

double kernel_0_5(double *u, double *v, int n) {
    int i;
    double s;
    s = 0.0;
    for (i = 0; i < n; i++) {
        s = s + u[i] * v[i] * 6.0;
    }
    return s;
}

double kernel_0_6(double *u, double *v, int n) {
    int i;
    double s;
    s = 0.0;
    for (i = 0; i < n; i++) {
        s = s + u[i] + v[i] * 7.0;
    }
    return s;
}

double kernel_0_7(double *u, double *v, int n) {
    int i;
    double s;
    s = 0.0;
    for (i = 0; i < n; i++) {
        s = s + u[i] - v[i] * 1.0;
    }
    return s;
}

double kernel_0_8(double *u, double *v, int n) {
    int i;
    double s;
    s = 0.0;
    for (i = 0; i < n; i++) {
        s = s + u[i] * v[i] * 2.0;
    }
    return s;
}

double kernel_0_9(double *u, double *v, int n) {
    int i;
    double s;
    s = 0.0;
    for (i = 0; i < n; i++) {
        s = s + u[i] + v[i] * 3.0;
    }
    return s;
}

double kernel_0_10(double *u, double *v, int n) {
    int i;
    double s;
    s = 0.0;
    for (i = 0; i < n; i++) {
        s = s + u[i] - v[i] * 4.0;
    }
    return s;
}

double kernel_0_11(double *u, double *v, int n) {
    int i;
    double s;
    s = 0.0;
    for (i = 0; i < n; i++) {
        s = s + u[i] * v[i] * 5.0;
    }
    return s;
}

double kernel_0_12(double *u, double *v, int n) {
    int i;
    double s;
    s = 0.0;
    for (i = 0; i < n; i++) {
        s = s + u[i] + v[i] * 6.0;
    }
    return s;
}

double kernel_0_13(double *u, double *v, int n) {
    int i;
    double s;
    s = 0.0;
    for (i = 0; i < n; i++) {
        s = s + u[i] - v[i] * 7.0;
    }
    return s;
}

double kernel_0_14(double *u, double *v, int n) {
    int i;
    double s;
    s = 0.0;
    for (i = 0; i < n; i++) {
        s = s + u[i] * v[i] * 1.0;
    }
    return s;
}

double kernel_0_15(double *u, double *v, int n) {
    int i;
    double s;
    s = 0.0;
    for (i = 0; i < n; i++) {
        s = s + u[i] + v[i] * 2.0;
    }
    return s;
}

double kernel_0_16(double *u, double *v, int n) {
    int i;
    double s;
    s = 0.0;
    for (i = 0; i < n; i++) {
        s = s + u[i] - v[i] * 3.0;
    }
    return s;
}

double kernel_0_17(double *u, double *v, int n) {
    int i;
    double s;
    s = 0.0;
    for (i = 0; i < n; i++) {
        s = s + u[i] * v[i] * 4.0;
    }
    return s;
}

double kernel_0_18(double *u, double *v, int n) {
    int i;
    double s;
    s = 0.0;
    for (i = 0; i < n; i++) {
        s = s + u[i] + v[i] * 5.0;
    }
    return s;
}

double kernel_0_19(double *u, double *v, int n) {
    int i;
    double s;
    s = 0.0;
    for (i = 0; i < n; i++) {
        s = s + u[i] - v[i] * 6.0;
    }
    return s;
}

double kernel_0_20(double *u, double *v, int n) {
    int i;
    double s;
    s = 0.0;
    for (i = 0; i < n; i++) {
        s = s + u[i] * v[i] * 7.0;
    }
    return s;
}

double kernel_0_21(double *u, double *v, int n) {
    int i;
    double s;
    s = 0.0;
    for (i = 0; i < n; i++) {
        s = s + u[i] + v[i] * 1.0;
    }
    return s;
}

double kernel_0_22(double *u, double *v, int n) {
    int i;
    double s;
    s = 0.0;
    for (i = 0; i < n; i++) {
        s = s + u[i] - v[i] * 2.0;
    }
    return s;
}

double kernel_0_23(double *u, double *v, int n) {
    int i;
    double s;
    s = 0.0;
    for (i = 0; i < n; i++) {
        s = s + u[i] * v[i] * 3.0;
    }
    return s;
}

double kernel_1_0(double *u, double *v, int n) {
    int i;
    double s;
    s = 0.0;
    for (i = 0; i < n; i++) {
        s = s + u[i] - v[i] * 1.0;
    }
    return s;
}

double kernel_1_1(double *u, double *v, int n) {
    int i;
    double s;
    s = 0.0;
    for (i = 0; i < n; i++) {
        s = s + u[i] * v[i] * 2.0;
    }
    return s;
}

double kernel_1_2(double *u, double *v, int n) {
    int i;
    double s;
    s = 0.0;
    for (i = 0; i < n; i++) {
        s = s + u[i] + v[i] * 3.0;
    }
    return s;
}

double kernel_1_3(double *u, double *v, int n) {
    int i;
    double s;
    s = 0.0;
    for (i = 0; i < n; i++) {
        s = s + u[i] - v[i] * 4.0;
    }
    return s;
}

double kernel_1_4(double *u, double *v, int n) {
    int i;
    double s;
    s = 0.0;
    for (i = 0; i < n; i++) {
        s = s + u[i] * v[i] * 5.0;
    }
    return s;
}

double kernel_1_5(double *u, double *v, int n) {
    int i;
    double s;
    s = 0.0;
    for (i = 0; i < n; i++) {
        s = s + u[i] + v[i] * 6.0;
    }
    return s;
}

double kernel_1_6(double *u, double *v, int n) {
    int i;
    double s;
    s = 0.0;
    for (i = 0; i < n; i++) {
        s = s + u[i] - v[i] * 7.0;
    }
    return s;
}

double kernel_1_7(double *u, double *v, int n) {
    int i;
    double s;
    s = 0.0;
    for (i = 0; i < n; i++) {
        s = s + u[i] * v[i] * 1.0;
    }
    return s;
}

double kernel_1_8(double *u, double *v, int n) {
    int i;
    double s;
    s = 0.0;
    for (i = 0; i < n; i++) {
        s = s + u[i] + v[i] * 2.0;
    }
    return s;
}

double kernel_1_9(double *u, double *v, int n) {
    int i;
    double s;
    s = 0.0;
    for (i = 0; i < n; i++) {
        s = s + u[i] - v[i] * 3.0;
    }
    return s;
}

double kernel_1_10(double *u, double *v, int n) {
    int i;
    double s;
    s = 0.0;
    for (i = 0; i < n; i++) {
        s = s + u[i] * v[i] * 4.0;
    }
    return s;
}

double kernel_1_11(double *u, double *v, int n) {
    int i;
    double s;
    s = 0.0;
    for (i = 0; i < n; i++) {
        s = s + u[i] + v[i] * 5.0;
    }
    return s;
}

double kernel_1_12(double *u, double *v, int n) {
    int i;
    double s;
    s = 0.0;
    for (i = 0; i < n; i++) {
        s = s + u[i] - v[i] * 6.0;
    }
    return s;
}

double kernel_1_13(double *u, double *v, int n) {
    int i;
    double s;
    s = 0.0;
    for (i = 0; i < n; i++) {
        s = s + u[i] * v[i] * 7.0;
    }
    return s;
}

double kernel_1_14(double *u, double *v, int n) {
    int i;
    double s;
    s = 0.0;
    for (i = 0; i < n; i++) {
        s = s + u[i] + v[i] * 1.0;
    }
    return s;
}

double kernel_1_15(double *u, double *v, int n) {
    int i;
    double s;
    s = 0.0;
    for (i = 0; i < n; i++) {
        s = s + u[i] - v[i] * 2.0;
    }
    return s;
}

double kernel_1_16(double *u, double *v, int n) {
    int i;
    double s;
    s = 0.0;
    for (i = 0; i < n; i++) {
        s = s + u[i] * v[i] * 3.0;
    }
    return s;
}

double kernel_1_17(double *u, double *v, int n) {
    int i;
    double s;
    s = 0.0;
    for (i = 0; i < n; i++) {
        s = s + u[i] + v[i] * 4.0;
    }
    return s;
}

double kernel_1_18(double *u, double *v, int n) {
    int i;
    double s;
    s = 0.0;
    for (i = 0; i < n; i++) {
        s = s + u[i] - v[i] * 5.0;
    }
    return s;
}

double kernel_1_19(double *u, double *v, int n) {
    int i;
    double s;
    s = 0.0;
    for (i = 0; i < n; i++) {
        s = s + u[i] * v[i] * 6.0;
    }
    return s;
}

double kernel_1_20(double *u, double *v, int n) {
    int i;
    double s;
    s = 0.0;
    for (i = 0; i < n; i++) {
        s = s + u[i] + v[i] * 7.0;
    }
    return s;
}

double kernel_1_21(double *u, double *v, int n) {
    int i;
    double s;
    s = 0.0;
    for (i = 0; i < n; i++) {
        s = s + u[i] - v[i] * 1.0;
    }
    return s;
}

double kernel_1_22(double *u, double *v, int n) {
    int i;
    double s;
    s = 0.0;
    for (i = 0; i < n; i++) {
        s = s + u[i] * v[i] * 2.0;
    }
    return s;
}

double kernel_1_23(double *u, double *v, int n) {
    int i;
    double s;
    s = 0.0;
    for (i = 0; i < n; i++) {
        s = s + u[i] + v[i] * 3.0;
    }
    return s;
}

double kernel_2_0(double *u, double *v, int n) {
    int i;
    double s;
    s = 0.0;
    for (i = 0; i < n; i++) {
        s = s + u[i] * v[i] * 1.0;
    }
    return s;
}

double kernel_2_1(double *u, double *v, int n) {
    int i;
    double s;
    s = 0.0;
    for (i = 0; i < n; i++) {
        s = s + u[i] + v[i] * 2.0;
    }
    return s;
}

double kernel_2_2(double *u, double *v, int n) {
    int i;
    double s;
    s = 0.0;
    for (i = 0; i < n; i++) {
        s = s + u[i] - v[i] * 3.0;
    }
    return s;
}

double kernel_2_3(double *u, double *v, int n) {
    int i;
    double s;
    s = 0.0;
    for (i = 0; i < n; i++) {
        s = s + u[i] * v[i] * 4.0;
    }
    return s;
}

double kernel_2_4(double *u, double *v, int n) {
    int i;
    double s;
    s = 0.0;
    for (i = 0; i < n; i++) {
        s = s + u[i] + v[i] * 5.0;
    }
    return s;
}

double kernel_2_5(double *u, double *v, int n) {
    int i;
    double s;
    s = 0.0;
    for (i = 0; i < n; i++) {
        s = s + u[i] - v[i] * 6.0;
    }
    return s;
}

double kernel_2_6(double *u, double *v, int n) {
    int i;
    double s;
    s = 0.0;
    for (i = 0; i < n; i++) {
        s = s + u[i] * v[i] * 7.0;
    }
    return s;
}

double kernel_2_7(double *u, double *v, int n) {
    int i;
    double s;
    s = 0.0;
    for (i = 0; i < n; i++) {
        s = s + u[i] + v[i] * 1.0;
    }
    return s;
}

double kernel_2_8(double *u, double *v, int n) {
    int i;
    double s;
    s = 0.0;
    for (i = 0; i < n; i++) {
        s = s + u[i] - v[i] * 2.0;
    }
    return s;
}

double kernel_2_9(double *u, double *v, int n) {
    int i;
    double s;
    s = 0.0;
    for (i = 0; i < n; i++) {
        s = s + u[i] * v[i] * 3.0;
    }
    return s;
}

double kernel_2_10(double *u, double *v, int n) {
    int i;
    double s;
    s = 0.0;
    for (i = 0; i < n; i++) {
        s = s + u[i] + v[i] * 4.0;
    }
    return s;
}

double kernel_2_11(double *u, double *v, int n) {
    int i;
    double s;
    s = 0.0;
    for (i = 0; i < n; i++) {
        s = s + u[i] - v[i] * 5.0;
    }
    return s;
}

double kernel_2_12(double *u, double *v, int n) {
    int i;
    double s;
    s = 0.0;
    for (i = 0; i < n; i++) {
        s = s + u[i] * v[i] * 6.0;
    }
    return s;
}

double kernel_2_13(double *u, double *v, int n) {
    int i;
    double s;
    s = 0.0;
    for (i = 0; i < n; i++) {
        s = s + u[i] + v[i] * 7.0;
    }
    return s;
}

double kernel_2_14(double *u, double *v, int n) {
    int i;
    double s;
    s = 0.0;
    for (i = 0; i < n; i++) {
        s = s + u[i] - v[i] * 1.0;
    }
    return s;
}

double kernel_2_15(double *u, double *v, int n) {
    int i;
    double s;
    s = 0.0;
    for (i = 0; i < n; i++) {
        s = s + u[i] * v[i] * 2.0;
    }
    return s;
}

double kernel_2_16(double *u, double *v, int n) {
    int i;
    double s;
    s = 0.0;
    for (i = 0; i < n; i++) {
        s = s + u[i] + v[i] * 3.0;
    }
    return s;
}

double kernel_2_17(double *u, double *v, int n) {
    int i;
    double s;
    s = 0.0;
    for (i = 0; i < n; i++) {
        s = s + u[i] - v[i] * 4.0;
    }
    return s;
}

double kernel_2_18(double *u, double *v, int n) {
    int i;
    double s;
    s = 0.0;
    for (i = 0; i < n; i++) {
        s = s + u[i] * v[i] * 5.0;
    }
    return s;
}

double kernel_2_19(double *u, double *v, int n) {
    int i;
    double s;
    s = 0.0;
    for (i = 0; i < n; i++) {
        s = s + u[i] + v[i] * 6.0;
    }
    return s;
}

double kernel_2_20(double *u, double *v, int n) {
    int i;
    double s;
    s = 0.0;
    for (i = 0; i < n; i++) {
        s = s + u[i] - v[i] * 7.0;
    }
    return s;
}

double kernel_2_21(double *u, double *v, int n) {
    int i;
    double s;
    s = 0.0;
    for (i = 0; i < n; i++) {
        s = s + u[i] * v[i] * 1.0;
    }
    return s;
}

double kernel_2_22(double *u, double *v, int n) {
    int i;
    double s;
    s = 0.0;
    for (i = 0; i < n; i++) {
        s = s + u[i] + v[i] * 2.0;
    }
    return s;
}

double kernel_2_23(double *u, double *v, int n) {
    int i;
    double s;
    s = 0.0;
    for (i = 0; i < n; i++) {
        s = s + u[i] - v[i] * 3.0;
    }
    return s;
}

double (*bank_0[24])(double *, double *, int) = { kernel_0_0, kernel_0_1, kernel_0_2, kernel_0_3, kernel_0_4, kernel_0_5, kernel_0_6, kernel_0_7, kernel_0_8, kernel_0_9, kernel_0_10, kernel_0_11, kernel_0_12, kernel_0_13, kernel_0_14, kernel_0_15, kernel_0_16, kernel_0_17, kernel_0_18, kernel_0_19, kernel_0_20, kernel_0_21, kernel_0_22, kernel_0_23 };
double (*bank_1[24])(double *, double *, int) = { kernel_1_0, kernel_1_1, kernel_1_2, kernel_1_3, kernel_1_4, kernel_1_5, kernel_1_6, kernel_1_7, kernel_1_8, kernel_1_9, kernel_1_10, kernel_1_11, kernel_1_12, kernel_1_13, kernel_1_14, kernel_1_15, kernel_1_16, kernel_1_17, kernel_1_18, kernel_1_19, kernel_1_20, kernel_1_21, kernel_1_22, kernel_1_23 };
double (*bank_2[24])(double *, double *, int) = { kernel_2_0, kernel_2_1, kernel_2_2, kernel_2_3, kernel_2_4, kernel_2_5, kernel_2_6, kernel_2_7, kernel_2_8, kernel_2_9, kernel_2_10, kernel_2_11, kernel_2_12, kernel_2_13, kernel_2_14, kernel_2_15, kernel_2_16, kernel_2_17, kernel_2_18, kernel_2_19, kernel_2_20, kernel_2_21, kernel_2_22, kernel_2_23 };

void init_vectors(void) {
    int i;
    for (i = 0; i < VLEN; i++) {
        vx[i] = i * 0.5;
        vy[i] = (VLEN - i) * 0.25;
        vz[i] = 1.0;
    }
}

double checksum(double *v, int n) {
    int i;
    double s;
    s = 0.0;
    for (i = 0; i < n; i++) {
        s = s + v[i];
    }
    return s;
}

void scale_vector(double *v, int n, double f) {
    int i;
    for (i = 0; i < n; i++) {
        v[i] = v[i] * f;
    }
}

void shift_vector(double *v, int n) {
    int i;
    for (i = n - 1; i > 0; i--) {
        v[i] = v[i - 1];
    }
    v[0] = 0.0;
}

void report(double s) {
    printf("bank sum %f\n", s);
}

double run_bank_0(void) {
    int k;
    double s;
    double (*fp)(double *, double *, int);
    s = 0.0;
    for (k = 0; k < 24; k++) {
        fp = bank_0[k];
        s = s + fp(vx, vy, VLEN);
    }
    return s;
}

double run_bank_1(void) {
    int k;
    double s;
    double (*fp)(double *, double *, int);
    s = 0.0;
    for (k = 0; k < 24; k++) {
        fp = bank_1[k];
        s = s + fp(vy, vz, VLEN);
    }
    return s;
}

double run_bank_2(void) {
    int k;
    double s;
    double (*fp)(double *, double *, int);
    s = 0.0;
    for (k = 0; k < 24; k++) {
        fp = bank_2[k];
        s = s + fp(vz, vx, VLEN);
    }
    return s;
}

double dot_product(double *u, double *v, int n) {
    int i;
    double s;
    s = 0.0;
    for (i = 0; i < n; i++) {
        s = s + u[i] * v[i];
    }
    return s;
}

int main(void) {
    double s;
    init_vectors();
    s = run_bank_0();
    report(s);
    scale_vector(vx, VLEN, 0.5);
    s = s + run_bank_1();
    report(s);
    shift_vector(vy, VLEN);
    s = s + run_bank_2();
    result_sum = s + checksum(vz, VLEN) + dot_product(vx, vy, VLEN);
    report(result_sum);
    return 0;
}
