/* compress - UNIX compress-style LZW (paper benchmark `compress`):
 * global code tables, char-pointer scanning, heap I/O buffers. */

enum { HSIZE = 1024, MAXCODE = 512, BITS = 12 };

int htab[HSIZE];
int codetab[HSIZE];
char *inbuf;
char *outbuf;
int in_len;
int out_len;
int free_ent;
int n_bits;

void cl_hash(void) {
    int i;
    for (i = 0; i < HSIZE; i++) {
        htab[i] = -1;
        codetab[i] = 0;
    }
}

void output_code(int code) {
    outbuf[out_len] = code & 255;
    out_len = out_len + 1;
    if (code > 255) {
        outbuf[out_len] = (code >> 8) & 255;
        out_len = out_len + 1;
    }
}

int probe_for(int fcode, int *slot) {
    int i, disp;
    i = fcode % HSIZE;
    if (i == 0) {
        disp = 1;
    } else {
        disp = HSIZE - i;
    }
    while (htab[i] >= 0 && htab[i] != fcode) {
        i = i - disp;
        if (i < 0) {
            i = i + HSIZE;
        }
    }
    *slot = i;
    if (htab[i] == fcode) {
        return 1;
    }
    return 0;
}

void compress_buf(void) {
    int ent, c, fcode, slot, pos;
    cl_hash();
    free_ent = 257;
    n_bits = 9;
    out_len = 0;
    pos = 0;
    ent = inbuf[pos];
    pos = pos + 1;
    while (pos < in_len) {
        c = inbuf[pos];
        pos = pos + 1;
        fcode = (c << BITS) + ent;
        if (probe_for(fcode, &slot)) {
            ent = codetab[slot];
            continue;
        }
        output_code(ent);
        if (free_ent < MAXCODE) {
            codetab[slot] = free_ent;
            htab[slot] = fcode;
            free_ent = free_ent + 1;
        }
        ent = c;
    }
    output_code(ent);
}

void fill_input(int n) {
    int i;
    in_len = n;
    for (i = 0; i < n; i++) {
        inbuf[i] = 'a' + (i * i + i / 7) % 16;
    }
}

int checksum(char *buf, int n) {
    int i, sum;
    sum = 0;
    for (i = 0; i < n; i++) {
        sum = (sum * 31 + buf[i]) & 0xffff;
    }
    return sum;
}

int main(void) {
    inbuf = (char *) malloc(4096);
    outbuf = (char *) malloc(8192);
    fill_input(4000);
    compress_buf();
    printf("in %d out %d sum %d\n", in_len, out_len, checksum(outbuf, out_len));
    return 0;
}
