/* xref - a cross-reference program building a tree of items (paper
 * benchmark `xref`): heap binary tree, recursion, string handling. */

struct item {
    char word[16];
    int count;
    struct item *left;
    struct item *right;
};

struct item *root;
int distinct;

int word_cmp(char *a, char *b) {
    return strcmp(a, b);
}

struct item *new_item(char *word) {
    struct item *it;
    it = (struct item *) malloc(sizeof(struct item));
    strcpy(it->word, word);
    it->count = 1;
    it->left = 0;
    it->right = 0;
    distinct = distinct + 1;
    return it;
}

struct item *insert(struct item *node, char *word) {
    int c;
    if (node == 0) {
        return new_item(word);
    }
    c = word_cmp(word, node->word);
    if (c < 0) {
        node->left = insert(node->left, word);
    } else if (c > 0) {
        node->right = insert(node->right, word);
    } else {
        node->count = node->count + 1;
    }
    return node;
}

struct item *find(struct item *node, char *word) {
    int c;
    while (node != 0) {
        c = word_cmp(word, node->word);
        if (c == 0) {
            return node;
        }
        if (c < 0) {
            node = node->left;
        } else {
            node = node->right;
        }
    }
    return 0;
}

void print_tree(struct item *node) {
    if (node == 0) {
        return;
    }
    print_tree(node->left);
    printf("%s %d\n", node->word, node->count);
    print_tree(node->right);
}

void synth_word(char *buf, int seed) {
    int i, n;
    n = 3 + seed % 5;
    for (i = 0; i < n; i++) {
        buf[i] = 'a' + (seed * (i + 7)) % 26;
    }
    buf[n] = 0;
}

int main(void) {
    char buf[16];
    int i;
    struct item *hit;
    root = 0;
    distinct = 0;
    for (i = 0; i < 300; i++) {
        synth_word(buf, i);
        root = insert(root, buf);
    }
    synth_word(buf, 11);
    hit = find(root, buf);
    if (hit != 0) {
        printf("found %s x%d\n", hit->word, hit->count);
    }
    print_tree(root);
    printf("distinct %d\n", distinct);
    return 0;
}
