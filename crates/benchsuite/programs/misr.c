/* misr - creates two MISRs and compares them (paper benchmark `misr`):
 * heap cells linked into rings, pointer comparisons. */

struct cell {
    int bit;
    struct cell *next;
};

enum { WIDTH = 16, STEPS = 500 };

struct cell *make_ring(int width) {
    struct cell *first;
    struct cell *cur;
    struct cell *fresh;
    int i;
    first = (struct cell *) malloc(sizeof(struct cell));
    first->bit = 0;
    first->next = 0;
    cur = first;
    for (i = 1; i < width; i++) {
        fresh = (struct cell *) malloc(sizeof(struct cell));
        fresh->bit = 0;
        fresh->next = 0;
        cur->next = fresh;
        cur = fresh;
    }
    cur->next = first;
    return first;
}

void shift_in(struct cell *ring, int input) {
    struct cell *p;
    int carry, tmp;
    carry = input;
    p = ring;
    do {
        tmp = p->bit;
        p->bit = carry ^ (tmp & 1);
        carry = tmp;
        p = p->next;
    } while (p != ring);
}

int signature(struct cell *ring) {
    struct cell *p;
    int sig, pos;
    sig = 0;
    pos = 0;
    p = ring;
    do {
        sig = sig | (p->bit << pos);
        pos = pos + 1;
        p = p->next;
    } while (p != ring);
    return sig;
}

int stimulus(int step, int fault) {
    int v;
    v = (step * 17 + 5) % 2;
    if (fault && step == 250) {
        v = 1 - v;
    }
    return v;
}

int main(void) {
    struct cell *good;
    struct cell *bad;
    int i, sg, sb;
    good = make_ring(WIDTH);
    bad = make_ring(WIDTH);
    for (i = 0; i < STEPS; i++) {
        shift_in(good, stimulus(i, 0));
        shift_in(bad, stimulus(i, 1));
    }
    sg = signature(good);
    sb = signature(bad);
    if (sg == sb) {
        printf("fault cancelled: %d\n", sg);
    } else {
        printf("fault detected: %d vs %d\n", sg, sb);
    }
    return 0;
}
