/* fixoutput - a simple translator (paper benchmark `fixoutput`):
 * character classification and buffered rewriting via pointers. */

char line[256];
char fixed[512];
int nlines;
int nfixed;

int classify(int c) {
    if (isdigit(c)) {
        return 1;
    }
    if (isalpha(c)) {
        return 2;
    }
    if (isspace(c)) {
        return 3;
    }
    return 0;
}

int fix_line(char *src, char *dst) {
    char *p;
    char *q;
    int kind, changed;
    p = src;
    q = dst;
    changed = 0;
    while (*p != 0) {
        kind = classify(*p);
        if (kind == 1) {
            *q = '#';
            q = q + 1;
            changed = changed + 1;
        } else if (kind == 2) {
            *q = toupper(*p);
            q = q + 1;
        } else if (kind == 3) {
            *q = ' ';
            q = q + 1;
        } else {
            *q = '?';
            q = q + 1;
            changed = changed + 1;
        }
        p = p + 1;
    }
    *q = 0;
    return changed;
}

void synth_line(int seed) {
    int i, n;
    n = 10 + seed % 40;
    for (i = 0; i < n; i++) {
        line[i] = 32 + (seed * 3 + i * 11) % 90;
    }
    line[n] = 0;
}

int main(void) {
    int i, changed;
    nlines = 0;
    nfixed = 0;
    for (i = 0; i < 120; i++) {
        synth_line(i);
        changed = fix_line(line, fixed);
        nlines = nlines + 1;
        if (changed > 0) {
            nfixed = nfixed + 1;
        }
        puts(fixed);
    }
    printf("%d lines, %d fixed\n", nlines, nfixed);
    return 0;
}
