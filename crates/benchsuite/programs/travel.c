/* travel - traveling salesman with greedy heuristics (paper benchmark
 * `travel`): city structs, tour arrays of pointers, 2-opt moves. */

enum { NCITIES = 24 };

struct city {
    int x;
    int y;
    int visited;
};

struct city cities[NCITIES];
struct city *tour[NCITIES + 1];
int tour_len;

int dist(struct city *a, struct city *b) {
    int dx, dy;
    dx = a->x - b->x;
    dy = a->y - b->y;
    if (dx < 0) {
        dx = -dx;
    }
    if (dy < 0) {
        dy = -dy;
    }
    return dx + dy;
}

void make_cities(void) {
    int i;
    for (i = 0; i < NCITIES; i++) {
        cities[i].x = (i * 37 + 11) % 100;
        cities[i].y = (i * 53 + 29) % 100;
        cities[i].visited = 0;
    }
}

struct city *nearest_unvisited(struct city *from) {
    int i, best_d, d;
    struct city *best;
    best = 0;
    best_d = 1000000;
    for (i = 0; i < NCITIES; i++) {
        if (!cities[i].visited) {
            d = dist(from, &cities[i]);
            if (d < best_d) {
                best_d = d;
                best = &cities[i];
            }
        }
    }
    return best;
}

void greedy_tour(void) {
    int i;
    struct city *cur;
    cur = &cities[0];
    cur->visited = 1;
    tour[0] = cur;
    for (i = 1; i < NCITIES; i++) {
        cur = nearest_unvisited(cur);
        cur->visited = 1;
        tour[i] = cur;
    }
    tour[NCITIES] = tour[0];
}

int tour_length(void) {
    int i, total;
    total = 0;
    for (i = 0; i < NCITIES; i++) {
        total = total + dist(tour[i], tour[i + 1]);
    }
    return total;
}

void reverse_segment(int a, int b) {
    struct city *t;
    while (a < b) {
        t = tour[a];
        tour[a] = tour[b];
        tour[b] = t;
        a = a + 1;
        b = b - 1;
    }
}

int two_opt_pass(void) {
    int i, j, before, after, improved;
    improved = 0;
    for (i = 1; i < NCITIES - 1; i++) {
        for (j = i + 1; j < NCITIES; j++) {
            before = dist(tour[i - 1], tour[i]) + dist(tour[j], tour[j + 1]);
            after = dist(tour[i - 1], tour[j]) + dist(tour[i], tour[j + 1]);
            if (after < before) {
                reverse_segment(i, j);
                improved = improved + 1;
            }
        }
    }
    return improved;
}

int main(void) {
    int pass, len;
    make_cities();
    greedy_tour();
    len = tour_length();
    printf("greedy %d\n", len);
    for (pass = 0; pass < 10; pass++) {
        if (two_opt_pass() == 0) {
            break;
        }
    }
    tour_len = tour_length();
    printf("after 2-opt %d\n", tour_len);
    return 0;
}
