/* lws - dynamic simulation of a flexible water molecule (paper
 * benchmark `lws`): large arrays of atom structs, force routines taking
 * array-of-struct pointers (the dominant from-fp/to-gl pattern of
 * Table 4). */

enum { NMOL = 16, NATOMS = 3 };

struct atom {
    double pos[3];
    double vel[3];
    double force[3];
    double mass;
};

struct molecule {
    struct atom atoms[NATOMS];
    double energy;
};

struct molecule water[NMOL];
double total_energy;
double kinetic;
double dt;

void zero_forces(struct molecule *mol) {
    int a, d;
    for (a = 0; a < NATOMS; a++) {
        for (d = 0; d < 3; d++) {
            mol->atoms[a].force[d] = 0.0;
        }
    }
}

void init_system(void) {
    int m, a, d;
    for (m = 0; m < NMOL; m++) {
        for (a = 0; a < NATOMS; a++) {
            for (d = 0; d < 3; d++) {
                water[m].atoms[a].pos[d] = (m * 3 + a + d) * 0.7;
                water[m].atoms[a].vel[d] = 0.0;
            }
            if (a == 0) {
                water[m].atoms[a].mass = 16.0;
            } else {
                water[m].atoms[a].mass = 1.0;
            }
        }
        water[m].energy = 0.0;
        zero_forces(&water[m]);
    }
}

double pair_force(struct atom *ai, struct atom *aj, int d) {
    double r, f;
    r = ai->pos[d] - aj->pos[d];
    if (r == 0.0) {
        return 0.0;
    }
    f = 1.0 / (r * r) - 0.5 / (r * r * r * r);
    return f;
}

void intra_forces(struct molecule *mol) {
    int a, b, d;
    double f;
    for (a = 0; a < NATOMS; a++) {
        for (b = a + 1; b < NATOMS; b++) {
            for (d = 0; d < 3; d++) {
                f = pair_force(&mol->atoms[a], &mol->atoms[b], d);
                mol->atoms[a].force[d] = mol->atoms[a].force[d] + f;
                mol->atoms[b].force[d] = mol->atoms[b].force[d] - f;
            }
        }
    }
}

void inter_forces(struct molecule *mi, struct molecule *mj) {
    int d;
    double f;
    for (d = 0; d < 3; d++) {
        f = pair_force(&mi->atoms[0], &mj->atoms[0], d);
        mi->atoms[0].force[d] = mi->atoms[0].force[d] + f;
        mj->atoms[0].force[d] = mj->atoms[0].force[d] - f;
    }
}

void compute_forces(struct molecule *sys, int n) {
    int i, j;
    for (i = 0; i < n; i++) {
        zero_forces(&sys[i]);
    }
    for (i = 0; i < n; i++) {
        intra_forces(&sys[i]);
        for (j = i + 1; j < n; j++) {
            inter_forces(&sys[i], &sys[j]);
        }
    }
}

void integrate(struct molecule *sys, int n) {
    int m, a, d;
    struct atom *at;
    for (m = 0; m < n; m++) {
        for (a = 0; a < NATOMS; a++) {
            at = &sys[m].atoms[a];
            for (d = 0; d < 3; d++) {
                at->vel[d] = at->vel[d] + dt * at->force[d] / at->mass;
                at->pos[d] = at->pos[d] + dt * at->vel[d];
            }
        }
    }
}

double compute_kinetic(struct molecule *sys, int n) {
    int m, a, d;
    double k;
    struct atom *at;
    k = 0.0;
    for (m = 0; m < n; m++) {
        for (a = 0; a < NATOMS; a++) {
            at = &sys[m].atoms[a];
            for (d = 0; d < 3; d++) {
                k = k + 0.5 * at->mass * at->vel[d] * at->vel[d];
            }
        }
    }
    return k;
}

double potential(struct molecule *sys, int n) {
    int m, d;
    double e;
    e = 0.0;
    for (m = 0; m < n; m++) {
        for (d = 0; d < 3; d++) {
            e = e + sys[m].atoms[0].force[d] * sys[m].atoms[0].pos[d];
        }
    }
    return e;
}

int main(void) {
    int step;
    dt = 0.001;
    init_system();
    for (step = 0; step < 20; step++) {
        compute_forces(water, NMOL);
        integrate(water, NMOL);
    }
    kinetic = compute_kinetic(water, NMOL);
    total_energy = kinetic + potential(water, NMOL);
    printf("kinetic %f total %f\n", kinetic, total_energy);
    return 0;
}
