/* config - checks features of the C language (paper benchmark
 * `config`): many small feature probes called along deep chains, which
 * is why Table 6 reports a large invocation graph for it. */

int failures;
int probes;

void report(int ok, char *what) {
    probes = probes + 1;
    if (!ok) {
        failures = failures + 1;
        printf("FAIL: %s\n", what);
    }
}

int probe_char_size(void) {
    return sizeof(char) == 1;
}

int probe_int_size(void) {
    return sizeof(int) >= 2;
}

int probe_pointer_size(void) {
    return sizeof(int *) >= sizeof(int);
}

int probe_shift(void) {
    int v;
    v = 1;
    v = v << 4;
    return v == 16;
}

int probe_division(void) {
    return (7 / 2) == 3 && (7 % 2) == 1;
}

int probe_char_set(void) {
    return 'a' < 'z' && '0' < '9';
}

int probe_address_of(void) {
    int x;
    int *p;
    x = 5;
    p = &x;
    return *p == 5;
}

int probe_double_indirect(void) {
    int x;
    int *p;
    int **pp;
    x = 9;
    p = &x;
    pp = &p;
    return **pp == 9;
}

int probe_array_decay(void) {
    int a[4];
    int *p;
    a[0] = 3;
    p = a;
    return *p == 3;
}

int probe_struct_basics(void) {
    struct pair { int a; int b; };
    struct pair s;
    struct pair *q;
    s.a = 1;
    s.b = 2;
    q = &s;
    return q->a + q->b == 3;
}

int probe_union_overlay(void) {
    union ov { int i; char c; };
    union ov u;
    u.i = 65;
    return u.i == 65;
}

int probe_recursion_depth(int n) {
    if (n <= 0) {
        return 0;
    }
    return 1 + probe_recursion_depth(n - 1);
}

int probe_mutual_a(int n);
int probe_mutual_b(int n) {
    if (n <= 0) {
        return 0;
    }
    return probe_mutual_a(n - 1) + 1;
}

int probe_mutual_a(int n) {
    if (n <= 0) {
        return 0;
    }
    return probe_mutual_b(n - 1) + 1;
}

int probe_switch(void) {
    int k, out;
    out = 0;
    for (k = 0; k < 5; k++) {
        switch (k) {
        case 0:
            out = out + 1;
            break;
        case 1:
        case 2:
            out = out + 10;
            break;
        default:
            out = out + 100;
        }
    }
    return out == 321;
}

int probe_logical(void) {
    int a, b;
    a = 1;
    b = 0;
    return (a || b) && !(a && b);
}

void group_arithmetic(void) {
    report(probe_shift(), "shift");
    report(probe_division(), "division");
    report(probe_logical(), "logical");
}

void group_memory(void) {
    report(probe_address_of(), "address-of");
    report(probe_double_indirect(), "double indirection");
    report(probe_array_decay(), "array decay");
    report(probe_struct_basics(), "struct basics");
    report(probe_union_overlay(), "union overlay");
}

void group_sizes(void) {
    report(probe_char_size(), "char size");
    report(probe_int_size(), "int size");
    report(probe_pointer_size(), "pointer size");
    report(probe_char_set(), "char set");
}

void group_control(void) {
    report(probe_switch(), "switch");
    report(probe_recursion_depth(10) == 10, "recursion");
    report(probe_mutual_a(8) == 8, "mutual recursion");
}

void run_all(void) {
    group_sizes();
    group_arithmetic();
    group_memory();
    group_control();
}

int main(void) {
    failures = 0;
    probes = 0;
    run_all();
    run_all();
    printf("%d probes, %d failures\n", probes, failures);
    return failures;
}
