/* hash - an implementation of a hash table (paper benchmark `hash`):
 * heap-allocated chained buckets, lookups through pointers. */

enum { NBUCKETS = 64 };

struct entry {
    int key;
    int value;
    struct entry *next;
};

struct entry *buckets[NBUCKETS];
int population;

int hash_key(int key) {
    int h;
    h = key * 31 + 7;
    if (h < 0) {
        h = -h;
    }
    return h % NBUCKETS;
}

struct entry *lookup(int key) {
    struct entry *e;
    e = buckets[hash_key(key)];
    while (e != 0) {
        if (e->key == key) {
            return e;
        }
        e = e->next;
    }
    return 0;
}

void insert(int key, int value) {
    struct entry *e;
    int h;
    e = lookup(key);
    if (e != 0) {
        e->value = value;
        return;
    }
    e = (struct entry *) malloc(sizeof(struct entry));
    h = hash_key(key);
    e->key = key;
    e->value = value;
    e->next = buckets[h];
    buckets[h] = e;
    population = population + 1;
}

int remove_key(int key) {
    struct entry *e;
    struct entry *prev;
    int h;
    h = hash_key(key);
    e = buckets[h];
    prev = 0;
    while (e != 0) {
        if (e->key == key) {
            if (prev == 0) {
                buckets[h] = e->next;
            } else {
                prev->next = e->next;
            }
            free(e);
            population = population - 1;
            return 1;
        }
        prev = e;
        e = e->next;
    }
    return 0;
}

int main(void) {
    int i;
    struct entry *e;
    int sum;
    population = 0;
    for (i = 0; i < 200; i++) {
        insert(i * 3, i);
    }
    sum = 0;
    for (i = 0; i < 600; i++) {
        e = lookup(i);
        if (e != 0) {
            sum = sum + e->value;
        }
    }
    for (i = 0; i < 100; i++) {
        remove_key(i * 6);
    }
    printf("population %d sum %d\n", population, sum);
    return 0;
}
