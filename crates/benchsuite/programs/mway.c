/* mway - m-way graph partitioning (paper benchmark `mway`): arrays of
 * node pointers, gain buckets, pointer-heavy moves. */

enum { NODES = 64, PARTS = 4, EDGES = 128 };

struct node {
    int id;
    int part;
    int gain;
    int locked;
};

struct node nodes[NODES];
struct node *bucket[NODES];
int bucket_len;
int edge_u[EDGES];
int edge_v[EDGES];
int cut_size;

void build_graph(void) {
    int i;
    for (i = 0; i < NODES; i++) {
        nodes[i].id = i;
        nodes[i].part = i % PARTS;
        nodes[i].gain = 0;
        nodes[i].locked = 0;
    }
    for (i = 0; i < EDGES; i++) {
        edge_u[i] = (i * 7 + 3) % NODES;
        edge_v[i] = (i * 13 + 5) % NODES;
    }
}

int edge_cut(int e) {
    return nodes[edge_u[e]].part != nodes[edge_v[e]].part;
}

void compute_cut(void) {
    int e;
    cut_size = 0;
    for (e = 0; e < EDGES; e++) {
        if (edge_cut(e)) {
            cut_size = cut_size + 1;
        }
    }
}

void compute_gains(void) {
    int e;
    int i;
    struct node *u;
    struct node *v;
    for (i = 0; i < NODES; i++) {
        nodes[i].gain = 0;
    }
    for (e = 0; e < EDGES; e++) {
        u = &nodes[edge_u[e]];
        v = &nodes[edge_v[e]];
        if (u->part != v->part) {
            u->gain = u->gain + 1;
            v->gain = v->gain + 1;
        } else {
            u->gain = u->gain - 1;
            v->gain = v->gain - 1;
        }
    }
}

void fill_bucket(void) {
    int i;
    bucket_len = 0;
    for (i = 0; i < NODES; i++) {
        if (!nodes[i].locked) {
            bucket[bucket_len] = &nodes[i];
            bucket_len = bucket_len + 1;
        }
    }
}

struct node *best_candidate(void) {
    int i;
    struct node *best;
    best = 0;
    for (i = 0; i < bucket_len; i++) {
        if (best == 0 || bucket[i]->gain > best->gain) {
            best = bucket[i];
        }
    }
    return best;
}

void move_node(struct node *n) {
    n->part = (n->part + 1) % PARTS;
    n->locked = 1;
}

void unlock_all(void) {
    int i;
    for (i = 0; i < NODES; i++) {
        nodes[i].locked = 0;
    }
}

int one_pass(void) {
    int moves;
    struct node *cand;
    int before;
    compute_cut();
    before = cut_size;
    unlock_all();
    for (moves = 0; moves < NODES / 2; moves++) {
        compute_gains();
        fill_bucket();
        cand = best_candidate();
        if (cand == 0) {
            break;
        }
        if (cand->gain <= 0) {
            break;
        }
        move_node(cand);
    }
    compute_cut();
    return before - cut_size;
}

int main(void) {
    int pass, improved;
    build_graph();
    for (pass = 0; pass < 8; pass++) {
        improved = one_pass();
        if (improved <= 0) {
            break;
        }
    }
    compute_cut();
    printf("final cut %d\n", cut_size);
    return 0;
}
