/* sim - local similarities with affine weights (paper benchmark `sim`):
 * dynamic-programming matrices on the heap, pointer rows. */

enum { ROWS = 40, COLS = 40 };

char *seq_a;
char *seq_b;
int *cc_row;
int *dd_row;
int *rr_row;
int gap_open;
int gap_ext;
int best_score;

int match_score(int a, int b) {
    if (a == b) {
        return 2;
    }
    return -1;
}

int max2(int a, int b) {
    if (a > b) {
        return a;
    }
    return b;
}

int max3(int a, int b, int c) {
    return max2(max2(a, b), c);
}

void init_rows(int n) {
    int j;
    for (j = 0; j <= n; j++) {
        cc_row[j] = 0;
        dd_row[j] = -gap_open;
        rr_row[j] = 0;
    }
}

void one_row(int i, int n) {
    int j, c, e, diag, tmp;
    diag = cc_row[0];
    cc_row[0] = 0;
    e = -gap_open;
    for (j = 1; j <= n; j++) {
        e = max2(e - gap_ext, cc_row[j - 1] - gap_open - gap_ext);
        dd_row[j] = max2(dd_row[j] - gap_ext, cc_row[j] - gap_open - gap_ext);
        tmp = cc_row[j];
        c = max3(diag + match_score(seq_a[i - 1], seq_b[j - 1]), e, dd_row[j]);
        if (c < 0) {
            c = 0;
        }
        if (c > best_score) {
            best_score = c;
        }
        cc_row[j] = c;
        diag = tmp;
    }
}

void similarity(int m, int n) {
    int i;
    init_rows(n);
    for (i = 1; i <= m; i++) {
        one_row(i, n);
    }
}

void make_seq(char *s, int n, int seed) {
    int i;
    for (i = 0; i < n; i++) {
        s[i] = 'A' + (seed * (i + 3) + i * i) % 4;
    }
    s[n] = 0;
}

int main(void) {
    seq_a = (char *) malloc(ROWS + 1);
    seq_b = (char *) malloc(COLS + 1);
    cc_row = (int *) malloc((COLS + 1) * sizeof(int));
    dd_row = (int *) malloc((COLS + 1) * sizeof(int));
    rr_row = (int *) malloc((COLS + 1) * sizeof(int));
    gap_open = 4;
    gap_ext = 1;
    best_score = 0;
    make_seq(seq_a, ROWS, 7);
    make_seq(seq_b, COLS, 11);
    similarity(ROWS, COLS);
    printf("best local similarity %d\n", best_score);
    return 0;
}
