/* dry - Dhrystone-style benchmark (paper benchmark `dry`): records with
 * pointers, enumeration discriminants, global record pointers. */

enum identification { IDENT_1, IDENT_2, IDENT_3, IDENT_4, IDENT_5 };

struct record {
    struct record *ptr_comp;
    int discr;
    int enum_comp;
    int int_comp;
    char string_comp[32];
};

struct record *ptr_glob;
struct record *next_ptr_glob;
int int_glob;
int bool_glob;
char ch_1_glob;
char ch_2_glob;
int arr_1_glob[50];
int arr_2_glob[50];

int func_1(char ch_1, char ch_2) {
    char ch_1_loc;
    char ch_2_loc;
    ch_1_loc = ch_1;
    ch_2_loc = ch_1_loc;
    if (ch_2_loc != ch_2) {
        return IDENT_1;
    }
    ch_1_glob = ch_1_loc;
    return IDENT_2;
}

int func_2(char *str_1, char *str_2) {
    int int_loc;
    char ch_loc;
    int_loc = 2;
    ch_loc = 'A';
    while (int_loc <= 2) {
        if (func_1(str_1[int_loc], str_2[int_loc + 1]) == IDENT_1) {
            ch_loc = 'A';
            int_loc = int_loc + 1;
        } else {
            break;
        }
    }
    if (ch_loc >= 'W' && ch_loc < 'Z') {
        int_loc = 7;
    }
    if (strcmp(str_1, str_2) > 0) {
        int_loc = int_loc + 7;
        int_glob = int_loc;
        return 1;
    }
    return 0;
}

int func_3(int enum_par) {
    int enum_loc;
    enum_loc = enum_par;
    if (enum_loc == IDENT_3) {
        return 1;
    }
    return 0;
}

void proc_3(struct record **ptr_ref_par) {
    if (ptr_glob != 0) {
        *ptr_ref_par = ptr_glob->ptr_comp;
    }
    ptr_glob->int_comp = 10;
}

void proc_1(struct record *ptr_val_par) {
    struct record *next_record;
    next_record = ptr_val_par->ptr_comp;
    next_record->int_comp = ptr_val_par->int_comp;
    next_record->ptr_comp = ptr_val_par->ptr_comp;
    proc_3(&next_record->ptr_comp);
    if (next_record->discr == IDENT_1) {
        next_record->int_comp = 6;
        next_record->enum_comp = ptr_val_par->enum_comp;
    } else {
        ptr_val_par->int_comp = next_record->int_comp;
    }
}

void proc_2(int *int_par_ref) {
    int int_loc;
    int enum_loc;
    int_loc = *int_par_ref + 10;
    enum_loc = IDENT_1;
    do {
        if (ch_1_glob == 'A') {
            int_loc = int_loc - 1;
            *int_par_ref = int_loc - int_glob;
            enum_loc = IDENT_2;
        }
    } while (enum_loc != IDENT_2);
}

void proc_4(void) {
    int bool_loc;
    bool_loc = ch_1_glob == 'A';
    bool_glob = bool_loc | bool_glob;
    ch_2_glob = 'B';
}

void proc_5(void) {
    ch_1_glob = 'A';
    bool_glob = 0;
}

void proc_6(int enum_val_par, int *enum_ref_par) {
    *enum_ref_par = enum_val_par;
    if (!func_3(enum_val_par)) {
        *enum_ref_par = IDENT_4;
    }
    switch (enum_val_par) {
    case IDENT_1:
        *enum_ref_par = IDENT_1;
        break;
    case IDENT_2:
        if (int_glob > 100) {
            *enum_ref_par = IDENT_1;
        } else {
            *enum_ref_par = IDENT_4;
        }
        break;
    case IDENT_3:
        *enum_ref_par = IDENT_2;
        break;
    default:
        *enum_ref_par = IDENT_5;
    }
}

void proc_7(int int_1_par_val, int int_2_par_val, int *int_par_ref) {
    int int_loc;
    int_loc = int_1_par_val + 2;
    *int_par_ref = int_2_par_val + int_loc;
}

void proc_8(int *arr_1_par_ref, int *arr_2_par_ref, int int_1_par_val, int int_2_par_val) {
    int int_index;
    int int_loc;
    int_loc = int_1_par_val + 5;
    arr_1_par_ref[int_loc] = int_2_par_val;
    arr_1_par_ref[int_loc + 1] = arr_1_par_ref[int_loc];
    arr_1_par_ref[int_loc + 30] = int_loc;
    for (int_index = int_loc; int_index <= int_loc + 1; int_index++) {
        arr_2_par_ref[int_index] = int_loc;
    }
    arr_2_par_ref[int_loc + 20] = arr_2_par_ref[int_loc + 20] + 1;
    int_glob = 5;
}

int main(void) {
    int int_1_loc;
    int int_2_loc;
    int int_3_loc;
    int run_index;
    int enum_loc;
    char str_1_loc[32];
    char str_2_loc[32];

    next_ptr_glob = (struct record *) malloc(sizeof(struct record));
    ptr_glob = (struct record *) malloc(sizeof(struct record));
    ptr_glob->ptr_comp = next_ptr_glob;
    ptr_glob->discr = IDENT_1;
    ptr_glob->enum_comp = IDENT_3;
    ptr_glob->int_comp = 40;
    strcpy(ptr_glob->string_comp, "DHRYSTONE PROGRAM");
    strcpy(str_1_loc, "DHRYSTONE PROGRAM, 1ST");
    arr_2_glob[8] = 10;

    for (run_index = 1; run_index <= 100; run_index++) {
        proc_5();
        proc_4();
        int_1_loc = 2;
        int_2_loc = 3;
        strcpy(str_2_loc, "DHRYSTONE PROGRAM, 2ND");
        enum_loc = IDENT_2;
        bool_glob = !func_2(str_1_loc, str_2_loc);
        while (int_1_loc < int_2_loc) {
            int_3_loc = 5 * int_1_loc - int_2_loc;
            proc_7(int_1_loc, int_2_loc, &int_3_loc);
            int_1_loc = int_1_loc + 1;
        }
        proc_8(arr_1_glob, arr_2_glob, int_1_loc, int_3_loc);
        proc_1(ptr_glob);
        if (ch_1_glob == 'A') {
            proc_6(IDENT_1, &enum_loc);
        }
        int_2_loc = int_2_loc * int_1_loc;
        proc_2(&int_1_loc);
    }
    printf("int_glob %d\n", int_glob);
    return 0;
}
