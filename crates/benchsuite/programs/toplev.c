/* toplev - the top level of a compiler driver (paper benchmark
 * `toplev`, from GNU C): option tables with values behind pointers,
 * flag handling, and a large array-of-pointers initialization (the
 * paper notes its >4-target indirect reference comes from exactly such
 * an initialization). */

int flag_opt;
int flag_debug;
int flag_verbose;
int flag_syntax_only;
int flag_warn;
int flag_inline;
int flag_unroll;
int flag_trace;

struct option {
    char *name;
    int *variable;
    int value;
};

struct option opt_table[8];
int *all_flags[8];
char *input_name;
char *output_name;
int errors;

void build_tables(void) {
    opt_table[0].name = "opt";
    opt_table[0].variable = &flag_opt;
    opt_table[0].value = 2;
    opt_table[1].name = "debug";
    opt_table[1].variable = &flag_debug;
    opt_table[1].value = 1;
    opt_table[2].name = "verbose";
    opt_table[2].variable = &flag_verbose;
    opt_table[2].value = 1;
    opt_table[3].name = "syntax-only";
    opt_table[3].variable = &flag_syntax_only;
    opt_table[3].value = 1;
    opt_table[4].name = "warn";
    opt_table[4].variable = &flag_warn;
    opt_table[4].value = 3;
    opt_table[5].name = "inline";
    opt_table[5].variable = &flag_inline;
    opt_table[5].value = 1;
    opt_table[6].name = "unroll";
    opt_table[6].variable = &flag_unroll;
    opt_table[6].value = 4;
    opt_table[7].name = "trace";
    opt_table[7].variable = &flag_trace;
    opt_table[7].value = 1;

    all_flags[0] = &flag_opt;
    all_flags[1] = &flag_debug;
    all_flags[2] = &flag_verbose;
    all_flags[3] = &flag_syntax_only;
    all_flags[4] = &flag_warn;
    all_flags[5] = &flag_inline;
    all_flags[6] = &flag_unroll;
    all_flags[7] = &flag_trace;
}

struct option *find_option(char *name) {
    int i;
    for (i = 0; i < 8; i++) {
        if (strcmp(opt_table[i].name, name) == 0) {
            return &opt_table[i];
        }
    }
    return 0;
}

int set_option(char *name) {
    struct option *o;
    o = find_option(name);
    if (o == 0) {
        errors = errors + 1;
        return 0;
    }
    *o->variable = o->value;
    return 1;
}

void clear_flags(void) {
    int i;
    int *p;
    for (i = 0; i < 8; i++) {
        p = all_flags[i];
        *p = 0;
    }
}

int count_set_flags(void) {
    int i, n;
    n = 0;
    for (i = 0; i < 8; i++) {
        if (*all_flags[i] != 0) {
            n = n + 1;
        }
    }
    return n;
}

void compile_file(char *name) {
    input_name = name;
    if (flag_verbose) {
        printf("compiling %s\n", input_name);
    }
    if (flag_syntax_only) {
        return;
    }
    if (flag_opt > 1) {
        flag_inline = 1;
    }
    output_name = "a.out";
}

int main(void) {
    errors = 0;
    build_tables();
    clear_flags();
    set_option("opt");
    set_option("verbose");
    set_option("warn");
    set_option("nonexistent");
    compile_file("test.c");
    printf("%d flags set, %d errors, output %s\n", count_set_flags(), errors, output_name);
    return errors;
}
