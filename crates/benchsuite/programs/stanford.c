/* stanford - the Stanford "baby" benchmark suite (paper benchmark
 * `stanford`): permutations, towers of hanoi, queens, matrix multiply,
 * quicksort, bubble sort, tree sort -- heavy recursion and arrays. */

enum { PERMRANGE = 10, MAXSTACK = 4, STACKRANGE = 7, MM_N = 8, SORTELEMENTS = 64 };

int permarray[PERMRANGE + 1];
int pctr;
int stack_arr[MAXSTACK][STACKRANGE + 1];
int cellspace_next[19];
int cellspace_disc[19];
int freelist;
int movesdone;
int ima[MM_N][MM_N];
int imb[MM_N][MM_N];
int imr[MM_N][MM_N];
int sortlist[SORTELEMENTS + 1];
int biggest;
int littlest;

struct tnode {
    struct tnode *left;
    struct tnode *right;
    int val;
};

struct tnode *tree_root;

/* ---- Perm ---- */
void swap_ints(int *a, int *b) {
    int t;
    t = *a;
    *a = *b;
    *b = t;
}

void initialize_perm(void) {
    int i;
    for (i = 0; i <= PERMRANGE; i++) {
        permarray[i] = i - 1;
    }
}

void permute(int n) {
    int k;
    pctr = pctr + 1;
    if (n != 1) {
        permute(n - 1);
        for (k = n - 1; k >= 1; k--) {
            swap_ints(&permarray[n], &permarray[k]);
            permute(n - 1);
            swap_ints(&permarray[n], &permarray[k]);
        }
    }
}

void perm_bench(void) {
    int i;
    pctr = 0;
    for (i = 1; i <= 3; i++) {
        initialize_perm();
        permute(6);
    }
}

/* ---- Towers ---- */
void makenull(int s) {
    stack_arr[s][0] = 0;
}

int getelement(void) {
    int temp;
    if (freelist > 0) {
        temp = freelist;
        freelist = cellspace_next[freelist];
    } else {
        temp = 0;
    }
    return temp;
}

void push(int i, int s) {
    int localel;
    localel = getelement();
    cellspace_next[localel] = stack_arr[s][0];
    cellspace_disc[localel] = i;
    stack_arr[s][0] = localel;
}

int pop(int s) {
    int temp, temp1;
    temp1 = stack_arr[s][0];
    temp = cellspace_disc[temp1];
    stack_arr[s][0] = cellspace_next[temp1];
    cellspace_next[temp1] = freelist;
    freelist = temp1;
    return temp;
}

void init_towers(int s, int n) {
    int discctr;
    makenull(s);
    for (discctr = n; discctr >= 1; discctr--) {
        push(discctr, s);
    }
}

void move_tower(int s1, int s2) {
    push(pop(s1), s2);
    movesdone = movesdone + 1;
}

void tower(int i, int j, int k) {
    int other;
    if (k == 1) {
        move_tower(i, j);
    } else {
        other = 6 - i - j;
        tower(i, other, k - 1);
        move_tower(i, j);
        tower(other, j, k - 1);
    }
}

void towers_bench(void) {
    int i;
    for (i = 1; i <= 18; i++) {
        cellspace_next[i] = i - 1;
    }
    freelist = 18;
    init_towers(1, STACKRANGE);
    makenull(2);
    makenull(3);
    movesdone = 0;
    tower(1, 2, STACKRANGE);
}

/* ---- Queens ---- */
int q_a[9];
int q_b[17];
int q_c[15];
int q_x[9];

void try_queen(int i, int *q) {
    int j;
    j = 0;
    *q = 0;
    while (!*q && j != 8) {
        j = j + 1;
        if (q_b[j] && q_a[i + j] && q_c[i - j + 7]) {
            q_x[i] = j;
            q_b[j] = 0;
            q_a[i + j] = 0;
            q_c[i - j + 7] = 0;
            if (i < 8) {
                try_queen(i + 1, q);
                if (!*q) {
                    q_b[j] = 1;
                    q_a[i + j] = 1;
                    q_c[i - j + 7] = 1;
                }
            } else {
                *q = 1;
            }
        }
    }
}

void queens_bench(void) {
    int i, q;
    for (i = 0; i <= 16; i++) {
        q_b[i] = 1;
    }
    for (i = 0; i <= 8; i++) {
        q_a[i] = 1;
    }
    for (i = 0; i <= 14; i++) {
        q_c[i] = 1;
    }
    try_queen(1, &q);
}

/* ---- Integer matrix multiply ---- */
void init_matrix(int (*m)[MM_N]) {
    int i, j;
    for (i = 0; i < MM_N; i++) {
        for (j = 0; j < MM_N; j++) {
            m[i][j] = (i * j + i - j) % 11 - 5;
        }
    }
}

void inner_product(int *result, int (*a)[MM_N], int (*b)[MM_N], int row, int column) {
    int k;
    *result = 0;
    for (k = 0; k < MM_N; k++) {
        *result = *result + a[row][k] * b[k][column];
    }
}

void intmm_bench(void) {
    int i, j;
    init_matrix(ima);
    init_matrix(imb);
    for (i = 0; i < MM_N; i++) {
        for (j = 0; j < MM_N; j++) {
            inner_product(&imr[i][j], ima, imb, i, j);
        }
    }
}

/* ---- Sorting ---- */
void initarr(void) {
    int i, temp;
    biggest = 0;
    littlest = 0;
    for (i = 1; i <= SORTELEMENTS; i++) {
        temp = (i * 71 + 13) % 200 - 100;
        sortlist[i] = temp;
        if (temp > biggest) {
            biggest = temp;
        } else if (temp < littlest) {
            littlest = temp;
        }
    }
}

void quicksort(int *a, int l, int r) {
    int i, j, x, w;
    i = l;
    j = r;
    x = a[(l + r) / 2];
    do {
        while (a[i] < x) {
            i = i + 1;
        }
        while (x < a[j]) {
            j = j - 1;
        }
        if (i <= j) {
            w = a[i];
            a[i] = a[j];
            a[j] = w;
            i = i + 1;
            j = j - 1;
        }
    } while (i <= j);
    if (l < j) {
        quicksort(a, l, j);
    }
    if (i < r) {
        quicksort(a, i, r);
    }
}

void bubble_bench(void) {
    int i, j, t;
    initarr();
    for (i = SORTELEMENTS; i > 1; i--) {
        for (j = 1; j < i; j++) {
            if (sortlist[j] > sortlist[j + 1]) {
                t = sortlist[j];
                sortlist[j] = sortlist[j + 1];
                sortlist[j + 1] = t;
            }
        }
    }
}

/* ---- Tree sort ---- */
struct tnode *new_tnode(int v) {
    struct tnode *t;
    t = (struct tnode *) malloc(sizeof(struct tnode));
    t->left = 0;
    t->right = 0;
    t->val = v;
    return t;
}

void tree_insert(struct tnode *t, int n) {
    while (1) {
        if (n > t->val) {
            if (t->left == 0) {
                t->left = new_tnode(n);
                return;
            }
            t = t->left;
        } else {
            if (t->right == 0) {
                t->right = new_tnode(n);
                return;
            }
            t = t->right;
        }
    }
}

int checktree(struct tnode *p) {
    int result;
    result = 1;
    if (p->left != 0) {
        if (p->left->val <= p->val) {
            result = 0;
        } else {
            result = checktree(p->left) & result;
        }
    }
    if (p->right != 0) {
        if (p->right->val > p->val) {
            result = 0;
        } else {
            result = checktree(p->right) & result;
        }
    }
    return result;
}

void trees_bench(void) {
    int i;
    initarr();
    tree_root = new_tnode(sortlist[1]);
    for (i = 2; i <= SORTELEMENTS; i++) {
        tree_insert(tree_root, sortlist[i]);
    }
    if (!checktree(tree_root)) {
        printf("tree wrong\n");
    }
}

int main(void) {
    perm_bench();
    towers_bench();
    queens_bench();
    intmm_bench();
    initarr();
    quicksort(sortlist, 1, SORTELEMENTS);
    bubble_bench();
    trees_bench();
    printf("pctr %d moves %d sorted0 %d\n", pctr, movesdone, sortlist[1]);
    return 0;
}
