/* csuite - part of a vectorizing-compiler test suite (paper benchmark
 * `csuite`): many small loop kernels, each in its own function called
 * exactly once (hence Avgc = 1.00 in Table 6). */

enum { N = 64 };

double va[N];
double vb[N];
double vc[N];
double vd[N];
int checks;

void s111(double *a, double *b) {
    int i;
    for (i = 1; i < N; i = i + 2) {
        a[i] = a[i - 1] + b[i];
    }
}

void s112(double *a, double *b) {
    int i;
    for (i = N - 2; i >= 0; i--) {
        a[i + 1] = a[i] + b[i];
    }
}

void s121(double *a, double *b) {
    int i, j;
    for (i = 0; i < N - 1; i++) {
        j = i + 1;
        a[i] = a[j] + b[i];
    }
}

void s131(double *a, double *b) {
    int i, m;
    m = 1;
    for (i = 0; i < N - 1; i++) {
        a[i] = a[i + m] + b[i];
    }
}

void s151(double *a, double *b) {
    int i;
    for (i = 0; i < N - 1; i++) {
        a[i] = a[i + 1] + b[i];
    }
}

void s171(double *a, double *b, int inc) {
    int i;
    for (i = 0; i < N / inc; i++) {
        a[i * inc] = a[i * inc] + b[i];
    }
}

void s211(double *a, double *b, double *c) {
    int i;
    for (i = 1; i < N - 1; i++) {
        a[i] = b[i - 1] + c[i];
        b[i] = b[i + 1] - c[i];
    }
}

void s221(double *a, double *b, double *c) {
    int i;
    for (i = 1; i < N; i++) {
        a[i] = a[i] + c[i];
        b[i] = b[i - 1] + a[i];
    }
}

void s241(double *a, double *b, double *c, double *d) {
    int i;
    for (i = 0; i < N - 1; i++) {
        a[i] = b[i] * c[i] * d[i];
        b[i] = a[i] * a[i + 1] * d[i];
    }
}

void s311(double *a) {
    int i;
    double sum;
    sum = 0.0;
    for (i = 0; i < N; i++) {
        sum = sum + a[i];
    }
    va[0] = sum;
}

void s1113(double *a, double *b) {
    int i;
    for (i = 0; i < N; i++) {
        a[i] = a[N / 2] + b[i];
    }
}

void init_vectors(void) {
    int i;
    for (i = 0; i < N; i++) {
        va[i] = i * 1.0;
        vb[i] = (N - i) * 0.5;
        vc[i] = i * 0.25;
        vd[i] = 1.0;
    }
}

double check(double *a) {
    int i;
    double s;
    s = 0.0;
    for (i = 0; i < N; i++) {
        s = s + a[i];
    }
    checks = checks + 1;
    return s;
}

int main(void) {
    double total;
    init_vectors();
    s111(va, vb);
    s112(va, vb);
    s121(va, vb);
    s131(va, vb);
    s151(va, vb);
    s171(va, vb, 2);
    s211(va, vb, vc);
    s221(va, vb, vc);
    s241(va, vb, vc, vd);
    s311(va);
    s1113(va, vb);
    total = check(va) + check(vb) + check(vc);
    printf("checksum %f over %d checks\n", total, checks);
    return 0;
}
