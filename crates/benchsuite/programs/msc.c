/* msc - minimum spanning circle of n points (paper benchmark `msc`):
 * geometry with double coordinates through struct pointers. */

enum { NPTS = 30 };

struct point {
    double x;
    double y;
};

struct point pts[NPTS];
struct point center;
double radius;

double sq(double v) {
    return v * v;
}

double dist2(struct point *a, struct point *b) {
    return sq(a->x - b->x) + sq(a->y - b->y);
}

void circle_two(struct point *a, struct point *b) {
    center.x = (a->x + b->x) / 2.0;
    center.y = (a->y + b->y) / 2.0;
    radius = dist2(a, b) / 4.0;
}

void circle_three(struct point *a, struct point *b, struct point *c) {
    double ax, ay, bx, by, cx, cy, d;
    ax = a->x;
    ay = a->y;
    bx = b->x;
    by = b->y;
    cx = c->x;
    cy = c->y;
    d = 2.0 * (ax * (by - cy) + bx * (cy - ay) + cx * (ay - by));
    if (d == 0.0) {
        circle_two(a, c);
        return;
    }
    center.x = (sq(ax) + sq(ay)) * (by - cy) + (sq(bx) + sq(by)) * (cy - ay)
        + (sq(cx) + sq(cy)) * (ay - by);
    center.x = center.x / d;
    center.y = (sq(ax) + sq(ay)) * (cx - bx) + (sq(bx) + sq(by)) * (ax - cx)
        + (sq(cx) + sq(cy)) * (bx - ax);
    center.y = center.y / d;
    radius = dist2(&center, a);
}

int inside(struct point *p) {
    return dist2(&center, p) <= radius + 0.0000001;
}

void min_circle(void) {
    int i, j, k;
    circle_two(&pts[0], &pts[1]);
    for (i = 2; i < NPTS; i++) {
        if (!inside(&pts[i])) {
            circle_two(&pts[0], &pts[i]);
            for (j = 1; j < i; j++) {
                if (!inside(&pts[j])) {
                    circle_two(&pts[i], &pts[j]);
                    for (k = 0; k < j; k++) {
                        if (!inside(&pts[k])) {
                            circle_three(&pts[i], &pts[j], &pts[k]);
                        }
                    }
                }
            }
        }
    }
}

void make_points(void) {
    int i;
    for (i = 0; i < NPTS; i++) {
        pts[i].x = (i * 31 + 7) % 200 / 2.0;
        pts[i].y = (i * 17 + 3) % 200 / 2.0;
    }
}

int main(void) {
    make_points();
    min_circle();
    printf("center (%f, %f) r2 %f\n", center.x, center.y, radius);
    return 0;
}
