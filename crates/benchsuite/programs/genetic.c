/* genetic - implementation of a genetic algorithm for sorting.
 * Mirrors the paper's `genetic` benchmark: arrays of structs, pointer
 * parameters, shuffling and crossover through pointers. */

enum { POP = 32, GENES = 16, GENERATIONS = 40 };

struct chromosome {
    int genes[GENES];
    int fitness;
};

struct chromosome population[POP];
struct chromosome scratch[POP];
int best_fitness;
int generation;

int rand_range(int n) {
    return rand() % n;
}

void init_chromosome(struct chromosome *c) {
    int i;
    for (i = 0; i < GENES; i++) {
        c->genes[i] = rand_range(100);
    }
    c->fitness = 0;
}

void init_population(struct chromosome *pop, int n) {
    int i;
    for (i = 0; i < n; i++) {
        init_chromosome(&pop[i]);
    }
}

int evaluate(struct chromosome *c) {
    int i, score;
    score = 0;
    for (i = 1; i < GENES; i++) {
        if (c->genes[i - 1] <= c->genes[i]) {
            score = score + 1;
        }
    }
    c->fitness = score;
    return score;
}

void evaluate_all(struct chromosome *pop, int n) {
    int i, f;
    for (i = 0; i < n; i++) {
        f = evaluate(&pop[i]);
        if (f > best_fitness) {
            best_fitness = f;
        }
    }
}

void crossover(struct chromosome *a, struct chromosome *b, struct chromosome *out) {
    int i, cut;
    cut = rand_range(GENES);
    for (i = 0; i < GENES; i++) {
        if (i < cut) {
            out->genes[i] = a->genes[i];
        } else {
            out->genes[i] = b->genes[i];
        }
    }
    out->fitness = 0;
}

void mutate(struct chromosome *c) {
    int pos;
    pos = rand_range(GENES);
    c->genes[pos] = rand_range(100);
}

struct chromosome *tournament(struct chromosome *pop, int n) {
    struct chromosome *a;
    struct chromosome *b;
    a = &pop[rand_range(n)];
    b = &pop[rand_range(n)];
    if (a->fitness > b->fitness) {
        return a;
    }
    return b;
}

void next_generation(struct chromosome *from, struct chromosome *to, int n) {
    int i;
    struct chromosome *pa;
    struct chromosome *pb;
    for (i = 0; i < n; i++) {
        pa = tournament(from, n);
        pb = tournament(from, n);
        crossover(pa, pb, &to[i]);
        if (rand_range(10) == 0) {
            mutate(&to[i]);
        }
    }
}

void copy_population(struct chromosome *from, struct chromosome *to, int n) {
    int i, j;
    for (i = 0; i < n; i++) {
        for (j = 0; j < GENES; j++) {
            to[i].genes[j] = from[i].genes[j];
        }
        to[i].fitness = from[i].fitness;
    }
}

int main(void) {
    srand(42);
    best_fitness = 0;
    init_population(population, POP);
    for (generation = 0; generation < GENERATIONS; generation++) {
        evaluate_all(population, POP);
        next_generation(population, scratch, POP);
        copy_population(scratch, population, POP);
    }
    printf("best fitness %d\n", best_fitness);
    return 0;
}
