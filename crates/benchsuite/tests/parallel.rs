//! The parallel suite driver must be invisible in the results: every
//! rendered table and every computed study is byte-identical whether
//! the work runs on one worker or many.

use pta_benchsuite::report;

#[test]
fn tables_are_byte_identical_across_job_counts() {
    let serial = report::run_suite_jobs(1);
    let parallel = report::run_suite_jobs(4);
    assert!(serial.is_clean(), "{}", serial.render_failures());
    assert_eq!(serial.table2(), parallel.table2(), "Table 2 differs");
    assert_eq!(serial.table3(), parallel.table3(), "Table 3 differs");
    assert_eq!(serial.table4(), parallel.table4(), "Table 4 differs");
    assert_eq!(serial.table5(), parallel.table5(), "Table 5 differs");
    assert_eq!(serial.table6(), parallel.table6(), "Table 6 differs");
    assert_eq!(serial.summary(), parallel.summary(), "summary differs");
    // Timings exist for every benchmark, in paper order, on both paths.
    let names =
        |r: &report::SuiteReport| r.timings.iter().map(|t| t.name.clone()).collect::<Vec<_>>();
    assert_eq!(names(&serial), names(&parallel));
    assert_eq!(serial.rows.len(), serial.timings.len());
}

#[test]
fn panicking_job_becomes_a_failed_row_on_every_job_count() {
    use pta_benchsuite::{benchmark, Benchmark, PANIC_BENCH_NAME};
    let benches = vec![
        benchmark("hash").unwrap(),
        Benchmark {
            name: PANIC_BENCH_NAME,
            source: "int main(void) { return 0; }",
            description: "deliberately panicking job",
        },
        benchmark("travel").unwrap(),
    ];
    let cfg = pta_core::AnalysisConfig::default();
    let reference = report::run_benchmarks_cfg(&benches, 1, cfg.clone());
    for jobs in 1..=8 {
        let suite = report::run_benchmarks_cfg(&benches, jobs, cfg.clone());
        // The panic is contained: its row fails, the siblings analyse.
        assert_eq!(suite.rows.len(), 3, "jobs={jobs}");
        assert!(suite.rows[0].as_analysed().is_some(), "jobs={jobs}");
        assert!(suite.rows[2].as_analysed().is_some(), "jobs={jobs}");
        let failures = suite.failures();
        assert_eq!(failures.len(), 1, "jobs={jobs}");
        assert_eq!(failures[0].name, PANIC_BENCH_NAME);
        assert_eq!(failures[0].kind, report::SuiteErrorKind::Panic);
        assert!(failures[0].message.contains("deliberate"), "{failures:?}");
        assert!(!suite.is_clean());
        // The partial tables are deterministic and job-count independent.
        assert_eq!(suite.table2(), reference.table2(), "jobs={jobs}");
        assert_eq!(suite.table3(), reference.table3(), "jobs={jobs}");
        assert_eq!(suite.table6(), reference.table6(), "jobs={jobs}");
        assert_eq!(suite.summary(), reference.summary(), "jobs={jobs}");
        // The failed row shows up in the rendered tables and the JSON.
        assert!(suite.table2().contains("FAILED"), "jobs={jobs}");
        assert!(suite.render_failures().contains(PANIC_BENCH_NAME));
        assert!(suite.timings_json().contains("\"failed\":true"));
    }
}

#[test]
fn budget_exhaustion_degrades_a_row_instead_of_failing() {
    use pta_benchsuite::benchmark;
    let benches = vec![benchmark("hash").unwrap()];
    let cfg = pta_core::AnalysisConfig {
        max_steps: 10,
        ..Default::default()
    };
    let suite = report::run_benchmarks_cfg(&benches, 1, cfg);
    assert!(suite.failures().is_empty(), "{}", suite.render_failures());
    let degraded = suite.degraded();
    assert_eq!(degraded.len(), 1);
    assert!(!degraded[0].fidelity.is_full());
    assert!(!degraded[0].degradations.is_empty());
    // The provenance reaches the rendered table and the JSON artifact.
    assert!(suite
        .table3()
        .contains(&format!("[{}]", degraded[0].fidelity)));
    assert!(suite
        .timings_json()
        .contains(&format!("\"fidelity\":\"{}\"", degraded[0].fidelity)));
}

#[test]
fn livc_study_is_job_count_independent() {
    let serial = report::livc_study_jobs(1).expect("serial livc");
    let parallel = report::livc_study_jobs(3).expect("parallel livc");
    assert_eq!(serial, parallel);
    assert_eq!(serial.render(), parallel.render());
}

#[test]
fn ablation_is_job_count_independent() {
    let serial = report::ablation_jobs(1).expect("serial ablation");
    let parallel = report::ablation_jobs(4).expect("parallel ablation");
    assert_eq!(serial, parallel);
    assert_eq!(
        report::render_ablation(&serial),
        report::render_ablation(&parallel)
    );
}

#[test]
fn heap_site_ablation_is_job_count_independent() {
    let serial = report::heap_site_ablation_jobs(1).expect("serial heap sites");
    let parallel = report::heap_site_ablation_jobs(4).expect("parallel heap sites");
    assert_eq!(serial, parallel);
}
