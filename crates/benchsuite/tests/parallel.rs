//! The parallel suite driver must be invisible in the results: every
//! rendered table and every computed study is byte-identical whether
//! the work runs on one worker or many.

use pta_benchsuite::report;

#[test]
fn tables_are_byte_identical_across_job_counts() {
    let serial = report::run_suite_jobs(1).expect("serial suite");
    let parallel = report::run_suite_jobs(4).expect("parallel suite");
    assert_eq!(serial.table2(), parallel.table2(), "Table 2 differs");
    assert_eq!(serial.table3(), parallel.table3(), "Table 3 differs");
    assert_eq!(serial.table4(), parallel.table4(), "Table 4 differs");
    assert_eq!(serial.table5(), parallel.table5(), "Table 5 differs");
    assert_eq!(serial.table6(), parallel.table6(), "Table 6 differs");
    assert_eq!(serial.summary(), parallel.summary(), "summary differs");
    // Timings exist for every benchmark, in paper order, on both paths.
    let names =
        |r: &report::SuiteReport| r.timings.iter().map(|t| t.name.clone()).collect::<Vec<_>>();
    assert_eq!(names(&serial), names(&parallel));
    assert_eq!(serial.rows.len(), serial.timings.len());
}

#[test]
fn livc_study_is_job_count_independent() {
    let serial = report::livc_study_jobs(1).expect("serial livc");
    let parallel = report::livc_study_jobs(3).expect("parallel livc");
    assert_eq!(serial, parallel);
    assert_eq!(serial.render(), parallel.render());
}

#[test]
fn ablation_is_job_count_independent() {
    let serial = report::ablation_jobs(1).expect("serial ablation");
    let parallel = report::ablation_jobs(4).expect("parallel ablation");
    assert_eq!(serial, parallel);
    assert_eq!(
        report::render_ablation(&serial),
        report::render_ablation(&parallel)
    );
}

#[test]
fn heap_site_ablation_is_job_count_independent() {
    let serial = report::heap_site_ablation_jobs(1).expect("serial heap sites");
    let parallel = report::heap_site_ablation_jobs(4).expect("parallel heap sites");
    assert_eq!(serial, parallel);
}
